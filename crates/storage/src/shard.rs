//! Horizontal partitioning of a fact table into shards.
//!
//! A [`ShardedTable`] splits one logical fact table into `N` disjoint
//! [`Table`] partitions, keyed by a [`ShardKey`] — either hash-by-column
//! (e.g. by store) or range-by-column (e.g. by date). Every shard keeps
//! the parent's name and schema, so a shard can stand in for the full
//! table anywhere a `&Table` is expected (scans, joins, delta routing);
//! the union of the shards' rows is always bag-equal to the logical
//! table. The propagate phase exploits this: per-shard partial
//! summary-deltas are computed concurrently and merged with the
//! self-maintainable-aggregate combine rules, while refresh stays
//! shard-oblivious.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

use crate::delta::DeltaSet;
use crate::error::{StorageError, StorageResult};
use crate::row::Row;
use crate::table::Table;
use crate::value::Value;

/// How rows are assigned to shards.
///
/// Both variants key off a single column of the sharded table; the column
/// is resolved to a position once at [`ShardedTable`] construction.
#[derive(Debug, Clone, PartialEq)]
pub enum ShardKey {
    /// Hash the key column's value (deterministic across runs: the hasher
    /// uses fixed keys). Spreads e.g. stores evenly across shards.
    Hash {
        /// Column whose value is hashed.
        column: String,
    },
    /// Range-partition on the key column using sorted split points:
    /// shard `i` holds rows with `boundaries[i-1] <= key < boundaries[i]`
    /// (values below the first boundary go to shard 0, values at or above
    /// the last go to the final shard). Suits date-partitioned facts.
    Range {
        /// Column whose value is compared against the boundaries.
        column: String,
        /// Ascending split points; `boundaries.len() + 1` natural buckets,
        /// clamped to the shard count.
        boundaries: Vec<Value>,
    },
}

impl ShardKey {
    /// Hash-by-column key.
    pub fn hash(column: impl Into<String>) -> Self {
        ShardKey::Hash {
            column: column.into(),
        }
    }

    /// Range-by-column key with ascending boundaries.
    pub fn range(column: impl Into<String>, boundaries: Vec<Value>) -> Self {
        ShardKey::Range {
            column: column.into(),
            boundaries,
        }
    }

    /// The column the key routes on.
    pub fn column(&self) -> &str {
        match self {
            ShardKey::Hash { column } | ShardKey::Range { column, .. } => column,
        }
    }

    /// The shard for `value`, among `shards` shards.
    pub fn shard_of(&self, value: &Value, shards: usize) -> usize {
        match self {
            ShardKey::Hash { .. } => {
                // DefaultHasher with `new()` uses fixed keys, so routing is
                // deterministic across processes — required for replay and
                // byte-identity tests.
                let mut h = DefaultHasher::new();
                value.hash(&mut h);
                (h.finish() % shards as u64) as usize
            }
            ShardKey::Range { boundaries, .. } => {
                let bucket = boundaries.partition_point(|b| b <= value);
                bucket.min(shards - 1)
            }
        }
    }
}

/// A fact table horizontally partitioned into `N` shards.
///
/// Shards share the parent's name and schema; rows are routed by the
/// [`ShardKey`]. Deltas route the same way — a deletion lands on the shard
/// holding the row it names, because routing is a pure function of row
/// values.
#[derive(Debug, Clone)]
pub struct ShardedTable {
    key: ShardKey,
    key_idx: usize,
    shards: Vec<Table>,
}

impl ShardedTable {
    /// Partitions `table` into `shards` shards routed by `key`.
    ///
    /// Fails if the key column is missing or `shards` is zero. Indexes on
    /// the source table are not carried over; use [`Self::create_index`].
    pub fn from_table(table: &Table, key: ShardKey, shards: usize) -> StorageResult<Self> {
        if shards == 0 {
            return Err(StorageError::InvalidShardCount);
        }
        let key_idx = table.schema().index_of(key.column())?;
        let mut parts: Vec<Table> = (0..shards)
            .map(|_| Table::new(table.name(), table.schema().clone()))
            .collect();
        for row in table.rows() {
            let s = key.shard_of(&row[key_idx], shards);
            parts[s].insert(row.clone())?;
        }
        Ok(ShardedTable {
            key,
            key_idx,
            shards: parts,
        })
    }

    /// The logical table name (every shard shares it).
    pub fn name(&self) -> &str {
        self.shards[0].name()
    }

    /// The routing key.
    pub fn key(&self) -> &ShardKey {
        &self.key
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Total rows across all shards.
    pub fn len(&self) -> usize {
        self.shards.iter().map(Table::len).sum()
    }

    /// Whether every shard is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Shard `i` as a plain table (same name and schema as the parent).
    pub fn shard(&self, i: usize) -> &Table {
        &self.shards[i]
    }

    /// Row counts per shard (skew diagnostics).
    pub fn rows_per_shard(&self) -> Vec<usize> {
        self.shards.iter().map(Table::len).collect()
    }

    /// The shard `row` routes to.
    pub fn shard_of_row(&self, row: &Row) -> usize {
        self.key.shard_of(&row[self.key_idx], self.shards.len())
    }

    /// Splits `delta` into per-shard deltas; slot `i` holds the insertions
    /// and deletions routed to shard `i`. Row order within each slot
    /// follows the input order (stable), so routing is deterministic.
    pub fn route_delta(&self, delta: &DeltaSet) -> Vec<DeltaSet> {
        let mut out: Vec<DeltaSet> = (0..self.shards.len())
            .map(|_| DeltaSet::new(delta.table.clone()))
            .collect();
        for row in &delta.insertions {
            out[self.shard_of_row(row)].insertions.push(row.clone());
        }
        for row in &delta.deletions {
            out[self.shard_of_row(row)].deletions.push(row.clone());
        }
        out
    }

    /// Applies `delta`, routing each insertion and deletion to its shard.
    ///
    /// Mirrors [`Table::apply_delta`]: deletions first (multiset
    /// semantics), then insertions, per shard.
    pub fn apply_delta(&mut self, delta: &DeltaSet) -> StorageResult<()> {
        let routed = self.route_delta(delta);
        for (shard, part) in self.shards.iter_mut().zip(&routed) {
            shard.apply_delta(part)?;
        }
        Ok(())
    }

    /// Creates the same hash index on every shard.
    pub fn create_index(&mut self, name: &str, columns: &[&str]) -> StorageResult<()> {
        for shard in &mut self.shards {
            shard.create_index(name, columns)?;
        }
        Ok(())
    }

    /// Iterates rows across all shards, shard 0 first.
    pub fn iter(&self) -> impl Iterator<Item = &Row> {
        self.shards.iter().flat_map(|s| s.rows())
    }

    /// Collects all shards' rows into one unsharded table.
    pub fn to_table(&self) -> Table {
        let mut t = Table::new(self.name(), self.shards[0].schema().clone());
        for row in self.iter() {
            t.insert(row.clone()).expect("schema matches by construction");
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datatype::DataType;
    use crate::row;
    use crate::schema::{Column, Schema};

    fn pos_like() -> Table {
        let mut t = Table::new(
            "pos",
            Schema::new(vec![
                Column::new("storeID", DataType::Int),
                Column::new("itemID", DataType::Int),
                Column::new("qty", DataType::Int),
            ]),
        );
        for s in 0..6i64 {
            for i in 0..4i64 {
                t.insert(row![s, 10 + i, s * 10 + i]).unwrap();
            }
        }
        t
    }

    #[test]
    fn hash_sharding_partitions_all_rows() {
        let t = pos_like();
        let st = ShardedTable::from_table(&t, ShardKey::hash("storeID"), 4).unwrap();
        assert_eq!(st.num_shards(), 4);
        assert_eq!(st.len(), t.len());
        // Union of shards is bag-equal to the source.
        let mut merged = st.to_table().sorted_rows();
        let mut orig = t.sorted_rows();
        merged.sort();
        orig.sort();
        assert_eq!(merged, orig);
        // Same store always lands on the same shard.
        for row in t.rows() {
            let s = st.shard_of_row(row);
            assert!(st.shard(s).rows().any(|r| r == row));
        }
    }

    #[test]
    fn hash_routing_is_deterministic() {
        let t = pos_like();
        let a = ShardedTable::from_table(&t, ShardKey::hash("storeID"), 4).unwrap();
        let b = ShardedTable::from_table(&t, ShardKey::hash("storeID"), 4).unwrap();
        for i in 0..4 {
            assert_eq!(a.shard(i).to_rows(), b.shard(i).to_rows());
        }
    }

    #[test]
    fn range_sharding_respects_boundaries() {
        let t = pos_like();
        let key = ShardKey::range("storeID", vec![Value::Int(2), Value::Int(4)]);
        let st = ShardedTable::from_table(&t, key, 3).unwrap();
        for row in st.shard(0).rows() {
            assert!(row[0] < Value::Int(2));
        }
        for row in st.shard(1).rows() {
            assert!(row[0] >= Value::Int(2) && row[0] < Value::Int(4));
        }
        for row in st.shard(2).rows() {
            assert!(row[0] >= Value::Int(4));
        }
        assert_eq!(st.len(), t.len());
    }

    #[test]
    fn range_with_more_boundaries_than_shards_clamps() {
        let t = pos_like();
        let key = ShardKey::range(
            "storeID",
            vec![Value::Int(1), Value::Int(2), Value::Int(3), Value::Int(4)],
        );
        let st = ShardedTable::from_table(&t, key, 2).unwrap();
        assert_eq!(st.len(), t.len());
        for row in st.shard(1).rows() {
            assert!(row[0] >= Value::Int(1));
        }
    }

    #[test]
    fn route_and_apply_delta_agree_with_unsharded() {
        let t = pos_like();
        let mut st = ShardedTable::from_table(&t, ShardKey::hash("storeID"), 3).unwrap();
        let mut delta = DeltaSet::new("pos");
        delta.insertions.push(row![7i64, 99, 1]);
        delta.insertions.push(row![0i64, 98, 2]);
        delta.deletions.push(row![0i64, 10, 0]); // exists in shard of store 0
        let routed = st.route_delta(&delta);
        assert_eq!(routed.len(), 3);
        let total: usize = routed.iter().map(|d| d.len()).sum();
        assert_eq!(total, delta.len());
        st.apply_delta(&delta).unwrap();

        let mut unsharded = t.clone();
        unsharded.apply_delta(&delta).unwrap();
        let mut a = st.to_table().sorted_rows();
        let mut b = unsharded.sorted_rows();
        a.sort();
        b.sort();
        assert_eq!(a, b);
    }

    #[test]
    fn deletion_of_missing_row_errors() {
        let t = pos_like();
        let mut st = ShardedTable::from_table(&t, ShardKey::hash("storeID"), 2).unwrap();
        let mut delta = DeltaSet::new("pos");
        delta.deletions.push(row![0i64, 10, 999]);
        assert!(st.apply_delta(&delta).is_err());
    }

    #[test]
    fn zero_shards_rejected_and_unknown_column_rejected() {
        let t = pos_like();
        assert!(matches!(
            ShardedTable::from_table(&t, ShardKey::hash("storeID"), 0),
            Err(StorageError::InvalidShardCount)
        ));
        assert!(ShardedTable::from_table(&t, ShardKey::hash("nope"), 2).is_err());
    }

    #[test]
    fn single_shard_holds_everything() {
        let t = pos_like();
        let st = ShardedTable::from_table(&t, ShardKey::hash("storeID"), 1).unwrap();
        assert_eq!(st.shard(0).len(), t.len());
        assert_eq!(st.rows_per_shard(), vec![t.len()]);
    }
}
