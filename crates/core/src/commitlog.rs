//! Append-only commitlog of sealed change batches.
//!
//! The paper's batch-maintenance model (§4) already gives deltas the shape
//! of a write-ahead log: deltas are sealed into deterministic batches and
//! replayed in order. This module makes that log durable, so a crash loses
//! no accepted batch — recovery is "load snapshot, replay the log tail",
//! and because maintenance is deterministic the result is byte-identical
//! to the uninterrupted run.
//!
//! ## Frame format
//!
//! One frame per sealed batch, appended to `commit.log`:
//!
//! ```text
//! frame   := [len: u32 LE] [checksum: u64 LE] [payload]
//! payload := [lsn: u64 LE] [encoded batch — storage::binenc]
//! ```
//!
//! `len` is the payload length; `checksum` is FNV-1a 64 over the payload.
//! LSNs are assigned contiguously starting at 1. After each append the
//! file is flushed with `sync_data` *before* the seal is acknowledged, so
//! every batch a caller has been told is accepted survives power loss.
//!
//! [`CommitLog::open`] seeds the LSN counter from **both** the scanned
//! frames and the `MANIFEST` in the same directory: after a clean
//! shutdown the final snapshot + compaction empties the log, and a
//! restart that restarted LSNs at 1 would collide with LSNs the snapshot
//! already covers — recovery skips `lsn <= snapshot_lsn`, so the new
//! incarnation's acknowledged batches would be silently dropped. The
//! next LSN is therefore `max(last scanned, snapshot_lsn,
//! last_applied_lsn) + 1`.
//!
//! ## Torn tails vs. corruption
//!
//! On reopen the log is scanned front to back. A frame that fails its
//! length or checksum check **at the end of the file** is a torn tail —
//! the expected residue of a crash mid-append. It is truncated away with a
//! logged warning, never an error. The same failure *followed by more
//! frames* cannot be a torn write and is reported as
//! [`CommitLogError::Corrupt`] with the byte offset. Two refinements:
//!
//! * The search for "more frames" after a failure resynchronizes within a
//!   bounded window ([`RESYNC_WINDOW`]) past the failure point — a real
//!   torn write extends at most one frame, so an unbounded scan would only
//!   turn pathological inputs into O(n²) open times.
//! * A tail frame whose LSN the manifest records as *applied*
//!   (`lsn <= last_applied_lsn`) cannot be a torn write either — it was
//!   fully written, fsync'd, and its cycle committed — so its loss is
//!   media corruption and reported as [`CommitLogError::Corrupt`], never
//!   silently truncated.
//!
//! ## Manifest and compaction
//!
//! A `MANIFEST` file in the same directory records the snapshot the log
//! tail is relative to and the last LSN the maintenance worker has
//! applied. It is rewritten atomically (tmp + rename + dir fsync).
//! [`CommitLog::compact`] drops frames already covered by a snapshot by
//! rewriting the log with only the surviving frames, also via tmp+rename.

use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::time::Instant;

use cubedelta_storage::{decode_batch, encode_batch, fnv1a_64, ChangeBatch};

/// Frame header size: u32 length + u64 checksum.
const HEADER: usize = 12;
/// Payloads larger than this are implausible and treated as corruption
/// (protects the scanner from allocating on a garbage length field).
const MAX_PAYLOAD: u32 = 1 << 30;
/// How far past a failed frame the reopen scan looks for a valid frame
/// chain before classifying the failure as a torn tail. A torn write
/// extends at most one in-flight frame, so any genuinely interior
/// corruption has its next valid frame well inside this window; the cap
/// keeps classification linear instead of O(n²) on multi-GB logs.
const RESYNC_WINDOW: usize = 16 << 20;

pub const LOG_FILE: &str = "commit.log";
pub const MANIFEST_FILE: &str = "MANIFEST";

/// Failures from the commitlog. Torn tails are *not* errors — they are
/// handled (truncated + warned) inside [`CommitLog::open`].
#[derive(Debug)]
pub enum CommitLogError {
    Io(std::io::Error),
    /// A frame in the *interior* of the log failed validation: bad length,
    /// bad checksum, or an undecodable payload with valid frames after it.
    Corrupt { offset: u64, detail: String },
}

impl fmt::Display for CommitLogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommitLogError::Io(e) => write!(f, "commitlog I/O error: {e}"),
            CommitLogError::Corrupt { offset, detail } => {
                write!(f, "commitlog corrupt at byte {offset}: {detail}")
            }
        }
    }
}

impl std::error::Error for CommitLogError {}

impl From<std::io::Error> for CommitLogError {
    fn from(e: std::io::Error) -> Self {
        CommitLogError::Io(e)
    }
}

/// Where an appended frame landed; returned so callers can journal the
/// log position and account fsync latency.
#[derive(Debug, Clone, Copy)]
pub struct LogPosition {
    /// LSN assigned to the batch.
    pub lsn: u64,
    /// Byte offset of the frame start in the log file.
    pub offset: u64,
    /// Total frame size (header + payload) in bytes.
    pub bytes: u64,
    /// Wall-clock microseconds spent in `sync_data`.
    pub fsync_us: u64,
}

/// One validated record scanned out of the log on open.
#[derive(Debug, Clone)]
pub struct LogRecord {
    pub lsn: u64,
    pub batch: ChangeBatch,
}

/// What [`CommitLog::open`] found on disk.
#[derive(Debug)]
pub struct OpenReport {
    /// All validated records, in LSN order.
    pub records: Vec<LogRecord>,
    /// Bytes discarded from a torn tail (0 on a clean log).
    pub torn_bytes_discarded: u64,
}

/// The durable manifest: which snapshot the log tail is relative to and
/// how far the worker has applied. Plain `key=value` lines.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Manifest {
    /// LSN covered by the newest snapshot (0 = the initial snapshot,
    /// taken before any batch was logged).
    pub snapshot_lsn: u64,
    /// Directory name (relative to the commitlog dir) of that snapshot.
    pub snapshot_dir: String,
    /// Highest LSN the maintenance worker has fully applied.
    pub last_applied_lsn: u64,
}

impl Manifest {
    fn to_text(&self) -> String {
        format!(
            "snapshot_lsn={}\nsnapshot_dir={}\nlast_applied_lsn={}\n",
            self.snapshot_lsn, self.snapshot_dir, self.last_applied_lsn
        )
    }

    fn parse(text: &str) -> Result<Manifest, String> {
        let mut m = Manifest::default();
        let mut seen = 0u8;
        for (i, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let (key, val) = line
                .split_once('=')
                .ok_or_else(|| format!("line {}: expected key=value, got {line:?}", i + 1))?;
            let num = || {
                val.parse::<u64>()
                    .map_err(|_| format!("line {}: {key} is not a number: {val:?}", i + 1))
            };
            match key {
                "snapshot_lsn" => {
                    m.snapshot_lsn = num()?;
                    seen |= 1;
                }
                "snapshot_dir" => {
                    m.snapshot_dir = val.to_string();
                    seen |= 2;
                }
                "last_applied_lsn" => {
                    m.last_applied_lsn = num()?;
                    seen |= 4;
                }
                other => return Err(format!("line {}: unknown key {other:?}", i + 1)),
            }
        }
        if seen != 7 {
            return Err("manifest missing required keys".to_string());
        }
        Ok(m)
    }

    /// Reads `MANIFEST` from `dir`. `Ok(None)` when the file does not
    /// exist (fresh directory).
    pub fn load(dir: &Path) -> Result<Option<Manifest>, CommitLogError> {
        let path = dir.join(MANIFEST_FILE);
        let text = match fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e.into()),
        };
        Manifest::parse(&text).map(Some).map_err(|detail| {
            CommitLogError::Corrupt {
                offset: 0,
                detail: format!("manifest: {detail}"),
            }
        })
    }

    /// Writes the manifest atomically: tmp file, fsync, rename, dir fsync.
    /// A crash at any point leaves either the old or the new manifest.
    pub fn store(&self, dir: &Path) -> Result<(), CommitLogError> {
        let tmp = dir.join("MANIFEST.tmp");
        let fin = dir.join(MANIFEST_FILE);
        {
            let mut f = File::create(&tmp)?;
            f.write_all(self.to_text().as_bytes())?;
            f.sync_data()?;
        }
        fs::rename(&tmp, &fin)?;
        if let Ok(d) = File::open(dir) {
            let _ = d.sync_data();
        }
        Ok(())
    }
}

/// The append-only log. Single writer (the `WarehouseService` seal path);
/// callers serialize access externally.
#[derive(Debug)]
pub struct CommitLog {
    dir: PathBuf,
    file: File,
    /// Current end-of-log offset (== file length).
    end: u64,
    /// LSN the next append will be assigned.
    next_lsn: u64,
}

impl CommitLog {
    /// Opens (creating if absent) the log in `dir`, scanning and
    /// validating every frame. A torn tail is truncated with a warning;
    /// interior corruption is a hard error.
    pub fn open(dir: &Path) -> Result<(CommitLog, OpenReport), CommitLogError> {
        fs::create_dir_all(dir)?;
        // The manifest floors the LSN counter (a compacted-empty log must
        // not restart at 1) and identifies applied frames for the
        // torn-vs-corrupt classification below.
        let manifest = Manifest::load(dir)?.unwrap_or_default();
        let path = dir.join(LOG_FILE);
        let mut file = OpenOptions::new()
            .read(true)
            .create(true)
            .append(true)
            .open(&path)?;

        let mut bytes = Vec::new();
        file.seek(SeekFrom::Start(0))?;
        file.read_to_end(&mut bytes)?;

        let mut records = Vec::new();
        let mut pos: usize = 0;
        let mut torn_at: Option<(usize, String)> = None;
        while pos < bytes.len() {
            match Self::scan_frame(&bytes, pos) {
                Ok((lsn, batch, next)) => {
                    records.push(LogRecord { lsn, batch });
                    pos = next;
                }
                Err(detail) => {
                    torn_at = Some((pos, detail));
                    break;
                }
            }
        }

        let mut torn_bytes_discarded = 0u64;
        if let Some((at, detail)) = torn_at {
            // A torn write can only hold the frame *after* the last valid
            // one (or, on a freshly compacted log, the first frame above
            // the snapshot). If the manifest says that LSN was already
            // applied, the frame was fully written, fsync'd, and its
            // cycle committed — the damage is media corruption of
            // acknowledged data, never a torn tail.
            let torn_lsn = records
                .last()
                .map(|r| r.lsn + 1)
                .unwrap_or(manifest.snapshot_lsn + 1);
            if torn_lsn <= manifest.last_applied_lsn {
                return Err(CommitLogError::Corrupt {
                    offset: at as u64,
                    detail: format!(
                        "frame for lsn {torn_lsn} is invalid but the manifest records it \
                         as applied (last_applied_lsn={}): {detail}",
                        manifest.last_applied_lsn
                    ),
                });
            }
            // A failed frame is a torn tail only if nothing valid follows
            // it. Look for a later offset that parses as a frame chain
            // reaching EOF; if one exists the failure is interior corruption.
            if Self::valid_suffix_exists(&bytes, at + 1) {
                return Err(CommitLogError::Corrupt {
                    offset: at as u64,
                    detail,
                });
            }
            torn_bytes_discarded = (bytes.len() - at) as u64;
            eprintln!(
                "[cubedelta] warning: commitlog {path:?} has a torn tail at byte {at} \
                 ({torn_bytes_discarded} bytes discarded): {detail}",
                path = path
            );
            file.set_len(at as u64)?;
            file.sync_data()?;
        }

        let end = bytes.len() as u64 - torn_bytes_discarded;
        let next_lsn = records
            .last()
            .map(|r| r.lsn)
            .unwrap_or(0)
            .max(manifest.snapshot_lsn)
            .max(manifest.last_applied_lsn)
            + 1;
        file.seek(SeekFrom::End(0))?;
        Ok((
            CommitLog {
                dir: dir.to_path_buf(),
                file,
                end,
                next_lsn,
            },
            OpenReport {
                records,
                torn_bytes_discarded,
            },
        ))
    }

    /// Tries to parse one frame at `pos`; returns `(lsn, batch, next_pos)`
    /// or a description of why it is invalid.
    fn scan_frame(bytes: &[u8], pos: usize) -> Result<(u64, ChangeBatch, usize), String> {
        let header = bytes
            .get(pos..pos + HEADER)
            .ok_or_else(|| format!("truncated frame header ({} bytes)", bytes.len() - pos))?;
        let len = u32::from_le_bytes(header[..4].try_into().unwrap());
        if !(8..=MAX_PAYLOAD).contains(&len) {
            return Err(format!("implausible payload length {len}"));
        }
        let want = u64::from_le_bytes(header[4..12].try_into().unwrap());
        let payload = bytes
            .get(pos + HEADER..pos + HEADER + len as usize)
            .ok_or_else(|| format!("truncated payload (want {len} bytes)"))?;
        if fnv1a_64(payload) != want {
            return Err("checksum mismatch".to_string());
        }
        let lsn = u64::from_le_bytes(payload[..8].try_into().unwrap());
        let batch = decode_batch(&payload[8..]).map_err(|e| format!("payload: {e}"))?;
        Ok((lsn, batch, pos + HEADER + len as usize))
    }

    /// True if some suffix of `bytes` starting at or after `from` parses
    /// as a valid frame chain that reaches EOF exactly — meaning the
    /// earlier failure cannot be a torn tail. Resynchronization is
    /// bounded to [`RESYNC_WINDOW`] bytes past `from`: a torn write spans
    /// at most one frame, so a chain restarting further out than that
    /// does not exist in practice, and the cap keeps reopen linear.
    fn valid_suffix_exists(bytes: &[u8], from: usize) -> bool {
        let limit = bytes
            .len()
            .saturating_sub(HEADER)
            .min(from.saturating_add(RESYNC_WINDOW));
        for start in from..limit {
            let mut pos = start;
            let mut any = false;
            while pos < bytes.len() {
                match Self::scan_frame(bytes, pos) {
                    Ok((_, _, next)) => {
                        any = true;
                        pos = next;
                    }
                    Err(_) => break,
                }
            }
            if any && pos == bytes.len() {
                return true;
            }
        }
        false
    }

    /// Directory this log lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// LSN the next [`append`](Self::append) will assign.
    pub fn next_lsn(&self) -> u64 {
        self.next_lsn
    }

    /// Current log size in bytes.
    pub fn len_bytes(&self) -> u64 {
        self.end
    }

    /// Appends one sealed batch, fsyncs, and returns its position. The
    /// frame is durable when this returns.
    pub fn append(&mut self, batch: &ChangeBatch) -> Result<LogPosition, CommitLogError> {
        let lsn = self.next_lsn;
        let mut payload = Vec::with_capacity(8 + 64);
        payload.extend_from_slice(&lsn.to_le_bytes());
        payload.extend_from_slice(&encode_batch(batch));
        let mut frame = Vec::with_capacity(HEADER + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&fnv1a_64(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);

        let offset = self.end;
        self.file.write_all(&frame)?;
        let t0 = Instant::now();
        self.file.sync_data()?;
        let fsync_us = t0.elapsed().as_micros() as u64;

        self.end += frame.len() as u64;
        self.next_lsn += 1;
        Ok(LogPosition {
            lsn,
            offset,
            bytes: frame.len() as u64,
            fsync_us,
        })
    }

    /// Drops all frames with `lsn <= cutoff` (they are covered by a
    /// snapshot) by rewriting the log atomically. Returns bytes reclaimed.
    pub fn compact(&mut self, cutoff: u64) -> Result<u64, CommitLogError> {
        let path = self.dir.join(LOG_FILE);
        let mut bytes = Vec::new();
        self.file.seek(SeekFrom::Start(0))?;
        self.file.read_to_end(&mut bytes)?;

        let mut kept = Vec::new();
        let mut pos = 0usize;
        while pos < bytes.len() {
            let (lsn, _, next) = Self::scan_frame(&bytes, pos)
                .map_err(|detail| CommitLogError::Corrupt {
                    offset: pos as u64,
                    detail,
                })?;
            if lsn > cutoff {
                kept.extend_from_slice(&bytes[pos..next]);
            }
            pos = next;
        }

        let reclaimed = bytes.len() as u64 - kept.len() as u64;
        if reclaimed == 0 {
            self.file.seek(SeekFrom::End(0))?;
            return Ok(0);
        }

        let tmp = self.dir.join("commit.log.tmp");
        {
            let mut f = File::create(&tmp)?;
            f.write_all(&kept)?;
            f.sync_data()?;
        }
        fs::rename(&tmp, &path)?;
        if let Ok(d) = File::open(&self.dir) {
            let _ = d.sync_data();
        }
        self.file = OpenOptions::new().read(true).append(true).open(&path)?;
        self.end = kept.len() as u64;
        Ok(reclaimed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cubedelta_storage::{row, DeltaSet};

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "cubedelta_commitlog_{tag}_{}",
            std::process::id()
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn batch(n: i64) -> ChangeBatch {
        ChangeBatch::single(DeltaSet::insertions("pos", vec![row![n, n * 10]]))
    }

    #[test]
    fn append_reopen_replays_in_order() {
        let dir = tempdir("roundtrip");
        {
            let (mut log, report) = CommitLog::open(&dir).unwrap();
            assert!(report.records.is_empty());
            for i in 1..=5 {
                let pos = log.append(&batch(i)).unwrap();
                assert_eq!(pos.lsn, i as u64);
            }
        }
        let (log, report) = CommitLog::open(&dir).unwrap();
        assert_eq!(report.torn_bytes_discarded, 0);
        let lsns: Vec<u64> = report.records.iter().map(|r| r.lsn).collect();
        assert_eq!(lsns, vec![1, 2, 3, 4, 5]);
        assert_eq!(report.records[2].batch.deltas, batch(3).deltas);
        assert_eq!(log.next_lsn(), 6);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_truncated_with_warning_not_error() {
        let dir = tempdir("torn");
        let full_len;
        {
            let (mut log, _) = CommitLog::open(&dir).unwrap();
            log.append(&batch(1)).unwrap();
            log.append(&batch(2)).unwrap();
            full_len = log.len_bytes();
        }
        // Chop mid-way through the second frame: a torn write.
        let path = dir.join(LOG_FILE);
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(full_len - 5).unwrap();
        drop(f);

        let (log, report) = CommitLog::open(&dir).unwrap();
        assert_eq!(report.records.len(), 1);
        assert!(report.torn_bytes_discarded > 0);
        // The tail was physically removed and the log is appendable again.
        assert_eq!(log.next_lsn(), 2);
        let (_, report2) = CommitLog::open(&dir).unwrap();
        assert_eq!(report2.torn_bytes_discarded, 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn garbage_tail_bytes_are_discarded() {
        let dir = tempdir("garbage");
        {
            let (mut log, _) = CommitLog::open(&dir).unwrap();
            log.append(&batch(1)).unwrap();
        }
        let path = dir.join(LOG_FILE);
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(&[0xde, 0xad, 0xbe, 0xef]).unwrap();
        drop(f);
        let (_, report) = CommitLog::open(&dir).unwrap();
        assert_eq!(report.records.len(), 1);
        assert_eq!(report.torn_bytes_discarded, 4);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn interior_corruption_is_a_hard_error() {
        let dir = tempdir("interior");
        let first_end;
        {
            let (mut log, _) = CommitLog::open(&dir).unwrap();
            let p1 = log.append(&batch(1)).unwrap();
            first_end = p1.offset + p1.bytes;
            log.append(&batch(2)).unwrap();
        }
        // Flip a payload byte inside frame 1; frame 2 stays valid, so this
        // cannot be a torn tail.
        let path = dir.join(LOG_FILE);
        let mut bytes = fs::read(&path).unwrap();
        let victim = HEADER + 9; // inside frame 1's batch payload
        assert!((victim as u64) < first_end);
        bytes[victim] ^= 0xff;
        fs::write(&path, &bytes).unwrap();

        match CommitLog::open(&dir) {
            Err(CommitLogError::Corrupt { offset, .. }) => assert_eq!(offset, 0),
            other => panic!("expected Corrupt, got {other:?}"),
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn open_seeds_next_lsn_from_manifest_after_compaction() {
        // A clean shutdown snapshots + compacts the log empty; the next
        // incarnation must continue above the snapshot's LSN, not restart
        // at 1 (recovery skips lsn <= snapshot_lsn).
        let dir = tempdir("seed");
        Manifest {
            snapshot_lsn: 9,
            snapshot_dir: "snapshot-9".into(),
            last_applied_lsn: 9,
        }
        .store(&dir)
        .unwrap();
        let (mut log, report) = CommitLog::open(&dir).unwrap();
        assert!(report.records.is_empty());
        assert_eq!(log.next_lsn(), 10);
        let pos = log.append(&batch(1)).unwrap();
        assert_eq!(pos.lsn, 10);
        drop(log);
        // The manifest floor never moves the counter backwards when the
        // log itself is ahead.
        let (log, _) = CommitLog::open(&dir).unwrap();
        assert_eq!(log.next_lsn(), 11);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_applied_frame_is_corruption_not_torn_tail() {
        // Frame 2 was applied per the manifest, so a checksum failure on
        // it is bit rot of acknowledged data — a hard error, not a
        // silently truncated tail.
        let dir = tempdir("torn_applied");
        let full_len;
        {
            let (mut log, _) = CommitLog::open(&dir).unwrap();
            log.append(&batch(1)).unwrap();
            log.append(&batch(2)).unwrap();
            full_len = log.len_bytes();
        }
        Manifest {
            snapshot_lsn: 0,
            snapshot_dir: "snapshot-0".into(),
            last_applied_lsn: 2,
        }
        .store(&dir)
        .unwrap();
        let path = dir.join(LOG_FILE);
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(full_len - 5).unwrap();
        drop(f);

        match CommitLog::open(&dir) {
            Err(CommitLogError::Corrupt { detail, .. }) => {
                assert!(detail.contains("applied"), "{detail}")
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn compact_drops_covered_frames() {
        let dir = tempdir("compact");
        let (mut log, _) = CommitLog::open(&dir).unwrap();
        for i in 1..=6 {
            log.append(&batch(i)).unwrap();
        }
        let reclaimed = log.compact(4).unwrap();
        assert!(reclaimed > 0);
        // Appends continue with the next LSN after compaction.
        let pos = log.append(&batch(7)).unwrap();
        assert_eq!(pos.lsn, 7);
        drop(log);
        let (_, report) = CommitLog::open(&dir).unwrap();
        let lsns: Vec<u64> = report.records.iter().map(|r| r.lsn).collect();
        assert_eq!(lsns, vec![5, 6, 7]);
        // Compacting below the floor is a no-op.
        let (mut log, _) = CommitLog::open(&dir).unwrap();
        assert_eq!(log.compact(2).unwrap(), 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn manifest_roundtrip_and_errors() {
        let dir = tempdir("manifest");
        assert!(Manifest::load(&dir).unwrap().is_none());
        let m = Manifest {
            snapshot_lsn: 12,
            snapshot_dir: "snapshot-12".into(),
            last_applied_lsn: 15,
        };
        m.store(&dir).unwrap();
        assert_eq!(Manifest::load(&dir).unwrap(), Some(m));

        fs::write(dir.join(MANIFEST_FILE), "snapshot_lsn=nope\n").unwrap();
        match Manifest::load(&dir) {
            Err(CommitLogError::Corrupt { detail, .. }) => {
                assert!(detail.contains("manifest"), "{detail}")
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
        let _ = fs::remove_dir_all(&dir);
    }
}
