//! Computing view contents from base tables.

use cubedelta_query::{filter, hash_aggregate, hash_join, Relation};
use cubedelta_storage::{Catalog, Column, Schema};

use crate::def::SummaryViewDef;
use crate::error::{ViewError, ViewResult};
use crate::self_maintain::AugmentedView;
use crate::summary::agg_output_column;

/// The schema of the view's FROM clause: the fact table joined with each
/// dimension table (collisions prefixed by dimension name).
pub fn joined_schema(catalog: &Catalog, def: &SummaryViewDef) -> ViewResult<Schema> {
    let mut schema = catalog.table(&def.fact_table)?.schema().clone();
    for dim in &def.dim_joins {
        catalog
            .foreign_key(&def.fact_table, dim)
            .ok_or_else(|| {
                ViewError::Definition(format!(
                    "no foreign key from `{}` to dimension `{dim}`",
                    def.fact_table
                ))
            })?;
        schema = schema.join(catalog.table(dim)?.schema(), dim);
    }
    Ok(schema)
}

/// Evaluates the view's FROM/WHERE clauses: fact ⋈ dims, filtered.
///
/// Joins run along catalog foreign keys, so every fact tuple joins with
/// exactly one tuple per dimension (§3.3).
pub fn joined_base(catalog: &Catalog, def: &SummaryViewDef) -> ViewResult<Relation> {
    let mut rel = Relation::from_table(catalog.table(&def.fact_table)?);
    rel = join_dimensions(catalog, def, rel)?;
    Ok(filter(&rel, &def.where_clause)?)
}

/// Joins `rel` (whose schema starts from the fact table) with every
/// dimension table the view references. Exposed so the propagate function
/// can run the same joins over change sets instead of the fact table.
pub fn join_dimensions(
    catalog: &Catalog,
    def: &SummaryViewDef,
    mut rel: Relation,
) -> ViewResult<Relation> {
    for dim in &def.dim_joins {
        let fk = catalog.foreign_key(&def.fact_table, dim).ok_or_else(|| {
            ViewError::Definition(format!(
                "no foreign key from `{}` to dimension `{dim}`",
                def.fact_table
            ))
        })?;
        let dim_rel = Relation::from_table(catalog.table(dim)?);
        rel = hash_join(&rel, &dim_rel, &[&fk.fact_column], &[&fk.dim_key], dim)?;
    }
    Ok(rel)
}

/// Computes the full contents of an augmented view from the base tables —
/// the "recompute from scratch" path, and the §6 rematerialization baseline.
pub fn materialize(catalog: &Catalog, view: &AugmentedView) -> ViewResult<Relation> {
    let base = joined_base(catalog, &view.def)?;
    let group_refs: Vec<&str> = view.def.group_by.iter().map(String::as_str).collect();
    let aggs: Vec<(cubedelta_query::AggFunc, Column)> = view
        .def
        .aggregates
        .iter()
        .map(|spec| Ok((spec.func.clone(), agg_output_column(&base.schema, spec)?)))
        .collect::<ViewResult<_>>()?;
    Ok(hash_aggregate(&base, &group_refs, &aggs)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::self_maintain::augment;
    use crate::test_fixtures::retail_catalog_small;
    use cubedelta_expr::Expr;
    use cubedelta_query::AggFunc;
    use cubedelta_storage::{row, Value};

    #[test]
    fn joined_schema_prefixes_collisions() {
        let cat = retail_catalog_small();
        let def = SummaryViewDef::builder("v", "pos")
            .join_dimension("stores")
            .group_by(["city"])
            .aggregate(AggFunc::CountStar, "cnt")
            .build();
        let s = joined_schema(&cat, &def).unwrap();
        assert!(s.contains("storeID")); // fact occurrence
        assert!(s.contains("stores.storeID")); // prefixed dim occurrence
        assert!(s.contains("city"));
    }

    #[test]
    fn joined_schema_requires_foreign_key() {
        let cat = retail_catalog_small();
        let def = SummaryViewDef::builder("v", "pos")
            .join_dimension("nonexistent")
            .build();
        assert!(matches!(
            joined_schema(&cat, &def),
            Err(ViewError::Definition(_)) | Err(ViewError::Storage(_))
        ));
    }

    #[test]
    fn materialize_sid_sales() {
        let cat = retail_catalog_small();
        let def = SummaryViewDef::builder("SID_sales", "pos")
            .group_by(["storeID", "itemID", "date"])
            .aggregate(AggFunc::CountStar, "TotalCount")
            .aggregate(AggFunc::Sum(Expr::col("qty")), "TotalQuantity")
            .build();
        let aug = augment(&cat, &def).unwrap();
        let rel = materialize(&cat, &aug).unwrap();
        // Fixture: 4 pos rows, two sharing (1,10,d0).
        assert_eq!(rel.len(), 3);
        let d0 = Value::Date(cubedelta_storage::Date(10000));
        let dup = rel
            .rows
            .iter()
            .find(|r| r[0] == Value::Int(1) && r[1] == Value::Int(10) && r[2] == d0)
            .expect("group (1,10,d0) exists");
        assert_eq!(dup[3], Value::Int(2)); // TotalCount
        assert_eq!(dup[4], Value::Int(8)); // TotalQuantity 5+3
    }

    #[test]
    fn materialize_with_dimension_join() {
        let cat = retail_catalog_small();
        let def = SummaryViewDef::builder("sR_sales", "pos")
            .join_dimension("stores")
            .group_by(["region"])
            .aggregate(AggFunc::CountStar, "TotalCount")
            .aggregate(AggFunc::Sum(Expr::col("qty")), "TotalQuantity")
            .build();
        let aug = augment(&cat, &def).unwrap();
        let rel = materialize(&cat, &aug).unwrap();
        // Stores 1,2 are in east; store 3 west. All 4 pos rows hit stores 1,2.
        // Augmentation appends COUNT(qty) since qty is nullable.
        assert_eq!(rel.sorted_rows(), vec![row!["east", 4i64, 17i64, 4i64]]);
    }
}
