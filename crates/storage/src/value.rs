//! The SQL-ish value model.
//!
//! Values carry a *total* order and a hash so rows of values can be used
//! directly as group-by keys in hash aggregation (the core operation of the
//! summary-delta method). SQL three-valued logic is *not* baked into the
//! order — NULL sorts first — because aggregate functions themselves skip
//! NULLs explicitly (§3.1 of the paper), and group-by treats NULLs as equal,
//! exactly as SQL's `GROUP BY` does.

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use crate::datatype::DataType;

/// A calendar date stored as days since the civil epoch 1970-01-01.
///
/// Dates appear in the paper both as a *dimension* attribute and as a
/// *measure* (`MIN(date) AS EarliestSale` in `SiC_sales`), so the type
/// supports ordering, arithmetic by days, and civil-date conversion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Date(pub i32);

impl Date {
    /// Builds a date from a civil year/month/day triple.
    ///
    /// Uses the classic days-from-civil algorithm (valid for all i32 days
    /// around the epoch). Months are 1-12, days 1-31; the caller is trusted
    /// to pass a valid civil date.
    pub fn from_ymd(y: i32, m: u32, d: u32) -> Self {
        let y = if m <= 2 { y - 1 } else { y };
        let era = if y >= 0 { y } else { y - 399 } / 400;
        let yoe = (y - era * 400) as i64; // [0, 399]
        let mp = ((m + 9) % 12) as i64; // [0, 11], March = 0
        let doy = (153 * mp + 2) / 5 + (d as i64 - 1); // [0, 365]
        let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
        Date((era as i64 * 146097 + doe - 719468) as i32)
    }

    /// Returns the civil (year, month, day) triple for this date.
    pub fn to_ymd(self) -> (i32, u32, u32) {
        let z = self.0 as i64 + 719468;
        let era = if z >= 0 { z } else { z - 146096 } / 146097;
        let doe = z - era * 146097; // [0, 146096]
        let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365; // [0, 399]
        let y = yoe + era * 400;
        let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
        let mp = (5 * doy + 2) / 153; // [0, 11]
        let d = (doy - (153 * mp + 2) / 5 + 1) as u32; // [1, 31]
        let m = (if mp < 10 { mp + 3 } else { mp - 9 }) as u32; // [1, 12]
        ((if m <= 2 { y + 1 } else { y }) as i32, m, d)
    }

    /// Returns this date shifted by `days`.
    pub fn plus_days(self, days: i32) -> Self {
        Date(self.0 + days)
    }
}

impl fmt::Display for Date {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (y, m, d) = self.to_ymd();
        write!(f, "{y:04}-{m:02}-{d:02}")
    }
}

/// A single SQL-ish value.
///
/// `Float` values are given a total order via [`f64::total_cmp`] and hashed
/// by canonicalised bit pattern (`-0.0` folds to `0.0`, all NaNs fold to one
/// NaN), so `Value` satisfies `Eq + Ord + Hash` and rows of values can key a
/// hash table.
#[derive(Debug, Clone)]
pub enum Value {
    /// SQL NULL. Sorts before every non-NULL value; equal to itself for
    /// grouping purposes (matching SQL `GROUP BY` semantics).
    Null,
    /// 64-bit signed integer.
    Int(i64),
    /// 64-bit float with total ordering.
    Float(f64),
    /// Interned UTF-8 string (cheap to clone; group-by keys clone values).
    Str(Arc<str>),
    /// Calendar date.
    Date(Date),
}

#[allow(clippy::should_implement_trait)] // add/sub/mul/neg take &self and
// propagate NULL — deliberately not the std operator traits.
impl Value {
    /// Builds a string value from anything string-like.
    pub fn str(s: impl AsRef<str>) -> Self {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// The runtime [`DataType`] of this value, or `None` for NULL.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(DataType::Int),
            Value::Float(_) => Some(DataType::Float),
            Value::Str(_) => Some(DataType::Str),
            Value::Date(_) => Some(DataType::Date),
        }
    }

    /// True iff the value is NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Returns the integer payload, if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// Returns the float payload, coercing `Int` to `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// Returns the string payload, if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the date payload, if this is a `Date`.
    pub fn as_date(&self) -> Option<Date> {
        match self {
            Value::Date(d) => Some(*d),
            _ => None,
        }
    }

    /// Numeric addition with NULL propagation and Int/Float coercion.
    ///
    /// Used by the refresh function to fold `sd_` columns into summary
    /// columns (`t.a = t.a + td.a` for COUNT/SUM in Fig 7).
    pub fn add(&self, other: &Value) -> Value {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => Value::Null,
            (Value::Int(a), Value::Int(b)) => Value::Int(a + b),
            (a, b) => match (a.as_f64(), b.as_f64()) {
                (Some(x), Some(y)) => Value::Float(add_f64(x, y)),
                _ => Value::Null,
            },
        }
    }

    /// Numeric subtraction with NULL propagation and Int/Float coercion.
    pub fn sub(&self, other: &Value) -> Value {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => Value::Null,
            (Value::Int(a), Value::Int(b)) => Value::Int(a - b),
            (a, b) => match (a.as_f64(), b.as_f64()) {
                (Some(x), Some(y)) => Value::Float(x - y),
                _ => Value::Null,
            },
        }
    }

    /// Numeric multiplication with NULL propagation and Int/Float coercion.
    pub fn mul(&self, other: &Value) -> Value {
        match (self, other) {
            (Value::Null, _) | (_, Value::Null) => Value::Null,
            (Value::Int(a), Value::Int(b)) => Value::Int(a * b),
            (a, b) => match (a.as_f64(), b.as_f64()) {
                (Some(x), Some(y)) => Value::Float(x * y),
                _ => Value::Null,
            },
        }
    }

    /// Numeric negation with NULL propagation.
    ///
    /// This is the heart of Table 1: prepare-deletions negate the
    /// aggregate-source attributes (`-1 AS _count`, `-qty AS _quantity`).
    pub fn neg(&self) -> Value {
        match self {
            Value::Null => Value::Null,
            Value::Int(i) => Value::Int(-i),
            Value::Float(f) => Value::Float(-f),
            // Negating a non-numeric value has no meaning; deletions of
            // MIN/MAX sources keep the value as-is (Table 1), so callers
            // never negate strings or dates. Returning NULL keeps the
            // operation total.
            Value::Str(_) | Value::Date(_) => Value::Null,
        }
    }

    /// Minimum of two values, skipping NULLs (SQL MIN semantics).
    pub fn min_sql(&self, other: &Value) -> Value {
        match (self.is_null(), other.is_null()) {
            (true, true) => Value::Null,
            (true, false) => other.clone(),
            (false, true) => self.clone(),
            (false, false) => {
                if self <= other {
                    self.clone()
                } else {
                    other.clone()
                }
            }
        }
    }

    /// Maximum of two values, skipping NULLs (SQL MAX semantics).
    pub fn max_sql(&self, other: &Value) -> Value {
        match (self.is_null(), other.is_null()) {
            (true, true) => Value::Null,
            (true, false) => other.clone(),
            (false, true) => self.clone(),
            (false, false) => {
                if self >= other {
                    self.clone()
                } else {
                    other.clone()
                }
            }
        }
    }

    fn rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Int(_) => 1,
            Value::Float(_) => 1, // numerics compare cross-type
            Value::Str(_) => 2,
            Value::Date(_) => 3,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => cmp_f64(*a, *b),
            (Int(a), Float(b)) => cmp_f64(*a as f64, *b),
            (Float(a), Int(b)) => cmp_f64(*a, *b as f64),
            (Str(a), Str(b)) => a.cmp(b),
            (Date(a), Date(b)) => a.cmp(b),
            _ => self.rank().cmp(&other.rank()),
        }
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => state.write_u8(0),
            // Integers and integral floats must hash alike because they
            // compare equal (Int(2) == Float(2.0)).
            Value::Int(i) => {
                state.write_u8(1);
                canonical_f64_bits(*i as f64).hash(state);
            }
            Value::Float(f) => {
                state.write_u8(1);
                canonical_f64_bits(*f).hash(state);
            }
            Value::Str(s) => {
                state.write_u8(2);
                s.hash(state);
            }
            Value::Date(d) => {
                state.write_u8(3);
                d.hash(state);
            }
        }
    }
}

/// Canonical float for ordering and hashing: folds `-0.0` into `0.0` and all
/// NaN payloads into one canonical NaN, so equality, ordering, and hashing
/// agree (required for values used as hash-map group-by keys).
///
/// Public because the typed `Float64` column path must canonicalize with the
/// *same* function the row comparator uses — a private copy drifting out of
/// sync would let the columnar and row engines order `-0.0`/`0.0`/NaN
/// differently and break byte-identity.
pub fn canonical_f64(f: f64) -> f64 {
    if f == 0.0 {
        0.0
    } else if f.is_nan() {
        f64::NAN
    } else {
        f
    }
}

/// Canonical bit pattern for hashing floats. `Int` and integral `Float`
/// values hash through this too, so equal numerics hash alike.
pub fn canonical_f64_bits(f: f64) -> u64 {
    canonical_f64(f).to_bits()
}

/// The total order on raw `f64`s that [`Ord`] for [`Value`] uses: canonical
/// form first (so `-0.0 == 0.0` and all NaNs are equal), then
/// [`f64::total_cmp`]. Typed `Float64` accumulators (columnar MIN/MAX) must
/// compare through this single definition.
pub fn cmp_f64(a: f64, b: f64) -> Ordering {
    canonical_f64(a).total_cmp(&canonical_f64(b))
}

/// Float addition funneled through a single non-inlined instance.
///
/// When a NaN is involved, `a + b` may return either operand's payload —
/// LLVM does not pin the choice, so two separately optimized fold loops
/// (the row accumulator and the vectorized `Float64` SUM) can legitimately
/// disagree bit-for-bit. Every SUM-style float add in the engine calls this
/// one function, so both storage modes execute the same machine code and
/// produce the same bits.
#[inline(never)]
pub fn add_f64(a: f64, b: f64) -> f64 {
    a + b
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "{s}"),
            Value::Date(d) => write!(f, "{d}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::str(v)
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::str(v)
    }
}

impl From<Date> for Value {
    fn from(v: Date) -> Self {
        Value::Date(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of(v: &Value) -> u64 {
        let mut h = DefaultHasher::new();
        v.hash(&mut h);
        h.finish()
    }

    #[test]
    fn date_roundtrips_epoch() {
        assert_eq!(Date::from_ymd(1970, 1, 1).0, 0);
        assert_eq!(Date(0).to_ymd(), (1970, 1, 1));
    }

    #[test]
    fn date_roundtrips_many() {
        for days in (-200_000..200_000).step_by(37) {
            let d = Date(days);
            let (y, m, dd) = d.to_ymd();
            assert_eq!(Date::from_ymd(y, m, dd), d, "roundtrip failed for {days}");
        }
    }

    #[test]
    fn date_known_values() {
        assert_eq!(Date::from_ymd(1997, 5, 13).to_string(), "1997-05-13");
        assert_eq!(Date::from_ymd(2000, 2, 29).to_ymd(), (2000, 2, 29));
        assert_eq!(Date::from_ymd(1996, 12, 31).plus_days(1).to_ymd(), (1997, 1, 1));
    }

    #[test]
    fn date_ordering_matches_calendar() {
        assert!(Date::from_ymd(1997, 1, 1) < Date::from_ymd(1997, 1, 2));
        assert!(Date::from_ymd(1996, 12, 31) < Date::from_ymd(1997, 1, 1));
    }

    #[test]
    fn null_sorts_first() {
        assert!(Value::Null < Value::Int(i64::MIN));
        assert!(Value::Null < Value::str(""));
        assert!(Value::Null < Value::Date(Date(i32::MIN)));
    }

    #[test]
    fn cross_numeric_comparison() {
        assert_eq!(Value::Int(2), Value::Float(2.0));
        assert!(Value::Int(2) < Value::Float(2.5));
        assert!(Value::Float(1.5) < Value::Int(2));
    }

    #[test]
    fn equal_numerics_hash_alike() {
        assert_eq!(hash_of(&Value::Int(42)), hash_of(&Value::Float(42.0)));
    }

    #[test]
    fn negative_zero_hashes_like_zero() {
        assert_eq!(Value::Float(0.0), Value::Float(-0.0));
        assert_eq!(hash_of(&Value::Float(0.0)), hash_of(&Value::Float(-0.0)));
    }

    #[test]
    fn arithmetic_null_propagation() {
        assert!(Value::Null.add(&Value::Int(1)).is_null());
        assert!(Value::Int(1).add(&Value::Null).is_null());
        assert!(Value::Null.neg().is_null());
    }

    #[test]
    fn arithmetic_coercion() {
        assert_eq!(Value::Int(2).add(&Value::Int(3)), Value::Int(5));
        assert_eq!(Value::Int(2).add(&Value::Float(0.5)), Value::Float(2.5));
        assert_eq!(Value::Float(2.0).mul(&Value::Int(3)), Value::Float(6.0));
        assert_eq!(Value::Int(7).sub(&Value::Int(9)), Value::Int(-2));
        assert_eq!(Value::Int(7).neg(), Value::Int(-7));
    }

    #[test]
    fn min_max_skip_nulls() {
        assert_eq!(Value::Null.min_sql(&Value::Int(3)), Value::Int(3));
        assert_eq!(Value::Int(3).min_sql(&Value::Null), Value::Int(3));
        assert_eq!(Value::Int(3).min_sql(&Value::Int(5)), Value::Int(3));
        assert_eq!(Value::Int(3).max_sql(&Value::Int(5)), Value::Int(5));
        assert!(Value::Null.max_sql(&Value::Null).is_null());
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Int(7).to_string(), "7");
        assert_eq!(Value::str("abc").to_string(), "abc");
        assert_eq!(Value::Date(Date::from_ymd(1997, 5, 13)).to_string(), "1997-05-13");
    }

    #[test]
    fn cmp_f64_agrees_with_row_comparator_on_hostile_floats() {
        // Regression for the columnar kernel: the typed Float64 path orders
        // raw f64s through `cmp_f64`, the row path through `Value::cmp`.
        // They must agree bit-for-bit on every pair, including -0.0/0.0,
        // NaN payloads, infinities, and subnormals.
        let hostile = [
            0.0,
            -0.0,
            f64::NAN,
            -f64::NAN,
            f64::from_bits(0x7ff8_0000_0000_0001), // NaN with payload
            f64::from_bits(0xfff8_dead_beef_0001), // negative NaN w/ payload
            f64::INFINITY,
            f64::NEG_INFINITY,
            f64::MIN_POSITIVE,
            -f64::MIN_POSITIVE,
            f64::from_bits(1), // smallest subnormal
            1.0,
            -1.0,
            f64::MAX,
            f64::MIN,
        ];
        for &a in &hostile {
            for &b in &hostile {
                assert_eq!(
                    cmp_f64(a, b),
                    Value::Float(a).cmp(&Value::Float(b)),
                    "cmp_f64 vs Value::cmp diverged for {a:?} vs {b:?}"
                );
            }
        }
        // The canonicalization rule itself.
        assert_eq!(cmp_f64(-0.0, 0.0), Ordering::Equal);
        assert_eq!(cmp_f64(f64::NAN, -f64::NAN), Ordering::Equal);
        assert_eq!(cmp_f64(f64::NAN, f64::INFINITY), Ordering::Greater);
        assert_eq!(canonical_f64(-0.0).to_bits(), 0.0f64.to_bits());
        assert_eq!(canonical_f64_bits(-0.0), canonical_f64_bits(0.0));
        assert_eq!(
            canonical_f64_bits(f64::from_bits(0x7ff8_0000_0000_0001)),
            canonical_f64_bits(f64::NAN)
        );
    }

    #[test]
    fn min_max_keep_first_on_canonical_tie() {
        // -0.0 and 0.0 compare equal, so min/max keep the *accumulator*
        // (first-seen) bit pattern. The typed Float64 kernel must replicate
        // this replace-only-on-strict-inequality rule or the engines
        // diverge at the bit level.
        let neg = Value::Float(-0.0);
        let pos = Value::Float(0.0);
        for (first, second) in [(&neg, &pos), (&pos, &neg)] {
            let first_bits = match first {
                Value::Float(f) => f.to_bits(),
                _ => unreachable!(),
            };
            for combined in [first.min_sql(second), first.max_sql(second)] {
                match combined {
                    Value::Float(f) => assert_eq!(
                        f.to_bits(),
                        first_bits,
                        "tie must keep the first-seen bit pattern"
                    ),
                    v => panic!("expected a float, got {v:?}"),
                }
            }
        }
        // Same for NaN payload ties: all NaNs are canonically equal.
        let nan_a = f64::from_bits(0x7ff8_0000_0000_0001);
        let a = Value::Float(nan_a);
        let b = Value::Float(f64::NAN);
        match a.min_sql(&b) {
            Value::Float(f) => assert_eq!(f.to_bits(), nan_a.to_bits()),
            v => panic!("expected a float, got {v:?}"),
        }
    }

    #[test]
    fn data_type_reporting() {
        assert_eq!(Value::Null.data_type(), None);
        assert_eq!(Value::Int(1).data_type(), Some(DataType::Int));
        assert_eq!(Value::Float(1.0).data_type(), Some(DataType::Float));
        assert_eq!(Value::str("x").data_type(), Some(DataType::Str));
        assert_eq!(Value::Date(Date(0)).data_type(), Some(DataType::Date));
    }
}
