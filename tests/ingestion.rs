//! Integration tests for the async ingestion front-end
//! ([`cubedelta::core::WarehouseService`]): concurrent producers racing
//! the background maintenance worker, shutdown/drain semantics, and the
//! panic firewall around refresh (injected via `multi::failpoints`).

mod common;

use std::sync::Mutex;
use std::time::Duration;

use common::{figure1_defs, small_warehouse, synth_pos_row};
use cubedelta::core::multi::failpoints;
use cubedelta::core::{
    BatchPolicy, CoreError, JournalEvent, MaintainOptions, MaintenancePolicy, SloPolicy,
    Warehouse, WarehouseService,
};
use cubedelta::expr::Expr;
use cubedelta::query::AggFunc;
use cubedelta::storage::{ChangeBatch, DeltaSet};
use cubedelta::view::SummaryViewDef;
use cubedelta::workload::retail_catalog_small;

/// The failpoint slot is process-global and one-shot; tests that arm it
/// serialize through this lock so they cannot steal each other's shot.
static FAILPOINT_LOCK: Mutex<()> = Mutex::new(());

/// Asserts two warehouses hold byte-identical tables for `pos` and every
/// Figure-1 view.
fn assert_tables_identical(a: &Warehouse, b: &Warehouse, context: &str) {
    let mut names: Vec<String> = figure1_defs().into_iter().map(|d| d.name).collect();
    names.push("pos".to_string());
    for name in names {
        assert_eq!(
            a.catalog().table(&name).unwrap().to_rows(),
            b.catalog().table(&name).unwrap().to_rows(),
            "table `{name}` differs ({context})"
        );
    }
}

/// The acceptance bar: N producers race `ingest` against background
/// maintenance cycles; the final tables must be byte-identical to a
/// single-threaded replay of the applied batches on a copy of the initial
/// warehouse.
#[test]
fn four_producers_match_single_threaded_replay() {
    let mut wh = small_warehouse();
    wh.set_maintenance_policy(MaintenancePolicy::with_threads(4));
    let baseline = wh.clone();

    const PRODUCERS: u64 = 4;
    const DELTAS_PER_PRODUCER: u64 = 60;
    let svc = WarehouseService::start(
        wh,
        BatchPolicy {
            max_rows: 8, // small: forces many seals and real backpressure
            max_batches: 2,
            flush_interval: Duration::from_millis(2),
        },
    );
    std::thread::scope(|scope| {
        for p in 0..PRODUCERS {
            let svc = &svc;
            scope.spawn(move || {
                for i in 0..DELTAS_PER_PRODUCER {
                    let seed = p * 10_000 + i;
                    svc.ingest(DeltaSet::insertions("pos", vec![synth_pos_row(seed)]))
                        .unwrap();
                }
            });
        }
    });
    svc.flush().unwrap();
    let report = svc.shutdown();

    assert!(report.error.is_none(), "cycle failed: {:?}", report.error);
    assert!(report.unapplied.is_empty());
    assert_eq!(report.rows_ingested, PRODUCERS * DELTAS_PER_PRODUCER);
    assert_eq!(report.rows_applied, report.rows_ingested);
    report.warehouse.check_consistency().unwrap();

    // Single-threaded replay: same batches, same order, one thread.
    let mut replay = baseline;
    replay.set_maintenance_policy(MaintenancePolicy::with_threads(1));
    for batch in &report.applied {
        replay.maintain(batch, &MaintainOptions::default()).unwrap();
    }
    assert_tables_identical(&replay, &report.warehouse, "replay vs service");
}

/// Shutdown without an explicit flush still drains everything staged and
/// sealed — no accepted delta is lost on a clean exit.
#[test]
fn shutdown_drains_staged_and_sealed_batches() {
    let svc = WarehouseService::start(
        small_warehouse(),
        BatchPolicy {
            max_rows: 1_000_000,
            max_batches: 4,
            // Far beyond the test's lifetime: only shutdown can seal.
            flush_interval: Duration::from_secs(3600),
        },
    );
    for seed in 0..25 {
        svc.ingest(DeltaSet::insertions("pos", vec![synth_pos_row(seed)]))
            .unwrap();
    }
    let report = svc.shutdown();
    assert!(report.error.is_none());
    assert!(report.unapplied.is_empty(), "shutdown dropped staged rows");
    assert_eq!(report.rows_ingested, 25);
    assert_eq!(report.rows_applied, 25);
    report.warehouse.check_consistency().unwrap();
}

/// A warehouse with a single, uniquely named summary view, so an armed
/// failpoint cannot fire in an unrelated test's refresh.
fn probe_warehouse(view: &str) -> Warehouse {
    let mut wh = Warehouse::from_catalog(retail_catalog_small());
    wh.create_summary_table(
        &SummaryViewDef::builder(view, "pos")
            .group_by(["storeID", "itemID"])
            .aggregate(AggFunc::CountStar, "TotalCount")
            .aggregate(AggFunc::Sum(Expr::col("qty")), "TotalQuantity")
            .build(),
    )
    .unwrap();
    wh
}

/// Regression for the poisoned-lock hole in `restore_level_tables`: a
/// panic inside a refresh step must come back as a `CoreError`, leave
/// every summary table byte-identical to its pre-refresh state (the level
/// snapshot restored through the poisoned mutex), and leave the warehouse
/// usable — not a lost table or a propagated panic.
#[test]
fn injected_refresh_panic_restores_tables_and_surfaces_error() {
    let _guard = FAILPOINT_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    const VIEW: &str = "panic_probe_direct";
    let mut wh = probe_warehouse(VIEW);
    wh.set_maintenance_policy(MaintenancePolicy::with_threads(2));
    let summary_before = wh.catalog().table(VIEW).unwrap().to_rows();

    failpoints::arm_refresh_panic(VIEW);
    let batch = ChangeBatch::single(DeltaSet::insertions("pos", vec![synth_pos_row(7)]));
    let err = wh
        .maintain(&batch, &MaintainOptions::default())
        .expect_err("armed failpoint must fail the cycle");
    failpoints::disarm();
    assert!(
        err.to_string().contains("panicked"),
        "expected a panic-derived error, got: {err}"
    );

    // The summary table survived the poisoned lock: restored, not lost.
    assert_eq!(wh.catalog().table(VIEW).unwrap().to_rows(), summary_before);

    // The warehouse is still operable: base changes landed before the
    // refresh window, so rematerializing repairs the stale summary.
    wh.rematerialize(&ChangeBatch::default(), false).unwrap();
    wh.check_consistency().unwrap();
    wh.maintain(
        &ChangeBatch::single(DeltaSet::insertions("pos", vec![synth_pos_row(8)])),
        &MaintainOptions::default(),
    )
    .unwrap();
    wh.check_consistency().unwrap();
}

/// The same injected panic through the service: the worker's firewall
/// catches it, the batch is parked (not dropped), the error is sticky,
/// and shutdown still hands back a live warehouse.
#[test]
fn service_survives_injected_refresh_panic() {
    let _guard = FAILPOINT_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    const VIEW: &str = "panic_probe_service";
    let svc = WarehouseService::start(
        probe_warehouse(VIEW),
        BatchPolicy {
            max_rows: 4,
            max_batches: 2,
            flush_interval: Duration::from_millis(2),
        },
    );
    failpoints::arm_refresh_panic(VIEW);
    svc.ingest(DeltaSet::insertions("pos", vec![synth_pos_row(3)]))
        .unwrap();
    let err = svc.flush().expect_err("panicking cycle must surface");
    failpoints::disarm();
    assert!(
        err.to_string().contains("panicked"),
        "expected a panic-derived error, got: {err}"
    );
    // Sticky: the service refuses further work rather than applying batch
    // N+1 on top of a missing batch N.
    assert!(matches!(
        svc.ingest(DeltaSet::insertions("pos", vec![synth_pos_row(4)])),
        Err(CoreError::Ingest(_))
    ));

    let report = svc.shutdown();
    assert!(report.error.is_some());
    assert_eq!(report.rows_applied, 0);
    assert_eq!(report.unapplied.len(), 1, "failing batch must be parked");

    // The returned warehouse lost nothing and can be repaired in place.
    let mut wh = report.warehouse;
    assert!(wh.catalog().table(VIEW).is_ok());
    wh.rematerialize(&ChangeBatch::default(), false).unwrap();
    wh.check_consistency().unwrap();
}

/// Blocking `ingest` under sustained backpressure makes progress and the
/// `backpressure_waits` counter records the stalls.
#[test]
fn blocking_ingest_progresses_under_backpressure() {
    let svc = WarehouseService::start(
        small_warehouse(),
        BatchPolicy {
            max_rows: 2,
            max_batches: 1,
            flush_interval: Duration::from_millis(1),
        },
    );
    std::thread::scope(|scope| {
        for p in 0..3u64 {
            let svc = &svc;
            scope.spawn(move || {
                for i in 0..20 {
                    svc.ingest(DeltaSet::insertions(
                        "pos",
                        vec![synth_pos_row(p * 100 + i)],
                    ))
                    .unwrap();
                }
            });
        }
    });
    svc.flush().unwrap();
    let report = svc.shutdown();
    assert!(report.error.is_none());
    assert_eq!(report.rows_applied, 60);
    assert!(report.unapplied.is_empty());
    report.warehouse.check_consistency().unwrap();
}

/// The gauge-lifecycle audit under the panic firewall: when a cycle
/// panics and its batch parks in `unapplied`, `queue_depth` must return
/// to 0 (the rows are no longer pending), `unapplied_rows` must pick
/// them up, and `healthy` must drop — at the failure, not only at
/// shutdown. The flight recorder must carry the `CycleFailed` event.
#[test]
fn gauges_stay_accurate_when_a_cycle_panics() {
    let _guard = FAILPOINT_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    const VIEW: &str = "panic_probe_gauges";
    let svc = WarehouseService::start(
        probe_warehouse(VIEW),
        BatchPolicy {
            max_rows: 4,
            max_batches: 2,
            flush_interval: Duration::from_millis(2),
        },
    );
    failpoints::arm_refresh_panic(VIEW);
    svc.ingest(DeltaSet::insertions("pos", vec![synth_pos_row(11)]))
        .unwrap();
    svc.flush().expect_err("panicking cycle must surface");
    failpoints::disarm();

    let reg = svc.metrics().clone();
    assert_eq!(reg.gauge("queue_depth").get(), 0, "parked rows are not pending");
    assert_eq!(reg.gauge("unapplied_rows").get(), 1, "parked rows are unapplied");
    assert_eq!(reg.gauge("healthy").get(), 0, "sticky failure must show");
    let health = svc.health();
    assert!(!health.is_healthy());
    assert!(
        health.reasons().iter().any(|r| r.contains("maintenance failed")),
        "missing failure reason in {:?}",
        health.reasons()
    );

    let report = svc.shutdown();
    assert_eq!(report.unapplied.len(), 1);
    assert_eq!(reg.gauge("queue_depth").get(), 0, "queue gone at shutdown");
    assert_eq!(
        reg.gauge("unapplied_rows").get(),
        report.unapplied.len() as i64,
        "final unapplied gauge matches the report"
    );
    assert!(
        report
            .warehouse
            .journal()
            .events()
            .iter()
            .any(|e| matches!(e, JournalEvent::CycleFailed { .. })),
        "flight recorder missing the failed cycle"
    );
}

/// Health judges lag and backlog against the caller's `SloPolicy`: a row
/// stuck in the staging area degrades a strict policy (staleness +
/// backlog + queue pressure, each with its own reason) while the default
/// policy stays content.
#[test]
fn health_judges_lag_and_backlog_against_policy() {
    let svc = WarehouseService::start(
        small_warehouse(),
        BatchPolicy {
            max_rows: 1_000_000,
            max_batches: 2,
            flush_interval: Duration::from_secs(3600),
        },
    );
    svc.ingest(DeltaSet::insertions("pos", vec![synth_pos_row(5)]))
        .unwrap();
    // One row staged, nothing sealed: only the hour-long flush interval
    // will ever seal it, so the lag is deterministic from here.
    let strict = SloPolicy {
        max_staleness: Duration::ZERO,
        max_queue_frac: 1.0,
        max_cycles_behind: 0,
    };
    let verdict = svc.health_with(&strict);
    assert!(!verdict.is_healthy());
    assert!(
        verdict.reasons().iter().any(|r| r.contains("oldest unapplied")),
        "missing staleness reason in {:?}",
        verdict.reasons()
    );
    assert!(
        verdict.reasons().iter().any(|r| r.contains("behind")),
        "missing backlog reason in {:?}",
        verdict.reasons()
    );
    assert_eq!(svc.metrics().gauge("healthy").get(), 0);

    let pressure = SloPolicy {
        max_queue_frac: 0.0,
        ..SloPolicy::default()
    };
    let verdict = svc.health_with(&pressure);
    assert!(
        verdict.reasons().iter().any(|r| r.contains("pending rows")),
        "missing queue-pressure reason in {:?}",
        verdict.reasons()
    );

    // The default policy tolerates one fresh staged row.
    assert!(svc.health().is_healthy());
    assert_eq!(svc.metrics().gauge("healthy").get(), 1);
    assert!(svc.metrics().gauge("cycles_behind").get() >= 1);
    assert!(svc.metrics().gauge("oldest_unapplied_batch_age_us").get() >= 0);

    // Shutdown still drains the staged row cleanly.
    let report = svc.shutdown();
    assert!(report.error.is_none());
    assert_eq!(report.rows_applied, 1);
    assert!(report.unapplied.is_empty());
}

/// The busy-wake regression: with a sub-millisecond flush interval and a
/// slow trickle, the worker must sleep the real remainder of the interval
/// (or seal immediately when it has already elapsed) — not clamp its wait
/// and spin. `worker_wakeups` counts every return from a condvar wait, so
/// over ~100 ms of trickle a spinning worker racks up hundreds of wakeups
/// while a correct one stays within a couple per ingest/seal.
#[test]
fn trickle_with_tiny_interval_stays_off_the_busy_wake_path() {
    let svc = WarehouseService::start(
        small_warehouse(),
        BatchPolicy {
            max_rows: 1_000_000, // only the timer can seal
            max_batches: 8,
            flush_interval: Duration::from_micros(500),
        },
    );

    let rows = 6u64;
    for seed in 0..rows {
        svc.ingest(DeltaSet::insertions("pos", vec![synth_pos_row(seed)]))
            .unwrap();
        // Each staged row outlives the interval many times over before the
        // next arrives — the worst case for a clamped timer wait.
        std::thread::sleep(Duration::from_millis(15));
    }
    svc.flush().unwrap();
    let wakeups = svc.metrics().counter("worker_wakeups").get();
    let report = svc.shutdown();
    assert!(report.error.is_none(), "cycle failed: {:?}", report.error);
    assert_eq!(report.rows_applied, rows);
    let batches = report.applied.len() as u64;
    assert!(
        batches >= 2,
        "trickle must seal across multiple cycles, got {batches}"
    );

    // ~90 ms of wall clock at a 500 µs interval gives a spinning worker
    // ≥180 wakeups; a correct worker takes a handful per ingest + seal.
    let bound = 4 * rows + 4 * batches + 10;
    assert!(
        wakeups <= bound,
        "worker woke {wakeups} times for {batches} sealed batches \
         (bound {bound}) — flush timer is busy-waking"
    );
}
