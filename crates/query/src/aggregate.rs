//! Aggregate functions and their accumulators.
//!
//! Implements the paper's §3.1 taxonomy:
//!
//! * **Distributive** — COUNT, SUM, MIN, MAX: computable by partitioning the
//!   input, aggregating each part, then aggregating the partial results.
//!   This property is what makes summary-delta propagation possible at all.
//! * **Algebraic** — AVG: a scalar function of distributive aggregates
//!   (SUM/COUNT). Materialized views store SUM and COUNT instead.
//! * **Holistic** — MEDIAN etc.: not expressible by parts; out of scope for
//!   the paper and for this library (constructing one is rejected upstream
//!   by the view layer).
//!
//! SQL semantics throughout: aggregates skip NULL inputs; SUM/MIN/MAX over
//! an empty or all-NULL input are NULL; COUNT is 0.

use std::fmt;

use cubedelta_expr::Expr;
use cubedelta_obs::ExecutionMetrics;
use cubedelta_storage::Value;

/// The paper's three-way classification of aggregate functions (§3.1,
/// after Gray et al. \[GBLP96]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggClass {
    /// Computable by partitioning and re-aggregating parts.
    Distributive,
    /// A scalar function of distributive aggregates (e.g. AVG = SUM/COUNT).
    Algebraic,
    /// Requires the whole input at once (e.g. MEDIAN); unsupported.
    Holistic,
}

/// An aggregate function applied to an expression.
#[derive(Debug, Clone, PartialEq)]
pub enum AggFunc {
    /// `COUNT(*)` — counts tuples, NULLs and all.
    CountStar,
    /// `COUNT(e)` — counts non-NULL values of `e`.
    Count(Expr),
    /// `SUM(e)` — NULL over empty/all-NULL input.
    Sum(Expr),
    /// `MIN(e)`.
    Min(Expr),
    /// `MAX(e)`.
    Max(Expr),
    /// `AVG(e)` — algebraic; the view layer rewrites it to SUM/COUNT before
    /// materialization, but direct evaluation is supported for queries.
    Avg(Expr),
}

impl AggFunc {
    /// The §3.1 classification of this function.
    pub fn class(&self) -> AggClass {
        match self {
            AggFunc::CountStar
            | AggFunc::Count(_)
            | AggFunc::Sum(_)
            | AggFunc::Min(_)
            | AggFunc::Max(_) => AggClass::Distributive,
            AggFunc::Avg(_) => AggClass::Algebraic,
        }
    }

    /// The argument expression, if any (`COUNT(*)` has none).
    pub fn input(&self) -> Option<&Expr> {
        match self {
            AggFunc::CountStar => None,
            AggFunc::Count(e)
            | AggFunc::Sum(e)
            | AggFunc::Min(e)
            | AggFunc::Max(e)
            | AggFunc::Avg(e) => Some(e),
        }
    }

    /// True for MIN/MAX — the functions that are *not* self-maintainable
    /// with respect to deletions (§3.1) and may force the refresh function
    /// to recompute from base data.
    pub fn is_min_or_max(&self) -> bool {
        matches!(self, AggFunc::Min(_) | AggFunc::Max(_))
    }

    /// A fresh accumulator for this function.
    pub fn new_state(&self) -> AggState {
        match self {
            AggFunc::CountStar | AggFunc::Count(_) => AggState::Count(0),
            AggFunc::Sum(_) => AggState::Sum(Value::Null),
            AggFunc::Min(_) => AggState::Min(Value::Null),
            AggFunc::Max(_) => AggState::Max(Value::Null),
            AggFunc::Avg(_) => AggState::Avg {
                sum: Value::Null,
                count: 0,
            },
        }
    }

    /// Rewrites the argument's column references via `f`.
    pub fn rename_columns(&self, f: &dyn Fn(&str) -> String) -> AggFunc {
        match self {
            AggFunc::CountStar => AggFunc::CountStar,
            AggFunc::Count(e) => AggFunc::Count(e.rename_columns(f)),
            AggFunc::Sum(e) => AggFunc::Sum(e.rename_columns(f)),
            AggFunc::Min(e) => AggFunc::Min(e.rename_columns(f)),
            AggFunc::Max(e) => AggFunc::Max(e.rename_columns(f)),
            AggFunc::Avg(e) => AggFunc::Avg(e.rename_columns(f)),
        }
    }
}

impl fmt::Display for AggFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AggFunc::CountStar => write!(f, "COUNT(*)"),
            AggFunc::Count(e) => write!(f, "COUNT({e})"),
            AggFunc::Sum(e) => write!(f, "SUM({e})"),
            AggFunc::Min(e) => write!(f, "MIN({e})"),
            AggFunc::Max(e) => write!(f, "MAX({e})"),
            AggFunc::Avg(e) => write!(f, "AVG({e})"),
        }
    }
}

/// A running accumulator for one aggregate function in one group.
#[derive(Debug, Clone, PartialEq)]
pub enum AggState {
    /// Running tuple / non-NULL count.
    Count(i64),
    /// Running sum (NULL until the first non-NULL input).
    Sum(Value),
    /// Running minimum (NULL until the first non-NULL input).
    Min(Value),
    /// Running maximum (NULL until the first non-NULL input).
    Max(Value),
    /// Running AVG parts.
    Avg {
        /// Sum of non-NULL inputs.
        sum: Value,
        /// Count of non-NULL inputs.
        count: i64,
    },
}

impl AggState {
    /// Folds one input value into the accumulator.
    ///
    /// For `Count`, the caller passes the already-computed 0/1 (or the
    /// tuple marker for COUNT(*)); see [`AggFunc::new_state`] pairing.
    pub fn update(&mut self, func: &AggFunc, value: &Value) {
        match (self, func) {
            (AggState::Count(c), AggFunc::CountStar) => *c += 1,
            (AggState::Count(c), AggFunc::Count(_)) => {
                if !value.is_null() {
                    *c += 1;
                }
            }
            (AggState::Sum(acc), AggFunc::Sum(_)) => {
                if !value.is_null() {
                    *acc = if acc.is_null() {
                        value.clone()
                    } else {
                        acc.add(value)
                    };
                }
            }
            (AggState::Min(acc), AggFunc::Min(_)) => *acc = acc.min_sql(value),
            (AggState::Max(acc), AggFunc::Max(_)) => *acc = acc.max_sql(value),
            (AggState::Avg { sum, count }, AggFunc::Avg(_)) => {
                if !value.is_null() {
                    *sum = if sum.is_null() {
                        value.clone()
                    } else {
                        sum.add(value)
                    };
                    *count += 1;
                }
            }
            (state, func) => {
                unreachable!("accumulator {state:?} paired with wrong function {func}")
            }
        }
    }

    /// [`AggState::update`], booking one key comparison into `m` when a
    /// MIN/MAX accumulator actually orders two non-NULL values. MIN/MAX
    /// comparison volume is the cost driver that makes those functions
    /// non-self-maintainable under deletions (§4.2), so it is surfaced
    /// as an operator counter.
    pub fn update_metered(&mut self, func: &AggFunc, value: &Value, m: &mut ExecutionMetrics) {
        if let (AggState::Min(acc) | AggState::Max(acc), AggFunc::Min(_) | AggFunc::Max(_)) =
            (&*self, func)
        {
            if !acc.is_null() && !value.is_null() {
                m.comparisons += 1;
            }
        }
        self.update(func, value);
    }

    /// Finalizes the accumulator into the aggregate's output value.
    pub fn finalize(&self) -> Value {
        match self {
            AggState::Count(c) => Value::Int(*c),
            AggState::Sum(v) | AggState::Min(v) | AggState::Max(v) => v.clone(),
            AggState::Avg { sum, count } => {
                if *count == 0 || sum.is_null() {
                    Value::Null
                } else {
                    match sum.as_f64() {
                        Some(s) => Value::Float(s / *count as f64),
                        None => Value::Null,
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cubedelta_expr::Expr;

    fn run(func: &AggFunc, inputs: &[Value]) -> Value {
        let mut st = func.new_state();
        for v in inputs {
            st.update(func, v);
        }
        st.finalize()
    }

    #[test]
    fn metered_update_counts_minmax_comparisons() {
        let f = AggFunc::Min(Expr::col("q"));
        let mut st = f.new_state();
        let mut m = ExecutionMetrics::new();
        // First non-NULL value seeds the accumulator without comparing;
        // NULL inputs never compare; each later non-NULL input compares once.
        for v in [Value::Int(3), Value::Null, Value::Int(1), Value::Int(2)] {
            st.update_metered(&f, &v, &mut m);
        }
        assert_eq!(m.comparisons, 2);
        assert_eq!(st.finalize(), Value::Int(1));

        // Non-ordering aggregates book nothing.
        let f = AggFunc::Sum(Expr::col("q"));
        let mut st = f.new_state();
        let mut m = ExecutionMetrics::new();
        st.update_metered(&f, &Value::Int(4), &mut m);
        st.update_metered(&f, &Value::Int(5), &mut m);
        assert!(m.is_zero());
    }

    #[test]
    fn classification_matches_paper() {
        assert_eq!(AggFunc::CountStar.class(), AggClass::Distributive);
        assert_eq!(AggFunc::Sum(Expr::col("q")).class(), AggClass::Distributive);
        assert_eq!(AggFunc::Min(Expr::col("q")).class(), AggClass::Distributive);
        assert_eq!(AggFunc::Avg(Expr::col("q")).class(), AggClass::Algebraic);
    }

    #[test]
    fn count_star_counts_nulls() {
        let f = AggFunc::CountStar;
        assert_eq!(
            run(&f, &[Value::Int(1), Value::Null, Value::Int(2)]),
            Value::Int(3)
        );
        assert_eq!(run(&f, &[]), Value::Int(0));
    }

    #[test]
    fn count_expr_skips_nulls() {
        let f = AggFunc::Count(Expr::col("q"));
        assert_eq!(
            run(&f, &[Value::Int(1), Value::Null, Value::Int(2)]),
            Value::Int(2)
        );
    }

    #[test]
    fn sum_skips_nulls_and_is_null_when_empty() {
        let f = AggFunc::Sum(Expr::col("q"));
        assert_eq!(
            run(&f, &[Value::Int(1), Value::Null, Value::Int(2)]),
            Value::Int(3)
        );
        assert!(run(&f, &[]).is_null());
        assert!(run(&f, &[Value::Null, Value::Null]).is_null());
    }

    #[test]
    fn sum_handles_negative_deltas() {
        // Summary-delta sums over prepare-changes include negated deletion
        // sources; a net-zero group must finalize to 0, not NULL.
        let f = AggFunc::Sum(Expr::col("q"));
        assert_eq!(run(&f, &[Value::Int(5), Value::Int(-5)]), Value::Int(0));
    }

    #[test]
    fn min_max_semantics() {
        let min = AggFunc::Min(Expr::col("q"));
        let max = AggFunc::Max(Expr::col("q"));
        let vals = [Value::Int(3), Value::Null, Value::Int(1), Value::Int(2)];
        assert_eq!(run(&min, &vals), Value::Int(1));
        assert_eq!(run(&max, &vals), Value::Int(3));
        assert!(run(&min, &[Value::Null]).is_null());
        assert!(min.is_min_or_max());
        assert!(!AggFunc::CountStar.is_min_or_max());
    }

    #[test]
    fn avg_is_sum_over_count() {
        let f = AggFunc::Avg(Expr::col("q"));
        assert_eq!(
            run(&f, &[Value::Int(1), Value::Int(2), Value::Null]),
            Value::Float(1.5)
        );
        assert!(run(&f, &[]).is_null());
    }

    #[test]
    fn display() {
        assert_eq!(AggFunc::CountStar.to_string(), "COUNT(*)");
        assert_eq!(AggFunc::Sum(Expr::col("qty")).to_string(), "SUM(qty)");
    }
}
