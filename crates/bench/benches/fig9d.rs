//! Figure 9(d): elapsed time vs `pos` size, insertion-generating changes of
//! a fixed size (10k).
//!
//! The shape under test: as in 9(b), propagate time is flat in the `pos`
//! size; with insertion-generating changes the refresh is also flat (pure
//! index-backed inserts/updates), so the summary-delta total barely moves
//! while rematerialization climbs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use cubedelta_bench::{build_warehouse, insertion_batch, run_strategy, Strategy};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9d_pos_size_insertions");
    group
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(3));

    for &pos_rows in &[50_000usize, 100_000, 200_000] {
        let (wh, params) = build_warehouse(pos_rows);
        let batch = insertion_batch(&params, 10_000, pos_rows as u64);
        for strategy in [Strategy::SummaryDelta, Strategy::Rematerialize] {
            group.bench_with_input(
                BenchmarkId::new(strategy.label(), pos_rows),
                &batch,
                |b, batch| {
                    b.iter(|| run_strategy(&wh, batch, strategy).0);
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
