//! Property-based tests for the query operators: aggregation strategies
//! agree, aggregation is partition-distributive (the §3.1 property the
//! whole summary-delta method rests on), joins respect FK semantics, and
//! operators commute where relational algebra says they must.

use cubedelta_expr::{CmpOp, Expr, Predicate};
use cubedelta_query::{
    filter, hash_aggregate, hash_aggregate_parallel, hash_join, sort_aggregate, union_all,
    AggFunc, Relation,
};
use cubedelta_storage::{Column, DataType, Row, Schema, Value};
use proptest::prelude::*;

fn schema() -> Schema {
    Schema::new(vec![
        Column::new("k", DataType::Int),
        Column::new("g", DataType::Int),
        Column::nullable("v", DataType::Int),
    ])
}

fn rows() -> impl Strategy<Value = Vec<Row>> {
    proptest::collection::vec(
        (
            0i64..6,
            0i64..4,
            prop_oneof![4 => (-20i64..20).prop_map(Value::Int), 1 => Just(Value::Null)],
        )
            .prop_map(|(k, g, v)| Row::new(vec![Value::Int(k), Value::Int(g), v])),
        0..60,
    )
}

fn aggs() -> Vec<(AggFunc, Column)> {
    vec![
        (AggFunc::CountStar, Column::new("cnt", DataType::Int)),
        (
            AggFunc::Count(Expr::col("v")),
            Column::new("cnt_v", DataType::Int),
        ),
        (
            AggFunc::Sum(Expr::col("v")),
            Column::new("total", DataType::Int),
        ),
        (
            AggFunc::Min(Expr::col("v")),
            Column::new("mn", DataType::Int),
        ),
        (
            AggFunc::Max(Expr::col("v")),
            Column::new("mx", DataType::Int),
        ),
    ]
}

proptest! {
    /// Hash, sort, and parallel aggregation all agree.
    #[test]
    fn aggregation_strategies_agree(data in rows()) {
        let rel = Relation::new(schema(), data);
        let h = hash_aggregate(&rel, &["k"], &aggs()).unwrap();
        let s = sort_aggregate(&rel, &["k"], &aggs()).unwrap();
        let p = hash_aggregate_parallel(&rel, &["k"], &aggs(), 4).unwrap();
        prop_assert_eq!(h.sorted_rows(), s.sorted_rows());
        prop_assert_eq!(h.sorted_rows(), p.sorted_rows());
    }

    /// Distributivity (§3.1): aggregating a union equals aggregating the
    /// parts and re-aggregating (COUNT→SUM of partial counts, SUM→SUM,
    /// MIN→MIN, MAX→MAX) — the identity the summary-delta method is built
    /// on.
    #[test]
    fn aggregation_is_distributive(part_a in rows(), part_b in rows()) {
        let a = Relation::new(schema(), part_a);
        let b = Relation::new(schema(), part_b);
        let whole = union_all(&a, &b).unwrap();
        let direct = hash_aggregate(&whole, &["k"], &aggs()).unwrap();

        let pa = hash_aggregate(&a, &["k"], &aggs()).unwrap();
        let pb = hash_aggregate(&b, &["k"], &aggs()).unwrap();
        let partials = union_all(&pa, &pb).unwrap();
        let re_aggs = vec![
            (AggFunc::Sum(Expr::col("cnt")), Column::new("cnt", DataType::Int)),
            (AggFunc::Sum(Expr::col("cnt_v")), Column::new("cnt_v", DataType::Int)),
            (AggFunc::Sum(Expr::col("total")), Column::new("total", DataType::Int)),
            (AggFunc::Min(Expr::col("mn")), Column::new("mn", DataType::Int)),
            (AggFunc::Max(Expr::col("mx")), Column::new("mx", DataType::Int)),
        ];
        let reagg = hash_aggregate(&partials, &["k"], &re_aggs).unwrap();
        prop_assert_eq!(direct.sorted_rows(), reagg.sorted_rows());
    }

    /// Filter commutes with union-all.
    #[test]
    fn filter_commutes_with_union(part_a in rows(), part_b in rows()) {
        let pred = Predicate::cmp(CmpOp::Ge, Expr::col("v"), Expr::lit(0i64));
        let a = Relation::new(schema(), part_a);
        let b = Relation::new(schema(), part_b);
        let filtered_union = filter(&union_all(&a, &b).unwrap(), &pred).unwrap();
        let union_filtered =
            union_all(&filter(&a, &pred).unwrap(), &filter(&b, &pred).unwrap()).unwrap();
        prop_assert_eq!(filtered_union.sorted_rows(), union_filtered.sorted_rows());
    }

    /// FK-style join: when the right side is a key table (unique,
    /// covering), every left row with a matching key appears exactly once.
    #[test]
    fn fk_join_preserves_multiplicity(data in rows()) {
        let left = Relation::new(schema(), data);
        // Right: one row per key 0..6.
        let right = Relation::new(
            Schema::new(vec![
                Column::new("k", DataType::Int),
                Column::new("label", DataType::Str),
            ]),
            (0..6i64).map(|k| Row::new(vec![Value::Int(k), Value::str(format!("k{k}"))])).collect(),
        );
        let joined = hash_join(&left, &right, &["k"], &["k"], "dim").unwrap();
        prop_assert_eq!(joined.len(), left.len(), "FK join neither drops nor duplicates");
        // Group counts survive the join.
        let before = hash_aggregate(&left, &["k"], &[(AggFunc::CountStar, Column::new("c", DataType::Int))]).unwrap();
        let after = hash_aggregate(&joined, &["k"], &[(AggFunc::CountStar, Column::new("c", DataType::Int))]).unwrap();
        prop_assert_eq!(before.sorted_rows(), after.sorted_rows());
    }

    /// Aggregating by (k, g) then rolling up to (k) equals aggregating by
    /// (k) directly — the lattice-edge identity of §3.2.
    #[test]
    fn rollup_equals_direct(data in rows()) {
        let rel = Relation::new(schema(), data);
        let fine = hash_aggregate(&rel, &["k", "g"], &aggs()).unwrap();
        let re_aggs = vec![
            (AggFunc::Sum(Expr::col("cnt")), Column::new("cnt", DataType::Int)),
            (AggFunc::Sum(Expr::col("cnt_v")), Column::new("cnt_v", DataType::Int)),
            (AggFunc::Sum(Expr::col("total")), Column::new("total", DataType::Int)),
            (AggFunc::Min(Expr::col("mn")), Column::new("mn", DataType::Int)),
            (AggFunc::Max(Expr::col("mx")), Column::new("mx", DataType::Int)),
        ];
        let rolled = hash_aggregate(&fine, &["k"], &re_aggs).unwrap();
        let direct = hash_aggregate(&rel, &["k"], &aggs()).unwrap();
        prop_assert_eq!(rolled.sorted_rows(), direct.sorted_rows());
    }
}
