//! The CUBE operator: defining and efficiently materializing a whole data
//! cube (or a selected subset of it) as summary tables.
//!
//! "The cube operator \[GBLP96] can be used to define several such summary
//! tables with one statement" (§1). A [`CubeSpec`] names the dimension
//! attributes (fact columns or dimension-table columns) and the measures;
//! building it creates one generalized cube view per attribute subset —
//! `2^k` views, or the subset picked by the \[HRU96] greedy selection under
//! a budget — and materializes them through the lattice, deriving each view
//! from its cheapest materialized ancestor instead of re-scanning the fact
//! table ([AAD+96, SAG96], which §5.5 maps propagation onto).
//!
//! Once built, the cube views are ordinary summary tables: the nightly
//! [`crate::warehouse::Warehouse::maintain`] cycle keeps all of them fresh
//! through the D-lattice.

use std::collections::HashSet;

use cubedelta_lattice::{SelectionProblem, ViewLattice};
use cubedelta_query::{AggFunc, Relation};
use cubedelta_storage::TableRole;
use cubedelta_view::{augment, summary_schema, AugmentedView, SummaryViewDef};

use crate::error::{CoreError, CoreResult};
use crate::warehouse::Warehouse;

/// How many of the `2^k` cube views to materialize.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CubeBudget {
    /// Materialize every cube view.
    All,
    /// Greedy-select at most this many views beyond the forced top view
    /// (\[HRU96]).
    TopK(usize),
    /// Greedy-select under a total estimated row budget (\[HRU96]'s
    /// benefit-per-unit-space variant).
    Rows(u64),
}

/// A cube definition: fact table, dimension attributes, measures.
#[derive(Debug, Clone)]
pub struct CubeSpec {
    /// Name prefix for the generated views (`{prefix}_{attrs}`).
    pub prefix: String,
    /// The fact table.
    pub fact_table: String,
    /// Dimension attributes (fact columns, or dimension-table columns —
    /// the required joins are inferred from the catalog's foreign keys).
    pub dimensions: Vec<String>,
    /// The measures computed in every cube view.
    pub measures: Vec<(AggFunc, String)>,
    /// Which views to materialize.
    pub budget: CubeBudget,
}

impl CubeSpec {
    /// Starts a cube over a fact table with the given name prefix.
    pub fn new(prefix: impl Into<String>, fact_table: impl Into<String>) -> Self {
        CubeSpec {
            prefix: prefix.into(),
            fact_table: fact_table.into(),
            dimensions: Vec::new(),
            measures: Vec::new(),
            budget: CubeBudget::All,
        }
    }

    /// Adds a dimension attribute.
    pub fn dimension(mut self, attr: impl Into<String>) -> Self {
        self.dimensions.push(attr.into());
        self
    }

    /// Adds a measure.
    pub fn measure(mut self, func: AggFunc, alias: impl Into<String>) -> Self {
        self.measures.push((func, alias.into()));
        self
    }

    /// Sets the materialization budget.
    pub fn budget(mut self, budget: CubeBudget) -> Self {
        self.budget = budget;
        self
    }

    /// The view name for one attribute subset.
    pub fn view_name(&self, attrs: &[&str]) -> String {
        if attrs.is_empty() {
            format!("{}_all", self.prefix)
        } else {
            format!("{}_{}", self.prefix, attrs.join("_"))
        }
    }

    /// The view definition for one attribute subset (dimension joins
    /// inferred from the warehouse catalog).
    fn view_def(&self, wh: &Warehouse, attrs: &[&str]) -> CoreResult<SummaryViewDef> {
        let fact_schema = wh.catalog().table(&self.fact_table)?.schema().clone();
        let mut builder =
            SummaryViewDef::builder(self.view_name(attrs), &self.fact_table).group_by(attrs.iter().copied());
        let mut joined: HashSet<String> = HashSet::new();
        // Joins needed by group-by attributes and by measure sources.
        let mut needed: Vec<String> = attrs.iter().map(|s| s.to_string()).collect();
        for (f, _) in &self.measures {
            if let Some(e) = f.input() {
                needed.extend(e.columns());
            }
        }
        for attr in needed {
            if fact_schema.contains(&attr) {
                continue;
            }
            let dim = wh
                .catalog()
                .dimension_owning(&self.fact_table, &attr)
                .ok_or_else(|| {
                    CoreError::Maintenance(format!(
                        "cube attribute `{attr}` is neither a fact column nor a \
                         dimension attribute reachable from `{}`",
                        self.fact_table
                    ))
                })?;
            if joined.insert(dim.to_string()) {
                builder = builder.join_dimension(dim);
            }
        }
        for (f, alias) in &self.measures {
            builder = builder.aggregate(f.clone(), alias);
        }
        Ok(builder.build())
    }
}

/// Estimates a cube view's size as the product of its attributes' distinct
/// counts, capped by the fact-table size — the standard independence
/// estimate \[HRU96] uses.
fn estimate_sizes(wh: &Warehouse, spec: &CubeSpec, subsets: &[Vec<&str>]) -> CoreResult<Vec<u64>> {
    let fact = wh.catalog().table(&spec.fact_table)?;
    let cap = fact.len().max(1) as u64;
    let mut distinct: Vec<(String, u64)> = Vec::with_capacity(spec.dimensions.len());
    for attr in &spec.dimensions {
        let (table, col) = if fact.schema().contains(attr) {
            (fact, fact.schema().index_of(attr)?)
        } else {
            let dim = wh
                .catalog()
                .dimension_owning(&spec.fact_table, attr)
                .ok_or_else(|| CoreError::Maintenance(format!("unknown attribute `{attr}`")))?;
            let t = wh.catalog().table(dim)?;
            (t, t.schema().index_of(attr)?)
        };
        let n = table
            .rows()
            .map(|r| &r[col])
            .collect::<HashSet<_>>()
            .len()
            .max(1) as u64;
        distinct.push((attr.clone(), n));
    }
    Ok(subsets
        .iter()
        .map(|attrs| {
            let mut s: u64 = 1;
            for a in attrs {
                let d = distinct
                    .iter()
                    .find(|(name, _)| name == a)
                    .map(|(_, n)| *n)
                    .unwrap_or(1);
                s = s.saturating_mul(d);
            }
            s.clamp(1, cap)
        })
        .collect())
}

/// The result of building a cube.
#[derive(Debug, Clone)]
pub struct CubeReport {
    /// Names of the materialized views, in materialization order.
    pub views: Vec<String>,
    /// Names of cube points that were *not* materialized (budgeted out).
    pub skipped: Vec<String>,
}

impl Warehouse {
    /// Defines and materializes a data cube. Views are materialized through
    /// the lattice (each from its cheapest already-materialized ancestor)
    /// and registered as ordinary summary tables, so subsequent
    /// [`Warehouse::maintain`] calls keep the whole cube fresh.
    pub fn create_cube(&mut self, spec: &CubeSpec) -> CoreResult<CubeReport> {
        let k = spec.dimensions.len();
        if k > 16 {
            return Err(CoreError::Maintenance(format!(
                "a {k}-dimension cube means 2^{k} views; refusing"
            )));
        }
        if spec.measures.is_empty() {
            return Err(CoreError::Maintenance("a cube needs at least one measure".into()));
        }

        // Enumerate subsets, top (all attrs) first so it is always index 0
        // of the selection lattice's `tops()`.
        let dims: Vec<&str> = spec.dimensions.iter().map(String::as_str).collect();
        let mut subsets: Vec<Vec<&str>> = Vec::with_capacity(1 << k);
        for mask in (0..(1u32 << k)).rev() {
            let attrs: Vec<&str> = dims
                .iter()
                .enumerate()
                .filter(|(i, _)| mask & (1 << i) != 0)
                .map(|(_, a)| *a)
                .collect();
            subsets.push(attrs);
        }

        // Budgeted selection over the candidate lattice.
        let chosen_subsets: Vec<Vec<&str>> = match spec.budget {
            CubeBudget::All => subsets.clone(),
            _ => {
                let lattice = cubedelta_lattice::AttrLattice::build(
                    subsets
                        .iter()
                        .map(|s| s.iter().map(|a| a.to_string()).collect())
                        .collect(),
                    |a, b| a.is_subset(b),
                );
                let sizes = estimate_sizes(self, spec, &subsets)?;
                let problem = SelectionProblem::new(&lattice, sizes)?;
                let selection = match spec.budget {
                    CubeBudget::TopK(k) => problem.select_k(k),
                    CubeBudget::Rows(budget) => problem.select_budget(budget),
                    CubeBudget::All => unreachable!(),
                };
                selection
                    .chosen
                    .iter()
                    .map(|&i| {
                        lattice.nodes()[i]
                            .iter()
                            .map(String::as_str)
                            // Restore the spec's dimension order.
                            .collect::<HashSet<&str>>()
                    })
                    .map(|set| dims.iter().copied().filter(|d| set.contains(d)).collect())
                    .collect()
            }
        };

        let skipped = subsets
            .iter()
            .filter(|s| !chosen_subsets.contains(s))
            .map(|s| spec.view_name(s))
            .collect();

        // Augment all chosen views and build their lattice.
        let mut views: Vec<AugmentedView> = Vec::with_capacity(chosen_subsets.len());
        for attrs in &chosen_subsets {
            let def = spec.view_def(self, attrs)?;
            views.push(augment(self.catalog(), &def)?);
        }
        let lattice = ViewLattice::build(self.catalog(), views.clone())?;
        let size_guess = estimate_sizes(self, spec, &chosen_subsets)?;
        let plan = {
            let by_name: std::collections::HashMap<&str, u64> = views
                .iter()
                .zip(&size_guess)
                .map(|(v, s)| (v.def.name.as_str(), *s))
                .collect();
            lattice.choose_plan(self.catalog(), |name| {
                by_name.get(name).copied().unwrap_or(u64::MAX) as usize
            })?
        };

        // Materialize in plan order: roots from base data, the rest from
        // their parent's freshly materialized contents.
        let mut order = Vec::with_capacity(plan.steps.len());
        for step in &plan.steps {
            let view = views
                .iter()
                .find(|v| v.def.name == step.view)
                .expect("plan covers exactly these views");
            let contents: Relation = match &step.source {
                cubedelta_lattice::DeltaSource::Direct => {
                    cubedelta_view::materialize(self.catalog(), view)?
                }
                cubedelta_lattice::DeltaSource::FromParent(eq) => {
                    let parent = Relation::from_table(self.catalog().table(&eq.parent)?);
                    cubedelta_lattice::derive_child(self.catalog(), &parent, eq)?
                }
            };
            let schema = summary_schema(self.catalog(), view)?;
            let table = self
                .catalog_mut()
                .create_table(&view.def.name, schema, TableRole::Summary)?;
            table.set_validate(false);
            table.insert_all(contents.rows)?;
            let group_refs: Vec<&str> = view.def.group_by.iter().map(String::as_str).collect();
            table.create_unique_index(&group_refs)?;
            self.register_view(view.clone());
            order.push(view.def.name.clone());
        }

        Ok(CubeReport {
            views: order,
            skipped,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::consistency::check_view_consistency;
    use crate::test_fixtures::retail_catalog_small;
    use crate::warehouse::MaintainOptions;
    use cubedelta_expr::Expr;
    use cubedelta_storage::{row, ChangeBatch, Date, DeltaSet};

    fn spec() -> CubeSpec {
        CubeSpec::new("cube", "pos")
            .dimension("storeID")
            .dimension("category")
            .dimension("date")
            .measure(AggFunc::CountStar, "cnt")
            .measure(AggFunc::Sum(Expr::col("qty")), "total")
    }

    #[test]
    fn full_cube_materializes_all_views() {
        let mut wh = Warehouse::from_catalog(retail_catalog_small());
        let report = wh.create_cube(&spec()).unwrap();
        assert_eq!(report.views.len(), 8);
        assert!(report.skipped.is_empty());
        // Every view consistent with base data.
        for v in wh.views().to_vec() {
            check_view_consistency(wh.catalog(), &v).unwrap();
        }
        // The apex holds the global totals.
        let apex = wh.catalog().table("cube_all").unwrap();
        assert_eq!(apex.len(), 1);
    }

    #[test]
    fn cube_views_share_the_lattice_for_maintenance() {
        let mut wh = Warehouse::from_catalog(retail_catalog_small());
        wh.create_cube(&spec()).unwrap();
        let batch = ChangeBatch::single(DeltaSet {
            table: "pos".into(),
            insertions: vec![row![3i64, 30i64, Date(10002), 4i64, 0.8]],
            deletions: vec![row![1i64, 10i64, Date(10000), 5i64, 1.0]],
        });
        let report = wh.maintain(&batch, &MaintainOptions::default()).unwrap();
        wh.check_consistency().unwrap();
        // Only the top view computes from changes; all others cascade.
        let direct = report
            .per_view
            .iter()
            .filter(|v| v.source == "changes")
            .count();
        assert_eq!(direct, 1, "one root, seven cascaded");
    }

    #[test]
    fn top_k_budget_limits_views() {
        let mut wh = Warehouse::from_catalog(retail_catalog_small());
        let report = wh
            .create_cube(&spec().budget(CubeBudget::TopK(3)))
            .unwrap();
        assert_eq!(report.views.len(), 4, "top + 3 picks");
        assert_eq!(report.skipped.len(), 4);
        for v in wh.views().to_vec() {
            check_view_consistency(wh.catalog(), &v).unwrap();
        }
    }

    #[test]
    fn row_budget_is_respected() {
        let mut wh = Warehouse::from_catalog(retail_catalog_small());
        let report = wh
            .create_cube(&spec().budget(CubeBudget::Rows(10)))
            .unwrap();
        // Tight budget: top view (4 rows estimated ≤ fact cap) plus
        // whatever fits.
        let total_rows: usize = report
            .views
            .iter()
            .map(|v| wh.catalog().table(v).unwrap().len())
            .sum();
        assert!(total_rows <= 16, "tiny budget keeps the cube small");
    }

    #[test]
    fn bad_specs_are_rejected() {
        let mut wh = Warehouse::from_catalog(retail_catalog_small());
        let no_measures = CubeSpec::new("c", "pos").dimension("storeID");
        assert!(wh.create_cube(&no_measures).is_err());
        let unknown_attr = spec().dimension("nonexistent");
        assert!(wh.create_cube(&unknown_attr).is_err());
    }

    #[test]
    fn view_names_are_deterministic() {
        let s = spec();
        assert_eq!(s.view_name(&[]), "cube_all");
        assert_eq!(s.view_name(&["storeID", "date"]), "cube_storeID_date");
    }
}
