//! The whole pipeline in one test: CSV ingest → SQL view definitions →
//! a budgeted cube → nightly maintenance → OLAP queries — everything a
//! downstream warehouse deployment would touch.

mod common;

use cubedelta::core::{CubeBudget, CubeSpec, MaintainOptions, Warehouse};
use cubedelta::expr::Expr;
use cubedelta::query::AggFunc;
use cubedelta::sql::SqlWarehouse;
use cubedelta::storage::{
    load_csv, to_csv, ChangeBatch, Column, DataType, DeltaSet, DimensionInfo,
    FunctionalDependency, Schema, Value,
};

fn pos_schema() -> Schema {
    Schema::new(vec![
        Column::new("storeID", DataType::Int),
        Column::new("itemID", DataType::Int),
        Column::new("date", DataType::Date),
        Column::nullable("qty", DataType::Int),
        Column::nullable("price", DataType::Float),
    ])
}

fn build_from_csv() -> Warehouse {
    let mut wh = Warehouse::new();
    wh.create_fact_table("pos", pos_schema()).unwrap();
    wh.create_dimension_table(
        "stores",
        Schema::new(vec![
            Column::new("storeID", DataType::Int),
            Column::new("city", DataType::Str),
            Column::new("region", DataType::Str),
        ]),
        DimensionInfo {
            key: "storeID".into(),
            fds: vec![
                FunctionalDependency::new("storeID", &["city"]),
                FunctionalDependency::new("city", &["region"]),
            ],
        },
    )
    .unwrap();
    wh.create_dimension_table(
        "items",
        Schema::new(vec![
            Column::new("itemID", DataType::Int),
            Column::new("name", DataType::Str),
            Column::new("category", DataType::Str),
            Column::new("cost", DataType::Float),
        ]),
        DimensionInfo {
            key: "itemID".into(),
            fds: vec![FunctionalDependency::new("itemID", &["name", "category", "cost"])],
        },
    )
    .unwrap();
    wh.add_foreign_key("pos", "storeID", "stores", "storeID").unwrap();
    wh.add_foreign_key("pos", "itemID", "items", "itemID").unwrap();

    let stores_csv = "storeID,city,region\n1,nyc,east\n2,boston,east\n3,sf,west\n";
    let items_csv = "itemID,name,category,cost\n10,cola,drinks,0.5\n20,chips,snacks,1.0\n";
    let pos_csv = "storeID,itemID,date,qty,price\n\
                   1,10,1997-05-12,5,1.25\n\
                   1,10,1997-05-12,3,1.25\n\
                   1,20,1997-05-13,2,2.0\n\
                   2,10,1997-05-12,7,1.25\n\
                   3,20,1997-05-14,,2.0\n";
    load_csv(wh.catalog_mut().table_mut("stores").unwrap(), stores_csv).unwrap();
    load_csv(wh.catalog_mut().table_mut("items").unwrap(), items_csv).unwrap();
    load_csv(wh.catalog_mut().table_mut("pos").unwrap(), pos_csv).unwrap();
    wh
}

#[test]
fn csv_sql_cube_maintain_query() {
    let mut wh = build_from_csv();
    assert_eq!(wh.catalog().table("pos").unwrap().len(), 5);

    // SQL views (a subset of Figure 1).
    wh.create_summary_table_sql(
        "CREATE VIEW SID_sales AS SELECT storeID, itemID, date, COUNT(*) AS cnt, \
         SUM(qty) AS total FROM pos GROUP BY storeID, itemID, date",
    )
    .unwrap();
    wh.create_summary_table_sql(
        "CREATE VIEW sR_sales AS SELECT region, COUNT(*) AS cnt, SUM(qty) AS total \
         FROM pos, stores WHERE pos.storeID = stores.storeID GROUP BY region",
    )
    .unwrap();

    // A budgeted cube on top.
    wh.create_cube(
        &CubeSpec::new("cube", "pos")
            .dimension("region")
            .dimension("category")
            .measure(AggFunc::CountStar, "cnt")
            .measure(AggFunc::Sum(Expr::col("qty")), "total")
            .budget(CubeBudget::TopK(2)),
    )
    .unwrap();

    // Nights: CSV-shaped increments arrive as change batches.
    for night in 0..4 {
        let new_rows = cubedelta::storage::parse_csv(
            &pos_schema(),
            &format!(
                "storeID,itemID,date,qty,price\n\
                 2,20,1997-05-{:02},4,2.0\n\
                 3,10,1997-05-{:02},1,1.25\n",
                15 + night,
                15 + night
            ),
        )
        .unwrap();
        let mut deletions = Vec::new();
        if night == 2 {
            // Also retract an original sale.
            deletions = cubedelta::storage::parse_csv(
                &pos_schema(),
                "storeID,itemID,date,qty,price\n1,10,1997-05-12,5,1.25\n",
            )
            .unwrap();
        }
        let batch = ChangeBatch::single(DeltaSet {
            table: "pos".into(),
            insertions: new_rows,
            deletions,
        });
        wh.maintain(&batch, &MaintainOptions::default()).unwrap();
        wh.check_consistency().unwrap();
    }

    // Queries route to views; results agree with base-table computation.
    let from_view = wh
        .answer_sql("SELECT region, SUM(qty) AS total FROM pos, stores \
                     WHERE pos.storeID = stores.storeID GROUP BY region")
        .unwrap();
    assert_ne!(from_view.answered_from, "pos");

    let q = cubedelta::AggQuery::over("pos")
        .group_by(["region"])
        .aggregate(AggFunc::Sum(Expr::col("qty")), "total");
    // Force base computation by asking a fresh warehouse with no views.
    let mut bare = build_from_csv();
    for night in 0..4 {
        let new_rows = cubedelta::storage::parse_csv(
            &pos_schema(),
            &format!(
                "storeID,itemID,date,qty,price\n\
                 2,20,1997-05-{:02},4,2.0\n\
                 3,10,1997-05-{:02},1,1.25\n",
                15 + night,
                15 + night
            ),
        )
        .unwrap();
        let mut deletions = Vec::new();
        if night == 2 {
            deletions = cubedelta::storage::parse_csv(
                &pos_schema(),
                "storeID,itemID,date,qty,price\n1,10,1997-05-12,5,1.25\n",
            )
            .unwrap();
        }
        bare.catalog_mut()
            .table_mut("pos")
            .unwrap()
            .apply_delta(&DeltaSet {
                table: "pos".into(),
                insertions: new_rows,
                deletions,
            })
            .unwrap();
    }
    let from_base = bare.answer(&q).unwrap();
    assert_eq!(from_base.answered_from, "pos");
    assert_eq!(
        from_view.relation.sorted_rows(),
        from_base.relation.sorted_rows(),
        "view-answered and base-answered results agree"
    );

    // CSV export of a summary table round-trips.
    let exported = to_csv(wh.catalog().table("sR_sales").unwrap());
    assert!(exported.starts_with("region,cnt,total"));
    assert!(exported.lines().count() >= 3);
}

#[test]
fn null_qty_from_csv_flows_through_maintenance() {
    let mut wh = build_from_csv();
    wh.create_summary_table_sql(
        "CREATE VIEW by_store AS SELECT storeID, COUNT(*) AS cnt, SUM(qty) AS total, \
         MIN(qty) AS mn FROM pos GROUP BY storeID",
    )
    .unwrap();
    // Store 3's only row has NULL qty: SUM/MIN are NULL, COUNT(*) is 1.
    let t = wh.catalog().table("by_store").unwrap();
    let r = t
        .rows()
        .find(|r| r[0] == Value::Int(3))
        .expect("store 3 present");
    assert_eq!(r[1], Value::Int(1));
    assert!(r[2].is_null());
    assert!(r[3].is_null());

    // Deleting that row drops the group.
    let deletions = cubedelta::storage::parse_csv(
        &pos_schema(),
        "storeID,itemID,date,qty,price\n3,20,1997-05-14,,2.0\n",
    )
    .unwrap();
    let batch = ChangeBatch::single(DeltaSet::deletions("pos", deletions));
    wh.maintain(&batch, &MaintainOptions::default()).unwrap();
    wh.check_consistency().unwrap();
    assert!(!wh
        .catalog()
        .table("by_store")
        .unwrap()
        .rows()
        .any(|r| r[0] == Value::Int(3)));
}
