//! SQL entry points on the [`Warehouse`] and on pinned [`LatticeSnapshot`]s.

use cubedelta_core::{
    Answer, CoreError, LatticeSnapshot, Subscription, SubscriptionSpec, Warehouse,
    WarehouseService,
};

use crate::error::{SqlError, SqlResult};
use crate::parser::{parse_query, parse_view};

/// SQL convenience methods for the warehouse.
pub trait SqlWarehouse {
    /// Parses a `CREATE VIEW … AS SELECT …` statement and installs it as a
    /// materialized summary table.
    fn create_summary_table_sql(&mut self, sql: &str) -> SqlResult<()>;

    /// Parses a bare `SELECT` statement and answers it from the best
    /// materialized view (falling back to base tables).
    fn answer_sql(&self, sql: &str) -> SqlResult<Answer>;
}

fn core_err(e: CoreError) -> SqlError {
    SqlError::Unsupported(e.to_string())
}

impl SqlWarehouse for Warehouse {
    fn create_summary_table_sql(&mut self, sql: &str) -> SqlResult<()> {
        let def = parse_view(sql)?;
        self.create_summary_table(&def).map_err(core_err)
    }

    fn answer_sql(&self, sql: &str) -> SqlResult<Answer> {
        let query = parse_query(sql)?;
        self.answer(&query).map_err(core_err)
    }
}

/// SQL answering against a pinned snapshot.
pub trait SqlSnapshot {
    /// Parses a bare `SELECT` statement and answers it from the snapshot's
    /// summary tables. Unlike [`SqlWarehouse::answer_sql`] there is no
    /// base-table fallback: snapshots carry schema-only fact stand-ins, so
    /// a query no view can answer errors instead of silently computing
    /// over empty facts.
    fn answer_sql(&self, sql: &str) -> SqlResult<Answer>;
}

impl SqlSnapshot for LatticeSnapshot {
    fn answer_sql(&self, sql: &str) -> SqlResult<Answer> {
        let query = parse_query(sql)?;
        self.answer(&query).map_err(core_err)
    }
}

/// SQL entry points for live subscriptions: a bare `SELECT` is parsed,
/// rewritten onto the materialized lattice node carrying its exact
/// group-by and aggregates (§5.1 derives), and registered as a standing
/// subscription whose per-cycle updates replay the query exactly.
pub trait SqlSubscribe {
    /// Plans the subscription without registering it: which view it lands
    /// on, with what residual filter and projection.
    fn subscription_spec_sql(&self, sql: &str) -> SqlResult<SubscriptionSpec>;

    /// Parses, rewrites, and registers in one step. Errors when no
    /// materialized view can serve the query incrementally.
    fn subscribe_sql(&self, sql: &str) -> SqlResult<Subscription>;
}

impl SqlSubscribe for Warehouse {
    fn subscription_spec_sql(&self, sql: &str) -> SqlResult<SubscriptionSpec> {
        let query = parse_query(sql)?;
        SubscriptionSpec::from_query(self.catalog(), self.views(), &query).map_err(core_err)
    }

    fn subscribe_sql(&self, sql: &str) -> SqlResult<Subscription> {
        let spec = self.subscription_spec_sql(sql)?;
        self.subscribe(spec).map_err(core_err)
    }
}

impl SqlSubscribe for WarehouseService {
    fn subscription_spec_sql(&self, sql: &str) -> SqlResult<SubscriptionSpec> {
        let query = parse_query(sql)?;
        // The worker owns the live warehouse; plan against the published
        // snapshot, which keeps full schema metadata (fact tables are
        // hollowed to schema-only stand-ins, which is all planning needs).
        let snap = self.read();
        SubscriptionSpec::from_query(snap.catalog(), snap.views(), &query).map_err(core_err)
    }

    fn subscribe_sql(&self, sql: &str) -> SqlResult<Subscription> {
        let spec = self.subscription_spec_sql(sql)?;
        self.subscribe(spec).map_err(core_err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cubedelta_core::MaintainOptions;
    use cubedelta_storage::{row, ChangeBatch, Date, DeltaSet, Value};
    use cubedelta_workload::retail_catalog_small;

    /// Figure 1, all four CREATE VIEW statements, as written in the paper.
    const FIGURE_1: [&str; 4] = [
        "CREATE VIEW SID_sales(storeID, itemID, date, TotalCount, TotalQuantity) AS
         SELECT storeID, itemID, date, COUNT(*) AS TotalCount, SUM(qty) AS TotalQuantity
         FROM pos
         GROUP BY storeID, itemID, date",
        "CREATE VIEW sCD_sales(city, date, TotalCount, TotalQuantity) AS
         SELECT city, date, COUNT(*) AS TotalCount, SUM(qty) AS TotalQuantity
         FROM pos, stores
         WHERE pos.storeID = stores.storeID
         GROUP BY city, date",
        "CREATE VIEW SiC_sales(storeID, category, TotalCount, EarliestSale, TotalQuantity) AS
         SELECT storeID, category, COUNT(*) AS TotalCount,
                MIN(date) AS EarliestSale,
                SUM(qty) AS TotalQuantity
         FROM pos, items
         WHERE pos.itemID = items.itemID
         GROUP BY storeID, category",
        "CREATE VIEW sR_sales(region, TotalCount, TotalQuantity) AS
         SELECT region, COUNT(*) AS TotalCount, SUM(qty) AS TotalQuantity
         FROM pos, stores
         WHERE pos.storeID = stores.storeID
         GROUP BY region",
    ];

    #[test]
    fn figure_1_views_install_and_maintain_via_sql() {
        let mut wh = Warehouse::from_catalog(retail_catalog_small());
        for sql in FIGURE_1 {
            wh.create_summary_table_sql(sql).unwrap();
        }
        assert_eq!(wh.views().len(), 4);

        let batch = ChangeBatch::single(DeltaSet {
            table: "pos".into(),
            insertions: vec![row![2i64, 20i64, Date(10003), 4i64, 2.0]],
            deletions: vec![row![1i64, 10i64, Date(10000), 5i64, 1.0]],
        });
        wh.maintain(&batch, &MaintainOptions::default()).unwrap();
        wh.check_consistency().unwrap();
    }

    #[test]
    fn sql_queries_are_answered_from_views() {
        let mut wh = Warehouse::from_catalog(retail_catalog_small());
        for sql in FIGURE_1 {
            wh.create_summary_table_sql(sql).unwrap();
        }
        let ans = wh
            .answer_sql(
                "SELECT region, SUM(qty) AS total FROM pos, stores \
                 WHERE pos.storeID = stores.storeID GROUP BY region",
            )
            .unwrap();
        assert_ne!(ans.answered_from, "pos");
        assert_eq!(ans.relation.sorted_rows(), vec![row!["east", 17i64]]);
    }

    #[test]
    fn sql_avg_query_recomposes() {
        let mut wh = Warehouse::from_catalog(retail_catalog_small());
        for sql in FIGURE_1 {
            wh.create_summary_table_sql(sql).unwrap();
        }
        let ans = wh
            .answer_sql("SELECT AVG(qty) AS a FROM pos")
            .unwrap();
        assert_eq!(ans.relation.rows[0][0], Value::Float(17.0 / 4.0));
    }

    #[test]
    fn snapshot_sql_answers_pinned_epoch() {
        let mut wh = Warehouse::from_catalog(retail_catalog_small());
        for sql in FIGURE_1 {
            wh.create_summary_table_sql(sql).unwrap();
        }
        let region_sql = "SELECT region, SUM(qty) AS total FROM pos, stores \
                          WHERE pos.storeID = stores.storeID GROUP BY region";
        let pinned = wh.read_snapshot();
        let before = pinned.answer_sql(region_sql).unwrap();
        assert_eq!(before.relation.sorted_rows(), vec![row!["east", 17i64]]);

        // Maintenance commits a new epoch; the pinned snapshot keeps
        // answering the pre-cycle state while a fresh pin sees the update.
        let batch = ChangeBatch::single(DeltaSet {
            table: "pos".into(),
            insertions: vec![row![2i64, 20i64, Date(10003), 4i64, 2.0]],
            deletions: vec![],
        });
        wh.maintain(&batch, &MaintainOptions::default()).unwrap();
        let after = pinned.answer_sql(region_sql).unwrap();
        assert_eq!(after.relation.sorted_rows(), before.relation.sorted_rows());
        let fresh = wh.read_snapshot().answer_sql(region_sql).unwrap();
        assert_eq!(fresh.relation.sorted_rows(), vec![row!["east", 21i64]]);

        // No base-table fallback on snapshots: `price` is not aggregated
        // by any Figure-1 view, so the snapshot refuses.
        let err = pinned
            .answer_sql("SELECT SUM(price) AS p FROM pos")
            .unwrap_err();
        assert!(err.to_string().contains("not derivable"), "{err}");
    }

    #[test]
    fn subscribe_sql_rewrites_and_streams() {
        let mut wh = Warehouse::from_catalog(retail_catalog_small());
        for sql in FIGURE_1 {
            wh.create_summary_table_sql(sql).unwrap();
        }
        let region_sql = "SELECT region, SUM(qty) AS total FROM pos, stores \
                          WHERE pos.storeID = stores.storeID GROUP BY region";
        let sub = wh.subscribe_sql(region_sql).unwrap();
        assert_eq!(sub.view(), "sR_sales");
        let mut held = sub.initial().clone();
        assert_eq!(held.sorted_rows(), vec![row!["east", 17i64]]);

        let batch = ChangeBatch::single(DeltaSet {
            table: "pos".into(),
            insertions: vec![row![2i64, 20i64, Date(10003), 4i64, 2.0]],
            deletions: vec![],
        });
        wh.maintain(&batch, &MaintainOptions::default()).unwrap();
        match sub.try_recv() {
            Some(cubedelta_core::SubscriptionMessage::Update(up)) => {
                up.apply_to(&mut held).unwrap()
            }
            other => panic!("expected an update, got {other:?}"),
        }
        // Replay matches the same SQL answered at the new epoch.
        let fresh = wh.read_snapshot().answer_sql(region_sql).unwrap();
        assert_eq!(held.sorted_rows(), fresh.relation.sorted_rows());

        // A query no view can serve incrementally is refused up front.
        assert!(wh
            .subscribe_sql("SELECT SUM(price) AS p FROM pos")
            .is_err());
    }

    #[test]
    fn bad_sql_surfaces_errors() {
        let mut wh = Warehouse::from_catalog(retail_catalog_small());
        assert!(wh.create_summary_table_sql("CREATE TABLE x").is_err());
        assert!(wh
            .create_summary_table_sql(
                "CREATE VIEW v AS SELECT COUNT(*) AS c FROM nonexistent"
            )
            .is_err());
        assert!(wh.answer_sql("SELECT FROM").is_err());
    }
}
