//! Parallel-scheduler equivalence tests.
//!
//! The leveled executor (`propagate_plan_leveled`) must be a pure
//! scheduling change: for any generated batch and any thread count, the
//! summary-deltas (sorted) are byte-identical to the sequential executor's
//! and the merged `ExecutionMetrics` work counters agree with a
//! single-thread run. Also covers the MIN/MAX eviction-recompute refresh
//! path under both schedules (§4.2 — deletions are not self-maintainable
//! for MIN/MAX).

mod common;

use common::figure1_defs;
use cubedelta::core::{
    plan_levels, propagate_plan_leveled, propagate_plan_metered, MaintainOptions,
    MaintenancePolicy, PropagateOptions, Warehouse,
};
use cubedelta::lattice::ViewLattice;
use cubedelta::storage::{row, ChangeBatch, Date, DeltaSet, Row, Value};
use cubedelta::view::augment;
use cubedelta::workload::retail_catalog_small;
use proptest::prelude::*;

/// Strategy: a pos row over small domains, with NULL-able qty.
fn pos_row() -> impl Strategy<Value = Row> {
    (
        1i64..=3,
        prop_oneof![Just(10i64), Just(20i64), Just(30i64)],
        0i32..4,
        prop_oneof![
            3 => (1i64..=9).prop_map(Value::Int),
            1 => Just(Value::Null)
        ],
        1u32..=3,
    )
        .prop_map(|(s, i, doff, qty, price)| {
            Row::new(vec![
                Value::Int(s),
                Value::Int(i),
                Value::Date(Date(10000 + doff)),
                qty,
                Value::Float(price as f64),
            ])
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// For any batch and any `threads in 1..=8`, the parallel executor's
    /// deltas equal the sequential executor's (sorted), and the merged
    /// work counters match per step.
    #[test]
    fn leveled_propagate_equals_sequential(
        ins in proptest::collection::vec(pos_row(), 0..6),
        del_seeds in proptest::collection::vec(0usize..64, 0..4),
        threads in 1usize..=8,
    ) {
        let cat = retail_catalog_small();
        let views: Vec<_> = figure1_defs()
            .iter()
            .map(|d| augment(&cat, d).unwrap())
            .collect();
        let lat = ViewLattice::build(&cat, views.clone()).unwrap();

        let live: Vec<Row> = cat.table("pos").unwrap().rows().cloned().collect();
        let mut deletions = Vec::new();
        let mut used = std::collections::HashSet::new();
        for &s in &del_seeds {
            let idx = s % live.len();
            if used.insert(idx) {
                deletions.push(live[idx].clone());
            }
        }
        let batch = ChangeBatch::single(DeltaSet {
            table: "pos".into(),
            insertions: ins,
            deletions,
        });

        let plan = lat.choose_plan(&cat, |_| 1).unwrap();
        let opts = PropagateOptions::default();
        let (seq, seq_reports) =
            propagate_plan_metered(&cat, &views, &plan, &batch, &opts).unwrap();
        let (par, par_reports, levels) =
            propagate_plan_leveled(&cat, &views, &plan, &batch, &opts, threads).unwrap();

        for v in &views {
            prop_assert_eq!(
                par[&v.def.name].sorted_rows(),
                seq[&v.def.name].sorted_rows(),
                "threads={}: delta differs for {}", threads, &v.def.name
            );
        }
        prop_assert_eq!(par_reports.len(), seq_reports.len());
        for (a, b) in par_reports.iter().zip(&seq_reports) {
            prop_assert_eq!(&a.view, &b.view);
            prop_assert_eq!(
                a.metrics.work_pairs(),
                b.metrics.work_pairs(),
                "threads={}: work counters differ for {}", threads, &a.view
            );
        }
        // The leveling is a partition of the plan.
        prop_assert_eq!(
            levels.iter().map(|l| l.views.len()).sum::<usize>(),
            plan.len()
        );

        // Same batch through the Warehouse facade at this thread count.
        let mut wh = Warehouse::from_catalog(retail_catalog_small());
        for def in figure1_defs() {
            wh.create_summary_table(&def).unwrap();
        }
        wh.set_maintenance_policy(MaintenancePolicy::with_threads(threads));
        wh.maintain(&batch, &MaintainOptions::default()).unwrap();
        wh.check_consistency().unwrap();
    }
}

/// Fixed thread count means a fixed partition assignment: two runs of the
/// parallel executor over the same inputs are byte-identical, not just
/// equal as bags.
#[test]
fn leveled_propagate_is_deterministic_for_fixed_thread_count() {
    let cat = retail_catalog_small();
    let views: Vec<_> = figure1_defs()
        .iter()
        .map(|d| augment(&cat, d).unwrap())
        .collect();
    let lat = ViewLattice::build(&cat, views.clone()).unwrap();
    let plan = lat.choose_plan(&cat, |_| 1).unwrap();
    let batch = ChangeBatch::single(DeltaSet {
        table: "pos".into(),
        insertions: vec![
            row![1i64, 20i64, Date(10000), 4i64, 1.0],
            row![2i64, 30i64, Date(10002), 1i64, 0.5],
        ],
        deletions: vec![row![2i64, 10i64, Date(10000), 7i64, 1.0]],
    });
    let opts = PropagateOptions::default();
    let (a, _, _) =
        propagate_plan_leveled(&cat, &views, &plan, &batch, &opts, 4).unwrap();
    let (b, _, _) =
        propagate_plan_leveled(&cat, &views, &plan, &batch, &opts, 4).unwrap();
    for v in &views {
        assert_eq!(
            a[&v.def.name].rows, b[&v.def.name].rows,
            "{}: same thread count must give identical row order",
            v.def.name
        );
    }
    // And the leveling itself is deterministic.
    assert_eq!(plan_levels(&plan).unwrap(), plan_levels(&plan).unwrap());
}

/// A warehouse whose SiC_sales MIN(date) extremum sits on exactly one pos
/// row, so deleting that row forces the §4.2 eviction recompute.
fn min_eviction_fixture() -> (Warehouse, ChangeBatch, Row) {
    let mut wh = Warehouse::from_catalog(retail_catalog_small());
    // A uniquely-early sale: deleting it evicts MIN(date) for its
    // (storeID, category) group.
    let earliest = row![1i64, 10i64, Date(9000), 2i64, 1.0];
    wh.catalog_mut()
        .table_mut("pos")
        .unwrap()
        .insert_all(vec![earliest.clone()])
        .unwrap();
    for def in figure1_defs() {
        wh.create_summary_table(&def).unwrap();
    }
    let batch = ChangeBatch::single(DeltaSet {
        table: "pos".into(),
        // Unrelated churn so the cycle does more than the one eviction.
        insertions: vec![row![3i64, 30i64, Date(10001), 5i64, 1.0]],
        deletions: vec![earliest.clone()],
    });
    (wh, batch, earliest)
}

/// Deleting the row that carries a group's MIN triggers the recompute
/// branch identically under sequential and parallel maintenance, and the
/// refresh accounting invariant (every summary-delta tuple handled exactly
/// once) holds for both.
#[test]
fn min_eviction_recompute_matches_across_schedules() {
    let reports: Vec<_> = [1usize, 4]
        .into_iter()
        .map(|threads| {
            let (mut wh, batch, _) = min_eviction_fixture();
            wh.set_maintenance_policy(MaintenancePolicy::with_threads(threads));
            let report = wh.maintain(&batch, &MaintainOptions::default()).unwrap();
            wh.check_consistency().unwrap();
            (threads, wh, report)
        })
        .collect();

    let (_, seq_wh, seq_report) = &reports[0];
    let (_, par_wh, par_report) = &reports[1];

    // The eviction actually exercised the recompute branch, equally.
    let seq_sic = seq_report.view("SiC_sales").unwrap();
    let par_sic = par_report.view("SiC_sales").unwrap();
    assert!(seq_sic.refresh.recomputed > 0, "MIN eviction must recompute");
    assert_eq!(seq_sic.refresh.recomputed, par_sic.refresh.recomputed);

    for (seq_v, par_v) in seq_report.per_view.iter().zip(&par_report.per_view) {
        assert_eq!(seq_v.view, par_v.view);
        assert_eq!(seq_v.refresh, par_v.refresh, "{}", seq_v.view);
        // Accounting invariant: refresh handles each sd tuple exactly once.
        assert_eq!(seq_v.refresh.total(), seq_v.delta_rows, "{}", seq_v.view);
        assert_eq!(par_v.refresh.total(), par_v.delta_rows, "{}", par_v.view);
        assert_eq!(
            seq_v.metrics.work_pairs(),
            par_v.metrics.work_pairs(),
            "{}: schedule changed the work done",
            seq_v.view
        );
    }
    for v in seq_wh.views() {
        let name = &v.def.name;
        assert_eq!(
            seq_wh.catalog().table(name).unwrap().sorted_rows(),
            par_wh.catalog().table(name).unwrap().sorted_rows(),
            "{name} differs between schedules"
        );
    }
}

/// The MAX twin: a uniquely-late date whose deletion evicts a maximum.
/// Built on a bespoke view because the Figure-1 set only carries MIN.
#[test]
fn max_eviction_recompute_matches_across_schedules() {
    use cubedelta::expr::Expr;
    use cubedelta::query::AggFunc;
    use cubedelta::view::SummaryViewDef;

    let build = |threads: usize| {
        let mut wh = Warehouse::from_catalog(retail_catalog_small());
        let latest = row![2i64, 20i64, Date(20000), 3i64, 1.0];
        wh.catalog_mut()
            .table_mut("pos")
            .unwrap()
            .insert_all(vec![latest.clone()])
            .unwrap();
        let def = SummaryViewDef::builder("store_span", "pos")
            .group_by(["storeID"])
            .aggregate(AggFunc::CountStar, "TotalCount")
            .aggregate(AggFunc::Max(Expr::col("date")), "LatestSale")
            .build();
        wh.create_summary_table(&def).unwrap();
        wh.set_maintenance_policy(MaintenancePolicy::with_threads(threads));
        let batch = ChangeBatch::single(DeltaSet {
            table: "pos".into(),
            insertions: vec![],
            deletions: vec![latest],
        });
        let report = wh.maintain(&batch, &MaintainOptions::default()).unwrap();
        wh.check_consistency().unwrap();
        (wh, report)
    };
    let (seq_wh, seq_report) = build(1);
    let (par_wh, par_report) = build(4);

    let seq_v = seq_report.view("store_span").unwrap();
    let par_v = par_report.view("store_span").unwrap();
    assert!(seq_v.refresh.recomputed > 0, "MAX eviction must recompute");
    assert_eq!(seq_v.refresh, par_v.refresh);
    assert_eq!(seq_v.refresh.total(), seq_v.delta_rows);
    assert_eq!(
        seq_wh.catalog().table("store_span").unwrap().sorted_rows(),
        par_wh.catalog().table("store_span").unwrap().sorted_rows()
    );
}
