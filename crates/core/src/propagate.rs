//! The propagate function (§4.1): computing summary-delta tables.
//!
//! The summary-delta table for a view is the aggregation of its
//! prepare-changes view, grouped by the view's group-by attributes, with
//! `COUNT` replaced by `SUM` over the ±1 sources (§4.1.2). Its schema is
//! *identical* to the summary table's — the `sd_` prefix of the paper is a
//! naming convention only (and is what makes Theorem 5.1 "modulo renaming"
//! literal here).
//!
//! Also implemented:
//!
//! * **Pre-aggregation** (§4.1.3) — aggregate the changes *before* joining
//!   dimension tables, by propagating a virtual fact-level view and deriving
//!   the real summary-delta from it through the standard edge rewrite
//!   ("pushing down aggregation", [CS94, GHQ95, YL95]).
//! * **Dimension-table changes** (§4.1.4) — prepare views per changed
//!   dimension table (`pi_items_SiC_sales` in the paper), via the multiset
//!   derivative `Δ(F ⋈ D1 ⋈ … ⋈ Dk)` telescoped one table at a time.

use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Instant;

use cubedelta_expr::Expr;
use cubedelta_obs::ExecutionMetrics;
use cubedelta_query::{
    filter_metered, hash_aggregate_columnar_parallel_metered, hash_aggregate_parallel_metered,
    hash_join_metered, union_all_metered, AggFunc, Relation,
};
use cubedelta_storage::{
    Catalog, ChangeBatch, Column, DeltaSet, Row, ShardedTable, StorageMode, Table, Value,
};
use cubedelta_view::{augment, summary_schema, AugmentedView, SummaryViewDef};

use crate::error::{CoreError, CoreResult};
use crate::prepare::{prepare_project, source_column_name, Sign};

/// Options controlling summary-delta computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PropagateOptions {
    /// Pre-aggregate changes before joining dimension tables (§4.1.3).
    /// Applies when the batch holds only fact-table changes and every
    /// aggregate source is a fact-table expression; otherwise it is
    /// silently skipped.
    pub pre_aggregate: bool,
    /// Worker threads for the summary-delta aggregation itself (§4.1.2:
    /// distributive aggregates hash-partition on the group-by key, so each
    /// partition aggregates independently). `1` (the default) aggregates
    /// sequentially; larger values engage
    /// [`cubedelta_query::hash_aggregate_parallel_metered`], which still
    /// falls back to the sequential operator below
    /// [`cubedelta_query::MIN_PARALLEL_ROWS`] input rows.
    pub threads: usize,
    /// Which aggregation engine computes the summary-delta:
    /// [`StorageMode::Row`] uses the row-form hash aggregate,
    /// [`StorageMode::Columnar`] the vectorized kernel over typed column
    /// vectors ([`cubedelta_query::hash_aggregate_columnar_parallel_metered`]).
    /// The two are bit-identical for any input, so this is purely a
    /// performance knob (sampled from `CUBEDELTA_STORAGE` at warehouse
    /// construction).
    pub storage: StorageMode,
}

impl Default for PropagateOptions {
    fn default() -> Self {
        PropagateOptions {
            pre_aggregate: false,
            threads: 1,
            storage: StorageMode::Row,
        }
    }
}

/// Aggregates a prepare-changes relation into the summary-delta relation
/// (§4.1.2): same group-by as the view, `COUNT → SUM` of the ±1 sources,
/// `SUM → SUM`, `MIN → MIN`, `MAX → MAX`. The output schema equals the
/// summary table's.
pub fn sd_from_prepare(
    catalog: &Catalog,
    view: &AugmentedView,
    prepare: &Relation,
) -> CoreResult<Relation> {
    sd_from_prepare_metered(catalog, view, prepare, &mut ExecutionMetrics::new())
}

/// [`sd_from_prepare`], booking the aggregation's operator counters into
/// `m`.
pub fn sd_from_prepare_metered(
    catalog: &Catalog,
    view: &AugmentedView,
    prepare: &Relation,
    m: &mut ExecutionMetrics,
) -> CoreResult<Relation> {
    sd_from_prepare_threaded(catalog, view, prepare, 1, m)
}

/// [`sd_from_prepare_metered`] with the aggregation hash-partitioned across
/// `threads` workers (§4.1.2). Partition outputs concatenate in fixed
/// partition order, so the result is deterministic for a given thread
/// count, and its sorted rows equal the sequential result's for any.
pub fn sd_from_prepare_threaded(
    catalog: &Catalog,
    view: &AugmentedView,
    prepare: &Relation,
    threads: usize,
    m: &mut ExecutionMetrics,
) -> CoreResult<Relation> {
    let opts = PropagateOptions {
        threads,
        ..Default::default()
    };
    sd_from_prepare_opts(catalog, view, prepare, &opts, m)
}

/// [`sd_from_prepare_threaded`] with the full option set: `opts.threads`
/// partitions the aggregation, `opts.storage` selects the row or the
/// vectorized columnar kernel. Both engines emit bit-identical relations
/// for the same thread count, so the storage mode never changes results.
pub fn sd_from_prepare_opts(
    catalog: &Catalog,
    view: &AugmentedView,
    prepare: &Relation,
    opts: &PropagateOptions,
    m: &mut ExecutionMetrics,
) -> CoreResult<Relation> {
    let threads = opts.threads;
    let out_schema = summary_schema(catalog, view)?;
    let mut aggs: Vec<(AggFunc, Column)> = Vec::with_capacity(view.def.aggregates.len());
    for (i, spec) in view.def.aggregates.iter().enumerate() {
        let src = Expr::col(source_column_name(view, i));
        let out_col = out_schema.columns()[view.key_width() + i].clone();
        let func = match &spec.func {
            AggFunc::CountStar | AggFunc::Count(_) | AggFunc::Sum(_) => AggFunc::Sum(src),
            AggFunc::Min(_) => AggFunc::Min(src),
            AggFunc::Max(_) => AggFunc::Max(src),
            AggFunc::Avg(_) => {
                return Err(CoreError::Maintenance(
                    "AVG must be rewritten before maintenance".to_string(),
                ))
            }
        };
        aggs.push((func, out_col));
    }
    let group_refs: Vec<&str> = view.def.group_by.iter().map(String::as_str).collect();
    Ok(match opts.storage {
        StorageMode::Row => {
            hash_aggregate_parallel_metered(prepare, &group_refs, &aggs, threads, m)?
        }
        StorageMode::Columnar => {
            hash_aggregate_columnar_parallel_metered(prepare, &group_refs, &aggs, threads, m)?
        }
    })
}

/// A relation holding a table's contents *after* applying its delta — used
/// by the dimension-change terms, which need post-change states of tables
/// earlier in the telescoping order.
fn updated_relation(table: &Table, batch: &ChangeBatch) -> CoreResult<Relation> {
    match batch.for_table(table.name()) {
        None => Ok(Relation::from_table(table)),
        Some(delta) => {
            let mut copy = table.clone();
            copy.apply_delta(delta)?;
            Ok(Relation::from_table(&copy))
        }
    }
}

/// Joins a fact-state relation through the view's dimension tables, with a
/// caller-supplied relation per dimension (old state, new state, or a delta
/// part), replicating the schema layout of
/// [`cubedelta_view::joined_schema`]. Applies the WHERE clause at the end.
fn join_chain(
    catalog: &Catalog,
    view: &AugmentedView,
    fact_rel: Relation,
    dim_rels: &[Relation],
    m: &mut ExecutionMetrics,
) -> CoreResult<Relation> {
    let mut rel = fact_rel;
    for (dim, dim_rel) in view.def.dim_joins.iter().zip(dim_rels) {
        let fk = catalog
            .foreign_key(&view.def.fact_table, dim)
            .ok_or_else(|| {
                CoreError::Maintenance(format!(
                    "no foreign key from `{}` to `{dim}`",
                    view.def.fact_table
                ))
            })?;
        rel = hash_join_metered(&rel, dim_rel, &[&fk.fact_column], &[&fk.dim_key], dim, m)?;
    }
    Ok(filter_metered(&rel, &view.def.where_clause, m)?)
}

/// Computes the summary-delta for one view directly from the change batch.
///
/// Handles fact-table changes and dimension-table changes in the same batch
/// via the telescoped multiset derivative:
///
/// ```text
/// Δ(F ⋈ D1 ⋈ … ⋈ Dk) = ΔF ⋈ D1 ⋈ … ⋈ Dk                 (old dims)
///                     + F' ⋈ ΔD1 ⋈ D2 ⋈ … ⋈ Dk           (new fact)
///                     + F' ⋈ D1' ⋈ ΔD2 ⋈ … ⋈ Dk
///                     + …
/// ```
///
/// where `X'` denotes the post-change state. Each term carries exactly one
/// signed input, so its tuples route to prepare-insertions or
/// prepare-deletions by that input's sign.
pub fn propagate_view(
    catalog: &Catalog,
    view: &AugmentedView,
    batch: &ChangeBatch,
    opts: &PropagateOptions,
) -> CoreResult<Relation> {
    propagate_view_metered(catalog, view, batch, opts, &mut ExecutionMetrics::new())
}

/// [`propagate_view`], booking every operator's work plus the resulting
/// summary-delta cardinality into `m`.
pub fn propagate_view_metered(
    catalog: &Catalog,
    view: &AugmentedView,
    batch: &ChangeBatch,
    opts: &PropagateOptions,
    m: &mut ExecutionMetrics,
) -> CoreResult<Relation> {
    let fact = catalog.table(&view.def.fact_table)?;
    propagate_with_fact(catalog, fact, view, batch, opts, m)
}

/// [`propagate_view_metered`] with the fact table supplied by the caller
/// instead of looked up in the catalog — the hook that lets the sharded
/// path run the identical propagation per shard: pass shard `s`'s rows as
/// `fact` and a batch whose fact delta is restricted to shard `s`, and the
/// result is that shard's partial summary-delta.
fn propagate_with_fact(
    catalog: &Catalog,
    fact: &Table,
    view: &AugmentedView,
    batch: &ChangeBatch,
    opts: &PropagateOptions,
    m: &mut ExecutionMetrics,
) -> CoreResult<Relation> {
    let dims_changed = view
        .def
        .dim_joins
        .iter()
        .any(|d| batch.for_table(d).map(|x| !x.is_empty()).unwrap_or(false));

    if opts.pre_aggregate && !dims_changed {
        if let Some(sd) = propagate_preaggregated(catalog, fact, view, batch, opts, m)? {
            m.delta_rows += sd.len() as u64;
            return Ok(sd);
        }
    }

    let fact_schema = fact.schema().clone();
    let empty_delta = cubedelta_storage::DeltaSet::new(&view.def.fact_table);
    let fact_delta = batch
        .for_table(&view.def.fact_table)
        .unwrap_or(&empty_delta);

    let mut prepared: Vec<Relation> = Vec::new();

    // --- fact-change term: ΔF ⋈ old dims --------------------------------
    let old_dims: Vec<Relation> = view
        .def
        .dim_joins
        .iter()
        .map(|d| Ok(Relation::from_table(catalog.table(d)?)))
        .collect::<CoreResult<_>>()?;
    for (rows, sign) in [
        (&fact_delta.insertions, Sign::Insert),
        (&fact_delta.deletions, Sign::Delete),
    ] {
        if rows.is_empty() {
            continue;
        }
        let rel = Relation::new(fact_schema.clone(), rows.clone());
        let joined = join_chain(catalog, view, rel, &old_dims, m)?;
        prepared.push(prepare_project(catalog, view, &joined, sign)?);
    }

    // --- dimension-change terms ------------------------------------------
    if dims_changed {
        let fact_new = updated_relation(fact, batch)?;
        for (i, dim) in view.def.dim_joins.iter().enumerate() {
            let Some(dim_delta) = batch.for_table(dim).filter(|d| !d.is_empty()) else {
                continue;
            };
            // Dims before position i: post-change; after: pre-change.
            let mut dim_rels: Vec<Relation> = Vec::with_capacity(view.def.dim_joins.len());
            for (j, other) in view.def.dim_joins.iter().enumerate() {
                let t = catalog.table(other)?;
                dim_rels.push(if j < i {
                    updated_relation(t, batch)?
                } else {
                    Relation::from_table(t)
                });
            }
            let dim_schema = catalog.table(dim)?.schema().clone();
            for (rows, sign) in [
                (&dim_delta.insertions, Sign::Insert),
                (&dim_delta.deletions, Sign::Delete),
            ] {
                if rows.is_empty() {
                    continue;
                }
                dim_rels[i] = Relation::new(dim_schema.clone(), rows.clone());
                let joined = join_chain(catalog, view, fact_new.clone(), &dim_rels, m)?;
                prepared.push(prepare_project(catalog, view, &joined, sign)?);
            }
        }
    }

    // --- union and aggregate ---------------------------------------------
    let prepare_changes = match prepared.len() {
        0 => {
            // No relevant changes: empty prepare relation with the right
            // schema.
            let joined = join_chain(
                catalog,
                view,
                Relation::empty(fact_schema),
                &old_dims,
                m,
            )?;
            prepare_project(catalog, view, &joined, Sign::Insert)?
        }
        1 => prepared.pop().expect("one element"),
        _ => {
            let mut it = prepared.into_iter();
            let mut acc = it.next().expect("non-empty");
            for r in it {
                acc = union_all_metered(&acc, &r, m)?;
            }
            acc
        }
    };
    let sd = sd_from_prepare_opts(catalog, view, &prepare_changes, opts, m)?;
    m.delta_rows += sd.len() as u64;
    Ok(sd)
}

/// The §4.1.3 pre-aggregation path: propagate a virtual view grouped by the
/// fact-level attributes (fact group-bys plus the foreign keys of the
/// dimensions that own the remaining attributes), then derive the real
/// summary-delta from that partial delta via the standard lattice edge
/// rewrite. Returns `None` when the view is not eligible (some aggregate
/// source references dimension attributes).
fn propagate_preaggregated(
    catalog: &Catalog,
    fact: &Table,
    view: &AugmentedView,
    batch: &ChangeBatch,
    opts: &PropagateOptions,
    m: &mut ExecutionMetrics,
) -> CoreResult<Option<Relation>> {
    let fact_schema = fact.schema().clone();

    // Eligibility: every aggregate source ranges over fact columns.
    for spec in &view.def.aggregates {
        if let Some(e) = spec.func.input() {
            if !e.columns().iter().all(|c| fact_schema.contains(c)) {
                return Ok(None);
            }
        }
    }

    // Virtual group-by: fact-owned group attributes plus the foreign keys of
    // dimensions owning the rest.
    let mut virtual_group: Vec<String> = Vec::new();
    for g in &view.def.group_by {
        if fact_schema.contains(g) {
            if !virtual_group.contains(g) {
                virtual_group.push(g.clone());
            }
        } else {
            let dim = catalog
                .dimension_owning(&view.def.fact_table, g)
                .ok_or_else(|| {
                    CoreError::Maintenance(format!("no dimension owns attribute `{g}`"))
                })?;
            let fk = catalog
                .foreign_key(&view.def.fact_table, dim)
                .expect("owning dimension has a foreign key");
            if !virtual_group.contains(&fk.fact_column) {
                virtual_group.push(fk.fact_column.clone());
            }
        }
    }

    let mut vb = SummaryViewDef::builder(format!("__pre_{}", view.def.name), &view.def.fact_table)
        .filter(view.def.where_clause.clone())
        .group_by(virtual_group.iter().map(String::as_str));
    for spec in &view.def.aggregates {
        vb = vb.aggregate(spec.func.clone(), &spec.alias);
    }
    let virtual_view = augment(catalog, &vb.build())?;

    let Some(info) = cubedelta_lattice::derives(catalog, view, &virtual_view)? else {
        return Ok(None);
    };
    let eq = cubedelta_lattice::build_edge_query(catalog, &virtual_view, view, &info)?;

    // The virtual view's propagation counts as this view's work, except
    // its delta cardinality: only the final summary-delta is `delta_rows`.
    let mut partial_m = ExecutionMetrics::new();
    let partial = propagate_with_fact(
        catalog,
        fact,
        &virtual_view,
        batch,
        &PropagateOptions {
            pre_aggregate: false,
            ..*opts
        },
        &mut partial_m,
    )?;
    partial_m.delta_rows = 0;
    m.merge(&partial_m);
    m.rows_scanned += partial.len() as u64;
    Ok(Some(cubedelta_lattice::derive_child(catalog, &partial, &eq)?))
}

/// Per-step shard telemetry from [`propagate_view_sharded`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ShardStepStats {
    /// Shards the step ran over.
    pub shards: usize,
    /// Rows scanned across all per-shard propagations.
    pub rows_scanned: u64,
    /// Wall-clock time of the partial-delta merge, in microseconds.
    pub merge_us: u64,
    /// Partial summary-delta cardinality per shard — the skew signal.
    pub per_shard_delta_rows: Vec<u64>,
}

impl ShardStepStats {
    /// Max/mean of the per-shard partial-delta cardinalities; `0.0` when no
    /// shard produced rows. `1.0` means perfectly balanced.
    pub fn skew(&self) -> f64 {
        let total: u64 = self.per_shard_delta_rows.iter().sum();
        if total == 0 || self.per_shard_delta_rows.is_empty() {
            return 0.0;
        }
        let max = *self.per_shard_delta_rows.iter().max().expect("non-empty") as f64;
        let mean = total as f64 / self.per_shard_delta_rows.len() as f64;
        max / mean
    }

    /// These stats as a JSON object (skew is `null` when undefined — no
    /// shard produced rows — rather than NaN).
    pub fn to_json(&self) -> cubedelta_obs::json::JsonValue {
        use cubedelta_obs::json::JsonValue;
        JsonValue::object([
            ("shards", JsonValue::from(self.shards)),
            ("rows_scanned", JsonValue::from(self.rows_scanned)),
            ("merge_us", JsonValue::from(self.merge_us)),
            ("skew", JsonValue::from(self.skew())),
            (
                "per_shard_delta_rows",
                JsonValue::array(self.per_shard_delta_rows.iter().map(|&r| JsonValue::from(r))),
            ),
        ])
    }
}

/// Combines two partial aggregate values for the same group, one from each
/// side of a shard boundary — the self-maintainable combine rules: COUNT
/// and SUM add (NULL, "no rows in this shard", is the identity); MIN/MAX
/// take the null-skipping extremum. Exactly matches what
/// [`cubedelta_query::AggState`] would have produced over the union of the
/// shards' prepare tuples, which is what makes the merged summary-delta
/// bag-equal to the unsharded one.
fn combine_aggregate(func: &AggFunc, a: &Value, b: &Value) -> CoreResult<Value> {
    Ok(match func {
        AggFunc::CountStar | AggFunc::Count(_) | AggFunc::Sum(_) => {
            if a.is_null() {
                b.clone()
            } else if b.is_null() {
                a.clone()
            } else {
                a.add(b)
            }
        }
        AggFunc::Min(_) => a.min_sql(b),
        AggFunc::Max(_) => a.max_sql(b),
        AggFunc::Avg(_) => {
            return Err(CoreError::Maintenance(
                "AVG must be rewritten before maintenance".to_string(),
            ))
        }
    })
}

/// Merges per-shard partial summary-deltas into the view's summary-delta.
///
/// Groups are matched on the view's group-by prefix; aggregate columns
/// combine per [`combine_aggregate`]. Row order is deterministic: first
/// occurrence wins (partials are visited in shard order), so the merged
/// relation is identical run to run for a fixed shard count. Groups that
/// net to a zero count are kept — refresh needs them to process deletions.
fn merge_partial_sds(view: &AugmentedView, partials: Vec<Relation>) -> CoreResult<Relation> {
    let key_width = view.key_width();
    let schema = partials
        .first()
        .expect("at least one shard partial")
        .schema
        .clone();
    let mut rows: Vec<Row> = Vec::new();
    let mut index: HashMap<Row, usize> = HashMap::new();
    for part in partials {
        for row in part.rows {
            let key = Row::new(row.values()[..key_width].to_vec());
            match index.entry(key) {
                Entry::Vacant(e) => {
                    e.insert(rows.len());
                    rows.push(row);
                }
                Entry::Occupied(e) => {
                    let acc = &mut rows[*e.get()];
                    for (i, spec) in view.def.aggregates.iter().enumerate() {
                        let col = key_width + i;
                        acc.0[col] = combine_aggregate(&spec.func, &acc[col], &row[col])?;
                    }
                }
            }
        }
    }
    Ok(Relation::new(schema, rows))
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "sharded propagation panicked".to_string())
}

/// Computes the summary-delta for one view over a sharded fact table:
/// per-shard partial summary-deltas (the identical propagation, fed shard
/// `s`'s rows and the fact delta routed to shard `s`, with dimension
/// tables and deltas unrestricted) computed concurrently on up to
/// `opts.threads` scoped workers, then merged with the self-maintainable
/// combine rules. The union of the shards' inputs is exactly the unsharded
/// input, so the merged summary-delta is bag-equal to the unsharded one —
/// refresh canonicalizes it, making the refreshed tables byte-identical.
///
/// Panic-safe: a panic in a shard worker or mid-merge is caught and
/// surfaced as [`CoreError::Maintenance`]; propagation never mutates the
/// catalog, so no state needs restoring.
pub fn propagate_view_sharded(
    catalog: &Catalog,
    sharded: &ShardedTable,
    view: &AugmentedView,
    batch: &ChangeBatch,
    opts: &PropagateOptions,
    m: &mut ExecutionMetrics,
) -> CoreResult<(Relation, ShardStepStats)> {
    if sharded.name() != view.def.fact_table {
        return Err(CoreError::Maintenance(format!(
            "sharded table `{}` does not back view `{}` (fact table `{}`)",
            sharded.name(),
            view.def.name,
            view.def.fact_table
        )));
    }
    let n = sharded.num_shards();
    if n <= 1 {
        let sd = propagate_with_fact(catalog, sharded.shard(0), view, batch, opts, m)?;
        let stats = ShardStepStats {
            shards: 1,
            rows_scanned: 0,
            merge_us: 0,
            per_shard_delta_rows: vec![sd.len() as u64],
        };
        return Ok((sd, stats));
    }

    // Route the fact delta; dimension deltas replicate to every shard (the
    // telescoped dimension-change terms join each shard's fact rows against
    // the full dimension delta, and the per-shard terms union to the
    // unsharded term because F' = ⊎ F'_s).
    let empty_delta = DeltaSet::new(&view.def.fact_table);
    let fact_delta = batch
        .for_table(&view.def.fact_table)
        .unwrap_or(&empty_delta);
    let routed = sharded.route_delta(fact_delta);
    let shard_batches: Vec<ChangeBatch> = routed
        .into_iter()
        .map(|d| {
            let mut deltas: Vec<DeltaSet> = batch
                .deltas
                .iter()
                .filter(|x| x.table != view.def.fact_table)
                .cloned()
                .collect();
            deltas.push(d);
            ChangeBatch { deltas }
        })
        .collect();

    let caught = catch_unwind(AssertUnwindSafe(|| -> CoreResult<_> {
        let workers = opts.threads.max(1).min(n);
        // Thread budget splits across shards first; leftovers go into each
        // shard's own partitioned aggregation.
        let shard_opts = PropagateOptions {
            threads: (opts.threads.max(1) / workers).max(1),
            ..*opts
        };
        let mut partials: Vec<(Relation, ExecutionMetrics)> = Vec::with_capacity(n);
        if workers <= 1 {
            for (s, shard_batch) in shard_batches.iter().enumerate() {
                let mut pm = ExecutionMetrics::new();
                let sd = propagate_with_fact(
                    catalog,
                    sharded.shard(s),
                    view,
                    shard_batch,
                    &shard_opts,
                    &mut pm,
                )?;
                partials.push((sd, pm));
            }
        } else {
            type ShardOutcome = (usize, CoreResult<(Relation, ExecutionMetrics)>);
            let cursor = AtomicUsize::new(0);
            let shard_batches = &shard_batches;
            let results: Vec<Vec<ShardOutcome>> =
                std::thread::scope(|scope| {
                    let handles: Vec<_> = (0..workers)
                        .map(|_| {
                            let cursor = &cursor;
                            let shard_opts = &shard_opts;
                            scope.spawn(move || {
                                let mut done = Vec::new();
                                loop {
                                    let s = cursor.fetch_add(1, Ordering::Relaxed);
                                    if s >= n {
                                        break;
                                    }
                                    let mut pm = ExecutionMetrics::new();
                                    let sd = propagate_with_fact(
                                        catalog,
                                        sharded.shard(s),
                                        view,
                                        &shard_batches[s],
                                        shard_opts,
                                        &mut pm,
                                    );
                                    done.push((s, sd.map(|sd| (sd, pm))));
                                }
                                done
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|h| match h.join() {
                            Ok(v) => v,
                            Err(p) => std::panic::resume_unwind(p),
                        })
                        .collect()
                });
            let mut outcomes: Vec<ShardOutcome> = results.into_iter().flatten().collect();
            outcomes.sort_by_key(|(s, _)| *s);
            for (_, outcome) in outcomes {
                partials.push(outcome?);
            }
        }

        let mut stats = ShardStepStats {
            shards: n,
            rows_scanned: 0,
            merge_us: 0,
            per_shard_delta_rows: Vec::with_capacity(n),
        };
        let mut sds = Vec::with_capacity(n);
        for (sd, mut pm) in partials {
            // Only the merged summary-delta counts as this step's
            // delta_rows; the partials' cardinalities go to the skew stat.
            stats.rows_scanned += pm.rows_scanned;
            stats.per_shard_delta_rows.push(sd.len() as u64);
            pm.delta_rows = 0;
            m.merge(&pm);
            sds.push(sd);
        }

        crate::multi::failpoints::maybe_panic_merge(&view.def.name);
        let merge_start = Instant::now();
        let merged = merge_partial_sds(view, sds)?;
        stats.merge_us = merge_start.elapsed().as_micros() as u64;
        m.delta_rows += merged.len() as u64;
        Ok((merged, stats))
    }));
    match caught {
        Ok(result) => result,
        Err(payload) => Err(CoreError::Maintenance(format!(
            "sharded propagation of `{}` panicked: {}",
            view.def.name,
            panic_message(payload)
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_fixtures::*;
    use cubedelta_storage::{row, Date, DeltaSet, Value};
    use cubedelta_view::augment;

    fn d(offset: i32) -> Date {
        Date(10000 + offset)
    }

    #[test]
    fn section_2_1_summary_delta_for_sid_sales() {
        // §2.1's example: the sd table nets insertions against deletions
        // per (storeID, itemID, date) group.
        let cat = retail_catalog_small();
        let sid = augment(&cat, &sid_sales()).unwrap();
        let batch = ChangeBatch::single(DeltaSet {
            table: "pos".into(),
            insertions: vec![
                row![1i64, 10i64, d(0), 2i64, 1.0], // existing group
                row![9i64, 10i64, d(0), 4i64, 1.0], // new group (store 9)
            ],
            deletions: vec![row![1i64, 10i64, d(0), 5i64, 1.0]],
        });
        let sd = propagate_view(&cat, &sid, &batch, &PropagateOptions::default()).unwrap();
        assert_eq!(sd.len(), 2);
        let g1 = sd
            .rows
            .iter()
            .find(|r| r[0] == Value::Int(1))
            .expect("group (1,10,d0)");
        assert_eq!(g1[3], Value::Int(0)); // sd_Count: +1 -1
        assert_eq!(g1[4], Value::Int(-3)); // sd_Quantity: +2 -5
        let g9 = sd.rows.iter().find(|r| r[0] == Value::Int(9)).unwrap();
        assert_eq!(g9[3], Value::Int(1));
        assert_eq!(g9[4], Value::Int(4));
    }

    #[test]
    fn sd_schema_matches_summary_schema() {
        let cat = retail_catalog_small();
        let sid = augment(&cat, &sid_sales()).unwrap();
        let sd = propagate_view(
            &cat,
            &sid,
            &ChangeBatch::new(),
            &PropagateOptions::default(),
        )
        .unwrap();
        assert!(sd.is_empty());
        let expected = summary_schema(&cat, &sid).unwrap();
        assert_eq!(sd.schema.names(), expected.names());
    }

    #[test]
    fn propagate_with_dimension_join() {
        let cat = retail_catalog_small();
        let sic = augment(&cat, &sic_sales()).unwrap();
        let batch = ChangeBatch::single(DeltaSet::insertions(
            "pos",
            vec![row![2i64, 20i64, d(5), 6i64, 2.0]],
        ));
        let sd = propagate_view(&cat, &sic, &batch, &PropagateOptions::default()).unwrap();
        assert_eq!(sd.len(), 1);
        let r = &sd.rows[0];
        assert_eq!(r[0], Value::Int(2));
        assert_eq!(r[1], Value::str("snacks"));
        assert_eq!(r[2], Value::Int(1)); // sd count
        assert_eq!(r[3], Value::Date(d(5))); // sd min(date)
        assert_eq!(r[4], Value::Int(6)); // sd quantity
    }

    #[test]
    fn preaggregation_agrees_with_direct() {
        let cat = retail_catalog_small();
        for def in [sid_sales(), scd_sales(), sic_sales(), sr_sales()] {
            let v = augment(&cat, &def).unwrap();
            let batch = ChangeBatch::single(DeltaSet {
                table: "pos".into(),
                insertions: vec![
                    row![1i64, 20i64, d(0), 4i64, 1.0],
                    row![3i64, 30i64, d(2), 1i64, 0.5],
                ],
                deletions: vec![row![2i64, 10i64, d(0), 7i64, 1.0]],
            });
            let direct = propagate_view(&cat, &v, &batch, &PropagateOptions::default()).unwrap();
            let pre = propagate_view(
                &cat,
                &v,
                &batch,
                &PropagateOptions {
                    pre_aggregate: true,
                    ..Default::default()
                },
            )
            .unwrap();
            assert_eq!(
                direct.sorted_rows(),
                pre.sorted_rows(),
                "pre-aggregation diverged for {}",
                v.def.name
            );
        }
    }

    #[test]
    fn dimension_table_changes_section_4_1_4() {
        // Move item 10 from "drinks" to a new category by deleting and
        // re-inserting its dimension row; SiC_sales must shift counts.
        let cat = retail_catalog_small();
        let sic = augment(&cat, &sic_sales()).unwrap();
        let mut batch = ChangeBatch::new();
        batch.add(DeltaSet {
            table: "items".into(),
            insertions: vec![row![10i64, "cola", "beverages", 0.5]],
            deletions: vec![row![10i64, "cola", "drinks", 0.5]],
        });
        let sd = propagate_view(&cat, &sic, &batch, &PropagateOptions::default()).unwrap();
        // pos has 3 rows of item 10: (1,.. x2) and (2,.. x1).
        // Deltas: (1,drinks,-2), (2,drinks,-1), (1,beverages,+2),
        // (2,beverages,+1).
        assert_eq!(sd.len(), 4);
        let find = |store: i64, cat_name: &str| {
            sd.rows
                .iter()
                .find(|r| r[0] == Value::Int(store) && r[1] == Value::str(cat_name))
                .unwrap_or_else(|| panic!("no sd row for ({store}, {cat_name})"))
        };
        assert_eq!(find(1, "drinks")[2], Value::Int(-2));
        assert_eq!(find(2, "drinks")[2], Value::Int(-1));
        assert_eq!(find(1, "beverages")[2], Value::Int(2));
        assert_eq!(find(2, "beverages")[2], Value::Int(1));
    }

    #[test]
    fn simultaneous_fact_and_dimension_changes() {
        // Insert a pos row for item 10 while item 10 changes category in the
        // same batch: the new fact row must land in the *new* category.
        let cat = retail_catalog_small();
        let sic = augment(&cat, &sic_sales()).unwrap();
        let mut batch = ChangeBatch::new();
        batch.add(DeltaSet::insertions(
            "pos",
            vec![row![3i64, 10i64, d(3), 9i64, 1.0]],
        ));
        batch.add(DeltaSet {
            table: "items".into(),
            insertions: vec![row![10i64, "cola", "beverages", 0.5]],
            deletions: vec![row![10i64, "cola", "drinks", 0.5]],
        });
        let sd = propagate_view(&cat, &sic, &batch, &PropagateOptions::default()).unwrap();
        // Net effect per group must match recomputation; spot-check the new
        // fact row's group: (3, beverages) gains count 1, qty 9.
        let g = sd
            .rows
            .iter()
            .find(|r| r[0] == Value::Int(3) && r[1] == Value::str("beverages"))
            .expect("new row lands in beverages");
        assert_eq!(g[2], Value::Int(1));
        assert_eq!(g[4], Value::Int(9));
        // The telescoped derivative may emit a net-zero row for
        // (3, drinks) — the fact term adds it under the old category and the
        // dimension term removes it — but the net change must be zero.
        if let Some(g) = sd
            .rows
            .iter()
            .find(|r| r[0] == Value::Int(3) && r[1] == Value::str("drinks"))
        {
            assert_eq!(g[2], Value::Int(0), "net count for (3, drinks) is zero");
        }
    }

    #[test]
    fn metered_propagation_books_work() {
        let cat = retail_catalog_small();
        let sic = augment(&cat, &sic_sales()).unwrap();
        let batch = ChangeBatch::single(DeltaSet::insertions(
            "pos",
            vec![row![2i64, 20i64, d(5), 6i64, 2.0]],
        ));
        let mut m = ExecutionMetrics::new();
        let sd =
            propagate_view_metered(&cat, &sic, &batch, &PropagateOptions::default(), &mut m)
                .unwrap();
        assert_eq!(m.delta_rows, sd.len() as u64);
        assert!(m.rows_scanned > 0, "join inputs were scanned");
        assert!(m.hash_build_rows > 0, "dimension build side was hashed");
        assert!(m.groups_touched > 0, "aggregation touched groups");
        assert!(m.rows_emitted > 0);
    }

    #[test]
    fn empty_batch_produces_empty_sd() {
        let cat = retail_catalog_small();
        let sr = augment(&cat, &sr_sales()).unwrap();
        let sd = propagate_view(
            &cat,
            &sr,
            &ChangeBatch::new(),
            &PropagateOptions::default(),
        )
        .unwrap();
        assert!(sd.is_empty());
    }
}
