//! Integration tests at workload scale: the §6 generators driving multiple
//! nightly batches over a generated warehouse, checking full consistency
//! after every night.

mod common;

use common::figure1_defs;
use cubedelta::core::{MaintainOptions, Warehouse};
use cubedelta::storage::ChangeBatch;
use cubedelta::workload::{
    insertion_generating, retail_catalog, update_generating, WorkloadScale,
};

fn midsize() -> WorkloadScale {
    WorkloadScale {
        stores: 20,
        cities: 8,
        regions: 3,
        items: 50,
        categories: 6,
        dates: 10,
        pos_rows: 2_000,
        seed: 7,
    }
}

fn build_warehouse(scale: WorkloadScale) -> (Warehouse, cubedelta::workload::RetailParams) {
    let (cat, params) = retail_catalog(scale);
    let mut wh = Warehouse::from_catalog(cat);
    for def in figure1_defs() {
        wh.create_summary_table(&def).unwrap();
    }
    (wh, params)
}

#[test]
fn update_generating_nights() {
    let (mut wh, params) = build_warehouse(midsize());
    for night in 0..3u64 {
        let delta = update_generating(wh.catalog(), &params, 200, night + 1);
        let batch = ChangeBatch::single(delta);
        let report = wh.maintain(&batch, &MaintainOptions::default()).unwrap();
        wh.check_consistency().unwrap();
        // Update-generating changes mostly update SID_sales rows.
        let sid = report.view("SID_sales").unwrap();
        assert!(
            sid.refresh.updated + sid.refresh.recomputed + sid.refresh.deleted
                + sid.refresh.inserted
                > 0
        );
    }
}

#[test]
fn insertion_generating_nights_insert_into_date_views() {
    let (mut wh, params) = build_warehouse(midsize());
    for night in 0..3u64 {
        let delta = insertion_generating(&params, 200, (night + 1) as usize, night + 77);
        let batch = ChangeBatch::single(delta);
        let report = wh.maintain(&batch, &MaintainOptions::default()).unwrap();
        wh.check_consistency().unwrap();
        if night == 0 {
            // §6: insertions over new dates cause only inserts into the two
            // views grouped by date…
            let sid = report.view("SID_sales").unwrap();
            assert_eq!(
                sid.refresh.updated, 0,
                "new dates cannot update existing SID groups"
            );
            assert!(sid.refresh.inserted > 0);
            let scd = report.view("sCD_sales").unwrap();
            assert_eq!(scd.refresh.updated, 0);
            // …and mostly updates into the other two.
            let sic = report.view("SiC_sales").unwrap();
            assert!(sic.refresh.updated > 0);
            let sr = report.view("sR_sales").unwrap();
            assert!(sr.refresh.updated > 0);
            assert_eq!(sr.refresh.inserted, 0, "regions already exist");
        }
    }
}

#[test]
fn lattice_vs_direct_agree_at_scale() {
    let scale = midsize();
    let (mut a, params) = build_warehouse(scale);
    let (mut b, _) = build_warehouse(scale);
    let delta = update_generating(a.catalog(), &params, 300, 5);
    let batch = ChangeBatch::single(delta);
    a.maintain(&batch, &MaintainOptions::default()).unwrap();
    b.maintain(
        &batch,
        &MaintainOptions {
            use_lattice: false,
            pre_aggregate: false,
        },
    )
    .unwrap();
    for def in figure1_defs() {
        assert_eq!(
            a.catalog().table(&def.name).unwrap().sorted_rows(),
            b.catalog().table(&def.name).unwrap().sorted_rows(),
            "{} diverged at scale",
            def.name
        );
    }
}

#[test]
fn rematerialize_matches_incremental_at_scale() {
    let scale = midsize();
    let (mut inc, params) = build_warehouse(scale);
    let (mut rem, _) = build_warehouse(scale);
    let delta = update_generating(inc.catalog(), &params, 300, 9);
    let batch = ChangeBatch::single(delta);
    inc.maintain(&batch, &MaintainOptions::default()).unwrap();
    rem.rematerialize(&batch, true).unwrap();
    for def in figure1_defs() {
        assert_eq!(
            inc.catalog().table(&def.name).unwrap().sorted_rows(),
            rem.catalog().table(&def.name).unwrap().sorted_rows(),
            "{} diverged from rematerialization",
            def.name
        );
    }
}

#[test]
fn summary_tables_are_smaller_than_the_fact_table() {
    // The premise of the whole enterprise: aggregation compresses.
    let (wh, _) = build_warehouse(midsize());
    let pos = wh.catalog().table("pos").unwrap().len();
    for def in figure1_defs() {
        let n = wh.catalog().table(&def.name).unwrap().len();
        assert!(n <= pos, "{} larger than the fact table?", def.name);
    }
    let sr = wh.catalog().table("sR_sales").unwrap().len();
    assert!(sr <= 3, "one row per region");
}
