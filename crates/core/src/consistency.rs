//! Consistency checking: a summary table must always equal what
//! recomputation from base data would produce. The test suites use this
//! after every maintenance cycle; production deployments can run it as an
//! audit.

use cubedelta_storage::Catalog;
use cubedelta_view::{materialize, AugmentedView};

use crate::error::{CoreError, CoreResult};

/// Verifies that the view's materialized summary table equals a fresh
/// recomputation (bag equality). Errors with a diff summary otherwise.
pub fn check_view_consistency(catalog: &Catalog, view: &AugmentedView) -> CoreResult<()> {
    let expected = materialize(catalog, view)?;
    let actual = catalog.table(&view.def.name)?;
    let mut want = expected.rows;
    want.sort();
    let have = actual.sorted_rows();
    if want != have {
        let missing = want.iter().filter(|r| !have.contains(r)).count();
        let extra = have.iter().filter(|r| !want.contains(r)).count();
        return Err(CoreError::Maintenance(format!(
            "summary table `{}` inconsistent with base data: {} row(s) missing, {} extra \
             (have {}, want {})",
            view.def.name,
            missing,
            extra,
            have.len(),
            want.len()
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_fixtures::*;
    use cubedelta_storage::row;
    use cubedelta_view::{augment, install_summary_table};

    #[test]
    fn consistent_view_passes() {
        let mut cat = retail_catalog_small();
        let view = augment(&cat, &sid_sales()).unwrap();
        install_summary_table(&mut cat, &view).unwrap();
        check_view_consistency(&cat, &view).unwrap();
    }

    #[test]
    fn tampered_view_fails() {
        let mut cat = retail_catalog_small();
        let view = augment(&cat, &sid_sales()).unwrap();
        install_summary_table(&mut cat, &view).unwrap();
        // Corrupt the summary table.
        let t = cat.table_mut("SID_sales").unwrap();
        let (rid, _) = t.iter().next().map(|(id, r)| (id, r.clone())).unwrap();
        t.delete(rid).unwrap();
        let err = check_view_consistency(&cat, &view).unwrap_err();
        assert!(err.to_string().contains("inconsistent"), "{err}");
    }

    #[test]
    fn base_change_without_refresh_fails() {
        let mut cat = retail_catalog_small();
        let view = augment(&cat, &sid_sales()).unwrap();
        install_summary_table(&mut cat, &view).unwrap();
        cat.table_mut("pos")
            .unwrap()
            .insert(row![4i64, 30i64, cubedelta_storage::Date(10003), 1i64, 1.0])
            .unwrap();
        assert!(check_view_consistency(&cat, &view).is_err());
    }
}
