//! Integration tests reproducing the paper's lattice figures: the cube
//! lattice (Figure 4), the combined lattice (Figure 5), partially
//! materialized lattices (§3.4), the V-lattice of Figure 8, and
//! lattice-friendly rewriting (§5.2).

mod common;

use common::figure1_defs;
use cubedelta::lattice::{
    combined_lattice, cube_lattice, make_lattice_friendly, Hierarchy, ViewLattice,
};
use cubedelta::view::augment;
use cubedelta::workload::retail_catalog_small;

#[test]
fn figure_4_cube_lattice() {
    let lat = cube_lattice(&["storeID", "itemID", "date"]);
    assert_eq!(lat.len(), 8);
    assert_eq!(lat.edges().len(), 12);
    // Spot-check the rendered levels match the figure's rows.
    let render = lat.render();
    let lines: Vec<&str> = render.lines().collect();
    assert_eq!(lines[0], "(date, itemID, storeID)");
    assert_eq!(lines[3], "()");
    assert_eq!(lines[1].matches('(').count(), 3, "three 2-attribute views");
    assert_eq!(lines[2].matches('(').count(), 3, "three 1-attribute views");
}

#[test]
fn figure_5_combined_lattice() {
    let hierarchies = vec![
        Hierarchy::new("stores", &["storeID", "city", "region"]),
        Hierarchy::new("items", &["itemID", "category"]),
        Hierarchy::flat("date"),
    ];
    let lat = combined_lattice(&hierarchies);
    assert_eq!(lat.len(), 24);

    // Every node from the figure is present.
    for node in [
        vec!["storeID", "itemID", "date"],
        vec!["storeID", "itemID"],
        vec!["storeID", "category", "date"],
        vec!["city", "itemID", "date"],
        vec!["storeID", "category"],
        vec!["city", "itemID"],
        vec!["storeID", "date"],
        vec!["city", "category", "date"],
        vec!["region", "itemID", "date"],
        vec!["storeID"],
        vec!["city", "category"],
        vec!["region", "itemID"],
        vec!["city", "date"],
        vec!["region", "category", "date"],
        vec!["itemID", "date"],
        vec!["city"],
        vec!["region", "category"],
        vec!["itemID"],
        vec!["region", "date"],
        vec!["category", "date"],
        vec!["region"],
        vec!["category"],
        vec!["date"],
        vec![],
    ] {
        assert!(
            lat.find(node.clone()).is_some(),
            "Figure 5 node {node:?} missing"
        );
    }
}

#[test]
fn figure_5_from_catalog_hierarchies() {
    // The same lattice can be built from catalog metadata.
    let cat = retail_catalog_small();
    let stores = Hierarchy::from_catalog(&cat, "stores", &[]).unwrap();
    let items = Hierarchy::from_catalog(&cat, "items", &["category"]).unwrap();
    let lat = combined_lattice(&[stores, items, Hierarchy::flat("date")]);
    assert_eq!(lat.len(), 24);
}

#[test]
fn partial_materialization_rewires_transitively() {
    // Drop (city, itemID, date) and (storeID, itemID) from a slice of
    // Figure 5; (city, itemID) must still derive from the top.
    let hierarchies = vec![
        Hierarchy::new("stores", &["storeID", "city"]),
        Hierarchy::new("items", &["itemID"]),
    ];
    let mut lat = combined_lattice(&hierarchies);
    let top = lat.find(["storeID", "itemID"]).unwrap();
    let ci = lat.find(["city", "itemID"]).unwrap();
    assert!(lat.derivable(ci, top));
    // Remove the only intermediate node between them, if any exist.
    let removed = lat.find(["city", "itemID"]).unwrap();
    assert_eq!(removed, ci);
    lat.remove_node(ci);
    // (city) now hangs below (storeID, itemID) through (storeID) or
    // directly; every remaining node still reachable from the top.
    let top = lat.find(["storeID", "itemID"]).unwrap();
    for i in 0..lat.len() {
        assert!(
            i == top || lat.derivable(i, top),
            "node {:?} lost derivability",
            lat.nodes()[i]
        );
    }
}

#[test]
fn figure_8_v_lattice_shape_and_annotations() {
    let cat = retail_catalog_small();
    let views: Vec<_> = figure1_defs()
        .iter()
        .map(|d| augment(&cat, d).unwrap())
        .collect();
    let lat = ViewLattice::build(&cat, views).unwrap();
    let render = lat.render();
    // Figure 8's edges with their dimension-join labels.
    assert!(render.contains("SID_sales -> SiC_sales [join items]"));
    assert!(render.contains("SID_sales -> sCD_sales [join stores]"));
    assert!(render.contains("SiC_sales -> sR_sales [join stores]"));
    assert!(render.contains("sCD_sales -> sR_sales [join stores]"));
    // SID on top, sR at the bottom.
    let first_line = render.lines().next().unwrap();
    assert!(first_line.contains("SID_sales"));
}

#[test]
fn lattice_friendly_rewriting_gives_figure_8_join_free_edge() {
    // After §5.2 widening, sCD_sales carries region and the sCD → sR edge
    // loses its stores join, exactly as Figure 8 shows.
    let cat = retail_catalog_small();
    let friendly = make_lattice_friendly(&cat, &figure1_defs()).unwrap();
    let scd = friendly.iter().find(|d| d.name == "sCD_sales").unwrap();
    assert!(scd.group_by.contains(&"region".to_string()));
    let views: Vec<_> = friendly.iter().map(|d| augment(&cat, d).unwrap()).collect();
    let lat = ViewLattice::build(&cat, views).unwrap();
    assert!(
        lat.render().contains("sCD_sales -> sR_sales\n"),
        "expected a join-free edge:\n{}",
        lat.render()
    );
}

#[test]
fn cube_views_count_scales_exponentially() {
    assert_eq!(cube_lattice(&["a"]).len(), 2);
    assert_eq!(cube_lattice(&["a", "b"]).len(), 4);
    assert_eq!(cube_lattice(&["a", "b", "c", "d"]).len(), 16);
}
