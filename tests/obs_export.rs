//! Prometheus exporter integration tests: the rendered registry must be
//! valid exposition format (checked with the in-repo parser, which
//! enforces the histogram invariants), and a live scrape of a running
//! [`WarehouseService`] must reflect the service's actual state.

mod common;

use std::io::Write;
use std::net::TcpStream;
use std::time::{Duration, Instant};

use common::{small_warehouse, synth_pos_row};
use cubedelta::core::{BatchPolicy, MaintainOptions, WarehouseService};
use cubedelta::obs::{parse_prometheus, render_prometheus, scrape_once, PromFamily};
use cubedelta::storage::{ChangeBatch, DeltaSet};

fn family<'a>(families: &'a [PromFamily], name: &str) -> &'a PromFamily {
    families
        .iter()
        .find(|f| f.name == name)
        .unwrap_or_else(|| panic!("family `{name}` missing"))
}

/// The single (unlabelled) sample value of a counter/gauge family.
fn scalar(families: &[PromFamily], name: &str) -> f64 {
    family(families, name)
        .value(name)
        .unwrap_or_else(|| panic!("`{name}` has no unlabelled sample"))
}

/// A warehouse that has done real work renders to exposition text the
/// strict in-repo parser accepts, with every family under the
/// `cubedelta_` prefix and the maintenance counters present.
#[test]
fn rendered_registry_is_valid_exposition() {
    let mut wh = small_warehouse();
    let batch = ChangeBatch::single(DeltaSet::insertions(
        "pos",
        (0..32).map(synth_pos_row).collect(),
    ));
    wh.maintain(&batch, &MaintainOptions::default()).unwrap();

    let text = render_prometheus(&wh.metrics().snapshot());
    let families = parse_prometheus(&text).unwrap();
    assert!(!families.is_empty());
    for fam in &families {
        assert!(
            fam.name.starts_with("cubedelta_"),
            "family `{}` escaped the namespace",
            fam.name
        );
    }
    assert_eq!(scalar(&families, "cubedelta_maintain_cycles_total"), 1.0);
    // Dotted registry names sanitize to underscores, and histograms
    // carry the full bucket/sum/count series (invariants enforced by
    // `parse_prometheus`).
    let hist = family(&families, "cubedelta_maintain_propagate_us");
    assert!(hist.samples.iter().any(|s| s.0.ends_with("_bucket")));
}

/// Scraping a live service over HTTP reflects its queue state, SLO
/// verdict, and ingest counters.
#[test]
fn live_scrape_reflects_service_state() {
    let mut svc = WarehouseService::start(
        small_warehouse(),
        BatchPolicy {
            max_rows: 4,
            max_batches: 2,
            flush_interval: Duration::from_millis(5),
        },
    );
    let addr = svc.serve_metrics("127.0.0.1:0").unwrap();
    assert_eq!(svc.metrics_addr(), Some(addr));

    for seed in 0..10 {
        svc.ingest(DeltaSet::insertions("pos", vec![synth_pos_row(seed)]))
            .unwrap();
    }
    svc.flush().unwrap();
    assert!(svc.health().is_healthy(), "drained service must be healthy");

    let text = scrape_once(addr).unwrap();
    let families = parse_prometheus(&text).unwrap();
    assert_eq!(scalar(&families, "cubedelta_ingest_rows_total"), 10.0);
    assert_eq!(scalar(&families, "cubedelta_queue_depth"), 0.0);
    assert_eq!(scalar(&families, "cubedelta_healthy"), 1.0);
    assert_eq!(scalar(&families, "cubedelta_cycles_behind"), 0.0);
    let count = family(&families, "cubedelta_staleness_us")
        .value("cubedelta_staleness_us_count")
        .unwrap();
    assert!(count >= 1.0, "staleness histogram never recorded");

    // Re-binding replaces the endpoint; the old port stops serving.
    let addr2 = svc.serve_metrics("127.0.0.1:0").unwrap();
    assert_ne!(addr, addr2);
    assert!(scrape_once(addr2).is_ok());

    let report = svc.shutdown();
    assert!(report.error.is_none());
    // The endpoint died with the service handle.
    assert!(scrape_once(addr2).is_err(), "server must stop at shutdown");
}

/// The stall regression: clients that connect and then go silent (or send
/// a request and never read the response) must not wedge the exporter.
/// Each connection is served on its own capped, timeout-bounded thread, so
/// a healthy scrape succeeds while half a dozen stallers sit on the
/// endpoint, and shutdown still completes within the timeout budget.
#[test]
fn stalled_clients_do_not_wedge_scrapes_or_shutdown() {
    let mut svc = WarehouseService::start(
        small_warehouse(),
        BatchPolicy {
            max_rows: 64,
            max_batches: 4,
            flush_interval: Duration::from_millis(50),
        },
    );
    let addr = svc.serve_metrics("127.0.0.1:0").unwrap();

    // Six clients connect and never send a byte: each parks one handler
    // thread in its 2-second read timeout.
    let silent: Vec<TcpStream> = (0..6).map(|_| TcpStream::connect(addr).unwrap()).collect();
    // Two more send a full request and never read the (large) response:
    // the write side must also time out rather than block forever.
    let deaf: Vec<TcpStream> = (0..2)
        .map(|_| {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n")
                .unwrap();
            s
        })
        .collect();

    // A well-behaved scrape goes through while all eight stallers are
    // still parked — the old single-threaded accept loop failed here.
    let t0 = Instant::now();
    let text = scrape_once(addr).unwrap();
    assert!(
        t0.elapsed() < Duration::from_secs(5),
        "scrape took {:?} with stalled peers parked",
        t0.elapsed()
    );
    assert!(parse_prometheus(&text).is_ok());

    // Shutdown joins only the accept thread; stalled handlers drain on
    // their own timeouts and must not hold the service hostage.
    let t1 = Instant::now();
    let report = svc.shutdown();
    assert!(report.error.is_none());
    assert!(
        t1.elapsed() < Duration::from_secs(5),
        "shutdown took {:?} with stalled peers parked",
        t1.elapsed()
    );
    drop(silent);
    drop(deaf);
}
