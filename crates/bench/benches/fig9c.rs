//! Figure 9(c): elapsed time vs change-set size, insertion-generating
//! changes (inserts over new dates).
//!
//! The shape under test: the summary-delta win over rematerialization is
//! even larger than in 9(a) — date-grouped views take pure inserts and the
//! refresh gets cheaper (the paper reports refresh dropping by ~50%).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use cubedelta_bench::{build_warehouse, insertion_batch, run_strategy, Strategy};

fn bench(c: &mut Criterion) {
    let (wh, params) = build_warehouse(100_000);
    let mut group = c.benchmark_group("fig9c_insertion_changes");
    group
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(3));

    for &size in &[1_000usize, 5_000, 10_000] {
        let batch = insertion_batch(&params, size, size as u64);
        for strategy in [
            Strategy::SummaryDelta,
            Strategy::SummaryDeltaNoLattice,
            Strategy::Rematerialize,
        ] {
            group.bench_with_input(
                BenchmarkId::new(strategy.label(), size),
                &batch,
                |b, batch| {
                    b.iter(|| run_strategy(&wh, batch, strategy).0);
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
