//! Operator-level execution counters, threaded by `&mut` through the
//! query operators and the maintenance pipeline.

use std::fmt;

/// Counters for one unit of query/maintenance work.
///
/// The struct is plain data: operators increment fields directly
/// (`metrics.rows_scanned += n`), callers [`merge`](Self::merge) child
/// metrics upward, and reports serialize the whole set. Keeping it a
/// value type (no atomics, no locks) means instrumentation costs one
/// integer add per event on the hot path.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ExecutionMetrics {
    /// Input rows consumed by operators (scans, filter/project/aggregate
    /// inputs, union arms, recompute fact scans).
    pub rows_scanned: u64,
    /// Rows produced by operators.
    pub rows_emitted: u64,
    /// Point lookups against a storage-level unique index (refresh §4.2).
    pub index_probes: u64,
    /// Index probes that found a row.
    pub index_hits: u64,
    /// Rows inserted into join/aggregate hash tables.
    pub hash_build_rows: u64,
    /// Probes against join hash tables.
    pub hash_probes: u64,
    /// Distinct groups touched by aggregation.
    pub groups_touched: u64,
    /// Predicate evaluations and sort/merge key comparisons.
    pub comparisons: u64,
    /// Summary-delta tuples produced by propagate (delta cardinality).
    pub delta_rows: u64,
    /// Rows aggregated through the vectorized columnar kernel (0 under the
    /// row engine or when the columnar kernel fell back to the row path).
    /// Schedule-independent: sequential and partitioned runs book the same
    /// total for the same input.
    pub vectorized_rows: u64,
    /// Column-chunk slices materialized by the columnar kernel (one per
    /// chunk of rows per column touched). Partition-dependent — per-thread
    /// partitions each round up to a chunk — so it is *not* a work counter.
    pub chunks_scanned: u64,
    /// Parallel-operator invocations that fell back to the sequential path
    /// (input too small, single thread requested, or a global aggregate).
    /// Unlike the work counters above, this one is scheduling-dependent: a
    /// single-thread run books zero fallbacks because parallelism was never
    /// requested.
    pub par_fallbacks: u64,
    /// Refresh-scheduler levels that declined parallelism (threads were
    /// requested but the level held a single view, so there was no
    /// across-view work to split). Scheduling-dependent, like
    /// `par_fallbacks`.
    pub refresh_par_fallbacks: u64,
    /// Per-table lock acquisitions that found the lock already held and
    /// had to block. Scheduling-dependent.
    pub lock_waits: u64,
    /// Total wall-clock microseconds spent blocked on per-table locks.
    /// Scheduling-dependent.
    pub lock_wait_us: u64,
}

impl ExecutionMetrics {
    /// A fresh, all-zero metrics value.
    pub fn new() -> Self {
        Self::default()
    }

    /// Accumulates `other` into `self` field-by-field.
    pub fn merge(&mut self, other: &ExecutionMetrics) {
        self.rows_scanned += other.rows_scanned;
        self.rows_emitted += other.rows_emitted;
        self.index_probes += other.index_probes;
        self.index_hits += other.index_hits;
        self.hash_build_rows += other.hash_build_rows;
        self.hash_probes += other.hash_probes;
        self.groups_touched += other.groups_touched;
        self.comparisons += other.comparisons;
        self.delta_rows += other.delta_rows;
        self.vectorized_rows += other.vectorized_rows;
        self.chunks_scanned += other.chunks_scanned;
        self.par_fallbacks += other.par_fallbacks;
        self.refresh_par_fallbacks += other.refresh_par_fallbacks;
        self.lock_waits += other.lock_waits;
        self.lock_wait_us += other.lock_wait_us;
    }

    /// `(name, value)` pairs in a fixed order, for serialization.
    pub fn as_pairs(&self) -> [(&'static str, u64); 15] {
        [
            ("rows_scanned", self.rows_scanned),
            ("rows_emitted", self.rows_emitted),
            ("index_probes", self.index_probes),
            ("index_hits", self.index_hits),
            ("hash_build_rows", self.hash_build_rows),
            ("hash_probes", self.hash_probes),
            ("groups_touched", self.groups_touched),
            ("comparisons", self.comparisons),
            ("delta_rows", self.delta_rows),
            ("vectorized_rows", self.vectorized_rows),
            ("chunks_scanned", self.chunks_scanned),
            ("par_fallbacks", self.par_fallbacks),
            ("refresh_par_fallbacks", self.refresh_par_fallbacks),
            ("lock_waits", self.lock_waits),
            ("lock_wait_us", self.lock_wait_us),
        ]
    }

    /// The scheduling-independent *work* counters — everything except
    /// `par_fallbacks`, `refresh_par_fallbacks`, the lock-wait pair, and
    /// `chunks_scanned` (per-partition chunk counts round up with the
    /// thread count). Two runs of the same maintenance over different
    /// thread counts must agree on these (and the test suites assert it);
    /// fallback, lock-contention, and chunk counts legitimately differ
    /// with the schedule.
    pub fn work_pairs(&self) -> [(&'static str, u64); 10] {
        [
            ("rows_scanned", self.rows_scanned),
            ("rows_emitted", self.rows_emitted),
            ("index_probes", self.index_probes),
            ("index_hits", self.index_hits),
            ("hash_build_rows", self.hash_build_rows),
            ("hash_probes", self.hash_probes),
            ("groups_touched", self.groups_touched),
            ("comparisons", self.comparisons),
            ("delta_rows", self.delta_rows),
            ("vectorized_rows", self.vectorized_rows),
        ]
    }

    /// `true` when every counter is zero.
    pub fn is_zero(&self) -> bool {
        self.as_pairs().iter().all(|(_, v)| *v == 0)
    }

    /// Number of counters that are non-zero.
    pub fn distinct_nonzero(&self) -> usize {
        self.as_pairs().iter().filter(|(_, v)| *v != 0).count()
    }

    /// This metrics set as a JSON object.
    pub fn to_json(&self) -> crate::json::JsonValue {
        crate::json::JsonValue::object(
            self.as_pairs()
                .iter()
                .map(|(k, v)| (k.to_string(), crate::json::JsonValue::UInt(*v))),
        )
    }
}

impl std::ops::AddAssign<&ExecutionMetrics> for ExecutionMetrics {
    fn add_assign(&mut self, rhs: &ExecutionMetrics) {
        self.merge(rhs);
    }
}

impl fmt::Display for ExecutionMetrics {
    /// Compact `name=value` listing of the non-zero counters.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (name, value) in self.as_pairs() {
            if value == 0 {
                continue;
            }
            if !first {
                write!(f, " ")?;
            }
            write!(f, "{name}={value}")?;
            first = false;
        }
        if first {
            write!(f, "(no work recorded)")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_accumulates_every_field() {
        let mut a = ExecutionMetrics::new();
        let mut b = ExecutionMetrics::new();
        // Set each field to a distinct value so a dropped field shows up.
        for (i, slot) in [
            &mut b.rows_scanned,
            &mut b.rows_emitted,
            &mut b.index_probes,
            &mut b.index_hits,
            &mut b.hash_build_rows,
            &mut b.hash_probes,
            &mut b.groups_touched,
            &mut b.comparisons,
            &mut b.delta_rows,
            &mut b.vectorized_rows,
            &mut b.chunks_scanned,
            &mut b.par_fallbacks,
            &mut b.refresh_par_fallbacks,
            &mut b.lock_waits,
            &mut b.lock_wait_us,
        ]
        .into_iter()
        .enumerate()
        {
            *slot = (i + 1) as u64;
        }
        a.merge(&b);
        a += &b;
        for (i, (_, v)) in a.as_pairs().iter().enumerate() {
            assert_eq!(*v, 2 * (i as u64 + 1));
        }
        assert_eq!(a.distinct_nonzero(), 15);
    }

    #[test]
    fn work_pairs_exclude_scheduling_counters() {
        let m = ExecutionMetrics {
            rows_scanned: 3,
            chunks_scanned: 11,
            par_fallbacks: 7,
            refresh_par_fallbacks: 5,
            lock_waits: 2,
            lock_wait_us: 90,
            ..Default::default()
        };
        for scheduling in [
            "par_fallbacks",
            "refresh_par_fallbacks",
            "lock_waits",
            "lock_wait_us",
            "chunks_scanned",
        ] {
            assert!(m.work_pairs().iter().all(|(n, _)| *n != scheduling));
            // But the full pair set and JSON carry them.
            assert!(m.as_pairs().iter().any(|(n, _)| *n == scheduling));
            assert!(m.to_json().render().contains(&format!("\"{scheduling}\":")));
        }
        assert_eq!(m.work_pairs()[0], ("rows_scanned", 3));
    }

    #[test]
    fn display_lists_only_nonzero() {
        let mut m = ExecutionMetrics::new();
        assert_eq!(m.to_string(), "(no work recorded)");
        m.rows_scanned = 5;
        m.delta_rows = 2;
        assert_eq!(m.to_string(), "rows_scanned=5 delta_rows=2");
    }

    #[test]
    fn json_has_all_counters() {
        let m = ExecutionMetrics {
            rows_scanned: 1,
            ..Default::default()
        };
        let rendered = m.to_json().render();
        assert!(rendered.contains("\"rows_scanned\":1"));
        assert!(rendered.contains("\"delta_rows\":0"));
    }
}
