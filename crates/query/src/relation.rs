//! Materialized relations: the intermediate result representation.

use std::fmt;

use cubedelta_storage::{Row, Schema, Table};

/// A materialized relation: a schema plus a bag of rows.
///
/// Unlike [`Table`], a `Relation` is a transient query result — it carries
/// no indexes and performs no validation. Conversions to/from `Table` are
/// provided for materializing results into the catalog.
#[derive(Debug, Clone, PartialEq)]
pub struct Relation {
    /// Output schema.
    pub schema: Schema,
    /// Output rows (bag semantics).
    pub rows: Vec<Row>,
}

impl Relation {
    /// An empty relation with the given schema.
    pub fn empty(schema: Schema) -> Self {
        Relation {
            schema,
            rows: Vec::new(),
        }
    }

    /// A relation from parts.
    pub fn new(schema: Schema, rows: Vec<Row>) -> Self {
        Relation { schema, rows }
    }

    /// Snapshot of a stored table (clones the rows).
    pub fn from_table(table: &Table) -> Self {
        Relation {
            schema: table.schema().clone(),
            rows: table.to_rows(),
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True iff the relation has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Materializes into a named [`Table`] (validation off: query outputs
    /// are trusted, and computed columns may not match declared nullability
    /// exactly).
    pub fn into_table(self, name: &str) -> Table {
        let mut t = Table::new(name, self.schema);
        t.set_validate(false);
        t.insert_all(self.rows).expect("unvalidated insert cannot fail");
        t
    }

    /// Sorted copy of the rows — canonical form for bag-equality assertions.
    pub fn sorted_rows(&self) -> Vec<Row> {
        let mut v = self.rows.clone();
        v.sort();
        v
    }

    /// A copy of this relation with its rows in canonical (sorted) order.
    ///
    /// Parallel operators are free to emit rows in a schedule-dependent
    /// order; consumers that must behave identically regardless of how a
    /// relation was produced (the refresh apply path) canonicalize first.
    pub fn canonicalized(&self) -> Relation {
        Relation {
            schema: self.schema.clone(),
            rows: self.sorted_rows(),
        }
    }
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{} [{} rows]", self.schema, self.rows.len())?;
        for row in &self.rows {
            writeln!(f, "  {row}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cubedelta_storage::{row, Column, DataType};

    fn schema() -> Schema {
        Schema::new(vec![
            Column::new("a", DataType::Int),
            Column::new("b", DataType::Str),
        ])
    }

    #[test]
    fn roundtrip_through_table() {
        let rel = Relation::new(schema(), vec![row![1i64, "x"], row![1i64, "x"]]);
        assert_eq!(rel.len(), 2);
        let t = rel.clone().into_table("t");
        assert_eq!(t.len(), 2);
        let back = Relation::from_table(&t);
        assert_eq!(back.sorted_rows(), rel.sorted_rows());
    }

    #[test]
    fn canonicalized_is_order_insensitive() {
        let a = Relation::new(schema(), vec![row![2i64, "y"], row![1i64, "x"]]);
        let b = Relation::new(schema(), vec![row![1i64, "x"], row![2i64, "y"]]);
        assert_ne!(a.rows, b.rows);
        assert_eq!(a.canonicalized(), b.canonicalized());
        assert_eq!(a.canonicalized().rows, a.sorted_rows());
    }

    #[test]
    fn empty_relation() {
        let rel = Relation::empty(schema());
        assert!(rel.is_empty());
        assert_eq!(rel.len(), 0);
    }
}
