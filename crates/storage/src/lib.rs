//! # cubedelta-storage
//!
//! The storage substrate for CubeDelta: an in-memory relational engine with
//! multiset (bag) semantics, matching the warehouse model of the paper
//! *"Maintenance of Data Cubes and Summary Tables in a Warehouse"*
//! (Mumick, Quass & Mumick, SIGMOD 1997).
//!
//! This crate provides:
//!
//! * [`Value`] — the SQL-ish value model (integers, floats, strings, dates,
//!   and NULL) with a total order and hashing so values can serve as
//!   group-by keys.
//! * [`Schema`] / [`Column`] — named, typed column lists.
//! * [`Row`] — a tuple of values.
//! * [`Table`] — a slotted multiset of rows (duplicates allowed, as the
//!   paper's `pos` fact table requires) with optional hash indexes.
//! * [`ColumnarTable`] — the same multiset behind typed column chunks
//!   (`Int64`/`Float64`/`Str`-dictionary/`Date` vectors + null bitmaps),
//!   selected by the [`StorageMode`] policy knob for the propagate hot path.
//! * [`HashIndex`] / [`UniqueIndex`] — composite hash indexes, mirroring the
//!   composite indexes on group-by columns used in the paper's §6 study.
//! * [`Catalog`] — the warehouse catalog: fact tables, dimension tables,
//!   foreign keys, and functional dependencies (dimension hierarchies).
//! * [`DeltaSet`] — deferred sets of insertions and deletions, the unit of
//!   change a warehouse receives during the day and applies in the nightly
//!   batch window.

pub mod binenc;
pub mod catalog;
pub mod column;
pub mod csv;
pub mod datatype;
pub mod delta;
pub mod error;
pub mod index;
pub mod row;
pub mod schema;
pub mod shard;
pub mod table;
pub mod value;

pub use binenc::{decode_batch, encode_batch, fnv1a_64, DecodeError};
pub use column::{
    Chunk, ColumnData, ColumnVec, ColumnarTable, NullBitmap, StorageMode, StrDict, CHUNK_ROWS,
};
pub use csv::{load_csv, parse_csv, to_csv};
pub use catalog::{Catalog, DimensionInfo, ForeignKey, FunctionalDependency, TableRole};
pub use datatype::DataType;
pub use delta::{ChangeBatch, DeltaSet};
pub use error::{StorageError, StorageResult};
pub use index::{HashIndex, UniqueIndex};
pub use row::{Row, RowId};
pub use schema::{Column, Schema};
pub use shard::{ShardKey, ShardedTable};
pub use table::Table;
pub use value::{add_f64, canonical_f64, canonical_f64_bits, cmp_f64, Date, Value};
