//! Property-based integration tests (proptest): the summary-delta method is
//! equivalent to recomputation for *arbitrary* base states and change
//! sequences, and the D-lattice deltas match direct deltas (Theorem 5.1).

mod common;

use common::figure1_defs;
use cubedelta::core::{propagate_plan, MaintainOptions, PropagateOptions, Warehouse};
use cubedelta::lattice::ViewLattice;
use cubedelta::storage::{ChangeBatch, Date, DeltaSet, Row, Value};
use cubedelta::view::augment;
use cubedelta::workload::retail_catalog_small;
use proptest::prelude::*;

/// Strategy: a pos row over small domains, with NULL-able qty.
fn pos_row() -> impl Strategy<Value = Row> {
    (
        1i64..=3,
        prop_oneof![Just(10i64), Just(20i64), Just(30i64)],
        0i32..4,
        prop_oneof![
            3 => (1i64..=9).prop_map(Value::Int),
            1 => Just(Value::Null)
        ],
        1u32..=3,
    )
        .prop_map(|(s, i, doff, qty, price)| {
            Row::new(vec![
                Value::Int(s),
                Value::Int(i),
                Value::Date(Date(10000 + doff)),
                qty,
                Value::Float(price as f64),
            ])
        })
}

/// Strategy: a change script. Each step inserts some rows and deletes a few
/// indexes into the current table (resolved at runtime so deletions always
/// hit live rows).
fn change_script() -> impl Strategy<Value = Vec<(Vec<Row>, Vec<usize>)>> {
    proptest::collection::vec(
        (
            proptest::collection::vec(pos_row(), 0..5),
            proptest::collection::vec(0usize..64, 0..4),
        ),
        1..5,
    )
}

fn batch_from_step(wh: &Warehouse, ins: &[Row], del_seeds: &[usize]) -> ChangeBatch {
    let live: Vec<Row> = wh
        .catalog()
        .table("pos")
        .unwrap()
        .rows()
        .cloned()
        .collect();
    let mut deletions = Vec::new();
    let mut used = std::collections::HashSet::new();
    for &s in del_seeds {
        if live.is_empty() {
            break;
        }
        let idx = s % live.len();
        if used.insert(idx) {
            deletions.push(live[idx].clone());
        }
    }
    ChangeBatch::single(DeltaSet {
        table: "pos".into(),
        insertions: ins.to_vec(),
        deletions,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The headline invariant: after any change script, every Figure-1
    /// summary table maintained incrementally equals recomputation.
    #[test]
    fn maintenance_equals_recomputation(script in change_script()) {
        let mut wh = Warehouse::from_catalog(retail_catalog_small());
        for def in figure1_defs() {
            wh.create_summary_table(&def).unwrap();
        }
        for (ins, dels) in &script {
            let batch = batch_from_step(&wh, ins, dels);
            wh.maintain(&batch, &MaintainOptions::default()).unwrap();
            wh.check_consistency().unwrap();
        }
    }

    /// Theorem 5.1: the D-lattice propagation plan produces the same
    /// summary-deltas as direct propagation, for arbitrary fact changes.
    #[test]
    fn lattice_deltas_equal_direct_deltas(
        ins in proptest::collection::vec(pos_row(), 0..6),
        del_seeds in proptest::collection::vec(0usize..64, 0..4),
    ) {
        let cat = retail_catalog_small();
        let views: Vec<_> = figure1_defs()
            .iter()
            .map(|d| augment(&cat, d).unwrap())
            .collect();
        let lat = ViewLattice::build(&cat, views.clone()).unwrap();

        let live: Vec<Row> = cat.table("pos").unwrap().rows().cloned().collect();
        let mut deletions = Vec::new();
        let mut used = std::collections::HashSet::new();
        for &s in &del_seeds {
            let idx = s % live.len();
            if used.insert(idx) {
                deletions.push(live[idx].clone());
            }
        }
        let batch = ChangeBatch::single(DeltaSet {
            table: "pos".into(),
            insertions: ins,
            deletions,
        });

        let plan = lat.choose_plan(&cat, |_| 1).unwrap();
        let via = propagate_plan(&cat, &views, &plan, &batch, &PropagateOptions::default()).unwrap();
        let direct = propagate_plan(
            &cat, &views, &lat.direct_plan(), &batch, &PropagateOptions::default(),
        ).unwrap();
        for v in &views {
            prop_assert_eq!(
                via[&v.def.name].sorted_rows(),
                direct[&v.def.name].sorted_rows(),
                "deltas differ for {}", &v.def.name
            );
        }
    }

    /// Pre-aggregation (§4.1.3) never changes the computed delta.
    #[test]
    fn preaggregation_is_transparent(
        ins in proptest::collection::vec(pos_row(), 0..6),
        del_seeds in proptest::collection::vec(0usize..64, 0..3),
    ) {
        let cat = retail_catalog_small();
        let views: Vec<_> = figure1_defs()
            .iter()
            .map(|d| augment(&cat, d).unwrap())
            .collect();
        let lat = ViewLattice::build(&cat, views.clone()).unwrap();

        let live: Vec<Row> = cat.table("pos").unwrap().rows().cloned().collect();
        let mut deletions = Vec::new();
        let mut used = std::collections::HashSet::new();
        for &s in &del_seeds {
            let idx = s % live.len();
            if used.insert(idx) {
                deletions.push(live[idx].clone());
            }
        }
        let batch = ChangeBatch::single(DeltaSet {
            table: "pos".into(),
            insertions: ins,
            deletions,
        });

        let plain = propagate_plan(
            &cat, &views, &lat.direct_plan(), &batch,
            &PropagateOptions { pre_aggregate: false, ..Default::default() },
        ).unwrap();
        let pre = propagate_plan(
            &cat, &views, &lat.direct_plan(), &batch,
            &PropagateOptions { pre_aggregate: true, ..Default::default() },
        ).unwrap();
        for v in &views {
            prop_assert_eq!(
                plain[&v.def.name].sorted_rows(),
                pre[&v.def.name].sorted_rows(),
                "pre-aggregation changed the delta for {}", &v.def.name
            );
        }
    }

    /// COUNT(*) never goes negative and a group row exists iff its count is
    /// positive — the §3.1 self-maintainability bookkeeping.
    #[test]
    fn counts_stay_positive(script in change_script()) {
        let mut wh = Warehouse::from_catalog(retail_catalog_small());
        for def in figure1_defs() {
            wh.create_summary_table(&def).unwrap();
        }
        for (ins, dels) in &script {
            let batch = batch_from_step(&wh, ins, dels);
            wh.maintain(&batch, &MaintainOptions::default()).unwrap();
            for view in wh.views() {
                let cs = view.count_star_col();
                for r in wh.catalog().table(&view.def.name).unwrap().rows() {
                    let c = r[cs].as_int().expect("COUNT(*) is an int");
                    prop_assert!(c > 0, "group with COUNT(*) = {c} in {}", view.def.name);
                }
            }
        }
    }
}
