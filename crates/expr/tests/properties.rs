//! Property-based tests for expressions and predicates: binding never
//! changes semantics, type inference predicts runtime types, nullability
//! analysis is sound, and renaming is structure-preserving.

use cubedelta_expr::{CmpOp, Expr, Predicate};
use cubedelta_storage::{Column, DataType, Row, Schema, Value};
use proptest::prelude::*;

fn schema() -> Schema {
    Schema::new(vec![
        Column::new("a", DataType::Int),
        Column::nullable("b", DataType::Int),
        Column::new("c", DataType::Float),
    ])
}

fn row() -> impl Strategy<Value = Row> {
    (
        -1000i64..1000,
        prop_oneof![3 => (-1000i64..1000).prop_map(Value::Int), 1 => Just(Value::Null)],
        -100.0f64..100.0,
    )
        .prop_map(|(a, b, c)| Row::new(vec![Value::Int(a), b, Value::Float(c)]))
}

/// Random expression over columns a (int), b (nullable int), c (float).
fn expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        Just(Expr::col("a")),
        Just(Expr::col("b")),
        Just(Expr::col("c")),
        (-50i64..50).prop_map(Expr::lit),
        (-5.0f64..5.0).prop_map(Expr::lit),
    ];
    leaf.prop_recursive(3, 24, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(l, r)| l.add(r)),
            (inner.clone(), inner.clone()).prop_map(|(l, r)| l.sub(r)),
            (inner.clone(), inner.clone()).prop_map(|(l, r)| l.mul(r)),
            (inner.clone(), inner.clone()).prop_map(|(l, r)| l.div(r)),
            inner.clone().prop_map(|e| e.neg()),
            (inner.clone(), inner.clone(), inner)
                .prop_map(|(p, a, b)| p.case_null(a, b)),
        ]
    })
}

proptest! {
    /// Evaluation is deterministic and total on bound expressions.
    #[test]
    fn eval_is_total_and_deterministic(e in expr(), r in row()) {
        let bound = e.bind(&schema()).unwrap();
        let v1 = bound.eval(&r).unwrap();
        let v2 = bound.eval(&r).unwrap();
        prop_assert_eq!(v1, v2);
    }

    /// Type inference is sound: a non-NULL result has the inferred type
    /// (when inference produced one).
    #[test]
    fn infer_type_predicts_runtime_type(e in expr(), r in row()) {
        let inferred = e.infer_type(&schema()).unwrap();
        let v = e.bind(&schema()).unwrap().eval(&r).unwrap();
        if let (Some(t), Some(rt)) = (inferred, v.data_type()) {
            prop_assert_eq!(t, rt, "inferred {:?} but evaluated to {:?}", t, v);
        }
    }

    /// Nullability analysis is sound: if the analysis says "never NULL",
    /// evaluation never yields NULL.
    #[test]
    fn maybe_null_is_sound(e in expr(), r in row()) {
        if !e.maybe_null(&schema()).unwrap() {
            let v = e.bind(&schema()).unwrap().eval(&r).unwrap();
            prop_assert!(!v.is_null(), "{e} evaluated to NULL on {r}");
        }
    }

    /// Renaming columns with the identity function is the identity.
    #[test]
    fn identity_rename_preserves(e in expr(), r in row()) {
        let renamed = e.rename_columns(&|c| c.to_string());
        prop_assert_eq!(&renamed, &e);
        let a = e.bind(&schema()).unwrap().eval(&r).unwrap();
        let b = renamed.bind(&schema()).unwrap().eval(&r).unwrap();
        prop_assert_eq!(a, b);
    }

    /// `columns()` is exactly the set of names binding requires: an
    /// expression binds against a schema iff the schema covers its columns.
    #[test]
    fn columns_characterize_bindability(e in expr()) {
        let narrow = Schema::new(vec![Column::new("a", DataType::Int)]);
        let needs = e.columns();
        let binds = e.bind(&narrow).is_ok();
        prop_assert_eq!(binds, needs.iter().all(|c| c == "a"));
    }

    /// Predicate evaluation is total, deterministic, and NOT is involutive.
    #[test]
    fn predicate_not_involutive(e1 in expr(), e2 in expr(), r in row()) {
        let p = Predicate::cmp(CmpOp::Lt, e1, e2);
        let bound = p.bind(&schema()).unwrap();
        let double_neg = p.clone().not().not().bind(&schema()).unwrap();
        prop_assert_eq!(bound.eval(&r).unwrap(), double_neg.eval(&r).unwrap());
    }

    /// De Morgan under two-valued filter semantics:
    /// NOT (p AND q) == (NOT p) OR (NOT q).
    #[test]
    fn de_morgan(a in expr(), b in expr(), r in row()) {
        let p = Predicate::IsNull(a);
        let q = Predicate::IsNull(b);
        let lhs = p.clone().and(q.clone()).not().bind(&schema()).unwrap();
        let rhs = p.not().or(q.not()).bind(&schema()).unwrap();
        prop_assert_eq!(lhs.eval(&r).unwrap(), rhs.eval(&r).unwrap());
    }
}
