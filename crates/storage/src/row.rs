//! Rows (tuples) and row identifiers.

use std::fmt;
use std::ops::Index;

use crate::value::Value;

/// Identifies a row slot within a [`crate::table::Table`].
///
/// Row ids are stable for the lifetime of a row: deleting a row frees its
/// slot for reuse, so a `RowId` must not be held across deletions of the row
/// it names.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RowId(pub u32);

impl RowId {
    /// The slot position as a usize.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A tuple of values.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Row(pub Vec<Value>);

impl Row {
    /// Builds a row from anything convertible to values.
    pub fn new(values: Vec<Value>) -> Self {
        Row(values)
    }

    /// Number of columns in the row.
    pub fn arity(&self) -> usize {
        self.0.len()
    }

    /// The values as a slice.
    pub fn values(&self) -> &[Value] {
        &self.0
    }

    /// Extracts the sub-row formed by the given column positions (cloning).
    ///
    /// This is the key-extraction primitive for hash indexes and group-by.
    pub fn project(&self, cols: &[usize]) -> Row {
        Row(cols.iter().map(|&c| self.0[c].clone()).collect())
    }

    /// Concatenates two rows (used by joins).
    pub fn concat(&self, other: &Row) -> Row {
        let mut v = Vec::with_capacity(self.0.len() + other.0.len());
        v.extend_from_slice(&self.0);
        v.extend_from_slice(&other.0);
        Row(v)
    }

    /// Iterator over the values.
    pub fn iter(&self) -> std::slice::Iter<'_, Value> {
        self.0.iter()
    }
}

impl Index<usize> for Row {
    type Output = Value;

    fn index(&self, idx: usize) -> &Value {
        &self.0[idx]
    }
}

impl FromIterator<Value> for Row {
    fn from_iter<I: IntoIterator<Item = Value>>(iter: I) -> Self {
        Row(iter.into_iter().collect())
    }
}

impl fmt::Display for Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

/// Convenience macro for building rows in tests and examples:
/// `row![1, "a", 2.5]`.
#[macro_export]
macro_rules! row {
    ($($v:expr),* $(,)?) => {
        $crate::row::Row::new(vec![$($crate::value::Value::from($v)),*])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn project_extracts_columns() {
        let r = row![10i64, "x", 2.5];
        assert_eq!(r.project(&[2, 0]), row![2.5, 10i64]);
        assert_eq!(r.project(&[]), Row::default());
    }

    #[test]
    fn concat_joins_rows() {
        let a = row![1i64, 2i64];
        let b = row!["z"];
        assert_eq!(a.concat(&b), row![1i64, 2i64, "z"]);
    }

    #[test]
    fn display_is_tuple_like() {
        assert_eq!(row![1i64, "a"].to_string(), "(1, a)");
    }

    #[test]
    fn index_access() {
        let r = row![5i64, "q"];
        assert_eq!(r[0], Value::Int(5));
        assert_eq!(r[1], Value::str("q"));
        assert_eq!(r.arity(), 2);
    }
}
