//! Recursive-descent parser for the paper's SQL dialect.
//!
//! Supported statements:
//!
//! * `CREATE VIEW name [(col, …)] AS SELECT … FROM fact[, dim…]
//!   [WHERE pred] [GROUP BY attrs]` → [`SummaryViewDef`]
//! * `SELECT … FROM fact[, dim…] [WHERE pred] [GROUP BY attrs]` →
//!   [`AggQuery`]
//!
//! Foreign-key join conditions (`pos.itemID = items.itemID`) are recognized
//! as top-level WHERE conjuncts between columns of two different FROM
//! tables and dropped — the executable join comes from the catalog's
//! foreign keys, per the star-schema discipline of §3.3. Remaining column
//! references have their table qualifiers stripped (attribute names are
//! unique across the star schema, as in the paper).

use cubedelta_core::AggQuery;
use cubedelta_expr::{CmpOp, Expr, Predicate};
use cubedelta_query::AggFunc;
use cubedelta_storage::{Date, Value};
use cubedelta_view::SummaryViewDef;

use crate::error::{SqlError, SqlResult};
use crate::lexer::{tokenize, Token};

/// Parses a `CREATE VIEW … AS SELECT …` statement into a view definition.
pub fn parse_view(sql: &str) -> SqlResult<SummaryViewDef> {
    let mut p = Parser::new(sql)?;
    p.expect_kw("CREATE")?;
    p.expect_kw("VIEW")?;
    let name = p.expect_ident()?;
    let columns = if p.eat_punct('(') {
        let mut cols = vec![p.expect_ident()?];
        while p.eat_punct(',') {
            cols.push(p.expect_ident()?);
        }
        p.expect_punct(')')?;
        Some(cols)
    } else {
        None
    };
    p.expect_kw("AS")?;
    let select = p.parse_select()?;
    p.expect_end()?;
    select.into_view(name, columns)
}

/// Parses a bare `SELECT` statement into an [`AggQuery`].
pub fn parse_query(sql: &str) -> SqlResult<AggQuery> {
    let mut p = Parser::new(sql)?;
    let select = p.parse_select()?;
    p.expect_end()?;
    select.into_query()
}

/// One parsed SELECT item.
enum SelectItem {
    /// A plain (group-by) column.
    Column(QualName),
    /// An aggregate with an optional alias.
    Aggregate(AggFunc, Option<String>),
}

/// A possibly-qualified column reference.
#[derive(Debug, Clone, PartialEq, Eq)]
struct QualName {
    qualifier: Option<String>,
    name: String,
}

impl QualName {
    fn qualified(&self) -> String {
        match &self.qualifier {
            Some(q) => format!("{q}.{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// A parsed single-block SELECT.
struct Select {
    items: Vec<SelectItem>,
    from: Vec<String>,
    where_clause: Predicate,
    group_by: Vec<QualName>,
}

/// Strips `table.` qualifiers from every column reference.
fn strip(name: &str) -> String {
    match name.split_once('.') {
        Some((_, col)) => col.to_string(),
        None => name.to_string(),
    }
}

impl Select {
    /// Splits the WHERE clause into join conditions (dropped) and the real
    /// residue, then strips qualifiers everywhere.
    fn finish_where(&mut self) -> SqlResult<Predicate> {
        // Collect top-level conjuncts.
        fn conjuncts(p: Predicate, out: &mut Vec<Predicate>) {
            match p {
                Predicate::And(a, b) => {
                    conjuncts(*a, out);
                    conjuncts(*b, out);
                }
                other => out.push(other),
            }
        }
        let mut parts = Vec::new();
        conjuncts(std::mem::replace(&mut self.where_clause, Predicate::True), &mut parts);

        let mut residue: Option<Predicate> = None;
        for part in parts {
            let is_join = matches!(
                &part,
                Predicate::Compare {
                    op: CmpOp::Eq,
                    left: Expr::Column(l),
                    right: Expr::Column(r),
                } if {
                    let lq = l.split_once('.').map(|(q, _)| q);
                    let rq = r.split_once('.').map(|(q, _)| q);
                    match (lq, rq) {
                        (Some(a), Some(b)) => {
                            a != b
                                && self.from.iter().any(|t| t == a)
                                && self.from.iter().any(|t| t == b)
                        }
                        _ => false,
                    }
                }
            );
            if is_join {
                continue;
            }
            let stripped = part.rename_columns(&|c| strip(c));
            residue = Some(match residue {
                None => stripped,
                Some(acc) => acc.and(stripped),
            });
        }
        Ok(residue.unwrap_or(Predicate::True))
    }

    fn group_attrs(&self) -> Vec<String> {
        self.group_by.iter().map(|q| strip(&q.qualified())).collect()
    }

    /// Validates that plain SELECT columns appear in GROUP BY.
    fn check_plain_columns(&self) -> SqlResult<()> {
        let groups = self.group_attrs();
        for item in &self.items {
            if let SelectItem::Column(q) = item {
                let name = strip(&q.qualified());
                if !groups.contains(&name) {
                    return Err(SqlError::Unsupported(format!(
                        "column `{name}` selected but not grouped by"
                    )));
                }
            }
        }
        Ok(())
    }

    fn into_view(mut self, name: String, columns: Option<Vec<String>>) -> SqlResult<SummaryViewDef> {
        self.check_plain_columns()?;
        let where_clause = self.finish_where()?;
        let group_by = self.group_attrs();

        let mut aggs: Vec<(AggFunc, Option<String>)> = Vec::new();
        for item in self.items {
            if let SelectItem::Aggregate(f, alias) = item {
                aggs.push((strip_agg(f), alias));
            }
        }

        // Resolve aliases against the optional view column list.
        let aliases: Vec<String> = match columns {
            Some(cols) => {
                if cols.len() != group_by.len() + aggs.len() {
                    return Err(SqlError::Unsupported(format!(
                        "view `{name}` lists {} columns but the SELECT produces {}",
                        cols.len(),
                        group_by.len() + aggs.len()
                    )));
                }
                for (listed, actual) in cols.iter().zip(&group_by) {
                    if listed != actual {
                        return Err(SqlError::Unsupported(format!(
                            "view column `{listed}` does not match group-by \
                             attribute `{actual}` (renaming group-by columns is \
                             not supported)"
                        )));
                    }
                }
                cols[group_by.len()..].to_vec()
            }
            None => aggs
                .iter()
                .enumerate()
                .map(|(i, (f, alias))| alias.clone().unwrap_or_else(|| default_alias(f, i)))
                .collect(),
        };

        let mut b = SummaryViewDef::builder(name, self.from[0].clone()).filter(where_clause);
        for dim in &self.from[1..] {
            b = b.join_dimension(dim);
        }
        b = b.group_by(group_by);
        for ((f, _), alias) in aggs.into_iter().zip(aliases) {
            b = b.aggregate(f, alias);
        }
        Ok(b.build())
    }

    fn into_query(mut self) -> SqlResult<AggQuery> {
        self.check_plain_columns()?;
        let where_clause = self.finish_where()?;
        let mut q = AggQuery::over(self.from[0].clone())
            .group_by(self.group_attrs())
            .filter(where_clause);
        for (i, item) in self.items.into_iter().enumerate() {
            if let SelectItem::Aggregate(f, alias) = item {
                let f = strip_agg(f);
                let alias = alias.unwrap_or_else(|| default_alias(&f, i));
                q = q.aggregate(f, alias);
            }
        }
        Ok(q)
    }
}

/// Strips qualifiers inside an aggregate's source expression.
fn strip_agg(f: AggFunc) -> AggFunc {
    f.rename_columns(&|c| strip(c))
}

fn default_alias(f: &AggFunc, i: usize) -> String {
    let base = match f {
        AggFunc::CountStar => "count_star".to_string(),
        AggFunc::Count(e) => format!("count_{}", first_col(e)),
        AggFunc::Sum(e) => format!("sum_{}", first_col(e)),
        AggFunc::Min(e) => format!("min_{}", first_col(e)),
        AggFunc::Max(e) => format!("max_{}", first_col(e)),
        AggFunc::Avg(e) => format!("avg_{}", first_col(e)),
    };
    if base.ends_with('_') {
        format!("{base}{i}")
    } else {
        base
    }
}

fn first_col(e: &Expr) -> String {
    e.columns().into_iter().next().map(|c| strip(&c)).unwrap_or_default()
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn new(sql: &str) -> SqlResult<Self> {
        Ok(Parser {
            tokens: tokenize(sql)?,
            pos: 0,
        })
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_kw(&self, kw: &str) -> bool {
        self.peek().map(|t| t.is_kw(kw)).unwrap_or(false)
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.at_kw(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> SqlResult<()> {
        if self.eat_kw(kw) {
            Ok(())
        } else {
            Err(SqlError::parse(
                self.pos,
                format!("expected `{kw}`, found {:?}", self.peek()),
            ))
        }
    }

    fn eat_punct(&mut self, c: char) -> bool {
        if self.peek() == Some(&Token::Punct(c)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_punct(&mut self, c: char) -> SqlResult<()> {
        if self.eat_punct(c) {
            Ok(())
        } else {
            Err(SqlError::parse(
                self.pos,
                format!("expected `{c}`, found {:?}", self.peek()),
            ))
        }
    }

    fn eat_op(&mut self, op: &str) -> bool {
        if self.peek() == Some(&Token::Op(match op {
            "+" => "+",
            "-" => "-",
            "*" => "*",
            "/" => "/",
            "=" => "=",
            "<" => "<",
            "<=" => "<=",
            ">" => ">",
            ">=" => ">=",
            "<>" => "<>",
            _ => return false,
        })) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_ident(&mut self) -> SqlResult<String> {
        match self.next() {
            Some(Token::Ident(s)) => Ok(s),
            other => Err(SqlError::parse(
                self.pos,
                format!("expected identifier, found {other:?}"),
            )),
        }
    }

    fn expect_end(&self) -> SqlResult<()> {
        if self.pos == self.tokens.len() {
            Ok(())
        } else {
            Err(SqlError::parse(
                self.pos,
                format!("trailing tokens starting at {:?}", self.peek()),
            ))
        }
    }

    // --- SELECT --------------------------------------------------------

    fn parse_select(&mut self) -> SqlResult<Select> {
        self.expect_kw("SELECT")?;
        let mut items = vec![self.parse_select_item()?];
        while self.eat_punct(',') {
            items.push(self.parse_select_item()?);
        }
        self.expect_kw("FROM")?;
        let mut from = vec![self.expect_ident()?];
        while self.eat_punct(',') {
            from.push(self.expect_ident()?);
        }
        let where_clause = if self.eat_kw("WHERE") {
            self.parse_pred()?
        } else {
            Predicate::True
        };
        let group_by = if self.eat_kw("GROUP") {
            self.expect_kw("BY")?;
            let mut g = vec![self.parse_qual_name()?];
            while self.eat_punct(',') {
                g.push(self.parse_qual_name()?);
            }
            g
        } else {
            Vec::new()
        };
        if self.at_kw("HAVING") {
            return Err(SqlError::Unsupported(
                "HAVING clauses (cube views are single-block, §3.2)".into(),
            ));
        }
        Ok(Select {
            items,
            from,
            where_clause,
            group_by,
        })
    }

    fn parse_select_item(&mut self) -> SqlResult<SelectItem> {
        for (kw, make) in AGG_KEYWORDS {
            if self.at_kw(kw) && self.tokens.get(self.pos + 1) == Some(&Token::Punct('(')) {
                self.pos += 2; // keyword + '('
                let func = if *kw == "COUNT" && self.peek() == Some(&Token::Op("*")) {
                    self.pos += 1;
                    AggFunc::CountStar
                } else {
                    make(self.parse_expr()?)
                };
                self.expect_punct(')')?;
                let alias = if self.eat_kw("AS") {
                    Some(self.expect_ident()?)
                } else {
                    None
                };
                return Ok(SelectItem::Aggregate(func, alias));
            }
        }
        Ok(SelectItem::Column(self.parse_qual_name()?))
    }

    fn parse_qual_name(&mut self) -> SqlResult<QualName> {
        let first = self.expect_ident()?;
        if self.eat_punct('.') {
            let name = self.expect_ident()?;
            Ok(QualName {
                qualifier: Some(first),
                name,
            })
        } else {
            Ok(QualName {
                qualifier: None,
                name: first,
            })
        }
    }

    // --- expressions ----------------------------------------------------

    fn parse_expr(&mut self) -> SqlResult<Expr> {
        let mut e = self.parse_term()?;
        loop {
            if self.eat_op("+") {
                e = e.add(self.parse_term()?);
            } else if self.eat_op("-") {
                e = e.sub(self.parse_term()?);
            } else {
                return Ok(e);
            }
        }
    }

    fn parse_term(&mut self) -> SqlResult<Expr> {
        let mut e = self.parse_factor()?;
        loop {
            if self.eat_op("*") {
                e = e.mul(self.parse_factor()?);
            } else if self.eat_op("/") {
                e = e.div(self.parse_factor()?);
            } else {
                return Ok(e);
            }
        }
    }

    fn parse_factor(&mut self) -> SqlResult<Expr> {
        if self.eat_op("-") {
            return Ok(self.parse_factor()?.neg());
        }
        if self.eat_punct('(') {
            let e = self.parse_expr()?;
            self.expect_punct(')')?;
            return Ok(e);
        }
        // `DATE 'YYYY-MM-DD'` is a literal; a bare `date` is the column of
        // the same name (the paper's views use `date` as both a dimension
        // and a measure).
        if self.at_kw("DATE") {
            if let Some(Token::Str(s)) = self.tokens.get(self.pos + 1).cloned() {
                self.pos += 2;
                let date = parse_date(&s)
                    .ok_or_else(|| SqlError::Unsupported(format!("bad DATE literal '{s}'")))?;
                return Ok(Expr::lit(Value::Date(date)));
            }
        }
        if self.at_kw("NULL") {
            self.pos += 1;
            return Ok(Expr::lit(Value::Null));
        }
        match self.next() {
            Some(Token::Int(i)) => Ok(Expr::lit(i)),
            Some(Token::Float(f)) => Ok(Expr::lit(f)),
            Some(Token::Str(s)) => Ok(Expr::lit(Value::str(s))),
            Some(Token::Ident(first)) => {
                if self.eat_punct('.') {
                    let name = self.expect_ident()?;
                    Ok(Expr::col(format!("{first}.{name}")))
                } else {
                    Ok(Expr::col(first))
                }
            }
            other => Err(SqlError::parse(
                self.pos,
                format!("expected expression, found {other:?}"),
            )),
        }
    }

    // --- predicates -------------------------------------------------------

    fn parse_pred(&mut self) -> SqlResult<Predicate> {
        let mut p = self.parse_and_pred()?;
        while self.eat_kw("OR") {
            p = p.or(self.parse_and_pred()?);
        }
        Ok(p)
    }

    fn parse_and_pred(&mut self) -> SqlResult<Predicate> {
        let mut p = self.parse_not_pred()?;
        while self.eat_kw("AND") {
            p = p.and(self.parse_not_pred()?);
        }
        Ok(p)
    }

    fn parse_not_pred(&mut self) -> SqlResult<Predicate> {
        if self.eat_kw("NOT") {
            return Ok(self.parse_not_pred()?.not());
        }
        // A parenthesis may open a sub-predicate or a sub-expression; try a
        // predicate first and backtrack on failure.
        if self.peek() == Some(&Token::Punct('(')) {
            let save = self.pos;
            self.pos += 1;
            if let Ok(p) = self.parse_pred() {
                if self.eat_punct(')') {
                    return Ok(p);
                }
            }
            self.pos = save;
        }
        let left = self.parse_expr()?;
        if self.eat_kw("IS") {
            let negated = self.eat_kw("NOT");
            self.expect_kw("NULL")?;
            let p = Predicate::IsNull(left);
            return Ok(if negated { p.not() } else { p });
        }
        let op = if self.eat_op("=") {
            CmpOp::Eq
        } else if self.eat_op("<>") {
            CmpOp::Ne
        } else if self.eat_op("<=") {
            CmpOp::Le
        } else if self.eat_op("<") {
            CmpOp::Lt
        } else if self.eat_op(">=") {
            CmpOp::Ge
        } else if self.eat_op(">") {
            CmpOp::Gt
        } else {
            return Err(SqlError::parse(
                self.pos,
                format!("expected comparison operator, found {:?}", self.peek()),
            ));
        };
        let right = self.parse_expr()?;
        Ok(Predicate::cmp(op, left, right))
    }
}

type AggCtor = fn(Expr) -> AggFunc;
const AGG_KEYWORDS: &[(&str, AggCtor)] = &[
    ("COUNT", AggFunc::Count as AggCtor),
    ("SUM", AggFunc::Sum as AggCtor),
    ("MIN", AggFunc::Min as AggCtor),
    ("MAX", AggFunc::Max as AggCtor),
    ("AVG", AggFunc::Avg as AggCtor),
];

/// Parses `YYYY-MM-DD`.
fn parse_date(s: &str) -> Option<Date> {
    let mut parts = s.split('-');
    let y: i32 = parts.next()?.parse().ok()?;
    let m: u32 = parts.next()?.parse().ok()?;
    let d: u32 = parts.next()?.parse().ok()?;
    if parts.next().is_some() || !(1..=12).contains(&m) || !(1..=31).contains(&d) {
        return None;
    }
    Some(Date::from_ymd(y, m, d))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Figure 1's SiC_sales, byte for byte.
    const SIC_SQL: &str = "\
        CREATE VIEW SiC_sales(storeID, category, TotalCount, \
                              EarliestSale, TotalQuantity) AS \
        SELECT storeID, category, COUNT(*) AS TotalCount, \
               MIN(date) AS EarliestSale, \
               SUM(qty) AS TotalQuantity \
        FROM pos, items \
        WHERE pos.itemID = items.itemID \
        GROUP BY storeID, category";

    #[test]
    fn figure_1_sic_sales_parses_exactly() {
        let v = parse_view(SIC_SQL).unwrap();
        assert_eq!(v.name, "SiC_sales");
        assert_eq!(v.fact_table, "pos");
        assert_eq!(v.dim_joins, vec!["items"]);
        assert_eq!(v.group_by, vec!["storeID", "category"]);
        assert_eq!(v.where_clause, Predicate::True, "join condition dropped");
        assert_eq!(v.aggregates.len(), 3);
        assert_eq!(v.aggregates[0].alias, "TotalCount");
        assert_eq!(v.aggregates[0].func, AggFunc::CountStar);
        assert_eq!(v.aggregates[1].alias, "EarliestSale");
        assert!(matches!(&v.aggregates[1].func, AggFunc::Min(e) if *e == Expr::col("date")));
        assert_eq!(v.aggregates[2].alias, "TotalQuantity");
    }

    #[test]
    fn figure_1_sid_sales_without_column_list() {
        let v = parse_view(
            "CREATE VIEW SID_sales AS \
             SELECT storeID, itemID, date, COUNT(*) AS TotalCount, \
                    SUM(qty) AS TotalQuantity \
             FROM pos GROUP BY storeID, itemID, date",
        )
        .unwrap();
        assert_eq!(v.group_by, vec!["storeID", "itemID", "date"]);
        assert!(v.dim_joins.is_empty());
    }

    #[test]
    fn residual_where_survives_join_removal() {
        let v = parse_view(
            "CREATE VIEW big AS \
             SELECT region, COUNT(*) AS cnt FROM pos, stores \
             WHERE pos.storeID = stores.storeID AND qty >= 5 \
             GROUP BY region",
        )
        .unwrap();
        assert_eq!(
            v.where_clause,
            Predicate::cmp(CmpOp::Ge, Expr::col("qty"), Expr::lit(5i64))
        );
    }

    #[test]
    fn expression_sources_and_arithmetic() {
        let v = parse_view(
            "CREATE VIEW rev AS SELECT storeID, SUM(qty * price) AS revenue \
             FROM pos GROUP BY storeID",
        )
        .unwrap();
        assert!(matches!(
            &v.aggregates[0].func,
            AggFunc::Sum(e) if *e == Expr::col("qty").mul(Expr::col("price"))
        ));
    }

    #[test]
    fn date_literals_and_complex_predicates() {
        let v = parse_view(
            "CREATE VIEW recent AS SELECT storeID, COUNT(*) AS cnt FROM pos \
             WHERE (date >= DATE '1997-01-01' OR qty IS NULL) AND NOT qty IS NULL \
             GROUP BY storeID",
        )
        .unwrap();
        let s = v.where_clause.to_string();
        assert!(s.contains("1997-01-01"), "{s}");
        assert!(s.contains("OR"), "{s}");
        assert!(s.contains("NOT"), "{s}");
    }

    #[test]
    fn bare_select_becomes_query() {
        let q = parse_query(
            "SELECT region, SUM(qty) AS total, AVG(qty) FROM pos, stores \
             WHERE pos.storeID = stores.storeID GROUP BY region",
        )
        .unwrap();
        assert_eq!(q.group_by, vec!["region"]);
        assert_eq!(q.aggregates.len(), 2);
        assert_eq!(q.aggregates[0].1, "total");
        assert_eq!(q.aggregates[1].1, "avg_qty", "auto-generated alias");
    }

    #[test]
    fn view_column_list_mismatch_rejected() {
        let err = parse_view(
            "CREATE VIEW v(a, b) AS SELECT storeID, COUNT(*) AS c, SUM(qty) AS s \
             FROM pos GROUP BY storeID",
        )
        .unwrap_err();
        assert!(matches!(err, SqlError::Unsupported(_)));
    }

    #[test]
    fn group_by_renaming_rejected() {
        let err = parse_view(
            "CREATE VIEW v(store, c) AS SELECT storeID, COUNT(*) AS c \
             FROM pos GROUP BY storeID",
        )
        .unwrap_err();
        assert!(err.to_string().contains("renaming"));
    }

    #[test]
    fn ungrouped_column_rejected() {
        let err = parse_view(
            "CREATE VIEW v AS SELECT storeID, itemID, COUNT(*) AS c \
             FROM pos GROUP BY storeID",
        )
        .unwrap_err();
        assert!(err.to_string().contains("itemID"));
    }

    #[test]
    fn having_is_unsupported() {
        let err = parse_view(
            "CREATE VIEW v AS SELECT storeID, COUNT(*) AS c FROM pos \
             GROUP BY storeID HAVING c > 1",
        )
        .unwrap_err();
        assert!(matches!(err, SqlError::Unsupported(_)));
    }

    #[test]
    fn keywords_are_case_insensitive() {
        let v = parse_view(
            "create view V as select storeID, count(*) as c from pos group by storeID",
        )
        .unwrap();
        assert_eq!(v.name, "V");
    }

    #[test]
    fn trailing_garbage_rejected() {
        assert!(parse_view(
            "CREATE VIEW v AS SELECT COUNT(*) AS c FROM pos EXTRA"
        )
        .is_err());
    }

    #[test]
    fn date_parse_validation() {
        assert_eq!(parse_date("1997-05-13"), Some(Date::from_ymd(1997, 5, 13)));
        assert_eq!(parse_date("1997-13-01"), None);
        assert_eq!(parse_date("nope"), None);
    }
}
