//! Crash-recovery battery for the durability layer
//! ([`cubedelta::durability`]): commitlog + snapshot + replay must
//! reproduce the uninterrupted run **byte for byte** at every crash
//! point.
//!
//! Crash points covered:
//!
//! * mid-**refresh** — `multi::failpoints::arm_refresh_panic` fires after
//!   the summary table's lock is taken, leaving a half-refreshed batch
//!   window behind;
//! * mid-**merge** — `arm_merge_panic` fires between the sharded partial
//!   deltas and their merge (shards > 1);
//! * mid-**propagate** — `arm_propagate_panic` fires at the top of a
//!   propagation step, before any summary-delta work;
//! * real **process abort** — a subprocess harness ingests against a
//!   durable service while a timer thread calls `std::process::abort()`,
//!   killing the process wherever it happens to be (including mid-fsync),
//!   then the parent recovers the directory;
//! * a seeded **proptest** sweeps crash-point × threads × shards {1,4}.
//!
//! The invariant asserted everywhere: recovery (snapshot + log-tail
//! replay) yields tables byte-identical to maintaining the same logged
//! batches on a copy of the initial warehouse without any crash, no
//! `ShutdownReport`-accepted batch is lost, and torn log tails are
//! skipped with a warning, never an error.

mod common;

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use common::{figure1_defs, small_warehouse, synth_pos_row};
use cubedelta::core::multi::failpoints;
use cubedelta::core::{BatchPolicy, CommitLog, JournalEvent, MaintenancePolicy};
use cubedelta::durability::{recover_warehouse, start_durable};
use cubedelta::persist::{save_snapshot, PersistError};
use cubedelta::storage::DeltaSet;
use cubedelta::{MaintainOptions, Warehouse};

/// Failpoints are process-global one-shots; crash cases serialize here.
static FAILPOINT_LOCK: Mutex<()> = Mutex::new(());

/// Unique suffix per driver invocation so concurrent tests (and proptest
/// cases) never share a durability directory.
static DIR_SEQ: AtomicUsize = AtomicUsize::new(0);

fn durable_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "cubedelta_crashrec_{tag}_{}_{}",
        std::process::id(),
        DIR_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// Byte-identity over the fact table and every Figure-1 summary table:
/// `to_rows` exposes physical row order, not just contents.
fn assert_tables_identical(a: &Warehouse, b: &Warehouse, context: &str) {
    let mut names: Vec<String> = figure1_defs().into_iter().map(|d| d.name).collect();
    names.push("pos".to_string());
    for name in names {
        assert_eq!(
            a.catalog().table(&name).unwrap().to_rows(),
            b.catalog().table(&name).unwrap().to_rows(),
            "table `{name}` differs ({context})"
        );
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CrashPoint {
    None,
    Refresh,
    Merge,
    Propagate,
}

impl CrashPoint {
    /// Whether the armed failpoint can actually fire in this
    /// configuration (the merge hook sits in sharded propagate only).
    fn fires(self, shards: usize) -> bool {
        match self {
            CrashPoint::None => false,
            CrashPoint::Merge => shards > 1,
            _ => true,
        }
    }

    fn arm(self, view: &str) {
        match self {
            CrashPoint::None => {}
            CrashPoint::Refresh => failpoints::arm_refresh_panic(view),
            CrashPoint::Merge => failpoints::arm_merge_panic(view),
            CrashPoint::Propagate => failpoints::arm_propagate_panic(view),
        }
    }
}

/// The core scenario: run a durable service, optionally crash one cycle
/// at `crash`, recover from disk, and assert byte-identity against an
/// uninterrupted replay of the same batches. Returns nothing — every
/// guarantee is asserted inside.
fn run_crash_case(tag: &str, threads: usize, shards: usize, crash: CrashPoint) {
    let _guard = FAILPOINT_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    failpoints::disarm_all();
    let dir = durable_dir(tag);
    let opts = MaintainOptions::default();

    let mut wh = small_warehouse();
    wh.set_maintenance_policy(MaintenancePolicy::with_threads(threads).with_shards(shards));
    let initial = wh.clone();

    // max_rows=1: every delta seals (and logs) its own batch, so the
    // post-crash accounting is exact. snapshot_every=0: the only
    // snapshot before a clean shutdown is snapshot-0, so recovery
    // replays the full log.
    let started = start_durable(
        wh,
        BatchPolicy {
            max_rows: 1,
            max_batches: 2,
            flush_interval: Duration::from_millis(2),
        },
        opts,
        &dir,
        0,
    )
    .unwrap();
    assert!(started.recovery.is_none(), "fresh directory must not recover");
    let svc = started.service;

    // A few committed cycles before the crash.
    for seed in 0..6u64 {
        svc.ingest(DeltaSet::insertions("pos", vec![synth_pos_row(seed)]))
            .unwrap();
    }
    svc.flush().unwrap();

    // Arm and poison exactly one more batch.
    crash.arm("SID_sales");
    svc.ingest(DeltaSet::insertions("pos", vec![synth_pos_row(99)]))
        .unwrap();
    let flush = svc.flush();
    let fired = crash.fires(shards);
    assert_eq!(
        flush.is_err(),
        fired,
        "flush outcome vs expected crash at {crash:?} (shards={shards})"
    );
    let report = svc.shutdown();
    failpoints::disarm_all();

    if fired {
        assert!(report.error.is_some());
        assert_eq!(report.unapplied.len(), 1, "exactly the crashed batch parked");
    } else {
        assert!(report.error.is_none());
        assert!(report.unapplied.is_empty());
    }

    // Reference: the uninterrupted run — every sealed (= logged) batch
    // maintained in order on a copy of the initial warehouse. The
    // crashed batch replays fine here: the failpoint was one-shot.
    let mut reference = initial.clone();
    for batch in &report.applied {
        reference.maintain(batch, &opts).unwrap();
    }
    if !report.unapplied.is_empty() {
        reference.maintain(&report.unapplied, &opts).unwrap();
    }

    let rec = recover_warehouse(&dir, &opts).unwrap();
    if fired {
        // No shutdown snapshot after a failure: the full log replays,
        // including the batch whose cycle crashed — an accepted batch is
        // never lost.
        assert_eq!(rec.report.snapshot_lsn, 0);
        assert_eq!(rec.report.replayed_batches, report.batches_sealed);
        assert_eq!(rec.report.last_lsn, report.batches_sealed);
    } else {
        // Clean drain snapshots + compacts: recovery is snapshot-only.
        assert_eq!(rec.report.replayed_batches, 0);
        assert_eq!(rec.report.snapshot_lsn, report.batches_sealed);
    }
    assert_eq!(rec.report.torn_bytes_discarded, 0);
    assert_eq!(
        rec.warehouse
            .metrics()
            .counter("recovery_replayed_batches")
            .get(),
        rec.report.replayed_batches
    );
    assert_eq!(
        rec.warehouse.last_applied_lsn(),
        Some(report.batches_sealed),
        "recovery must land on the last sealed batch"
    );

    assert_tables_identical(&rec.warehouse, &reference, &format!("{tag} recovery"));
    rec.warehouse.check_consistency().unwrap();

    // Recovery is deterministic: a second pass over the same directory
    // produces the same bytes.
    let rec2 = recover_warehouse(&dir, &opts).unwrap();
    assert_tables_identical(&rec.warehouse, &rec2.warehouse, &format!("{tag} double recovery"));

    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn clean_shutdown_snapshot_is_byte_identical() {
    run_crash_case("clean", 2, 1, CrashPoint::None);
}

#[test]
fn crash_mid_refresh_recovers_byte_identical() {
    run_crash_case("refresh", 2, 1, CrashPoint::Refresh);
}

#[test]
fn crash_mid_merge_recovers_byte_identical() {
    run_crash_case("merge", 2, 4, CrashPoint::Merge);
}

#[test]
fn crash_mid_propagate_recovers_byte_identical() {
    run_crash_case("propagate", 4, 1, CrashPoint::Propagate);
}

#[test]
fn batch_sealed_events_carry_log_position() {
    let dir = durable_dir("journal");
    let wh = small_warehouse();
    let started = start_durable(
        wh,
        BatchPolicy {
            max_rows: 2,
            max_batches: 2,
            flush_interval: Duration::from_millis(2),
        },
        MaintainOptions::default(),
        &dir,
        0,
    )
    .unwrap();
    let svc = started.service;
    for seed in 0..6u64 {
        svc.ingest(DeltaSet::insertions("pos", vec![synth_pos_row(seed)]))
            .unwrap();
    }
    svc.flush().unwrap();
    let report = svc.shutdown();
    assert!(report.error.is_none());

    let sealed: Vec<(u64, u64)> = report
        .warehouse
        .journal()
        .events()
        .iter()
        .filter_map(|e| match e {
            JournalEvent::BatchSealed { lsn, log_bytes, .. } => Some((*lsn, *log_bytes)),
            _ => None,
        })
        .collect();
    assert_eq!(sealed.len() as u64, report.batches_sealed);
    for (i, (lsn, log_bytes)) in sealed.iter().enumerate() {
        assert_eq!(*lsn, i as u64 + 1, "LSNs are contiguous from 1");
        assert!(*log_bytes > 12, "frame size includes header + payload");
    }

    // The durability metrics landed in the warehouse registry.
    let reg = report.warehouse.metrics();
    assert!(reg.counter("log_appended_bytes").get() > 0);
    assert_eq!(reg.histogram("fsync_us").count(), report.batches_sealed);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn torn_tail_is_skipped_with_warning_and_replay_still_exact() {
    let _guard = FAILPOINT_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    failpoints::disarm_all();
    let dir = durable_dir("torn");
    let opts = MaintainOptions::default();
    let initial = small_warehouse();

    // Crash a cycle so shutdown takes no snapshot and the log keeps every
    // frame.
    let started = start_durable(
        initial.clone(),
        BatchPolicy {
            max_rows: 1,
            max_batches: 2,
            flush_interval: Duration::from_millis(2),
        },
        opts,
        &dir,
        0,
    )
    .unwrap();
    let svc = started.service;
    for seed in 0..4u64 {
        svc.ingest(DeltaSet::insertions("pos", vec![synth_pos_row(seed)]))
            .unwrap();
    }
    svc.flush().unwrap();
    failpoints::arm_refresh_panic("SID_sales");
    svc.ingest(DeltaSet::insertions("pos", vec![synth_pos_row(50)]))
        .unwrap();
    assert!(svc.flush().is_err());
    let report = svc.shutdown();
    failpoints::disarm_all();

    // Simulate a crash mid-append: chop the final frame's last bytes.
    let log_path = dir.join("commit.log");
    let len = fs::metadata(&log_path).unwrap().len();
    let f = fs::OpenOptions::new().write(true).open(&log_path).unwrap();
    f.set_len(len - 7).unwrap();
    drop(f);

    // Recovery discards the torn frame (the crashed batch's frame) with a
    // warning — NOT an error — and replays the intact prefix.
    let rec = recover_warehouse(&dir, &opts).unwrap();
    assert!(rec.report.torn_bytes_discarded > 0);
    assert_eq!(rec.report.replayed_batches, report.batches_sealed - 1);

    let mut reference = initial.clone();
    for batch in &report.applied {
        reference.maintain(batch, &opts).unwrap();
    }
    assert_tables_identical(&rec.warehouse, &reference, "torn tail");
    rec.warehouse.check_consistency().unwrap();
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn service_restart_resumes_from_recovered_state() {
    let _guard = FAILPOINT_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    failpoints::disarm_all();
    let dir = durable_dir("restart");
    let opts = MaintainOptions::default();
    let initial = small_warehouse();
    let policy = BatchPolicy {
        max_rows: 1,
        max_batches: 2,
        flush_interval: Duration::from_millis(2),
    };

    // First incarnation crashes mid-refresh.
    let svc = start_durable(initial.clone(), policy, opts, &dir, 0)
        .unwrap()
        .service;
    for seed in 0..3u64 {
        svc.ingest(DeltaSet::insertions("pos", vec![synth_pos_row(seed)]))
            .unwrap();
    }
    svc.flush().unwrap();
    failpoints::arm_refresh_panic("SID_sales");
    svc.ingest(DeltaSet::insertions("pos", vec![synth_pos_row(77)]))
        .unwrap();
    assert!(svc.flush().is_err());
    let crash_report = svc.shutdown();
    failpoints::disarm_all();

    // Second incarnation: `start_durable` recovers (replaying the crashed
    // batch) and keeps going — new batches get LSNs after the old ones.
    let restarted = start_durable(small_warehouse(), policy, opts, &dir, 0).unwrap();
    let recovery = restarted.recovery.expect("existing directory recovers");
    assert_eq!(recovery.replayed_batches, crash_report.batches_sealed);
    let svc = restarted.service;
    for seed in 100..104u64 {
        svc.ingest(DeltaSet::insertions("pos", vec![synth_pos_row(seed)]))
            .unwrap();
    }
    svc.flush().unwrap();
    let report = svc.shutdown();
    assert!(report.error.is_none());

    // Reference: initial + every batch from both incarnations, in LSN
    // order (crashed incarnation's applied, its crashed batch, then the
    // second incarnation's applied).
    let mut reference = initial.clone();
    for batch in crash_report
        .applied
        .iter()
        .chain(std::iter::once(&crash_report.unapplied))
        .chain(report.applied.iter())
    {
        reference.maintain(batch, &opts).unwrap();
    }
    let rec = recover_warehouse(&dir, &opts).unwrap();
    assert_tables_identical(&rec.warehouse, &reference, "restart continuity");
    assert_eq!(
        rec.warehouse.last_applied_lsn(),
        Some(crash_report.batches_sealed + report.batches_sealed)
    );
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn restart_after_clean_shutdown_loses_no_new_batches() {
    // Regression: a clean shutdown snapshots + compacts the log empty, so
    // the restarted incarnation's LSN counter must be seeded from the
    // MANIFEST, not the (empty) log — otherwise its batches get LSNs the
    // snapshot already covers and recovery silently drops them.
    let _guard = FAILPOINT_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    failpoints::disarm_all();
    let dir = durable_dir("clean_restart");
    let opts = MaintainOptions::default();
    let initial = small_warehouse();
    let policy = BatchPolicy {
        max_rows: 1,
        max_batches: 2,
        flush_interval: Duration::from_millis(2),
    };

    // First incarnation: clean shutdown → final snapshot, empty log tail.
    let svc = start_durable(initial.clone(), policy, opts, &dir, 0)
        .unwrap()
        .service;
    for seed in 0..7u64 {
        svc.ingest(DeltaSet::insertions("pos", vec![synth_pos_row(seed)]))
            .unwrap();
    }
    svc.flush().unwrap();
    let first = svc.shutdown();
    assert!(first.error.is_none());
    let first_lsns = first.batches_sealed;

    // Second incarnation, with a periodic snapshot cadence that must fire
    // on the *continued* LSN sequence (lsn >= snapshot_lsn + every).
    let restarted = start_durable(small_warehouse(), policy, opts, &dir, 2).unwrap();
    let recovery = restarted.recovery.expect("existing directory recovers");
    assert_eq!(
        recovery.replayed_batches, 0,
        "a clean shutdown leaves nothing to replay"
    );
    assert_eq!(recovery.snapshot_lsn, first_lsns);
    let svc = restarted.service;
    for seed in 100..103u64 {
        svc.ingest(DeltaSet::insertions("pos", vec![synth_pos_row(seed)]))
            .unwrap();
    }
    svc.flush().unwrap();
    let second = svc.shutdown();
    assert!(second.error.is_none());
    assert!(second.unapplied.is_empty());

    // Every batch sealed after the restart was assigned an LSN above the
    // snapshot — the LSNs recovery replays.
    let sealed_lsns: Vec<u64> = second
        .warehouse
        .journal()
        .events()
        .iter()
        .filter_map(|e| match e {
            JournalEvent::BatchSealed { lsn, .. } => Some(*lsn),
            _ => None,
        })
        .collect();
    assert_eq!(sealed_lsns.len() as u64, second.batches_sealed);
    assert!(
        sealed_lsns.iter().all(|&l| l > first_lsns),
        "restarted incarnation reused LSNs covered by the snapshot: {sealed_lsns:?}"
    );

    // Recovery lands on the last batch of the second incarnation with
    // every acknowledged row from both incarnations present.
    let rec = recover_warehouse(&dir, &opts).unwrap();
    assert_eq!(
        rec.warehouse.last_applied_lsn(),
        Some(first_lsns + second.batches_sealed),
        "post-restart batches were dropped by recovery"
    );
    assert!(
        rec.report.snapshot_lsn > first_lsns,
        "the snapshot cadence never fired after the restart (snapshot_lsn={})",
        rec.report.snapshot_lsn
    );

    let mut reference = initial.clone();
    for batch in first.applied.iter().chain(second.applied.iter()) {
        reference.maintain(batch, &opts).unwrap();
    }
    assert_tables_identical(&rec.warehouse, &reference, "clean-shutdown restart");
    rec.warehouse.check_consistency().unwrap();
    let _ = fs::remove_dir_all(&dir);
}

/// Environment marker telling the re-exec'd test binary to run the crash
/// workload (and die by `abort`) instead of the test suite proper.
const CHILD_ENV: &str = "CUBEDELTA_CRASH_RECOVERY_CHILD";

/// The subprocess body: ingest a deterministic stream against a durable
/// service, recording a durable floor of flush-acknowledged rows, until
/// the timer thread aborts the process — no destructors, no flushes,
/// exactly like a SIGKILL, possibly mid-fsync.
fn abort_child(dir: &Path) -> ! {
    let wh = small_warehouse();
    let started = start_durable(
        wh,
        BatchPolicy {
            max_rows: 4,
            max_batches: 4,
            flush_interval: Duration::from_millis(1),
        },
        MaintainOptions::default(),
        dir,
        0,
    )
    .expect("child start_durable");
    let svc = started.service;

    std::thread::spawn(|| {
        std::thread::sleep(Duration::from_millis(40));
        std::process::abort();
    });

    let mut ack = fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(dir.join("acks.txt"))
        .expect("ack file");
    for seed in 0..u64::MAX {
        if svc.ingest(DeltaSet::insertions("pos", vec![synth_pos_row(seed)])).is_err() {
            break;
        }
        if seed % 16 == 15 && svc.flush().is_ok() {
            // Everything up to `seed` is applied AND fsync'd in the log.
            writeln!(ack, "{}", seed + 1).expect("ack write");
            ack.sync_data().expect("ack fsync");
        }
    }
    std::process::abort();
}

#[test]
fn subprocess_abort_recovers_every_accepted_batch() {
    if let Ok(dir) = std::env::var(CHILD_ENV) {
        abort_child(Path::new(&dir));
    }

    let dir = durable_dir("abort");
    fs::create_dir_all(&dir).unwrap();
    let exe = std::env::current_exe().unwrap();
    let status = std::process::Command::new(&exe)
        .args([
            "subprocess_abort_recovers_every_accepted_batch",
            "--exact",
            "--nocapture",
            "--test-threads=1",
        ])
        .env(CHILD_ENV, &dir)
        .status()
        .expect("spawn crash child");
    assert!(!status.success(), "child must die by abort");

    let opts = MaintainOptions::default();
    let rec = recover_warehouse(&dir, &opts).expect("recovery after abort");
    rec.warehouse.check_consistency().unwrap();

    // Floor: the last flush the child saw succeed. Those rows were
    // acknowledged as applied, so recovery must have them all.
    let floor: u64 = fs::read_to_string(dir.join("acks.txt"))
        .unwrap_or_default()
        .lines()
        .filter_map(|l| l.trim().parse().ok())
        .max()
        .unwrap_or(0);
    let initial_rows = small_warehouse()
        .catalog()
        .table("pos")
        .unwrap()
        .to_rows()
        .len() as u64;
    let recovered_rows = rec
        .warehouse
        .catalog()
        .table("pos")
        .unwrap()
        .to_rows()
        .len() as u64;
    assert!(
        recovered_rows >= initial_rows + floor,
        "recovered {recovered_rows} pos rows, but {floor} were flush-acknowledged \
         on top of {initial_rows} initial"
    );

    // Byte-identity: replaying the validated log on a fresh fixture (the
    // run that never crashed) matches recovery's snapshot+replay path.
    let (log, open) = CommitLog::open(&dir).unwrap();
    drop(log);
    assert_eq!(rec.report.replayed_batches, open.records.len() as u64);
    let mut reference = small_warehouse();
    for record in &open.records {
        reference.maintain(&record.batch, &opts).unwrap();
    }
    assert_tables_identical(&rec.warehouse, &reference, "abort recovery");

    // Determinism: recovering the same directory twice gives the same
    // bytes.
    let rec2 = recover_warehouse(&dir, &opts).unwrap();
    assert_tables_identical(&rec.warehouse, &rec2.warehouse, "abort double recovery");

    // CI uploads the recovered-vs-reference pair when this is set.
    if let Ok(artifact_dir) = std::env::var("CUBEDELTA_DURABILITY_ARTIFACT_DIR") {
        let artifact_dir = Path::new(&artifact_dir);
        save_snapshot(&rec.warehouse, &artifact_dir.join("recovered")).unwrap();
        save_snapshot(&reference, &artifact_dir.join("reference")).unwrap();
    }

    let _ = fs::remove_dir_all(&dir);
}

/// After a clean shutdown, recovery's *first published snapshot* is the
/// pre-crash committed state itself: epoch 0, labelled with the
/// snapshot's LSN, byte-identical to the tables the first incarnation
/// shut down with — pinnable before any replay. New cycles then number
/// from 1: the incarnation's epochs are strictly monotone, never reused.
#[test]
fn recovery_publishes_the_precrash_committed_epoch() {
    let _guard = FAILPOINT_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    failpoints::disarm_all();
    let dir = durable_dir("epoch_clean");
    let opts = MaintainOptions::default();

    let svc = start_durable(
        small_warehouse(),
        BatchPolicy {
            max_rows: 1,
            max_batches: 2,
            flush_interval: Duration::from_millis(2),
        },
        opts,
        &dir,
        0,
    )
    .unwrap()
    .service;
    for seed in 0..5u64 {
        svc.ingest(DeltaSet::insertions("pos", vec![synth_pos_row(seed)]))
            .unwrap();
    }
    svc.flush().unwrap();
    let report = svc.shutdown();
    assert!(report.error.is_none());

    let rec = recover_warehouse(&dir, &opts).unwrap();
    assert_eq!(rec.report.replayed_batches, 0, "clean shutdown: snapshot-only");
    let snap = rec.warehouse.read_snapshot();
    assert_eq!(
        snap.epoch(),
        0,
        "the restored state is the new incarnation's epoch 0"
    );
    assert_eq!(
        snap.lsn(),
        Some(report.batches_sealed),
        "epoch 0 carries the snapshot's LSN as its cross-incarnation identity"
    );
    for def in figure1_defs() {
        assert_eq!(
            snap.table(&def.name).unwrap().to_rows(),
            report.warehouse.catalog().table(&def.name).unwrap().to_rows(),
            "recovered snapshot table `{}` differs from the pre-crash epoch",
            def.name
        );
    }

    // Epoch numbering resumes monotonically: the next committed cycle is
    // epoch 1, not a reused number from the dead incarnation.
    let mut wh = rec.warehouse;
    wh.maintain(
        &cubedelta::storage::ChangeBatch::single(DeltaSet::insertions(
            "pos",
            vec![synth_pos_row(200)],
        )),
        &opts,
    )
    .unwrap();
    let next = wh.read_snapshot();
    assert_eq!(next.epoch(), 1, "post-recovery cycles continue from epoch 0");
    let _ = fs::remove_dir_all(&dir);
}

/// After a crash, replay publishes one epoch per replayed cycle on top
/// of epoch 0 (the manifest snapshot), so the recovered warehouse's
/// published epoch counts the replayed batches, its LSN label is the
/// last replayed LSN, and its tables are byte-identical to the
/// uninterrupted run. Post-recovery cycles keep counting upward.
#[test]
fn replayed_cycles_publish_monotone_epochs() {
    let _guard = FAILPOINT_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    failpoints::disarm_all();
    let dir = durable_dir("epoch_replay");
    let opts = MaintainOptions::default();
    let initial = small_warehouse();

    let svc = start_durable(
        initial.clone(),
        BatchPolicy {
            max_rows: 1,
            max_batches: 2,
            flush_interval: Duration::from_millis(2),
        },
        opts,
        &dir,
        0,
    )
    .unwrap()
    .service;
    for seed in 0..4u64 {
        svc.ingest(DeltaSet::insertions("pos", vec![synth_pos_row(seed)]))
            .unwrap();
    }
    svc.flush().unwrap();
    failpoints::arm_refresh_panic("SID_sales");
    svc.ingest(DeltaSet::insertions("pos", vec![synth_pos_row(88)]))
        .unwrap();
    assert!(svc.flush().is_err());
    let report = svc.shutdown();
    failpoints::disarm_all();

    let rec = recover_warehouse(&dir, &opts).unwrap();
    assert!(rec.report.replayed_batches > 0);
    let snap = rec.warehouse.read_snapshot();
    assert_eq!(
        snap.epoch(),
        rec.report.replayed_batches,
        "one epoch per replayed cycle, numbered from the restored epoch 0"
    );
    assert_eq!(snap.lsn(), Some(rec.report.last_lsn));

    let mut reference = initial.clone();
    for batch in report
        .applied
        .iter()
        .chain(std::iter::once(&report.unapplied))
    {
        reference.maintain(batch, &opts).unwrap();
    }
    for def in figure1_defs() {
        assert_eq!(
            snap.table(&def.name).unwrap().to_rows(),
            reference.catalog().table(&def.name).unwrap().to_rows(),
            "replayed snapshot table `{}` diverged",
            def.name
        );
    }

    let mut wh = rec.warehouse;
    wh.maintain(
        &cubedelta::storage::ChangeBatch::single(DeltaSet::insertions(
            "pos",
            vec![synth_pos_row(300)],
        )),
        &opts,
    )
    .unwrap();
    assert_eq!(
        wh.read_snapshot().epoch(),
        rec.report.replayed_batches + 1,
        "post-recovery epochs continue monotonically — no reuse"
    );
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn recovering_a_plain_directory_is_a_precise_error() {
    let dir = durable_dir("nomanifest");
    fs::create_dir_all(&dir).unwrap();
    match recover_warehouse(&dir, &MaintainOptions::default()) {
        Err(PersistError::Manifest(msg)) => assert!(msg.contains("MANIFEST"), "{msg}"),
        Err(other) => panic!("expected Manifest error, got {other:?}"),
        Ok(_) => panic!("recovering a non-durable directory must fail"),
    }
    let _ = fs::remove_dir_all(&dir);
}

mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        // 12 seeded cases over crash-point × threads × shards. Each case
        // spins up a real durable service, so keep the count modest; the
        // deterministic named tests above pin the four corners.
        #![proptest_config(ProptestConfig::with_cases(12))]

        #[test]
        fn recovery_is_byte_identical_across_crash_points(
            crash_idx in 0usize..4,
            threads_wide in 0usize..2,
            shards_wide in 0usize..2,
        ) {
            let crash = [
                CrashPoint::None,
                CrashPoint::Refresh,
                CrashPoint::Merge,
                CrashPoint::Propagate,
            ][crash_idx];
            let threads = if threads_wide == 0 { 1 } else { 4 };
            let shards = if shards_wide == 0 { 1 } else { 4 };
            run_crash_case("prop", threads, shards, crash);
        }
    }
}
