//! Environment-variable wiring for the observability pipeline. These
//! tests mutate process-global env vars, so they live in their own test
//! binary and serialize through one lock — the other integration suites
//! never see the variables set.

mod common;

use std::sync::Mutex;
use std::time::Duration;

use common::{small_warehouse, synth_pos_row};
use cubedelta::core::{BatchPolicy, MaintainOptions, Warehouse, WarehouseService};
use cubedelta::obs::{
    parse_journal, parse_prometheus, scrape_once, JOURNAL_PATH_ENV_VAR,
};
use cubedelta::storage::{ChangeBatch, DeltaSet};

static ENV_LOCK: Mutex<()> = Mutex::new(());

struct EnvGuard(&'static str);

impl EnvGuard {
    fn set(key: &'static str, value: &str) -> Self {
        std::env::set_var(key, value);
        EnvGuard(key)
    }
}

impl Drop for EnvGuard {
    fn drop(&mut self) {
        std::env::remove_var(self.0);
    }
}

/// `CUBEDELTA_METRICS_ADDR` makes `start_with_options` bind the scrape
/// endpoint without any code changes; port 0 picks a free port, read
/// back through `metrics_addr`.
#[test]
fn metrics_addr_env_var_binds_exporter() {
    let _guard = ENV_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    let _env = EnvGuard::set(cubedelta::core::METRICS_ADDR_ENV_VAR, "127.0.0.1:0");
    let svc = WarehouseService::start(
        small_warehouse(),
        BatchPolicy {
            max_rows: 4,
            max_batches: 2,
            flush_interval: Duration::from_millis(5),
        },
    );
    let addr = svc.metrics_addr().expect("env var must bind the exporter");
    svc.ingest(DeltaSet::insertions("pos", vec![synth_pos_row(1)]))
        .unwrap();
    svc.flush().unwrap();
    let families = parse_prometheus(&scrape_once(addr).unwrap()).unwrap();
    assert!(families.iter().any(|f| f.name == "cubedelta_ingest_rows_total"));
    svc.shutdown();
}

/// An unbindable address is reported but never fatal: the service runs
/// without an endpoint.
#[test]
fn bad_metrics_addr_is_not_fatal() {
    let _guard = ENV_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    let _env = EnvGuard::set(cubedelta::core::METRICS_ADDR_ENV_VAR, "not-an-address");
    let svc = WarehouseService::start(small_warehouse(), BatchPolicy::default());
    assert_eq!(svc.metrics_addr(), None);
    svc.ingest(DeltaSet::insertions("pos", vec![synth_pos_row(2)]))
        .unwrap();
    svc.flush().unwrap();
    let report = svc.shutdown();
    assert!(report.error.is_none());
}

/// `CUBEDELTA_JOURNAL_PATH` attaches the file sink at warehouse
/// construction; the sink parses back to the in-memory ring.
#[test]
fn journal_path_env_var_attaches_file_sink() {
    let _guard = ENV_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    let path = std::env::temp_dir().join(format!(
        "cubedelta-journal-env-{}.jsonl",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);
    let _env = EnvGuard::set(JOURNAL_PATH_ENV_VAR, path.to_str().unwrap());
    let mut wh: Warehouse = small_warehouse();
    let batch = ChangeBatch::single(DeltaSet::insertions(
        "pos",
        (0..8).map(synth_pos_row).collect(),
    ));
    wh.maintain(&batch, &MaintainOptions::default()).unwrap();
    let text = std::fs::read_to_string(&path).unwrap();
    let _ = std::fs::remove_file(&path);
    assert_eq!(parse_journal(&text).unwrap(), wh.journal().events());
}
