//! Integration tests for the async ingestion front-end
//! ([`cubedelta::core::WarehouseService`]): concurrent producers racing
//! the background maintenance worker, shutdown/drain semantics, and the
//! panic firewall around refresh (injected via `multi::failpoints`).

mod common;

use std::sync::Mutex;
use std::time::Duration;

use common::{figure1_defs, small_warehouse, synth_pos_row};
use cubedelta::core::multi::failpoints;
use cubedelta::core::{
    BatchPolicy, CoreError, MaintainOptions, MaintenancePolicy, Warehouse, WarehouseService,
};
use cubedelta::expr::Expr;
use cubedelta::query::AggFunc;
use cubedelta::storage::{ChangeBatch, DeltaSet};
use cubedelta::view::SummaryViewDef;
use cubedelta::workload::retail_catalog_small;

/// The failpoint slot is process-global and one-shot; tests that arm it
/// serialize through this lock so they cannot steal each other's shot.
static FAILPOINT_LOCK: Mutex<()> = Mutex::new(());

/// Asserts two warehouses hold byte-identical tables for `pos` and every
/// Figure-1 view.
fn assert_tables_identical(a: &Warehouse, b: &Warehouse, context: &str) {
    let mut names: Vec<String> = figure1_defs().into_iter().map(|d| d.name).collect();
    names.push("pos".to_string());
    for name in names {
        assert_eq!(
            a.catalog().table(&name).unwrap().to_rows(),
            b.catalog().table(&name).unwrap().to_rows(),
            "table `{name}` differs ({context})"
        );
    }
}

/// The acceptance bar: N producers race `ingest` against background
/// maintenance cycles; the final tables must be byte-identical to a
/// single-threaded replay of the applied batches on a copy of the initial
/// warehouse.
#[test]
fn four_producers_match_single_threaded_replay() {
    let mut wh = small_warehouse();
    wh.set_maintenance_policy(MaintenancePolicy::with_threads(4));
    let baseline = wh.clone();

    const PRODUCERS: u64 = 4;
    const DELTAS_PER_PRODUCER: u64 = 60;
    let svc = WarehouseService::start(
        wh,
        BatchPolicy {
            max_rows: 8, // small: forces many seals and real backpressure
            max_batches: 2,
            flush_interval: Duration::from_millis(2),
        },
    );
    std::thread::scope(|scope| {
        for p in 0..PRODUCERS {
            let svc = &svc;
            scope.spawn(move || {
                for i in 0..DELTAS_PER_PRODUCER {
                    let seed = p * 10_000 + i;
                    svc.ingest(DeltaSet::insertions("pos", vec![synth_pos_row(seed)]))
                        .unwrap();
                }
            });
        }
    });
    svc.flush().unwrap();
    let report = svc.shutdown();

    assert!(report.error.is_none(), "cycle failed: {:?}", report.error);
    assert!(report.unapplied.is_empty());
    assert_eq!(report.rows_ingested, PRODUCERS * DELTAS_PER_PRODUCER);
    assert_eq!(report.rows_applied, report.rows_ingested);
    report.warehouse.check_consistency().unwrap();

    // Single-threaded replay: same batches, same order, one thread.
    let mut replay = baseline;
    replay.set_maintenance_policy(MaintenancePolicy::with_threads(1));
    for batch in &report.applied {
        replay.maintain(batch, &MaintainOptions::default()).unwrap();
    }
    assert_tables_identical(&replay, &report.warehouse, "replay vs service");
}

/// Shutdown without an explicit flush still drains everything staged and
/// sealed — no accepted delta is lost on a clean exit.
#[test]
fn shutdown_drains_staged_and_sealed_batches() {
    let svc = WarehouseService::start(
        small_warehouse(),
        BatchPolicy {
            max_rows: 1_000_000,
            max_batches: 4,
            // Far beyond the test's lifetime: only shutdown can seal.
            flush_interval: Duration::from_secs(3600),
        },
    );
    for seed in 0..25 {
        svc.ingest(DeltaSet::insertions("pos", vec![synth_pos_row(seed)]))
            .unwrap();
    }
    let report = svc.shutdown();
    assert!(report.error.is_none());
    assert!(report.unapplied.is_empty(), "shutdown dropped staged rows");
    assert_eq!(report.rows_ingested, 25);
    assert_eq!(report.rows_applied, 25);
    report.warehouse.check_consistency().unwrap();
}

/// A warehouse with a single, uniquely named summary view, so an armed
/// failpoint cannot fire in an unrelated test's refresh.
fn probe_warehouse(view: &str) -> Warehouse {
    let mut wh = Warehouse::from_catalog(retail_catalog_small());
    wh.create_summary_table(
        &SummaryViewDef::builder(view, "pos")
            .group_by(["storeID", "itemID"])
            .aggregate(AggFunc::CountStar, "TotalCount")
            .aggregate(AggFunc::Sum(Expr::col("qty")), "TotalQuantity")
            .build(),
    )
    .unwrap();
    wh
}

/// Regression for the poisoned-lock hole in `restore_level_tables`: a
/// panic inside a refresh step must come back as a `CoreError`, leave
/// every summary table byte-identical to its pre-refresh state (the level
/// snapshot restored through the poisoned mutex), and leave the warehouse
/// usable — not a lost table or a propagated panic.
#[test]
fn injected_refresh_panic_restores_tables_and_surfaces_error() {
    let _guard = FAILPOINT_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    const VIEW: &str = "panic_probe_direct";
    let mut wh = probe_warehouse(VIEW);
    wh.set_maintenance_policy(MaintenancePolicy::with_threads(2));
    let summary_before = wh.catalog().table(VIEW).unwrap().to_rows();

    failpoints::arm_refresh_panic(VIEW);
    let batch = ChangeBatch::single(DeltaSet::insertions("pos", vec![synth_pos_row(7)]));
    let err = wh
        .maintain(&batch, &MaintainOptions::default())
        .expect_err("armed failpoint must fail the cycle");
    failpoints::disarm();
    assert!(
        err.to_string().contains("panicked"),
        "expected a panic-derived error, got: {err}"
    );

    // The summary table survived the poisoned lock: restored, not lost.
    assert_eq!(wh.catalog().table(VIEW).unwrap().to_rows(), summary_before);

    // The warehouse is still operable: base changes landed before the
    // refresh window, so rematerializing repairs the stale summary.
    wh.rematerialize(&ChangeBatch::default(), false).unwrap();
    wh.check_consistency().unwrap();
    wh.maintain(
        &ChangeBatch::single(DeltaSet::insertions("pos", vec![synth_pos_row(8)])),
        &MaintainOptions::default(),
    )
    .unwrap();
    wh.check_consistency().unwrap();
}

/// The same injected panic through the service: the worker's firewall
/// catches it, the batch is parked (not dropped), the error is sticky,
/// and shutdown still hands back a live warehouse.
#[test]
fn service_survives_injected_refresh_panic() {
    let _guard = FAILPOINT_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    const VIEW: &str = "panic_probe_service";
    let svc = WarehouseService::start(
        probe_warehouse(VIEW),
        BatchPolicy {
            max_rows: 4,
            max_batches: 2,
            flush_interval: Duration::from_millis(2),
        },
    );
    failpoints::arm_refresh_panic(VIEW);
    svc.ingest(DeltaSet::insertions("pos", vec![synth_pos_row(3)]))
        .unwrap();
    let err = svc.flush().expect_err("panicking cycle must surface");
    failpoints::disarm();
    assert!(
        err.to_string().contains("panicked"),
        "expected a panic-derived error, got: {err}"
    );
    // Sticky: the service refuses further work rather than applying batch
    // N+1 on top of a missing batch N.
    assert!(matches!(
        svc.ingest(DeltaSet::insertions("pos", vec![synth_pos_row(4)])),
        Err(CoreError::Ingest(_))
    ));

    let report = svc.shutdown();
    assert!(report.error.is_some());
    assert_eq!(report.rows_applied, 0);
    assert_eq!(report.unapplied.len(), 1, "failing batch must be parked");

    // The returned warehouse lost nothing and can be repaired in place.
    let mut wh = report.warehouse;
    assert!(wh.catalog().table(VIEW).is_ok());
    wh.rematerialize(&ChangeBatch::default(), false).unwrap();
    wh.check_consistency().unwrap();
}

/// Blocking `ingest` under sustained backpressure makes progress and the
/// `backpressure_waits` counter records the stalls.
#[test]
fn blocking_ingest_progresses_under_backpressure() {
    let svc = WarehouseService::start(
        small_warehouse(),
        BatchPolicy {
            max_rows: 2,
            max_batches: 1,
            flush_interval: Duration::from_millis(1),
        },
    );
    std::thread::scope(|scope| {
        for p in 0..3u64 {
            let svc = &svc;
            scope.spawn(move || {
                for i in 0..20 {
                    svc.ingest(DeltaSet::insertions(
                        "pos",
                        vec![synth_pos_row(p * 100 + i)],
                    ))
                    .unwrap();
                }
            });
        }
    });
    svc.flush().unwrap();
    let report = svc.shutdown();
    assert!(report.error.is_none());
    assert_eq!(report.rows_applied, 60);
    assert!(report.unapplied.is_empty());
    report.warehouse.check_consistency().unwrap();
}
