//! Async, batched ingestion front-end.
//!
//! The paper's propagate/refresh split (§4) assumes deltas *accumulate*
//! between refreshes: "source changes received during the day are applied
//! in a nightly batch window". Until now that accumulation was the
//! caller's problem — every maintenance cycle was a synchronous call on
//! the caller's thread. [`WarehouseService`] supplies the missing layer:
//!
//! * many producer threads hand fact/dimension [`DeltaSet`]s to
//!   [`WarehouseService::ingest`] (blocking under backpressure) or
//!   [`WarehouseService::try_ingest`] (fails fast with
//!   [`CoreError::Backpressure`]);
//! * deltas are *staged* and coalesced per table into one pending
//!   [`ChangeBatch`];
//! * a [`BatchPolicy`] decides when the staged batch is *sealed* — by row
//!   count (`max_rows`), by age (`flush_interval`), or on demand
//!   ([`WarehouseService::flush`] / shutdown) — and handed to a background
//!   maintenance worker that owns the [`Warehouse`] and runs
//!   propagate + refresh for each sealed batch, in seal order;
//! * the queue is bounded: at most `max_batches` sealed batches may wait
//!   behind the in-flight cycle (plus the staging area), so producers
//!   that outrun maintenance block instead of growing memory without
//!   bound;
//! * a failed cycle never silently drops deltas: the failing batch is
//!   parked in [`ShutdownReport::unapplied`], the error becomes sticky
//!   (subsequent `ingest` calls and `flush` surface it), and everything
//!   still queued at shutdown is folded into `unapplied` too. Even a
//!   *panicking* cycle (see `multi::failpoints`) is caught, keeping the
//!   worker — and the warehouse it owns — recoverable.
//!
//! Determinism: the service applies sealed batches strictly in seal
//! order, and each cycle's refreshed tables are byte-identical to a
//! single-threaded run of the same batch (see `refresh_plan_leveled`), so
//! replaying [`ShutdownReport::applied`] on a copy of the initial
//! warehouse reproduces the final tables byte for byte — the invariant
//! `tests/ingestion.rs` races N producers against.
//!
//! Observability: the service reports into the warehouse's
//! [`MetricsRegistry`](cubedelta_obs::MetricsRegistry) — counters
//! `ingest_rows`, `batches_sealed`, `backpressure_waits`,
//! `shard_routed_rows` (fact rows reordered into shard order at seal
//! time when the warehouse is sharded), gauges `queue_depth` (pending
//! rows: staged + sealed + in flight), `unapplied_rows` (rows parked by
//! failed cycles), `oldest_unapplied_batch_age_us` and `cycles_behind`
//! (the lag signals), histograms `flush_latency_us` and `staleness_us`
//! (first staged row → batch applied, the staleness a reader of the
//! summary tables observes). Lifecycle events (batch sealed,
//! backpressure, cycle failure on panic, shutdown drain) append to the
//! warehouse's [`Journal`] flight recorder, and [`WarehouseService::health`]
//! folds the sticky-error state, queue pressure, and lag into a
//! [`Health`] verdict against a [`SloPolicy`]. Set
//! `CUBEDELTA_METRICS_ADDR` (or call
//! [`WarehouseService::serve_metrics`]) to expose it all on a Prometheus
//! scrape endpoint.

use std::collections::VecDeque;
use std::net::SocketAddr;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use cubedelta_obs::{
    Counter, Gauge, Histogram, Journal, JournalEvent, MetricsRegistry, MetricsServer,
};
use cubedelta_storage::{ChangeBatch, DeltaSet};

use crate::commitlog::{CommitLog, Manifest};
use crate::error::{CoreError, CoreResult};
use crate::subscribe::{Subscription, SubscriptionRegistry, SubscriptionSpec};
use crate::warehouse::{LatticeSnapshot, MaintainOptions, ShardRouter, SnapshotReader, Warehouse};

/// Environment variable naming a `host:port` to serve the Prometheus
/// scrape endpoint on (e.g. `127.0.0.1:9187`). Read once, at
/// [`WarehouseService::start_with_options`]; a bind failure is reported
/// to stderr but never stops the service — telemetry must not take the
/// warehouse down.
pub const METRICS_ADDR_ENV_VAR: &str = "CUBEDELTA_METRICS_ADDR";

/// Environment variable naming the commitlog directory. When set (and the
/// service is started through a constructor that consults it, e.g.
/// [`DurabilityPolicy::from_env`]), every sealed batch is appended to an
/// fsync'd commitlog there before the seal is acknowledged.
pub const COMMITLOG_DIR_ENV_VAR: &str = "CUBEDELTA_COMMITLOG_DIR";

/// How a warehouse snapshot is written, injected by the embedding layer.
///
/// `cubedelta-core` cannot depend on the top-level persistence module (it
/// lives above the SQL crate), so the durable service takes the snapshot
/// writer as a closure: `(warehouse, target_dir) -> Result<(), String>`.
/// The blessed implementation is `cubedelta::durability::start_durable`,
/// which wires in `persist::save_snapshot`.
pub type SnapshotFn = Arc<dyn Fn(&Warehouse, &Path) -> Result<(), String> + Send + Sync>;

/// Durability configuration for [`WarehouseService::start_with_durability`].
#[derive(Clone)]
pub struct DurabilityPolicy {
    /// Directory holding `commit.log`, `MANIFEST`, and `snapshot-<lsn>/`
    /// subdirectories.
    pub dir: PathBuf,
    /// Take a snapshot (and compact the log) every this many applied
    /// batches. `0` disables periodic snapshots — the log then only
    /// compacts at a clean shutdown.
    pub snapshot_every: u64,
    /// Snapshot writer; `None` disables snapshots entirely (the log grows
    /// until an external compaction).
    pub snapshot_fn: Option<SnapshotFn>,
}

impl std::fmt::Debug for DurabilityPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DurabilityPolicy")
            .field("dir", &self.dir)
            .field("snapshot_every", &self.snapshot_every)
            .field("snapshot_fn", &self.snapshot_fn.as_ref().map(|_| "<fn>"))
            .finish()
    }
}

impl DurabilityPolicy {
    /// A policy logging to `dir`, snapshotting every 32 applied batches
    /// once a snapshot writer is attached.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        DurabilityPolicy {
            dir: dir.into(),
            snapshot_every: 32,
            snapshot_fn: None,
        }
    }

    /// Sets the snapshot cadence (`0` = only at clean shutdown).
    pub fn snapshot_every(mut self, every: u64) -> Self {
        self.snapshot_every = every;
        self
    }

    /// Attaches the snapshot writer.
    pub fn with_snapshot_fn(mut self, f: SnapshotFn) -> Self {
        self.snapshot_fn = Some(f);
        self
    }

    /// Builds a policy from `CUBEDELTA_COMMITLOG_DIR`, or `None` when the
    /// variable is unset/empty. Sampled once, at the call — consistent
    /// with how the service treats every other env knob.
    pub fn from_env() -> Option<Self> {
        match std::env::var(COMMITLOG_DIR_ENV_VAR) {
            Ok(dir) if !dir.is_empty() => Some(DurabilityPolicy::new(dir)),
            _ => None,
        }
    }
}

/// Commitlog + manifest state behind its own mutex (locked after the
/// queue-state mutex in `seal`, alone in the worker's commit path).
struct DurableState {
    log: CommitLog,
    manifest: Manifest,
    snapshot_every: u64,
    snapshot_fn: Option<SnapshotFn>,
}

impl DurableState {
    /// Writes a snapshot at `lsn`, flips the manifest to it, compacts the
    /// log, and removes the superseded snapshot directory. Every failure
    /// is non-fatal — the previous snapshot + longer log tail still
    /// recover correctly — so errors are reported, not propagated.
    fn snapshot_and_compact(&mut self, wh: &Warehouse, lsn: u64) {
        let Some(snap) = &self.snapshot_fn else {
            return;
        };
        let dir_name = format!("snapshot-{lsn}");
        let target = self.log.dir().join(&dir_name);
        if let Err(e) = snap(wh, &target) {
            eprintln!("[cubedelta] warning: snapshot at lsn {lsn} failed (kept previous): {e}");
            let _ = std::fs::remove_dir_all(&target);
            return;
        }
        let old_dir = std::mem::replace(&mut self.manifest.snapshot_dir, dir_name);
        self.manifest.snapshot_lsn = lsn;
        if let Err(e) = self.manifest.store(self.log.dir()) {
            eprintln!("[cubedelta] warning: manifest update at lsn {lsn} failed: {e}");
            return;
        }
        if let Err(e) = self.log.compact(lsn) {
            eprintln!("[cubedelta] warning: log compaction at lsn {lsn} failed: {e}");
        }
        if !old_dir.is_empty() && old_dir != self.manifest.snapshot_dir {
            let _ = std::fs::remove_dir_all(self.log.dir().join(old_dir));
        }
    }
}

/// When the staged batch is sealed and handed to the maintenance worker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchPolicy {
    /// Seal the staged batch once it holds this many rows. One oversized
    /// delta is still accepted whole (a batch may exceed `max_rows` by the
    /// final delta's size); the threshold gates *staging more*, not the
    /// size of one delta.
    pub max_rows: usize,
    /// How many sealed batches may queue behind the in-flight cycle.
    /// Together with the staging area this bounds pending rows at roughly
    /// `max_rows × (max_batches + 2)`; past that, producers block
    /// (`ingest`) or get [`CoreError::Backpressure`] (`try_ingest`).
    pub max_batches: usize,
    /// Seal a non-empty staged batch this long after its first row
    /// arrived, even if `max_rows` was never reached — the freshness bound
    /// for trickle traffic.
    pub flush_interval: Duration,
}

impl Default for BatchPolicy {
    fn default() -> Self {
        BatchPolicy {
            max_rows: 4096,
            max_batches: 4,
            flush_interval: Duration::from_millis(50),
        }
    }
}

impl BatchPolicy {
    /// Clamps degenerate settings (zero rows/batches) up to 1.
    fn normalized(self) -> Self {
        BatchPolicy {
            max_rows: self.max_rows.max(1),
            max_batches: self.max_batches.max(1),
            flush_interval: self.flush_interval,
        }
    }
}

/// Staleness/lag objectives a running service is judged against
/// (see [`WarehouseService::health`]).
///
/// The thresholds are *operator intent*, not mechanism: nothing slows
/// down or sheds load when one is crossed — the service only reports
/// [`Health::Degraded`] with the reasons, and the `healthy` gauge drops
/// to 0 for alerting.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloPolicy {
    /// Oldest tolerated ingest→visible lag: if any accepted row has been
    /// waiting (staged, sealed, or in flight) longer than this, the
    /// service is degraded.
    pub max_staleness: Duration,
    /// Queue-pressure threshold as a fraction of capacity
    /// (`max_rows × (max_batches + 2)` pending rows). At or above it the
    /// service is degraded — producers are about to hit backpressure.
    pub max_queue_frac: f64,
    /// Maximum tolerated backlog in *batches* (sealed + in flight +
    /// a non-empty staging area) before the service is degraded.
    pub max_cycles_behind: u64,
}

impl Default for SloPolicy {
    fn default() -> Self {
        SloPolicy {
            max_staleness: Duration::from_secs(5),
            max_queue_frac: 0.9,
            max_cycles_behind: 8,
        }
    }
}

/// Point-in-time health verdict (see [`WarehouseService::health`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Health {
    /// No SLO violated, no sticky failure.
    Healthy,
    /// At least one objective violated; `reasons` says which, in a fixed
    /// order (failure, queue pressure, staleness, backlog).
    Degraded {
        /// Human-readable violations, one per crossed threshold.
        reasons: Vec<String>,
    },
}

impl Health {
    /// True iff the verdict is [`Health::Healthy`].
    pub fn is_healthy(&self) -> bool {
        matches!(self, Health::Healthy)
    }

    /// The violation messages (empty when healthy).
    pub fn reasons(&self) -> &[String] {
        match self {
            Health::Healthy => &[],
            Health::Degraded { reasons } => reasons,
        }
    }
}

/// A staged batch that has been sealed and waits for the worker.
struct SealedBatch {
    batch: ChangeBatch,
    rows: usize,
    /// When the batch's first row was staged — the start of its staleness
    /// clock.
    staged_at: Instant,
    /// Commitlog LSN, when the service is durable: set before the seal is
    /// acknowledged, consumed by the worker's commit bookkeeping.
    lsn: Option<u64>,
}

/// Registry handles the service reports through (cheap `Arc` clones of
/// entries in the warehouse's own registry).
struct Obs {
    ingest_rows: Counter,
    batches_sealed: Counter,
    queue_depth: Gauge,
    unapplied_rows: Gauge,
    oldest_age: Gauge,
    cycles_behind: Gauge,
    healthy: Gauge,
    flush_latency: Histogram,
    staleness: Histogram,
    backpressure_waits: Counter,
    shard_routed_rows: Counter,
    log_appended_bytes: Counter,
    fsync_us: Histogram,
    snapshot_pins: Gauge,
    /// Times the worker thread woke from its flush-timer / work wait —
    /// the busy-wake regression guard: with a sub-millisecond
    /// `flush_interval` the worker must still wake O(1) times per sealed
    /// batch, not spin on a clamped timer.
    worker_wakeups: Counter,
}

/// Mutable queue state behind the service mutex.
#[derive(Default)]
struct QueueState {
    staged: ChangeBatch,
    staged_rows: usize,
    staged_since: Option<Instant>,
    sealed: VecDeque<SealedBatch>,
    sealed_rows: usize,
    in_flight_rows: usize,
    /// Staleness-clock start of the batch the worker is applying right
    /// now (None between cycles) — so the lag gauges keep seeing the
    /// oldest accepted row while it is in flight.
    in_flight_staged_at: Option<Instant>,
    shutdown: bool,
    /// Sticky first failure; set once, never cleared.
    error: Option<CoreError>,
    /// Deltas from failed cycles (and, after shutdown, everything still
    /// queued) — surfaced, never dropped.
    unapplied: ChangeBatch,
    /// Every successfully applied batch, in application order, for
    /// deterministic replay.
    applied: Vec<ChangeBatch>,
    cycles: u64,
    batches_sealed: u64,
    rows_ingested: u64,
    rows_applied: u64,
}

impl QueueState {
    /// Rows not yet applied: staged + sealed + the in-flight cycle.
    fn pending_rows(&self) -> usize {
        self.staged_rows + self.sealed_rows + self.in_flight_rows
    }
}

/// State shared between producers, the worker, and the service handle.
struct Shared {
    state: Mutex<QueueState>,
    /// Signals the worker: new work staged/sealed, or shutdown.
    work: Condvar,
    /// Signals producers and flushers: a sealed slot freed, a cycle
    /// finished, or the service failed/shut down.
    room: Condvar,
    policy: BatchPolicy,
    opts: MaintainOptions,
    obs: Obs,
    registry: MetricsRegistry,
    /// The warehouse's flight recorder (`Arc`-shared with the worker's
    /// warehouse) — seal, backpressure, panic, and drain events land here
    /// interleaved with the cycles they surround.
    journal: Journal,
    /// Snapshot of the warehouse's shard layout, taken at service start.
    /// Inactive (routes nothing) when the maintenance policy runs one
    /// shard.
    router: ShardRouter,
    /// Commitlog + manifest when the service is durable. Lock order:
    /// queue-state mutex first, this second (seal); the worker's commit
    /// path takes this alone.
    durable: Option<Mutex<DurableState>>,
    /// Handle onto the warehouse's snapshot cell, captured before the
    /// worker thread takes the warehouse: the lock-free read path. The
    /// worker publishes new epochs through the same cell at each cycle
    /// commit.
    snapshots: SnapshotReader,
}

impl Shared {
    /// Locks the queue state, recovering from poisoning (the state is
    /// plain data and every writer restores its invariants before any
    /// point that could panic).
    fn lock(&self) -> MutexGuard<'_, QueueState> {
        self.state.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Moves the staged batch into the sealed queue. Caller ensures the
    /// staged batch is non-empty.
    ///
    /// When the warehouse is sharded, each fact delta's rows are reordered
    /// into shard order here — once per batch, off the maintenance worker's
    /// critical path — so propagate receives pre-grouped deltas. Reordering
    /// within a delta is multiset-neutral, so replay byte-identity is
    /// unaffected (the applied batch *is* the reordered one).
    fn seal(&self, st: &mut QueueState) {
        debug_assert!(st.staged_rows > 0);
        let mut batch = std::mem::take(&mut st.staged);
        let rows = std::mem::take(&mut st.staged_rows);
        if self.router.is_active() {
            let mut routed = 0u64;
            for delta in &mut batch.deltas {
                routed += self.router.route(delta);
            }
            if routed > 0 {
                self.obs.shard_routed_rows.add(routed);
            }
        }
        let staged_at = st
            .staged_since
            .take()
            .expect("non-empty staged batch has a start time");
        let tables = batch.deltas.len() as u64;
        // Durable services append-and-fsync *before* the seal is
        // acknowledged: once the batch is in the sealed queue (and thus
        // counted as accepted), a crash must not lose it. A log failure
        // parks the batch and poisons the service — the seal never
        // happened, the rows are surfaced in `unapplied`.
        //
        // The append (fsync included) deliberately runs while the queue
        // lock is held: sealers racing between "append assigned the LSN"
        // and "push into the sealed queue" could otherwise enqueue out of
        // LSN order, and recovery replays in LSN order — apply order must
        // match or byte-identity breaks. The cost is that producers block
        // for one fsync per sealed batch (the commit unit), which is the
        // documented group-commit trade-off.
        let mut lsn = None;
        let mut log_bytes = 0u64;
        if let Some(durable) = &self.durable {
            let mut d = durable.lock().unwrap_or_else(|p| p.into_inner());
            match d.log.append(&batch) {
                Ok(pos) => {
                    lsn = Some(pos.lsn);
                    log_bytes = pos.bytes;
                    self.obs.log_appended_bytes.add(pos.bytes);
                    self.obs.fsync_us.record(Duration::from_micros(pos.fsync_us));
                }
                Err(e) => {
                    st.unapplied.merge(batch);
                    st.error = Some(CoreError::Ingest(format!(
                        "commitlog append failed, batch parked in unapplied: {e}"
                    )));
                    return;
                }
            }
        }
        st.sealed.push_back(SealedBatch {
            batch,
            rows,
            staged_at,
            lsn,
        });
        st.sealed_rows += rows;
        st.batches_sealed += 1;
        self.obs.batches_sealed.inc();
        self.journal.record(JournalEvent::BatchSealed {
            seq: self.journal.next_seal_seq(),
            rows: rows as u64,
            tables,
            lsn: lsn.unwrap_or(0),
            log_bytes,
        });
    }

    /// Start of the staleness clock of the oldest accepted-but-unapplied
    /// row: the in-flight batch (oldest), then the sealed queue's front,
    /// then the staging area.
    fn oldest_staged_at(&self, st: &QueueState) -> Option<Instant> {
        let mut oldest = st.staged_since;
        if let Some(front) = st.sealed.front() {
            oldest = Some(oldest.map_or(front.staged_at, |o| o.min(front.staged_at)));
        }
        if let Some(t) = st.in_flight_staged_at {
            oldest = Some(oldest.map_or(t, |o| o.min(t)));
        }
        oldest
    }

    /// Batches that must complete before everything accepted so far is
    /// visible: sealed + in flight + a non-empty staging area.
    fn batches_behind(&self, st: &QueueState) -> u64 {
        st.sealed.len() as u64
            + u64::from(st.in_flight_rows > 0)
            + u64::from(st.staged_rows > 0)
    }

    /// Judges the queue state against an [`SloPolicy`]. Reason order is
    /// fixed: sticky failure, queue pressure, staleness, backlog.
    fn health_of(&self, st: &QueueState, slo: &SloPolicy) -> Health {
        let mut reasons = Vec::new();
        if let Some(e) = &st.error {
            reasons.push(format!("maintenance failed (sticky): {e}"));
        }
        let capacity = self.policy.max_rows * (self.policy.max_batches + 2);
        let threshold = (capacity as f64 * slo.max_queue_frac).ceil() as usize;
        let pending = st.pending_rows();
        if pending >= threshold.max(1) {
            reasons.push(format!(
                "queue at {pending}/{capacity} pending rows (>= {:.0}% of capacity)",
                slo.max_queue_frac * 100.0
            ));
        }
        if let Some(t0) = self.oldest_staged_at(st) {
            let age = t0.elapsed();
            if age > slo.max_staleness {
                reasons.push(format!(
                    "oldest unapplied batch is {}us old (SLO {}us)",
                    age.as_micros(),
                    slo.max_staleness.as_micros()
                ));
            }
        }
        let behind = self.batches_behind(st);
        if behind > slo.max_cycles_behind {
            reasons.push(format!(
                "{behind} batches behind (SLO {})",
                slo.max_cycles_behind
            ));
        }
        if reasons.is_empty() {
            Health::Healthy
        } else {
            Health::Degraded { reasons }
        }
    }

    /// Publishes every queue-derived gauge. Called on each queue
    /// transition (stage, seal, cycle end, shutdown) and from
    /// [`WarehouseService::health`]; between calls the age gauge holds
    /// its last published value, so scrape-time readings lag by at most
    /// one transition.
    fn publish_gauges(&self, st: &QueueState) {
        self.obs.queue_depth.set(st.pending_rows() as i64);
        self.obs.unapplied_rows.set(st.unapplied.len() as i64);
        let age_us = self
            .oldest_staged_at(st)
            .map(|t0| t0.elapsed().as_micros().min(i64::MAX as u128) as i64)
            .unwrap_or(0);
        self.obs.oldest_age.set(age_us);
        self.obs.cycles_behind.set(self.batches_behind(st) as i64);
        let healthy = self.health_of(st, &SloPolicy::default()).is_healthy();
        self.obs.healthy.set(i64::from(healthy));
    }
}

/// Everything the service hands back on [`WarehouseService::shutdown`].
pub struct ShutdownReport {
    /// The warehouse, with every successfully applied batch maintained.
    pub warehouse: Warehouse,
    /// Maintenance cycles that completed successfully.
    pub cycles: u64,
    /// Batches sealed over the service's lifetime.
    pub batches_sealed: u64,
    /// Rows accepted by `ingest`/`try_ingest`.
    pub rows_ingested: u64,
    /// Rows applied by successful cycles.
    pub rows_applied: u64,
    /// The first failure, if any cycle failed (sticky; later batches were
    /// not attempted).
    pub error: Option<CoreError>,
    /// Deltas that were accepted but never applied: the failing batch
    /// plus everything still staged/sealed at shutdown. Empty on a clean
    /// drain. Re-ingest these into a fresh service (after repairing the
    /// warehouse) to lose nothing.
    pub unapplied: ChangeBatch,
    /// Successfully applied batches in application order — replaying them
    /// on a copy of the initial warehouse reproduces the final tables
    /// byte for byte.
    pub applied: Vec<ChangeBatch>,
}

/// Point-in-time service statistics (see [`WarehouseService::stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IngestStats {
    /// Rows accepted so far.
    pub rows_ingested: u64,
    /// Batches sealed so far.
    pub batches_sealed: u64,
    /// Cycles completed so far.
    pub cycles: u64,
    /// Rows staged, sealed, or in flight right now.
    pub pending_rows: usize,
    /// Whether a cycle has failed (the error is sticky).
    pub failed: bool,
}

/// A [`Warehouse`] wrapped in a concurrent ingestion front-end: producers
/// stage deltas from any number of threads; a background worker seals
/// batches per the [`BatchPolicy`] and runs maintenance cycles off the
/// callers' threads. See the module docs for the full contract.
pub struct WarehouseService {
    shared: Arc<Shared>,
    worker: Option<JoinHandle<Warehouse>>,
    /// Prometheus scrape endpoint, when one is bound (via
    /// `CUBEDELTA_METRICS_ADDR` or [`WarehouseService::serve_metrics`]).
    /// Shut down when the service is dropped or shut down.
    metrics_server: Option<MetricsServer>,
    /// The warehouse's subscription hub, held across the worker boundary:
    /// clients register here while the worker owns the warehouse, and the
    /// worker's committed cycles dispatch into the same registry.
    subs: SubscriptionRegistry,
}

impl WarehouseService {
    /// Starts the service with default [`MaintainOptions`]. The worker
    /// uses the warehouse's own [`MaintenancePolicy`]
    /// (`crate::MaintenancePolicy`) — thread count is sampled once when
    /// the `Warehouse` is constructed, never re-read mid-run.
    pub fn start(warehouse: Warehouse, policy: BatchPolicy) -> Self {
        Self::start_with_options(warehouse, policy, MaintainOptions::default())
    }

    /// Starts the service with explicit maintenance options.
    pub fn start_with_options(
        warehouse: Warehouse,
        policy: BatchPolicy,
        opts: MaintainOptions,
    ) -> Self {
        Self::start_inner(warehouse, policy, opts, None)
    }

    /// Starts a *durable* service: every sealed batch is appended to an
    /// fsync'd commitlog in `durability.dir` before the seal is
    /// acknowledged, the manifest tracks the last applied LSN, and (when
    /// a snapshot writer is attached) the log is compacted behind
    /// periodic snapshots and at clean shutdown.
    ///
    /// The warehouse passed in must already be consistent with the
    /// directory's manifest — i.e. recovered via snapshot + log replay.
    /// `cubedelta::durability::start_durable` is the blessed entry point
    /// that does both; call this directly only with a fresh directory or
    /// an already-recovered warehouse.
    pub fn start_with_durability(
        warehouse: Warehouse,
        policy: BatchPolicy,
        opts: MaintainOptions,
        durability: DurabilityPolicy,
    ) -> CoreResult<Self> {
        let (log, open) = CommitLog::open(&durability.dir)
            .map_err(|e| CoreError::Ingest(format!("cannot open commitlog: {e}")))?;
        if open.torn_bytes_discarded > 0 {
            // CommitLog::open already warned; nothing else to do — the
            // torn frame was never acknowledged, so no accepted batch is
            // affected.
        }
        let manifest = Manifest::load(&durability.dir)
            .map_err(|e| CoreError::Ingest(format!("cannot read commitlog manifest: {e}")))?
            .unwrap_or_default();
        let state = DurableState {
            log,
            manifest,
            snapshot_every: durability.snapshot_every,
            snapshot_fn: durability.snapshot_fn,
        };
        Ok(Self::start_inner(warehouse, policy, opts, Some(state)))
    }

    fn start_inner(
        warehouse: Warehouse,
        policy: BatchPolicy,
        opts: MaintainOptions,
        durable: Option<DurableState>,
    ) -> Self {
        let registry = warehouse.metrics().clone();
        let journal = warehouse.journal().clone();
        let obs = Obs {
            ingest_rows: registry.counter("ingest_rows"),
            batches_sealed: registry.counter("batches_sealed"),
            queue_depth: registry.gauge("queue_depth"),
            unapplied_rows: registry.gauge("unapplied_rows"),
            oldest_age: registry.gauge("oldest_unapplied_batch_age_us"),
            cycles_behind: registry.gauge("cycles_behind"),
            healthy: registry.gauge("healthy"),
            flush_latency: registry.histogram("flush_latency_us"),
            staleness: registry.histogram("staleness_us"),
            backpressure_waits: registry.counter("backpressure_waits"),
            shard_routed_rows: registry.counter("shard_routed_rows"),
            log_appended_bytes: registry.counter("log_appended_bytes"),
            fsync_us: registry.histogram("fsync_us"),
            snapshot_pins: registry.gauge("snapshot_pins"),
            worker_wakeups: registry.counter("worker_wakeups"),
        };
        obs.healthy.set(1);
        let router = warehouse.shard_router();
        let snapshots = warehouse.snapshot_reader();
        let subs = warehouse.subscriptions().clone();
        let shared = Arc::new(Shared {
            state: Mutex::new(QueueState::default()),
            work: Condvar::new(),
            room: Condvar::new(),
            policy: policy.normalized(),
            opts,
            obs,
            registry,
            journal,
            router,
            durable: durable.map(Mutex::new),
            snapshots,
        });
        let worker_shared = Arc::clone(&shared);
        let worker = std::thread::Builder::new()
            .name("cubedelta-ingest".into())
            .spawn(move || worker_loop(worker_shared, warehouse))
            .expect("spawn ingestion worker");
        let metrics_server = match std::env::var(METRICS_ADDR_ENV_VAR) {
            Ok(addr) if !addr.is_empty() => {
                match MetricsServer::bind(&addr, shared.registry.clone()) {
                    Ok(server) => Some(server),
                    Err(e) => {
                        // Telemetry must never stop the warehouse: report
                        // and run without an endpoint.
                        eprintln!("cubedelta: cannot serve metrics on {addr}: {e}");
                        None
                    }
                }
            }
            _ => None,
        };
        WarehouseService {
            shared,
            worker: Some(worker),
            metrics_server,
            subs,
        }
    }

    /// Binds (or re-binds) the Prometheus scrape endpoint explicitly,
    /// replacing any server started via `CUBEDELTA_METRICS_ADDR`. Pass
    /// `"127.0.0.1:0"` to let the OS pick a free port and read it back
    /// from [`WarehouseService::metrics_addr`].
    pub fn serve_metrics(&mut self, addr: &str) -> std::io::Result<SocketAddr> {
        let server = MetricsServer::bind(addr, self.shared.registry.clone())?;
        let bound = server.addr();
        self.metrics_server = Some(server); // old server (if any) drops → shuts down
        Ok(bound)
    }

    /// The scrape endpoint's bound address, if one is serving.
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.metrics_server.as_ref().map(|s| s.addr())
    }

    /// Judges the service against the default [`SloPolicy`].
    pub fn health(&self) -> Health {
        self.health_with(&SloPolicy::default())
    }

    /// Judges the service against an explicit [`SloPolicy`]: sticky
    /// cycle failures, queue pressure relative to capacity, the age of
    /// the oldest accepted-but-unapplied row, and the batch backlog.
    /// Also refreshes the lag gauges (`oldest_unapplied_batch_age_us`,
    /// `cycles_behind`, `healthy`), so polling `health()` keeps scrapes
    /// current even on an idle queue.
    pub fn health_with(&self, slo: &SloPolicy) -> Health {
        let st = self.shared.lock();
        self.shared.publish_gauges(&st);
        let health = self.shared.health_of(&st, slo);
        // `publish_gauges` judges with the default policy; re-publish the
        // verdict actually returned when the caller's policy differs.
        self.shared.obs.healthy.set(i64::from(health.is_healthy()));
        health
    }

    /// Stages a delta, blocking while the queue is at capacity.
    /// Per-producer FIFO holds: two deltas ingested by the same thread are
    /// applied in that order (possibly coalesced into the same batch), so
    /// a producer may safely delete rows it inserted earlier.
    pub fn ingest(&self, delta: DeltaSet) -> CoreResult<()> {
        self.ingest_inner(delta, true)
    }

    /// Stages a delta without blocking: returns
    /// [`CoreError::Backpressure`] when the queue is at capacity.
    pub fn try_ingest(&self, delta: DeltaSet) -> CoreResult<()> {
        self.ingest_inner(delta, false)
    }

    fn ingest_inner(&self, delta: DeltaSet, block: bool) -> CoreResult<()> {
        let rows = delta.len();
        if rows == 0 {
            return Ok(());
        }
        let mut st = self.shared.lock();
        loop {
            if let Some(e) = &st.error {
                return Err(CoreError::Ingest(format!(
                    "maintenance cycle failed, staged deltas are held for the operator: {e}"
                )));
            }
            if st.shutdown {
                return Err(CoreError::Ingest("service is shutting down".into()));
            }
            if st.staged_rows < self.shared.policy.max_rows {
                break; // room to stage
            }
            if st.sealed.len() < self.shared.policy.max_batches {
                // Staging area full but the sealed queue has a slot: seal
                // the full batch ourselves so this delta starts a new one.
                // Re-check from the top rather than breaking — a durable
                // seal can fail (sticky error), and this delta must then
                // be refused, not staged behind a parked batch.
                self.shared.seal(&mut st);
                self.shared.work.notify_one();
                continue;
            }
            if !block {
                return Err(CoreError::Backpressure);
            }
            self.shared.obs.backpressure_waits.inc();
            self.shared.journal.record(JournalEvent::Backpressure {
                pending_rows: st.pending_rows() as u64,
            });
            st = self
                .shared
                .room
                .wait(st)
                .unwrap_or_else(|p| p.into_inner());
        }
        if st.staged_rows == 0 {
            st.staged_since = Some(Instant::now());
        }
        st.staged.add(delta);
        st.staged_rows += rows;
        st.rows_ingested += rows as u64;
        self.shared.obs.ingest_rows.add(rows as u64);
        if st.staged_rows >= self.shared.policy.max_rows
            && st.sealed.len() < self.shared.policy.max_batches
        {
            self.shared.seal(&mut st);
        }
        self.shared.publish_gauges(&st);
        self.shared.work.notify_one();
        Ok(())
    }

    /// Seals whatever is staged and blocks until every pending row has
    /// been applied (or a cycle fails — the sticky error is returned).
    pub fn flush(&self) -> CoreResult<()> {
        let mut st = self.shared.lock();
        loop {
            if let Some(e) = &st.error {
                return Err(e.clone());
            }
            if st.pending_rows() == 0 {
                return Ok(());
            }
            if st.staged_rows > 0 && st.sealed.len() < self.shared.policy.max_batches {
                self.shared.seal(&mut st);
                self.shared.work.notify_one();
            }
            st = self
                .shared
                .room
                .wait(st)
                .unwrap_or_else(|p| p.into_inner());
        }
    }

    /// Rows staged, sealed, or in flight right now (the `queue_depth`
    /// gauge reports the same quantity).
    pub fn queue_depth(&self) -> usize {
        self.shared.lock().pending_rows()
    }

    /// Point-in-time counters.
    pub fn stats(&self) -> IngestStats {
        let st = self.shared.lock();
        IngestStats {
            rows_ingested: st.rows_ingested,
            batches_sealed: st.batches_sealed,
            cycles: st.cycles,
            pending_rows: st.pending_rows(),
            failed: st.error.is_some(),
        }
    }

    /// The metrics registry the service (and its warehouse) report into.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.shared.registry
    }

    /// Pins the currently-published lattice snapshot: every summary table
    /// at the same committed cycle, fully concurrent with the maintenance
    /// worker. One `Arc` clone — no per-table mutex, no batch-window wait,
    /// callable from any number of reader threads while cycles commit.
    /// The `snapshot_epoch` gauge tracks the published epoch and
    /// `snapshot_pins` approximates how many pinned snapshots readers
    /// still hold.
    pub fn read(&self) -> Arc<LatticeSnapshot> {
        let snap = self.shared.snapshots.read();
        self.shared
            .obs
            .snapshot_pins
            .set(self.shared.snapshots.pins() as i64);
        snap
    }

    /// A cloneable handle for reader threads that must not borrow the
    /// service itself.
    pub fn snapshot_reader(&self) -> SnapshotReader {
        self.shared.snapshots.clone()
    }

    /// The live-subscription hub (see [`crate::subscribe`]).
    pub fn subscriptions(&self) -> &SubscriptionRegistry {
        &self.subs
    }

    /// Registers a standing filter/project subscription over one summary
    /// view, concurrent with the maintenance worker. The initial result and
    /// its start epoch come from one snapshot read taken under the registry
    /// lock, so a cycle committing mid-registration is either fully in the
    /// initial state or delivered as the first update — never both, never
    /// neither.
    pub fn subscribe(&self, spec: SubscriptionSpec) -> CoreResult<Subscription> {
        self.subs.subscribe(spec)
    }

    /// [`WarehouseService::subscribe`] with an explicit queue capacity.
    pub fn subscribe_with(
        &self,
        spec: SubscriptionSpec,
        capacity: usize,
    ) -> CoreResult<Subscription> {
        self.subs.subscribe_with(spec, capacity)
    }

    /// Subscribes to an ad-hoc aggregate query by rewriting it onto a
    /// materialized lattice node. The rewrite plans against the published
    /// snapshot's catalog (the worker owns the live one); snapshots keep
    /// schema-only fact stand-ins, so planning metadata is all there.
    pub fn subscribe_query(&self, query: &crate::answer::AggQuery) -> CoreResult<Subscription> {
        let snap = self.read();
        let spec = SubscriptionSpec::from_query(snap.catalog(), snap.views(), query)?;
        self.subs.subscribe(spec)
    }

    /// Stops accepting deltas, drains every staged and sealed batch
    /// (unless a cycle fails), joins the worker, and returns the warehouse
    /// together with the full accounting — including any deltas that were
    /// accepted but never applied.
    pub fn shutdown(mut self) -> ShutdownReport {
        self.begin_shutdown();
        let warehouse = self
            .worker
            .take()
            .expect("worker present until shutdown")
            .join()
            .expect("ingestion worker panicked outside the maintenance firewall");
        let mut st = self.shared.lock();
        let mut unapplied = std::mem::take(&mut st.unapplied);
        for job in st.sealed.drain(..) {
            unapplied.merge(job.batch);
        }
        st.sealed_rows = 0;
        let staged = std::mem::take(&mut st.staged);
        st.staged_rows = 0;
        st.staged_since = None;
        unapplied.merge(staged);
        // Final gauge states: the queue is gone; what survives is the
        // unapplied set handed back in the report.
        self.shared.obs.queue_depth.set(0);
        self.shared.obs.oldest_age.set(0);
        self.shared.obs.cycles_behind.set(0);
        self.shared.obs.unapplied_rows.set(unapplied.len() as i64);
        ShutdownReport {
            warehouse,
            cycles: st.cycles,
            batches_sealed: st.batches_sealed,
            rows_ingested: st.rows_ingested,
            rows_applied: st.rows_applied,
            error: st.error.clone(),
            unapplied,
            applied: std::mem::take(&mut st.applied),
        }
    }

    fn begin_shutdown(&self) {
        let mut st = self.shared.lock();
        st.shutdown = true;
        drop(st);
        self.shared.work.notify_all();
        self.shared.room.notify_all();
    }
}

impl Drop for WarehouseService {
    fn drop(&mut self) {
        if let Some(worker) = self.worker.take() {
            self.begin_shutdown();
            let _ = worker.join();
        }
    }
}

/// The background maintenance worker: seals due batches, applies sealed
/// batches in order, surfaces failures, and returns the warehouse when the
/// queue is drained after shutdown.
fn worker_loop(shared: Arc<Shared>, mut wh: Warehouse) -> Warehouse {
    loop {
        let mut st = shared.lock();
        let job = loop {
            if st.error.is_some() {
                // Sticky failure: stop applying (order matters — batch N+1
                // must not land when batch N didn't); park until shutdown.
                if st.shutdown {
                    break None;
                }
                st = shared.work.wait(st).unwrap_or_else(|p| p.into_inner());
                continue;
            }
            let flush_due = st
                .staged_since
                .is_some_and(|t0| t0.elapsed() >= shared.policy.flush_interval);
            if st.staged_rows > 0
                && (flush_due || st.staged_rows >= shared.policy.max_rows || st.shutdown)
            {
                shared.seal(&mut st);
            }
            if let Some(job) = st.sealed.pop_front() {
                st.sealed_rows -= job.rows;
                st.in_flight_rows = job.rows;
                st.in_flight_staged_at = Some(job.staged_at);
                break Some(job);
            }
            if st.shutdown {
                break None; // fully drained
            }
            st = match st.staged_since {
                // Sleep exactly until the staged batch comes due. No lower
                // clamp: a clamped wait (the old `max(1ms)`) turns a
                // sub-millisecond `flush_interval` into a spin of 1ms
                // wakeups. A zero remainder means the batch is already due
                // — loop around without sleeping; `flush_due` uses `>=`,
                // so the next iteration seals it.
                Some(t0) => {
                    let wait = shared.policy.flush_interval.saturating_sub(t0.elapsed());
                    if wait.is_zero() {
                        continue;
                    }
                    let next = shared
                        .work
                        .wait_timeout(st, wait)
                        .unwrap_or_else(|p| p.into_inner())
                        .0;
                    shared.obs.worker_wakeups.inc();
                    next
                }
                None => {
                    let next = shared.work.wait(st).unwrap_or_else(|p| p.into_inner());
                    shared.obs.worker_wakeups.inc();
                    next
                }
            };
        };
        let Some(job) = job else {
            shared.publish_gauges(&st);
            shared.journal.record(JournalEvent::ShutdownDrain {
                cycles: st.cycles,
                applied_rows: st.rows_applied,
                unapplied_rows: (st.unapplied.len() + st.sealed_rows + st.staged_rows) as u64,
            });
            let clean = st.error.is_none();
            drop(st);
            // Final snapshot on a clean drain: restart then recovers from
            // the snapshot alone, with an empty log tail. Never snapshot
            // after a failed cycle — the warehouse may hold a partially
            // refreshed state that must not become a recovery point.
            if clean {
                if let Some(durable) = &shared.durable {
                    let mut d = durable.lock().unwrap_or_else(|p| p.into_inner());
                    let last = d.manifest.last_applied_lsn;
                    if last > d.manifest.snapshot_lsn {
                        d.snapshot_and_compact(&wh, last);
                    }
                    // The manifest is written lazily during the run; make
                    // the final `last_applied_lsn` durable even when the
                    // snapshot was skipped (nothing applied) or failed.
                    if let Err(e) = d.manifest.store(d.log.dir()) {
                        eprintln!(
                            "[cubedelta] warning: final manifest update at lsn {last} failed: {e}"
                        );
                    }
                }
            }
            shared.room.notify_all();
            return wh;
        };
        shared.publish_gauges(&st);
        drop(st);
        // A sealed slot just freed; blocked producers can seal into it.
        shared.room.notify_all();

        // The cycle runs outside the queue lock: producers keep staging
        // while propagate + refresh execute. The panic firewall keeps the
        // worker (and the warehouse it owns) alive even if a cycle blows
        // up — the batch is parked in `unapplied`, not lost.
        let result = catch_unwind(AssertUnwindSafe(|| wh.maintain(&job.batch, &shared.opts)));
        let staleness = job.staged_at.elapsed();

        // Durable commit, outside the queue lock: record how far the
        // warehouse has advanced and take a periodic snapshot when due.
        // Both are recovery *optimizations* — replay from the previous
        // snapshot is always correct — so failures warn, never poison.
        // `last_applied_lsn` is persisted lazily (at snapshots and clean
        // shutdown, where it equals the snapshot commit), not per batch:
        // recovery replays from `snapshot_lsn` regardless, so a stale
        // on-disk value only makes the torn-tail/corruption cross-check
        // more conservative, and skipping the per-batch manifest rewrite
        // saves three fsyncs per applied cycle.
        if result.as_ref().is_ok_and(|r| r.is_ok()) {
            if let (Some(durable), Some(lsn)) = (&shared.durable, job.lsn) {
                wh.set_last_applied_lsn(lsn);
                let mut d = durable.lock().unwrap_or_else(|p| p.into_inner());
                d.manifest.last_applied_lsn = lsn;
                let due = d.snapshot_every > 0
                    && lsn >= d.manifest.snapshot_lsn + d.snapshot_every;
                if due {
                    d.snapshot_and_compact(&wh, lsn);
                }
            }
        }

        let mut st = shared.lock();
        st.in_flight_rows = 0;
        st.in_flight_staged_at = None;
        match result {
            Ok(Ok(_report)) => {
                st.cycles += 1;
                st.rows_applied += job.rows as u64;
                st.applied.push(job.batch);
                shared.obs.flush_latency.record(staleness);
                shared.obs.staleness.record(staleness);
            }
            Ok(Err(e)) => {
                // `maintain` already journaled CycleFailed before
                // returning the error.
                st.unapplied.merge(job.batch);
                st.error = Some(e);
            }
            Err(payload) => {
                let msg = payload
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic payload".to_string());
                // A panic unwound past `maintain`'s error path, so no
                // CycleFailed was journaled — write it here, against the
                // cycle id the aborted CycleStarted claimed.
                shared.journal.record(JournalEvent::CycleFailed {
                    cycle: shared.journal.last_cycle_id(),
                    error: format!("panicked: {msg}"),
                });
                st.unapplied.merge(job.batch);
                st.error = Some(CoreError::Ingest(format!(
                    "maintenance cycle panicked: {msg}"
                )));
            }
        }
        shared.publish_gauges(&st);
        drop(st);
        shared.room.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_fixtures::*;
    use crate::warehouse::MaintenancePolicy;
    use cubedelta_storage::{row, Date, DeltaSet};

    fn service_warehouse() -> Warehouse {
        let mut wh = Warehouse::from_catalog(retail_catalog_small());
        for def in figure1_defs() {
            wh.create_summary_table(&def).unwrap();
        }
        wh.set_maintenance_policy(MaintenancePolicy::with_threads(2));
        wh
    }

    fn pos_insert(seed: i64) -> DeltaSet {
        DeltaSet::insertions(
            "pos",
            vec![row![
                (seed % 3) + 1,
                [10i64, 20, 30][(seed % 3) as usize],
                Date(10000 + (seed % 4) as i32),
                seed % 7 + 1,
                1.0
            ]],
        )
    }

    #[test]
    fn single_producer_drains_and_matches_direct_maintenance() {
        let wh = service_warehouse();
        let baseline = wh.clone();
        let svc = WarehouseService::start(
            wh,
            BatchPolicy {
                max_rows: 3,
                max_batches: 2,
                flush_interval: Duration::from_millis(5),
            },
        );
        for seed in 0..10 {
            svc.ingest(pos_insert(seed)).unwrap();
        }
        svc.flush().unwrap();
        let report = svc.shutdown();
        assert!(report.error.is_none());
        assert!(report.unapplied.is_empty());
        assert_eq!(report.rows_ingested, 10);
        assert_eq!(report.rows_applied, 10);
        assert!(report.cycles >= 1);
        assert_eq!(report.applied.len(), report.cycles as usize);
        report.warehouse.check_consistency().unwrap();

        // Replaying the applied batches reproduces the tables byte for
        // byte.
        let mut replay = baseline;
        for batch in &report.applied {
            replay.maintain(batch, &MaintainOptions::default()).unwrap();
        }
        for v in replay.views() {
            let name = &v.def.name;
            assert_eq!(
                replay.catalog().table(name).unwrap().to_rows(),
                report.warehouse.catalog().table(name).unwrap().to_rows(),
                "{name} differs from replay"
            );
        }
    }

    #[test]
    fn try_ingest_reports_backpressure_when_full() {
        // A worker stuck behind a deliberately huge flush interval and a
        // tiny queue: capacity is max_rows (staged) + max_batches sealed.
        let svc = WarehouseService::start(
            service_warehouse(),
            BatchPolicy {
                max_rows: 1,
                max_batches: 1,
                flush_interval: Duration::from_secs(3600),
            },
        );
        // First row fills (and seals) the staging area; the worker will
        // pick it up, so give it a moment to go in flight, then saturate.
        svc.ingest(pos_insert(0)).unwrap();
        let mut accepted = 0;
        let mut saw_backpressure = false;
        for seed in 1..50 {
            match svc.try_ingest(pos_insert(seed)) {
                Ok(()) => accepted += 1,
                Err(CoreError::Backpressure) => {
                    saw_backpressure = true;
                    break;
                }
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
        assert!(
            saw_backpressure,
            "a 2-row queue accepted {accepted} extra rows without backpressure"
        );
        let report = svc.shutdown();
        assert!(report.error.is_none());
        assert!(report.unapplied.is_empty(), "shutdown drains the queue");
        assert_eq!(report.rows_applied, report.rows_ingested);
    }

    #[test]
    fn empty_delta_is_a_no_op() {
        let svc = WarehouseService::start(service_warehouse(), BatchPolicy::default());
        svc.ingest(DeltaSet::new("pos")).unwrap();
        assert_eq!(svc.stats().rows_ingested, 0);
        let report = svc.shutdown();
        assert_eq!(report.cycles, 0);
        assert_eq!(report.batches_sealed, 0);
    }

    #[test]
    fn flush_interval_seals_trickle_traffic() {
        let svc = WarehouseService::start(
            service_warehouse(),
            BatchPolicy {
                max_rows: 1_000_000,
                max_batches: 2,
                flush_interval: Duration::from_millis(5),
            },
        );
        svc.ingest(pos_insert(1)).unwrap();
        // Well under max_rows: only the interval can seal this.
        let deadline = Instant::now() + Duration::from_secs(10);
        while svc.stats().cycles == 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(2));
        }
        assert!(svc.stats().cycles >= 1, "flush_interval never fired");
        let report = svc.shutdown();
        assert!(report.error.is_none());
        assert_eq!(report.rows_applied, 1);
    }

    #[test]
    fn failed_cycle_surfaces_error_and_parks_deltas() {
        // A deletion of a row that does not exist drives COUNT(*) negative
        // — the maintenance invariant error, surfaced through the service.
        let svc = WarehouseService::start(
            service_warehouse(),
            BatchPolicy {
                max_rows: 4,
                max_batches: 2,
                flush_interval: Duration::from_millis(5),
            },
        );
        svc.ingest(DeltaSet::deletions(
            "pos",
            vec![row![99i64, 99i64, Date(1), 1i64, 9.9]],
        ))
        .unwrap();
        assert!(svc.flush().is_err());
        // The error is sticky: further ingests are refused...
        assert!(matches!(
            svc.ingest(pos_insert(0)),
            Err(CoreError::Ingest(_))
        ));
        let report = svc.shutdown();
        // ...and the failing batch is surfaced, not dropped.
        assert!(report.error.is_some());
        assert_eq!(report.unapplied.len(), 1);
        assert_eq!(report.rows_applied, 0);
    }

    #[test]
    fn service_metrics_reach_the_registry() {
        let svc = WarehouseService::start(
            service_warehouse(),
            BatchPolicy {
                max_rows: 2,
                max_batches: 2,
                flush_interval: Duration::from_millis(5),
            },
        );
        for seed in 0..6 {
            svc.ingest(pos_insert(seed)).unwrap();
        }
        svc.flush().unwrap();
        let report = svc.shutdown();
        let reg = report.warehouse.metrics();
        assert_eq!(reg.counter("ingest_rows").get(), 6);
        assert!(reg.counter("batches_sealed").get() >= 1);
        assert_eq!(reg.gauge("queue_depth").get(), 0);
        assert_eq!(
            reg.histogram("flush_latency_us").count(),
            report.cycles
        );
        assert_eq!(
            reg.counter("maintain.cycles").get(),
            report.cycles
        );
    }

    #[test]
    fn policy_normalization_clamps_zeros() {
        let p = BatchPolicy {
            max_rows: 0,
            max_batches: 0,
            flush_interval: Duration::ZERO,
        }
        .normalized();
        assert_eq!(p.max_rows, 1);
        assert_eq!(p.max_batches, 1);
    }
}
