//! End-to-end observability checks over the paper's §6 setup: a real
//! retail warehouse with all four Figure-1 summary tables, maintained
//! through `Warehouse::maintain`, must produce an enriched
//! [`MaintenanceReport`] whose operator counters account for the work
//! actually done.

use cubedelta_bench::{build_warehouse, insertion_batch, update_batch};
use cubedelta_core::MaintainOptions;

const POS_ROWS: usize = 20_000;
const CHANGE_ROWS: usize = 500;

#[test]
fn update_workload_reports_nonzero_operator_counters() {
    let (wh, params) = build_warehouse(POS_ROWS);
    let batch = update_batch(&wh, &params, CHANGE_ROWS, 42);
    let mut w = wh.clone();
    let report = w.maintain(&batch, &MaintainOptions::default()).unwrap();

    // The cycle-wide counters show real scan/aggregate/probe work: the
    // fig9 acceptance bar of at least six distinct non-zero counters.
    assert!(report.metrics.rows_scanned > 0, "rows_scanned");
    assert!(report.metrics.groups_touched > 0, "groups_touched");
    assert!(report.metrics.index_probes > 0, "index_probes");
    assert!(report.metrics.hash_build_rows > 0, "hash_build_rows");
    assert!(report.metrics.delta_rows > 0, "delta_rows");
    assert!(
        report.metrics.distinct_nonzero() >= 6,
        "expected >= 6 distinct non-zero counters, got: {}",
        report.metrics
    );

    // Per-view phase timings are populated and the per-view counters sum
    // to the cycle-wide set.
    assert_eq!(report.per_view.len(), 4);
    let mut summed = cubedelta_core::ExecutionMetrics::new();
    for v in &report.per_view {
        assert!(v.metrics.rows_scanned > 0, "{}: rows_scanned", v.view);
        summed.merge(&v.metrics);
    }
    assert_eq!(summed, report.metrics);

    w.check_consistency().unwrap();
}

#[test]
fn refresh_actions_account_for_every_summary_delta_tuple() {
    let (wh, params) = build_warehouse(POS_ROWS);
    let batch = update_batch(&wh, &params, CHANGE_ROWS, 7);
    let mut w = wh.clone();
    let report = w.maintain(&batch, &MaintainOptions::default()).unwrap();

    for v in &report.per_view {
        // Propagate's delta-cardinality counter is exactly the sd size…
        assert_eq!(
            v.metrics.delta_rows as usize, v.delta_rows,
            "{}: delta_rows counter",
            v.view
        );
        // …and refresh classifies each sd tuple exactly once.
        assert_eq!(
            v.refresh.total(),
            v.delta_rows,
            "{}: refresh action counts must cover the summary-delta",
            v.view
        );
    }
}

#[test]
fn insertion_workload_updates_inserts_deletes_equal_delta_cardinality() {
    let (wh, params) = build_warehouse(POS_ROWS);
    let batch = insertion_batch(&params, CHANGE_ROWS, 11);
    let mut w = wh.clone();
    let report = w.maintain(&batch, &MaintainOptions::default()).unwrap();

    for v in &report.per_view {
        // Insertions-only batches take the §4.2 fast path: no MIN/MAX
        // recomputation, and pure inserts can never produce a net-zero
        // skip, so the three plain actions alone cover the delta.
        assert_eq!(v.refresh.recomputed, 0, "{}", v.view);
        assert_eq!(v.refresh.skipped, 0, "{}", v.view);
        assert_eq!(
            v.refresh.updated + v.refresh.inserted + v.refresh.deleted,
            v.delta_rows,
            "{}: updated + inserted + deleted != summary-delta cardinality",
            v.view
        );
        assert!(v.delta_rows > 0, "{}: empty summary-delta", v.view);
    }
    w.check_consistency().unwrap();
}

#[test]
fn warehouse_registry_sees_each_cycle() {
    let (wh, params) = build_warehouse(POS_ROWS);
    let mut w = wh.clone();
    for seed in [1u64, 2, 3] {
        let batch = update_batch(&w, &params, 100, seed);
        w.maintain(&batch, &MaintainOptions::default()).unwrap();
    }
    assert_eq!(w.metrics().counter("maintain.cycles").get(), 3);
    let snap = w.metrics().histogram("maintain.total_us").snapshot();
    assert_eq!(snap.count, 3);
}
