//! Relational operators over materialized [`Relation`]s.
//!
//! Every operator comes in two forms: the plain entry point and a
//! `*_metered` variant threading an [`ExecutionMetrics`] by `&mut`, which
//! books rows scanned/emitted, hash builds/probes, groups touched, and
//! predicate evaluations. The plain form delegates with a scratch metrics
//! value, so instrumentation costs nothing to callers that don't ask.

use std::collections::HashMap;

use cubedelta_expr::{Expr, Predicate};
use cubedelta_obs::ExecutionMetrics;
use cubedelta_storage::{Column, Row, Schema};

use crate::aggregate::{AggFunc, AggState};
use crate::error::{QueryError, QueryResult};
use crate::relation::Relation;

/// `SELECT * FROM rel WHERE pred`.
pub fn filter(rel: &Relation, pred: &Predicate) -> QueryResult<Relation> {
    filter_metered(rel, pred, &mut ExecutionMetrics::new())
}

/// [`filter`], booking one scan + one predicate evaluation per input row
/// and one emit per surviving row into `m`.
pub fn filter_metered(
    rel: &Relation,
    pred: &Predicate,
    m: &mut ExecutionMetrics,
) -> QueryResult<Relation> {
    let bound = pred.bind(&rel.schema)?;
    let mut rows = Vec::new();
    m.rows_scanned += rel.rows.len() as u64;
    m.comparisons += rel.rows.len() as u64;
    for r in &rel.rows {
        if bound.eval(r)? {
            rows.push(r.clone());
        }
    }
    m.rows_emitted += rows.len() as u64;
    Ok(Relation::new(rel.schema.clone(), rows))
}

/// `SELECT exprs AS columns FROM rel`.
///
/// Each output column pairs an expression with its output [`Column`]
/// definition (name + declared type; computed columns are typically declared
/// nullable since arithmetic can produce NULL).
pub fn project(rel: &Relation, outputs: &[(Expr, Column)]) -> QueryResult<Relation> {
    project_metered(rel, outputs, &mut ExecutionMetrics::new())
}

/// [`project`], booking scans and emits into `m`.
pub fn project_metered(
    rel: &Relation,
    outputs: &[(Expr, Column)],
    m: &mut ExecutionMetrics,
) -> QueryResult<Relation> {
    let bound: Vec<Expr> = outputs
        .iter()
        .map(|(e, _)| e.bind(&rel.schema))
        .collect::<Result<_, _>>()?;
    let schema = Schema::new(outputs.iter().map(|(_, c)| c.clone()).collect());
    let mut rows = Vec::with_capacity(rel.rows.len());
    for r in &rel.rows {
        let mut out = Vec::with_capacity(bound.len());
        for e in &bound {
            out.push(e.eval(r)?);
        }
        rows.push(Row::new(out));
    }
    m.rows_scanned += rel.rows.len() as u64;
    m.rows_emitted += rows.len() as u64;
    Ok(Relation::new(schema, rows))
}

/// Equi hash join: `SELECT * FROM left JOIN right ON left.lk = right.rk`.
///
/// Builds the hash table on `right` — in the paper's star schema the right
/// side is always a dimension table, which is far smaller than the fact
/// table or change set probing it. Column-name collisions in the output are
/// prefixed with `prefix.`.
///
/// Join keys containing NULL never match (SQL semantics).
pub fn hash_join(
    left: &Relation,
    right: &Relation,
    left_keys: &[&str],
    right_keys: &[&str],
    prefix: &str,
) -> QueryResult<Relation> {
    hash_join_metered(
        left,
        right,
        left_keys,
        right_keys,
        prefix,
        &mut ExecutionMetrics::new(),
    )
}

/// [`hash_join`], booking build rows (right side), probes (left side),
/// scans, and emits into `m`.
pub fn hash_join_metered(
    left: &Relation,
    right: &Relation,
    left_keys: &[&str],
    right_keys: &[&str],
    prefix: &str,
    m: &mut ExecutionMetrics,
) -> QueryResult<Relation> {
    if left_keys.len() != right_keys.len() {
        return Err(QueryError::Plan(format!(
            "join key arity mismatch: {} vs {}",
            left_keys.len(),
            right_keys.len()
        )));
    }
    let lk = left.schema.indices_of(left_keys)?;
    let rk = right.schema.indices_of(right_keys)?;

    m.rows_scanned += (left.rows.len() + right.rows.len()) as u64;
    let mut build: HashMap<Row, Vec<&Row>> = HashMap::with_capacity(right.rows.len());
    for r in &right.rows {
        let key = r.project(&rk);
        if key.iter().any(|v| v.is_null()) {
            continue;
        }
        build.entry(key).or_default().push(r);
        m.hash_build_rows += 1;
    }

    let schema = left.schema.join(&right.schema, prefix);
    let mut rows = Vec::with_capacity(left.rows.len());
    for l in &left.rows {
        let key = l.project(&lk);
        if key.iter().any(|v| v.is_null()) {
            continue;
        }
        m.hash_probes += 1;
        if let Some(matches) = build.get(&key) {
            for r in matches {
                rows.push(l.concat(r));
            }
        }
    }
    m.rows_emitted += rows.len() as u64;
    Ok(Relation::new(schema, rows))
}

/// `a UNION ALL b`. Schemas must agree in arity; the left schema names the
/// output (the paper's prepare-changes union the prepare-insertions and
/// prepare-deletions views, which share a schema by construction).
pub fn union_all(a: &Relation, b: &Relation) -> QueryResult<Relation> {
    union_all_metered(a, b, &mut ExecutionMetrics::new())
}

/// [`union_all`], booking scans and emits into `m`.
pub fn union_all_metered(
    a: &Relation,
    b: &Relation,
    m: &mut ExecutionMetrics,
) -> QueryResult<Relation> {
    if a.schema.arity() != b.schema.arity() {
        return Err(QueryError::Plan(format!(
            "union arity mismatch: {} vs {}",
            a.schema.arity(),
            b.schema.arity()
        )));
    }
    let mut rows = Vec::with_capacity(a.rows.len() + b.rows.len());
    rows.extend(a.rows.iter().cloned());
    rows.extend(b.rows.iter().cloned());
    m.rows_scanned += rows.len() as u64;
    m.rows_emitted += rows.len() as u64;
    Ok(Relation::new(a.schema.clone(), rows))
}

/// Hash group-by aggregation:
/// `SELECT group_cols, aggs FROM rel GROUP BY group_cols`.
///
/// With an empty `group_cols`, behaves like SQL global aggregation: exactly
/// one output row, even over empty input (this is the `()` apex-less node of
/// the cube lattice).
pub fn hash_aggregate(
    rel: &Relation,
    group_cols: &[&str],
    aggs: &[(AggFunc, Column)],
) -> QueryResult<Relation> {
    hash_aggregate_metered(rel, group_cols, aggs, &mut ExecutionMetrics::new())
}

/// [`hash_aggregate`], booking one scan + one hash probe per input row,
/// one build row per new group, groups touched, and emits into `m`.
pub fn hash_aggregate_metered(
    rel: &Relation,
    group_cols: &[&str],
    aggs: &[(AggFunc, Column)],
    m: &mut ExecutionMetrics,
) -> QueryResult<Relation> {
    let gidx = rel.schema.indices_of(group_cols)?;
    // Bind aggregate inputs once against the child schema.
    let bound: Vec<(AggFunc, Option<Expr>)> = aggs
        .iter()
        .map(|(f, _)| {
            let input = f.input().map(|e| e.bind(&rel.schema)).transpose()?;
            Ok::<_, QueryError>((f.clone(), input))
        })
        .collect::<Result<_, _>>()?;

    let mut groups: HashMap<Row, Vec<AggState>> = HashMap::new();
    // Preserve first-seen group order for deterministic output.
    let mut order: Vec<Row> = Vec::new();

    m.rows_scanned += rel.rows.len() as u64;
    m.hash_probes += rel.rows.len() as u64;
    for r in &rel.rows {
        let key = r.project(&gidx);
        let states = match groups.get_mut(&key) {
            Some(s) => s,
            None => {
                m.hash_build_rows += 1;
                order.push(key.clone());
                groups
                    .entry(key)
                    .or_insert_with(|| bound.iter().map(|(f, _)| f.new_state()).collect())
            }
        };
        for ((func, input), state) in bound.iter().zip(states.iter_mut()) {
            let v = match input {
                Some(e) => e.eval(r)?,
                None => cubedelta_storage::Value::Int(1), // COUNT(*) marker
            };
            state.update_metered(func, &v, m);
        }
    }

    // SQL global aggregation yields one row over empty input.
    if gidx.is_empty() && groups.is_empty() {
        let states: Vec<AggState> = bound.iter().map(|(f, _)| f.new_state()).collect();
        order.push(Row::default());
        groups.insert(Row::default(), states);
    }

    let mut cols: Vec<Column> = gidx
        .iter()
        .map(|&i| rel.schema.columns()[i].clone())
        .collect();
    // Aggregate outputs may be NULL (SUM over all-NULL etc.).
    cols.extend(aggs.iter().map(|(_, c)| {
        let mut c = c.clone();
        c.nullable = true;
        c
    }));
    let schema = Schema::new(cols);

    let mut rows = Vec::with_capacity(order.len());
    for key in order {
        let states = &groups[&key];
        let mut out = key.0;
        out.extend(states.iter().map(AggState::finalize));
        rows.push(Row::new(out));
    }
    m.groups_touched += rows.len() as u64;
    m.rows_emitted += rows.len() as u64;
    Ok(Relation::new(schema, rows))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cubedelta_expr::CmpOp;
    use cubedelta_storage::{row, DataType, Value};

    fn pos() -> Relation {
        // (storeID, itemID, qty)
        Relation::new(
            Schema::new(vec![
                Column::new("storeID", DataType::Int),
                Column::new("itemID", DataType::Int),
                Column::nullable("qty", DataType::Int),
            ]),
            vec![
                row![1i64, 10i64, 5i64],
                row![1i64, 10i64, 3i64],
                row![1i64, 20i64, 2i64],
                row![2i64, 10i64, 7i64],
            ],
        )
    }

    fn items() -> Relation {
        Relation::new(
            Schema::new(vec![
                Column::new("itemID", DataType::Int),
                Column::new("category", DataType::Str),
            ]),
            vec![row![10i64, "drinks"], row![20i64, "snacks"]],
        )
    }

    #[test]
    fn filter_selects_rows() {
        let out = filter(
            &pos(),
            &Predicate::cmp(CmpOp::Gt, Expr::col("qty"), Expr::lit(3i64)),
        )
        .unwrap();
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn project_computes_columns() {
        let out = project(
            &pos(),
            &[
                (Expr::col("storeID"), Column::new("storeID", DataType::Int)),
                (
                    Expr::col("qty").neg(),
                    Column::nullable("neg_qty", DataType::Int),
                ),
            ],
        )
        .unwrap();
        assert_eq!(out.schema.names(), vec!["storeID", "neg_qty"]);
        assert_eq!(out.rows[0], row![1i64, -5i64]);
    }

    #[test]
    fn hash_join_fk_semantics() {
        let out = hash_join(&pos(), &items(), &["itemID"], &["itemID"], "items").unwrap();
        // FK join: every pos row matches exactly one item.
        assert_eq!(out.len(), 4);
        assert_eq!(
            out.schema.names(),
            vec!["storeID", "itemID", "qty", "items.itemID", "category"]
        );
        // Row for item 20 carries snacks.
        assert!(out
            .rows
            .iter()
            .any(|r| r[1] == Value::Int(20) && r[4] == Value::str("snacks")));
    }

    #[test]
    fn hash_join_null_keys_never_match() {
        let mut l = pos();
        l.rows.push(Row::new(vec![
            Value::Int(3),
            Value::Null,
            Value::Int(1),
        ]));
        let out = hash_join(&l, &items(), &["itemID"], &["itemID"], "i").unwrap();
        assert_eq!(out.len(), 4, "NULL join key must not match");
    }

    #[test]
    fn hash_join_key_arity_checked() {
        assert!(matches!(
            hash_join(&pos(), &items(), &["itemID", "storeID"], &["itemID"], "i"),
            Err(QueryError::Plan(_))
        ));
    }

    #[test]
    fn union_all_concatenates() {
        let a = pos();
        let out = union_all(&a, &a).unwrap();
        assert_eq!(out.len(), 8);
        let bad = items();
        assert!(union_all(&a, &bad).is_err());
    }

    #[test]
    fn aggregate_groups_and_counts() {
        let out = hash_aggregate(
            &pos(),
            &["storeID"],
            &[
                (AggFunc::CountStar, Column::new("cnt", DataType::Int)),
                (
                    AggFunc::Sum(Expr::col("qty")),
                    Column::new("total", DataType::Int),
                ),
            ],
        )
        .unwrap();
        assert_eq!(out.len(), 2);
        let sorted = out.sorted_rows();
        assert_eq!(sorted[0], row![1i64, 3i64, 10i64]);
        assert_eq!(sorted[1], row![2i64, 1i64, 7i64]);
    }

    #[test]
    fn aggregate_multi_column_group() {
        let out = hash_aggregate(
            &pos(),
            &["storeID", "itemID"],
            &[(AggFunc::CountStar, Column::new("cnt", DataType::Int))],
        )
        .unwrap();
        assert_eq!(out.len(), 3);
    }

    #[test]
    fn global_aggregate_over_empty_input() {
        let empty = Relation::empty(pos().schema);
        let out = hash_aggregate(
            &empty,
            &[],
            &[
                (AggFunc::CountStar, Column::new("cnt", DataType::Int)),
                (
                    AggFunc::Sum(Expr::col("qty")),
                    Column::new("total", DataType::Int),
                ),
            ],
        )
        .unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out.rows[0][0], Value::Int(0));
        assert!(out.rows[0][1].is_null());
    }

    #[test]
    fn grouped_aggregate_over_empty_input_is_empty() {
        let empty = Relation::empty(pos().schema);
        let out = hash_aggregate(
            &empty,
            &["storeID"],
            &[(AggFunc::CountStar, Column::new("cnt", DataType::Int))],
        )
        .unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn aggregate_min_max_with_nulls() {
        let mut rel = pos();
        rel.rows.push(Row::new(vec![
            Value::Int(1),
            Value::Int(30),
            Value::Null,
        ]));
        let out = hash_aggregate(
            &rel,
            &["storeID"],
            &[
                (
                    AggFunc::Min(Expr::col("qty")),
                    Column::new("mn", DataType::Int),
                ),
                (
                    AggFunc::Max(Expr::col("qty")),
                    Column::new("mx", DataType::Int),
                ),
                (
                    AggFunc::Count(Expr::col("qty")),
                    Column::new("cnt_q", DataType::Int),
                ),
            ],
        )
        .unwrap();
        let store1 = out
            .rows
            .iter()
            .find(|r| r[0] == Value::Int(1))
            .unwrap();
        assert_eq!(store1[1], Value::Int(2)); // min
        assert_eq!(store1[2], Value::Int(5)); // max
        assert_eq!(store1[3], Value::Int(3)); // null qty not counted
    }

    #[test]
    fn metered_operators_book_their_work() {
        let mut m = ExecutionMetrics::new();
        let out = filter_metered(
            &pos(),
            &Predicate::cmp(CmpOp::Gt, Expr::col("qty"), Expr::lit(3i64)),
            &mut m,
        )
        .unwrap();
        assert_eq!(m.rows_scanned, 4);
        assert_eq!(m.comparisons, 4);
        assert_eq!(m.rows_emitted, out.len() as u64);

        let mut m = ExecutionMetrics::new();
        let out = hash_join_metered(&pos(), &items(), &["itemID"], &["itemID"], "i", &mut m)
            .unwrap();
        assert_eq!(m.rows_scanned, 6); // 4 left + 2 right
        assert_eq!(m.hash_build_rows, 2);
        assert_eq!(m.hash_probes, 4);
        assert_eq!(m.rows_emitted, out.len() as u64);

        let mut m = ExecutionMetrics::new();
        let out = hash_aggregate_metered(
            &pos(),
            &["storeID"],
            &[(AggFunc::CountStar, Column::new("cnt", DataType::Int))],
            &mut m,
        )
        .unwrap();
        assert_eq!(m.rows_scanned, 4);
        assert_eq!(m.hash_probes, 4);
        assert_eq!(m.hash_build_rows, 2); // two distinct stores
        assert_eq!(m.groups_touched, 2);
        assert_eq!(m.rows_emitted, out.len() as u64);

        let mut m = ExecutionMetrics::new();
        union_all_metered(&pos(), &pos(), &mut m).unwrap();
        assert_eq!(m.rows_scanned, 8);
        assert_eq!(m.rows_emitted, 8);
    }

    #[test]
    fn aggregate_avg_direct() {
        let out = hash_aggregate(
            &pos(),
            &["itemID"],
            &[(
                AggFunc::Avg(Expr::col("qty")),
                Column::new("avg_q", DataType::Float),
            )],
        )
        .unwrap();
        let item10 = out
            .rows
            .iter()
            .find(|r| r[0] == Value::Int(10))
            .unwrap();
        assert_eq!(item10[1], Value::Float(5.0));
    }
}
