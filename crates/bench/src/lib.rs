//! # cubedelta-bench
//!
//! The harness that regenerates every table and figure of the paper's
//! evaluation (§6, Figure 9). Shared between the Criterion benches
//! (`benches/fig9*.rs`, `benches/ablations.rs`, `benches/micro.rs`) and the
//! one-shot printing harness (`src/bin/fig9.rs`) whose output feeds
//! `EXPERIMENTS.md`.
//!
//! The §6 setup: a `pos` table of 100k–500k tuples with a composite index
//! on `(storeID, itemID, date)`, the four Figure-1 summary tables each with
//! a composite index on their group-by columns, and change sets of
//! 1k–10k tuples that are either *update-generating* (balanced
//! insert/delete over existing values) or *insertion-generating* (inserts
//! over new dates).

use std::time::{Duration, Instant};

use cubedelta_core::{MaintainOptions, MaintenancePolicy, MaintenanceReport, StorageMode, Warehouse};
use cubedelta_expr::Expr;
use cubedelta_query::AggFunc;
use cubedelta_storage::ChangeBatch;
use cubedelta_view::SummaryViewDef;
use cubedelta_workload::{
    insertion_generating, retail_catalog, update_generating, RetailParams, WorkloadScale,
};

/// The paper's four Figure-1 summary tables.
pub fn figure1_defs() -> Vec<SummaryViewDef> {
    vec![
        SummaryViewDef::builder("SID_sales", "pos")
            .group_by(["storeID", "itemID", "date"])
            .aggregate(AggFunc::CountStar, "TotalCount")
            .aggregate(AggFunc::Sum(Expr::col("qty")), "TotalQuantity")
            .build(),
        SummaryViewDef::builder("sCD_sales", "pos")
            .join_dimension("stores")
            .group_by(["city", "date"])
            .aggregate(AggFunc::CountStar, "TotalCount")
            .aggregate(AggFunc::Sum(Expr::col("qty")), "TotalQuantity")
            .build(),
        SummaryViewDef::builder("SiC_sales", "pos")
            .join_dimension("items")
            .group_by(["storeID", "category"])
            .aggregate(AggFunc::CountStar, "TotalCount")
            .aggregate(AggFunc::Min(Expr::col("date")), "EarliestSale")
            .aggregate(AggFunc::Sum(Expr::col("qty")), "TotalQuantity")
            .build(),
        SummaryViewDef::builder("sR_sales", "pos")
            .join_dimension("stores")
            .group_by(["region"])
            .aggregate(AggFunc::CountStar, "TotalCount")
            .aggregate(AggFunc::Sum(Expr::col("qty")), "TotalQuantity")
            .build(),
    ]
}

/// Builds the §6 warehouse at the given `pos` size, with all four summary
/// tables installed and the fact-table composite index in place.
pub fn build_warehouse(pos_rows: usize) -> (Warehouse, RetailParams) {
    let (mut cat, params) = retail_catalog(WorkloadScale::paper(pos_rows));
    cat.table_mut("pos")
        .unwrap()
        .create_index("pos_sid", &["storeID", "itemID", "date"])
        .unwrap();
    let mut wh = Warehouse::from_catalog(cat);
    for def in figure1_defs() {
        wh.create_summary_table(&def).unwrap();
    }
    (wh, params)
}

/// The §6 *update-generating* change batch.
pub fn update_batch(wh: &Warehouse, params: &RetailParams, size: usize, seed: u64) -> ChangeBatch {
    ChangeBatch::single(update_generating(wh.catalog(), params, size, seed))
}

/// The §6 *insertion-generating* change batch (one new day).
pub fn insertion_batch(params: &RetailParams, size: usize, seed: u64) -> ChangeBatch {
    ChangeBatch::single(insertion_generating(params, size, 1, seed))
}

/// The maintenance strategies compared in Figure 9.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// Summary-delta method with the D-lattice (the paper's proposal).
    SummaryDelta,
    /// Summary-delta method, every delta from the raw changes (the dotted
    /// "Propagate (w/o lattice)" comparison line).
    SummaryDeltaNoLattice,
    /// Rematerialize all views via the lattice cascade.
    Rematerialize,
    /// Rematerialize each view independently from base data.
    RematerializeNoLattice,
}

impl Strategy {
    /// Display label matching the paper's legend.
    pub fn label(self) -> &'static str {
        match self {
            Strategy::SummaryDelta => "Summary Delta Maint.",
            Strategy::SummaryDeltaNoLattice => "Summary Delta (w/o lattice)",
            Strategy::Rematerialize => "Rematerialize",
            Strategy::RematerializeNoLattice => "Rematerialize (w/o lattice)",
        }
    }
}

/// One measured maintenance run.
#[derive(Debug, Clone, Copy, Default)]
pub struct Timings {
    /// Propagate time (zero for rematerialization).
    pub propagate: Duration,
    /// Batch-window time (refresh, or the full recompute).
    pub refresh: Duration,
    /// Everything including applying changes to base tables.
    pub total: Duration,
}

/// Runs one strategy against a clone of the warehouse, so the caller can
/// replay the same state across strategies. Returns wall-clock timings and
/// the post-run warehouse (for assertions).
pub fn run_strategy(
    wh: &Warehouse,
    batch: &ChangeBatch,
    strategy: Strategy,
) -> (Timings, Warehouse) {
    let (timings, _, w) = run_strategy_reported(wh, batch, strategy);
    (timings, w)
}

/// [`run_strategy`], additionally returning the full [`MaintenanceReport`]
/// (per-view phase timings and operator counters) for telemetry emission.
pub fn run_strategy_reported(
    wh: &Warehouse,
    batch: &ChangeBatch,
    strategy: Strategy,
) -> (Timings, MaintenanceReport, Warehouse) {
    let mut w = wh.clone();
    let t0 = Instant::now();
    let report = match strategy {
        Strategy::SummaryDelta => w
            .maintain(batch, &MaintainOptions::default())
            .expect("maintain"),
        Strategy::SummaryDeltaNoLattice => w
            .maintain(
                batch,
                &MaintainOptions {
                    use_lattice: false,
                    pre_aggregate: false,
                },
            )
            .expect("maintain"),
        Strategy::Rematerialize => w.rematerialize(batch, true).expect("rematerialize"),
        Strategy::RematerializeNoLattice => {
            w.rematerialize(batch, false).expect("rematerialize")
        }
    };
    let total = t0.elapsed();
    (
        Timings {
            propagate: report.propagate_time,
            refresh: report.refresh_time,
            total,
        },
        report,
        w,
    )
}

/// Runs the summary-delta strategy against a clone of the warehouse with a
/// pinned propagate thread count (ignoring `CUBEDELTA_THREADS` and the
/// machine default), for scheduler comparisons at fixed state.
pub fn run_summary_delta_threaded(
    wh: &Warehouse,
    batch: &ChangeBatch,
    threads: usize,
) -> (Timings, MaintenanceReport, Warehouse) {
    let mut w = wh.clone();
    w.set_maintenance_policy(MaintenancePolicy::with_threads(threads));
    let t0 = Instant::now();
    let report = w
        .maintain(batch, &MaintainOptions::default())
        .expect("maintain");
    let total = t0.elapsed();
    (
        Timings {
            propagate: report.propagate_time,
            refresh: report.refresh_time,
            total,
        },
        report,
        w,
    )
}

/// Runs the summary-delta strategy against a clone of the warehouse with a
/// pinned thread count *and* shard count, for cross-shard propagate
/// comparisons at fixed state.
pub fn run_summary_delta_sharded(
    wh: &Warehouse,
    batch: &ChangeBatch,
    threads: usize,
    shards: usize,
) -> (Timings, MaintenanceReport, Warehouse) {
    let mut w = wh.clone();
    w.set_maintenance_policy(MaintenancePolicy::with_threads(threads).with_shards(shards));
    let t0 = Instant::now();
    let report = w
        .maintain(batch, &MaintainOptions::default())
        .expect("maintain");
    let total = t0.elapsed();
    (
        Timings {
            propagate: report.propagate_time,
            refresh: report.refresh_time,
            total,
        },
        report,
        w,
    )
}

/// Runs the summary-delta strategy against a clone of the warehouse with a
/// pinned thread count *and* storage mode, for row-vs-columnar engine
/// comparisons at fixed state. Unlike thread/shard scaling, a row-vs-
/// columnar ratio at the same thread count is meaningful even on a
/// single-core host — both runs get the same parallelism.
pub fn run_summary_delta_storage(
    wh: &Warehouse,
    batch: &ChangeBatch,
    threads: usize,
    storage: StorageMode,
) -> (Timings, MaintenanceReport, Warehouse) {
    let mut w = wh.clone();
    w.set_maintenance_policy(MaintenancePolicy::with_threads(threads).with_storage(storage));
    // Build the columnar mirrors outside the timed window: the clone's
    // first cycle would otherwise fold the one-time chunking of the whole
    // fact table into propagate_time, which steady-state cycles (mirrors
    // synced incrementally in the apply phase) never pay.
    w.prime_storage_caches().expect("prime caches");
    let t0 = Instant::now();
    let report = w
        .maintain(batch, &MaintainOptions::default())
        .expect("maintain");
    let total = t0.elapsed();
    (
        Timings {
            propagate: report.propagate_time,
            refresh: report.refresh_time,
            total,
        },
        report,
        w,
    )
}

/// The host's available parallelism, defaulting to 1 when unknown.
pub fn host_parallelism() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// The shared validity gate for concurrency-scaling claims in bench
/// telemetry (`speedup_valid`, `scaling_valid`, `shard_speedup_valid`):
/// a speedup measured on a single-core host is noise, not signal, so
/// downstream consumers only trust scaling numbers when the host could
/// actually run the compared configurations concurrently.
pub fn concurrency_gate(host_parallelism: usize) -> bool {
    host_parallelism > 1
}

/// Formats a duration in seconds with millisecond precision.
pub fn secs(d: Duration) -> String {
    format!("{:8.3}", d.as_secs_f64())
}
