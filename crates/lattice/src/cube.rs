//! The data-cube lattice (§3.2, Figure 4).

use std::collections::BTreeSet;

use crate::attr::AttrLattice;

/// Builds the cube lattice over `k` dimension attributes: all `2^k` subsets,
/// ordered by set inclusion. The edge `v1 → v2` (with `v2 ⊂ v1`) carries the
/// query that re-aggregates `v1` grouping by `v2`'s attributes, replacing
/// COUNT with SUM (§3.2).
///
/// Figure 4 is `cube_lattice(&["storeID", "itemID", "date"])`.
pub fn cube_lattice(attrs: &[&str]) -> AttrLattice {
    let k = attrs.len();
    assert!(k <= 20, "2^{k} cube views is unreasonable");
    let mut nodes: Vec<BTreeSet<String>> = Vec::with_capacity(1 << k);
    for mask in 0..(1u32 << k) {
        let mut set = BTreeSet::new();
        for (i, a) in attrs.iter().enumerate() {
            if mask & (1 << i) != 0 {
                set.insert(a.to_string());
            }
        }
        nodes.push(set);
    }
    AttrLattice::build(nodes, |a, b| a.is_subset(b))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_4_lattice_shape() {
        let lat = cube_lattice(&["storeID", "itemID", "date"]);
        assert_eq!(lat.len(), 8);
        // Top is the full group-by, bottom is ().
        let tops = lat.tops();
        assert_eq!(tops.len(), 1);
        assert_eq!(
            lat.nodes()[tops[0]].len(),
            3,
            "top groups by all three attributes"
        );
        let bottoms = lat.bottoms();
        assert_eq!(bottoms.len(), 1);
        assert!(lat.nodes()[bottoms[0]].is_empty());
        // Each 2-subset has the top as its only parent; 12 covering edges
        // total (3 + 6 + 3).
        assert_eq!(lat.edges().len(), 12);
        let si = lat.find(["storeID", "itemID"]).unwrap();
        assert_eq!(lat.parents(si), vec![tops[0]]);
        assert_eq!(lat.children(si).len(), 2);
    }

    #[test]
    fn single_attribute_cube() {
        let lat = cube_lattice(&["a"]);
        assert_eq!(lat.len(), 2);
        assert_eq!(lat.edges().len(), 1);
    }

    #[test]
    fn empty_cube_is_unit() {
        let lat = cube_lattice(&[]);
        assert_eq!(lat.len(), 1);
        assert!(lat.edges().is_empty());
    }

    #[test]
    fn figure_4_render_levels() {
        let lat = cube_lattice(&["storeID", "itemID", "date"]);
        let render = lat.render();
        let lines: Vec<&str> = render.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[0], "(date, itemID, storeID)");
        assert!(lines[1].contains("(itemID, storeID)"));
        assert_eq!(lines[3], "()");
    }
}
