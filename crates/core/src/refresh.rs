//! The refresh function (§4.2, Figures 2 and 7).
//!
//! Applies a summary-delta table to its summary table. Each summary-delta
//! tuple touches a single corresponding summary tuple (same group-by
//! values), found through the summary table's unique index:
//!
//! * **not found** → insert the delta tuple;
//! * **found, `COUNT(*)` reaches 0** → delete the tuple;
//! * **found, a MIN/MAX extremum may have been deleted** → recompute that
//!   group's aggregates from the (already-updated) base data;
//! * **found, otherwise** → merge: COUNT/SUM add, MIN/MAX take the
//!   min/max, and any aggregate whose supporting `COUNT(e)` reaches 0
//!   becomes NULL.
//!
//! The conceptual shape is a left outer-join of the summary-delta with the
//! summary table ("summary-delta join", §4.2). Two implementations share
//! the Figure-7 per-tuple logic:
//!
//! * [`refresh`] — one indexed pass over the delta (the composite unique
//!   index on the group-by columns does the lookups), plus, when needed,
//!   one streaming scan of the base for all recomputed groups together;
//! * [`refresh_join`] — the literal summary-delta join: hash the delta and
//!   stream the summary table through it once; needs no index and wins for
//!   deltas that are large relative to the summary table.

use std::collections::HashMap;

use cubedelta_lattice::{derive_child, EdgeQuery};
use cubedelta_obs::ExecutionMetrics;
use cubedelta_query::{AggFunc, AggState, Relation};
use cubedelta_storage::{Catalog, Row, RowId, Table, Value};
use cubedelta_view::{joined_schema, AugmentedView};

use crate::error::{CoreError, CoreResult};

/// Options controlling the refresh function.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RefreshOptions {
    /// The §2.1/§4.2 integrity-constraint optimization: when the change set
    /// is known to contain only insertions, MIN/MAX can never lose their
    /// extremum, so the recomputation check is skipped entirely and deltas
    /// merge with plain `min`/`max`.
    pub insertions_only: bool,
}

/// Counts of refresh actions — the paper's §6 observations (updates vs.
/// inserts vs. deletes) are read off these.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RefreshStats {
    /// Delta tuples that inserted a new summary tuple.
    pub inserted: usize,
    /// Delta tuples that deleted their summary tuple (group emptied).
    pub deleted: usize,
    /// Delta tuples merged into their summary tuple in place.
    pub updated: usize,
    /// Groups whose MIN/MAX had to be recomputed from base data.
    pub recomputed: usize,
    /// Delta tuples with no effect (net-zero change to an absent group).
    pub skipped: usize,
}

impl RefreshStats {
    /// Total delta tuples processed.
    pub fn total(&self) -> usize {
        self.inserted + self.deleted + self.updated + self.recomputed + self.skipped
    }

    /// These stats as a JSON object — the shape used by `ViewReport` and
    /// the journal's refresh-step events.
    pub fn to_json(&self) -> cubedelta_obs::json::JsonValue {
        use cubedelta_obs::json::JsonValue;
        JsonValue::object([
            ("inserted", JsonValue::from(self.inserted)),
            ("deleted", JsonValue::from(self.deleted)),
            ("updated", JsonValue::from(self.updated)),
            ("recomputed", JsonValue::from(self.recomputed)),
            ("skipped", JsonValue::from(self.skipped)),
        ])
    }
}

pub(crate) enum Op {
    Insert(Row),
    Delete(RowId),
    Update(RowId, Row),
}

/// Where Figure 7's MIN/MAX recomputation reads fresh aggregates from.
#[derive(Debug, Clone, Copy)]
pub enum RecomputeSource<'a> {
    /// Stream the (already-updated) base fact table — always valid.
    Base,
    /// Re-aggregate the *parent* view's summary table through the lattice
    /// edge query (§5.5, Theorem 5.1). The parent is usually orders of
    /// magnitude smaller than the fact table, but this is only sound once
    /// the parent has been fully refreshed — the leveled refresh scheduler
    /// guarantees that with a barrier between lattice levels.
    Parent(&'a EdgeQuery),
}

/// The outcome of [`plan_refresh_ops`]: the storage operations to apply
/// plus the Figure-7 action counts. Planning is read-only; the ops are
/// applied separately with [`apply_refresh_ops`], which lets the parallel
/// refresh executor plan against a shared catalog snapshot and apply under
/// a per-table lock.
pub struct PlannedRefresh {
    pub(crate) ops: Vec<Op>,
    /// Action counts for the planned operations.
    pub stats: RefreshStats,
}

/// What a matched (summary row, delta row) pair calls for.
enum MatchDecision {
    /// The group emptied: delete the summary tuple.
    Delete,
    /// A MIN/MAX extremum is threatened: recompute from base data.
    Recompute,
    /// Merge in place to this new row.
    Update(Row),
}

/// Figure 7's per-tuple logic for a delta row `td` matching summary row
/// `t`, shared by the indexed refresh and the summary-delta-join refresh.
fn decide(
    view: &AugmentedView,
    t: &Row,
    td: &Row,
    opts: &RefreshOptions,
) -> CoreResult<MatchDecision> {
    let cs = view.count_star_col();
    let sd_count = int_of(&td[cs], "sd COUNT(*)")?;
    let new_count = int_of(&t[cs], "COUNT(*)")? + sd_count;
    if new_count < 0 {
        return Err(CoreError::Maintenance(format!(
            "COUNT(*) would go negative in `{}`",
            view.def.name
        )));
    }
    if new_count == 0 {
        return Ok(MatchDecision::Delete);
    }

    // MIN/MAX recomputation check (skipped under the insertions-only
    // integrity constraint).
    if !opts.insertions_only {
        for (i, spec) in view.def.aggregates.iter().enumerate() {
            if !spec.func.is_min_or_max() {
                continue;
            }
            let col = view.agg_col(i);
            let sup = view.agg_col(view.support_count[i]);
            let (t_v, td_v) = (&t[col], &td[col]);
            if t_v.is_null() || td_v.is_null() {
                continue;
            }
            let sup_new = int_of(&t[sup], "COUNT(e)")? + int_of(&td[sup], "sd COUNT(e)")?;
            let threatened = match spec.func {
                AggFunc::Min(_) => td_v <= t_v,
                AggFunc::Max(_) => td_v >= t_v,
                _ => unreachable!(),
            };
            if threatened && sup_new > 0 {
                return Ok(MatchDecision::Recompute);
            }
        }
    }

    // In-place merge.
    let mut new_row = t.0.clone();
    for (i, spec) in view.def.aggregates.iter().enumerate() {
        let col = view.agg_col(i);
        let sup = view.agg_col(view.support_count[i]);
        let sup_new = int_of(&t[sup], "COUNT(e)")? + int_of(&td[sup], "sd COUNT(e)")?;
        new_row[col] = match &spec.func {
            AggFunc::CountStar | AggFunc::Count(_) => {
                Value::Int(int_of(&t[col], "COUNT")? + int_of(&td[col], "sd COUNT")?)
            }
            AggFunc::Sum(_) => {
                if sup_new == 0 {
                    Value::Null
                } else {
                    merge_sum(&t[col], &td[col])
                }
            }
            AggFunc::Min(_) => {
                if sup_new == 0 {
                    Value::Null
                } else {
                    t[col].min_sql(&td[col])
                }
            }
            AggFunc::Max(_) => {
                if sup_new == 0 {
                    Value::Null
                } else {
                    t[col].max_sql(&td[col])
                }
            }
            AggFunc::Avg(_) => {
                return Err(CoreError::Maintenance(
                    "AVG must be rewritten before maintenance".to_string(),
                ))
            }
        };
    }
    Ok(MatchDecision::Update(Row(new_row)))
}

/// SQL-style sum merge: NULL is the identity (an all-NULL partial
/// contributes nothing), otherwise numeric addition.
fn merge_sum(a: &Value, b: &Value) -> Value {
    match (a.is_null(), b.is_null()) {
        (true, true) => Value::Null,
        (true, false) => b.clone(),
        (false, true) => a.clone(),
        (false, false) => a.add(b),
    }
}

fn int_of(v: &Value, what: &str) -> CoreResult<i64> {
    v.as_int()
        .ok_or_else(|| CoreError::Maintenance(format!("{what} is not an integer: {v}")))
}

/// Applies a summary-delta relation to the view's summary table (Figure 7).
///
/// The summary table must exist in the catalog with its unique group-by
/// index (see [`cubedelta_view::install_summary_table`]), and base tables
/// must already hold their post-change state (the paper's assumption for
/// MIN/MAX recomputation).
pub fn refresh(
    catalog: &mut Catalog,
    view: &AugmentedView,
    sd: &Relation,
    opts: &RefreshOptions,
) -> CoreResult<RefreshStats> {
    refresh_metered(catalog, view, sd, opts, &mut ExecutionMetrics::new())
}

/// [`refresh`], booking index probes/hits, groups touched, and (when
/// MIN/MAX recomputation runs) the base-table scan into `m`.
pub fn refresh_metered(
    catalog: &mut Catalog,
    view: &AugmentedView,
    sd: &Relation,
    opts: &RefreshOptions,
    m: &mut ExecutionMetrics,
) -> CoreResult<RefreshStats> {
    let planned = {
        let table = catalog.table(&view.def.name)?;
        plan_refresh_ops(catalog, table, view, sd, opts, RecomputeSource::Base, m)?
    };
    apply_refresh_ops(catalog.table_mut(&view.def.name)?, planned)
}

/// The read-only half of [`refresh`]: probes the summary table's unique
/// index for every summary-delta tuple, runs Figure 7's per-tuple logic,
/// and batches recomputation for threatened MIN/MAX groups — but mutates
/// nothing. `table` is the view's summary table, passed separately from
/// the catalog so the parallel refresh executor can hold it behind a lock
/// while the catalog stays a shared snapshot.
pub fn plan_refresh_ops(
    catalog: &Catalog,
    table: &Table,
    view: &AugmentedView,
    sd: &Relation,
    opts: &RefreshOptions,
    source: RecomputeSource<'_>,
    m: &mut ExecutionMetrics,
) -> CoreResult<PlannedRefresh> {
    let mut stats = RefreshStats::default();
    let k = view.key_width();
    let cs = view.count_star_col();

    let mut ops: Vec<Op> = Vec::with_capacity(sd.len());
    let mut recompute_keys: Vec<(Row, RowId)> = Vec::new();

    // Every summary-delta tuple addresses exactly one group.
    m.rows_scanned += sd.len() as u64;
    m.groups_touched += sd.len() as u64;

    let index = table.unique_index().ok_or_else(|| {
        CoreError::Maintenance(format!(
            "summary table `{}` lacks its group-by unique index",
            view.def.name
        ))
    })?;

    for td in &sd.rows {
        let key = Row(td.0[..k].to_vec());
        let sd_count = int_of(&td[cs], "sd COUNT(*)")?;
        match index.probe(&key, m) {
            None => {
                if sd_count == 0 {
                    stats.skipped += 1;
                } else if sd_count < 0 {
                    return Err(CoreError::Maintenance(format!(
                        "deletion from non-existent group {key} in `{}`",
                        view.def.name
                    )));
                } else {
                    ops.push(Op::Insert(td.clone()));
                    stats.inserted += 1;
                }
            }
            Some(rid) => {
                let t = table.get(rid).expect("indexed row exists");
                match decide(view, t, td, opts)? {
                    MatchDecision::Delete => {
                        ops.push(Op::Delete(rid));
                        stats.deleted += 1;
                    }
                    MatchDecision::Recompute => {
                        recompute_keys.push((key, rid));
                        stats.recomputed += 1;
                    }
                    MatchDecision::Update(row) => {
                        ops.push(Op::Update(rid, row));
                        stats.updated += 1;
                    }
                }
            }
        }
    }

    // Batch recomputation for threatened MIN/MAX groups.
    if !recompute_keys.is_empty() {
        match source {
            RecomputeSource::Base => {
                ops.extend(recompute_ops(catalog, view, recompute_keys, m)?);
            }
            RecomputeSource::Parent(eq) => {
                ops.extend(recompute_ops_from_parent(catalog, view, eq, recompute_keys, m)?);
            }
        }
    }

    Ok(PlannedRefresh { ops, stats })
}

/// The write half: applies a planned op sequence to the summary table.
/// Given the same op sequence, the slotted table's layout (including slot
/// reuse) is deterministic — this is what makes parallel refresh
/// byte-identical across thread counts once deltas are canonicalized.
pub fn apply_refresh_ops(table: &mut Table, planned: PlannedRefresh) -> CoreResult<RefreshStats> {
    for op in planned.ops {
        match op {
            Op::Insert(r) => {
                table.insert(r)?;
            }
            Op::Delete(rid) => {
                table.delete(rid)?;
            }
            Op::Update(rid, r) => {
                table.update(rid, r)?;
            }
        }
    }
    Ok(planned.stats)
}


/// The "summary-delta join" refresh (§4.2, §7): instead of per-tuple index
/// probes, hash the (small) summary-delta table and stream the summary
/// table through it once — "something similar to a left outer-join of the
/// summary-delta table with the materialized view, identifying the view
/// tuples to be updated, and updating them as a part of the outer-join;
/// such a summary-delta join operation should be built into database
/// servers that are targeting the warehousing market."
///
/// Semantics are identical to [`refresh`]; this variant needs no unique
/// index and wins when the delta is large relative to the summary table
/// (per-tuple index probes stop beating one sequential pass).
pub fn refresh_join(
    catalog: &mut Catalog,
    view: &AugmentedView,
    sd: &Relation,
    opts: &RefreshOptions,
) -> CoreResult<RefreshStats> {
    refresh_join_metered(catalog, view, sd, opts, &mut ExecutionMetrics::new())
}

/// [`refresh_join`], booking the delta hash build, the summary-table
/// streaming pass, and groups touched into `m`.
pub fn refresh_join_metered(
    catalog: &mut Catalog,
    view: &AugmentedView,
    sd: &Relation,
    opts: &RefreshOptions,
    m: &mut ExecutionMetrics,
) -> CoreResult<RefreshStats> {
    let mut stats = RefreshStats::default();
    let k = view.key_width();
    let cs = view.count_star_col();

    // Build side: the summary-delta, keyed by group-by prefix.
    let mut pending: HashMap<Row, &Row> = HashMap::with_capacity(sd.len());
    for td in &sd.rows {
        pending.insert(Row(td.0[..k].to_vec()), td);
    }
    m.hash_build_rows += sd.len() as u64;
    m.groups_touched += sd.len() as u64;

    let mut ops: Vec<Op> = Vec::new();
    let mut recompute_keys: Vec<(Row, RowId)> = Vec::new();

    {
        let table = catalog.table(&view.def.name)?;
        // Probe side: one pass over the summary table.
        m.rows_scanned += table.len() as u64;
        m.hash_probes += table.len() as u64;
        for (rid, t) in table.iter() {
            let key = Row(t.0[..k].to_vec());
            let Some(td) = pending.remove(&key) else {
                continue;
            };
            match decide(view, t, td, opts)? {
                MatchDecision::Delete => {
                    ops.push(Op::Delete(rid));
                    stats.deleted += 1;
                }
                MatchDecision::Recompute => {
                    recompute_keys.push((key, rid));
                    stats.recomputed += 1;
                }
                MatchDecision::Update(row) => {
                    ops.push(Op::Update(rid, row));
                    stats.updated += 1;
                }
            }
        }
    }

    // Unmatched delta tuples are inserts (or skips for net-zero groups).
    for (key, td) in pending {
        let sd_count = int_of(&td[cs], "sd COUNT(*)")?;
        if sd_count == 0 {
            stats.skipped += 1;
        } else if sd_count < 0 {
            return Err(CoreError::Maintenance(format!(
                "deletion from non-existent group {key} in `{}`",
                view.def.name
            )));
        } else {
            ops.push(Op::Insert(td.clone()));
            stats.inserted += 1;
        }
    }

    if !recompute_keys.is_empty() {
        ops.extend(recompute_ops(catalog, view, recompute_keys, m)?);
    }

    let table = catalog.table_mut(&view.def.name)?;
    for op in ops {
        match op {
            Op::Insert(r) => {
                table.insert(r)?;
            }
            Op::Delete(rid) => {
                table.delete(rid)?;
            }
            Op::Update(rid, r) => {
                table.update(rid, r)?;
            }
        }
    }
    Ok(stats)
}

/// Figure 7's recomputation path, batched: one streaming pass over the
/// fact table computing fresh aggregates for every threatened group.
/// Dimension rows are fetched through per-dimension hash maps and the full
/// joined row is only assembled for rows in a threatened group — the
/// paper's "look up the base table" without materializing the join.
fn recompute_ops(
    catalog: &Catalog,
    view: &AugmentedView,
    recompute_keys: Vec<(Row, RowId)>,
    m: &mut ExecutionMetrics,
) -> CoreResult<Vec<Op>> {
    let k = view.key_width();
    let n_aggs = view.def.aggregates.len();
    let mut ops: Vec<Op> = Vec::with_capacity(recompute_keys.len());
    let joined = joined_schema(catalog, &view.def)?;
    let fact = catalog.table(&view.def.fact_table)?;
    let fact_arity = fact.schema().arity();

    // Per-dimension key lookups: dim-key value → dim row.
    let mut dim_maps: Vec<(usize, HashMap<Value, &Row>)> =
        Vec::with_capacity(view.def.dim_joins.len());
    for dim in &view.def.dim_joins {
        let fk = catalog.foreign_key(&view.def.fact_table, dim).ok_or_else(|| {
            CoreError::Maintenance(format!("no foreign key to dimension `{dim}`"))
        })?;
        let fk_idx = fact.schema().index_of(&fk.fact_column)?;
        let dim_table = catalog.table(dim)?;
        let key_idx = dim_table.schema().index_of(&fk.dim_key)?;
        let map: HashMap<Value, &Row> = dim_table
            .rows()
            .map(|r| (r[key_idx].clone(), r))
            .collect();
        m.hash_build_rows += map.len() as u64;
        dim_maps.push((fk_idx, map));
    }

    // Where each group-by attribute lives: the fact row or a dim row.
    enum AttrSource {
        Fact(usize),
        Dim { dim: usize, col: usize },
    }
    let mut key_sources = Vec::with_capacity(k);
    for g in &view.def.group_by {
        let joined_idx = joined.index_of(g)?;
        key_sources.push(if joined_idx < fact_arity {
            AttrSource::Fact(joined_idx)
        } else {
            let mut off = fact_arity;
            let mut found = None;
            for (d, dim) in view.def.dim_joins.iter().enumerate() {
                let arity = catalog.table(dim)?.schema().arity();
                if joined_idx < off + arity {
                    found = Some(AttrSource::Dim {
                        dim: d,
                        col: joined_idx - off,
                    });
                    break;
                }
                off += arity;
            }
            found.ok_or_else(|| {
                CoreError::Maintenance(format!("cannot locate group attribute `{g}`"))
            })?
        });
    }

    // Bind aggregate inputs and the WHERE clause against the joined
    // schema.
    let bound: Vec<(AggFunc, Option<cubedelta_expr::Expr>)> = view
        .def
        .aggregates
        .iter()
        .map(|spec| {
            let input = spec.func.input().map(|e| e.bind(&joined)).transpose()?;
            Ok::<_, CoreError>((spec.func.clone(), input))
        })
        .collect::<Result<_, _>>()?;
    let where_clause = view.def.where_clause.bind(&joined)?;

    let mut wanted: HashMap<Row, Vec<AggState>> = recompute_keys
        .iter()
        .map(|(key, _)| {
            (
                key.clone(),
                bound.iter().map(|(f, _)| f.new_state()).collect(),
            )
        })
        .collect();

    let mut key_buf: Vec<Value> = Vec::with_capacity(k);
    'rows: for r in fact.scan(m) {
        // Resolve this row's dimension matches (FK join semantics: a
        // missing or NULL key means the row does not join).
        let mut dim_rows: Vec<&Row> = Vec::with_capacity(dim_maps.len());
        for (fk_idx, map) in &dim_maps {
            m.hash_probes += 1;
            match map.get(&r[*fk_idx]) {
                Some(d) => dim_rows.push(d),
                None => continue 'rows,
            }
        }
        // Assemble the group key without building the joined row.
        key_buf.clear();
        for src in &key_sources {
            key_buf.push(match src {
                AttrSource::Fact(i) => r[*i].clone(),
                AttrSource::Dim { dim, col } => dim_rows[*dim][*col].clone(),
            });
        }
        let Some(states) = wanted.get_mut(&Row(key_buf.clone())) else {
            continue;
        };
        // Only now build the joined row, for WHERE + aggregate sources.
        let mut joined_row = r.clone();
        for d in &dim_rows {
            joined_row = joined_row.concat(d);
        }
        if !where_clause.eval(&joined_row)? {
            continue;
        }
        for ((func, input), state) in bound.iter().zip(states.iter_mut()) {
            let v = match input {
                Some(e) => e.eval(&joined_row)?,
                None => Value::Int(1),
            };
            state.update(func, &v);
        }
    }

    for (key, rid) in recompute_keys {
        let states = &wanted[&key];
        let count_star = match states[view.count_star].finalize() {
            Value::Int(c) => c,
            other => {
                return Err(CoreError::Maintenance(format!(
                    "recomputed COUNT(*) not an int: {other}"
                )))
            }
        };
        if count_star == 0 {
            // The group vanished from the base entirely.
            ops.push(Op::Delete(rid));
        } else {
            let mut row = key.0;
            row.reserve(n_aggs);
            for s in states {
                row.push(s.finalize());
            }
            ops.push(Op::Update(rid, Row(row)));
        }
    }
    Ok(ops)
}

/// Figure 7's recomputation path through the D-lattice (§5.5): instead of
/// streaming the fact table, re-aggregate the *parent view's* refreshed
/// summary table through the lattice edge query. Theorem 5.1 makes the
/// derived child rows exactly the child's recomputed contents, so the
/// fresh aggregates for every threatened group can be read off the
/// (much smaller) derived relation in one pass.
///
/// Soundness requires the parent's summary table to already hold its
/// post-refresh state; callers (the leveled refresh scheduler) enforce
/// that ordering.
fn recompute_ops_from_parent(
    catalog: &Catalog,
    view: &AugmentedView,
    eq: &EdgeQuery,
    recompute_keys: Vec<(Row, RowId)>,
    m: &mut ExecutionMetrics,
) -> CoreResult<Vec<Op>> {
    let k = view.key_width();
    let cs = view.count_star_col();
    let parent = catalog.table(&eq.parent)?;
    m.rows_scanned += parent.len() as u64;
    let derived = derive_child(catalog, &Relation::from_table(parent), eq)?;
    m.rows_emitted += derived.len() as u64;

    // Derived rows share the child summary schema: key prefix, then
    // aggregates. Index them by group key for the threatened lookups.
    let fresh: HashMap<Row, &Row> = derived
        .rows
        .iter()
        .map(|r| (Row(r.0[..k].to_vec()), r))
        .collect();
    m.hash_build_rows += fresh.len() as u64;

    let mut ops: Vec<Op> = Vec::with_capacity(recompute_keys.len());
    for (key, rid) in recompute_keys {
        m.hash_probes += 1;
        match fresh.get(&key) {
            // The group vanished from the parent (and hence the base).
            None => ops.push(Op::Delete(rid)),
            Some(r) => {
                let count_star = int_of(&r[cs], "derived COUNT(*)")?;
                if count_star == 0 {
                    ops.push(Op::Delete(rid));
                } else {
                    ops.push(Op::Update(rid, (*r).clone()));
                }
            }
        }
    }
    Ok(ops)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::propagate::{propagate_view, PropagateOptions};
    use crate::test_fixtures::*;
    use cubedelta_storage::{row, ChangeBatch, Date, DeltaSet};
    use cubedelta_view::{augment, install_summary_table, materialize};

    fn d(offset: i32) -> Date {
        Date(10000 + offset)
    }

    /// Full single-view cycle: install, propagate, apply base delta,
    /// refresh; then check against recomputation.
    fn run_cycle(
        def: cubedelta_view::SummaryViewDef,
        batch: ChangeBatch,
        opts: &RefreshOptions,
    ) -> (Catalog, AugmentedView, RefreshStats) {
        let mut cat = retail_catalog_small();
        let view = augment(&cat, &def).unwrap();
        install_summary_table(&mut cat, &view).unwrap();
        let sd = propagate_view(&cat, &view, &batch, &PropagateOptions::default()).unwrap();
        for delta in &batch.deltas {
            cat.table_mut(&delta.table).unwrap().apply_delta(delta).unwrap();
        }
        let stats = refresh(&mut cat, &view, &sd, opts).unwrap();
        // Invariant: incremental == recomputed.
        let expect = materialize(&cat, &view).unwrap();
        assert_eq!(
            cat.table(&view.def.name).unwrap().sorted_rows(),
            expect.clone().into_table("x").sorted_rows(),
            "incremental maintenance diverged from recomputation"
        );
        (cat, view, stats)
    }

    #[test]
    fn figure_2_refresh_inserts_updates_deletes() {
        // One update (existing group), one insert (new group), one delete
        // (group emptied: (1,20,d1) has exactly one base row).
        let batch = ChangeBatch::single(DeltaSet {
            table: "pos".into(),
            insertions: vec![
                row![1i64, 10i64, d(0), 2i64, 1.0], // update (1,10,d0)
                row![7i64, 30i64, d(4), 4i64, 0.8], // insert new group
            ],
            deletions: vec![row![1i64, 20i64, d(1), 2i64, 2.0]], // empties (1,20,d1)
        });
        let (_, _, stats) = run_cycle(sid_sales(), batch, &RefreshOptions::default());
        assert_eq!(stats.updated, 1);
        assert_eq!(stats.inserted, 1);
        assert_eq!(stats.deleted, 1);
        assert_eq!(stats.recomputed, 0);
    }

    #[test]
    fn min_recompute_on_extremum_deletion() {
        // SiC_sales keeps MIN(date) per (storeID, category). Store 1 has
        // drinks rows on d0 (x2); deleting one d0 row threatens the minimum
        // (equal value) → recompute; the minimum stays d0 because the other
        // d0 row survives.
        let batch = ChangeBatch::single(DeltaSet::deletions(
            "pos",
            vec![row![1i64, 10i64, d(0), 5i64, 1.0]],
        ));
        let (cat, view, stats) = run_cycle(sic_sales(), batch, &RefreshOptions::default());
        assert_eq!(stats.recomputed, 1);
        let t = cat.table(&view.def.name).unwrap();
        let rid = t
            .unique_index()
            .unwrap()
            .get(&row![1i64, "drinks"])
            .unwrap();
        assert_eq!(t.get(rid).unwrap()[3], Value::Date(d(0)));
    }

    #[test]
    fn min_advances_when_all_minimal_rows_deleted() {
        // Store 2 drinks: single row at d0. Add a later row first, then
        // delete the d0 row: MIN must advance to the later date.
        let batch = ChangeBatch::single(DeltaSet {
            table: "pos".into(),
            insertions: vec![row![2i64, 10i64, d(6), 1i64, 1.0]],
            deletions: vec![row![2i64, 10i64, d(0), 7i64, 1.0]],
        });
        let (cat, view, stats) = run_cycle(sic_sales(), batch, &RefreshOptions::default());
        assert!(stats.recomputed >= 1);
        let t = cat.table(&view.def.name).unwrap();
        let rid = t
            .unique_index()
            .unwrap()
            .get(&row![2i64, "drinks"])
            .unwrap();
        assert_eq!(t.get(rid).unwrap()[3], Value::Date(d(6)));
    }

    #[test]
    fn insertion_of_smaller_min_merges_without_base_scan() {
        // Inserting an earlier date triggers the conservative Figure-7
        // recompute (td.MIN <= t.MIN); under insertions_only it merges
        // directly. Both must land on the same result.
        let batch = ChangeBatch::single(DeltaSet::insertions(
            "pos",
            vec![row![1i64, 10i64, Date(9990), 1i64, 1.0]],
        ));
        let (cat_a, view, stats_a) =
            run_cycle(sic_sales(), batch.clone(), &RefreshOptions::default());
        assert_eq!(stats_a.recomputed, 1, "conservative path recomputes");
        let (cat_b, _, stats_b) = run_cycle(
            sic_sales(),
            batch,
            &RefreshOptions {
                insertions_only: true,
            },
        );
        assert_eq!(stats_b.recomputed, 0, "optimized path merges");
        assert_eq!(stats_b.updated, 1);
        assert_eq!(
            cat_a.table(&view.def.name).unwrap().sorted_rows(),
            cat_b.table(&view.def.name).unwrap().sorted_rows()
        );
    }

    #[test]
    fn null_out_when_count_e_reaches_zero() {
        // Build a group whose only non-null qty is deleted while a null-qty
        // row keeps the group alive: SUM/COUNT(e) must become NULL/0.
        let mut cat = retail_catalog_small();
        cat.table_mut("pos")
            .unwrap()
            .insert(Row::new(vec![
                Value::Int(5),
                Value::Int(10),
                Value::Date(d(0)),
                Value::Null,
                Value::Float(1.0),
            ]))
            .unwrap();
        cat.table_mut("pos")
            .unwrap()
            .insert(row![5i64, 10i64, d(0), 3i64, 1.0])
            .unwrap();
        let view = augment(&cat, &sid_sales()).unwrap();
        install_summary_table(&mut cat, &view).unwrap();

        let delta = DeltaSet::deletions("pos", vec![row![5i64, 10i64, d(0), 3i64, 1.0]]);
        let batch = ChangeBatch::single(delta.clone());
        let sd = propagate_view(&cat, &view, &batch, &PropagateOptions::default()).unwrap();
        cat.table_mut("pos").unwrap().apply_delta(&delta).unwrap();
        refresh(&mut cat, &view, &sd, &RefreshOptions::default()).unwrap();

        let t = cat.table("SID_sales").unwrap();
        let rid = t
            .unique_index()
            .unwrap()
            .get(&row![5i64, 10i64, d(0)])
            .expect("group survives on the null row");
        let r = t.get(rid).unwrap();
        assert_eq!(r[3], Value::Int(1)); // COUNT(*)
        assert!(r[4].is_null(), "SUM(qty) nulls out");
        // Augmented COUNT(qty) is 0.
        let count_q = view.agg_col(view.support_count[1]);
        assert_eq!(r[count_q], Value::Int(0));

        // And the whole table still equals recomputation.
        let expect = materialize(&cat, &view).unwrap();
        assert_eq!(
            t.sorted_rows(),
            expect.into_table("x").sorted_rows()
        );
    }

    #[test]
    fn net_zero_change_to_absent_group_is_skipped() {
        // Insert and delete the same new tuple in one batch: the sd row has
        // count 0 for a group the summary table does not contain.
        let new_row = row![8i64, 30i64, d(2), 2i64, 0.8];
        let batch = ChangeBatch::single(DeltaSet {
            table: "pos".into(),
            insertions: vec![new_row.clone()],
            deletions: vec![new_row.clone()],
        });
        // Make the deletion applicable: pre-insert the row into pos.
        let mut cat = retail_catalog_small();
        cat.table_mut("pos").unwrap().insert(new_row).unwrap();
        let view = augment(&cat, &sid_sales()).unwrap();
        // Note: summary built *after* the pre-insert, so the group exists…
        // use a different key instead: group (8,30,d2) now exists. Delete it
        // twice? Keep it simple: delete the existing one and insert an
        // unrelated new tuple that also cancels.
        install_summary_table(&mut cat, &view).unwrap();
        let sd = propagate_view(&cat, &view, &batch, &PropagateOptions::default()).unwrap();
        // Net zero: single sd row with count 0 for an existing group → update
        // with no change.
        assert_eq!(sd.len(), 1);
        for delta in &batch.deltas {
            cat.table_mut(&delta.table).unwrap().apply_delta(delta).unwrap();
        }
        let stats = refresh(&mut cat, &view, &sd, &RefreshOptions::default()).unwrap();
        // Group exists, so it becomes a (harmless) recompute or update, not
        // a skip; either way consistency holds.
        let expect = materialize(&cat, &view).unwrap();
        assert_eq!(
            cat.table("SID_sales").unwrap().sorted_rows(),
            expect.into_table("x").sorted_rows()
        );
        assert_eq!(stats.total(), 1);
    }

    #[test]
    fn metered_refresh_counts_probes_and_groups() {
        let batch = ChangeBatch::single(DeltaSet {
            table: "pos".into(),
            insertions: vec![
                row![1i64, 10i64, d(0), 2i64, 1.0],
                row![7i64, 30i64, d(4), 4i64, 0.8],
            ],
            deletions: vec![row![1i64, 20i64, d(1), 2i64, 2.0]],
        });
        let mut cat = retail_catalog_small();
        let view = augment(&cat, &sid_sales()).unwrap();
        install_summary_table(&mut cat, &view).unwrap();
        let sd = propagate_view(&cat, &view, &batch, &PropagateOptions::default()).unwrap();
        for delta in &batch.deltas {
            cat.table_mut(&delta.table).unwrap().apply_delta(delta).unwrap();
        }
        let mut m = ExecutionMetrics::new();
        let stats =
            refresh_metered(&mut cat, &view, &sd, &RefreshOptions::default(), &mut m).unwrap();
        // One unique-index probe and one touched group per sd tuple.
        assert_eq!(m.index_probes, sd.len() as u64);
        assert_eq!(m.groups_touched, sd.len() as u64);
        assert_eq!(stats.total(), sd.len());
    }

    #[test]
    fn summary_delta_join_refresh_matches_indexed_refresh() {
        // Same batch applied through both refresh implementations must land
        // on identical summary tables with identical action counts.
        for def in [sid_sales(), sic_sales(), sr_sales()] {
            let batch = ChangeBatch::single(DeltaSet {
                table: "pos".into(),
                insertions: vec![
                    row![1i64, 10i64, d(0), 2i64, 1.0],
                    row![7i64, 30i64, d(4), 4i64, 0.8],
                ],
                deletions: vec![
                    row![1i64, 20i64, d(1), 2i64, 2.0],
                    row![2i64, 10i64, d(0), 7i64, 1.0],
                ],
            });

            let mut cat_a = retail_catalog_small();
            let view = augment(&cat_a, &def).unwrap();
            install_summary_table(&mut cat_a, &view).unwrap();
            let sd =
                propagate_view(&cat_a, &view, &batch, &PropagateOptions::default()).unwrap();
            for delta in &batch.deltas {
                cat_a.table_mut(&delta.table).unwrap().apply_delta(delta).unwrap();
            }
            let mut cat_b = cat_a.clone();

            let stats_a = refresh(&mut cat_a, &view, &sd, &RefreshOptions::default()).unwrap();
            let stats_b =
                refresh_join(&mut cat_b, &view, &sd, &RefreshOptions::default()).unwrap();

            assert_eq!(stats_a, stats_b, "{}: stats differ", view.def.name);
            assert_eq!(
                cat_a.table(&view.def.name).unwrap().sorted_rows(),
                cat_b.table(&view.def.name).unwrap().sorted_rows(),
                "{}: contents differ",
                view.def.name
            );
        }
    }

    #[test]
    fn summary_delta_join_works_without_an_index() {
        // refresh_join never touches the unique index; install the summary
        // table manually without one.
        let mut cat = retail_catalog_small();
        let view = augment(&cat, &sid_sales()).unwrap();
        let schema = cubedelta_view::summary_schema(&cat, &view).unwrap();
        let contents = materialize(&cat, &view).unwrap();
        let t = cat
            .create_table("SID_sales", schema, cubedelta_storage::TableRole::Summary)
            .unwrap();
        t.set_validate(false);
        t.insert_all(contents.rows).unwrap();

        let delta = DeltaSet::insertions("pos", vec![row![9i64, 10i64, d(0), 1i64, 1.0]]);
        let batch = ChangeBatch::single(delta.clone());
        let sd = propagate_view(&cat, &view, &batch, &PropagateOptions::default()).unwrap();
        cat.table_mut("pos").unwrap().apply_delta(&delta).unwrap();
        let stats = refresh_join(&mut cat, &view, &sd, &RefreshOptions::default()).unwrap();
        assert_eq!(stats.inserted, 1);
        let expect = materialize(&cat, &view).unwrap();
        assert_eq!(
            cat.table("SID_sales").unwrap().sorted_rows(),
            expect.into_table("x").sorted_rows()
        );
    }

    #[test]
    fn missing_unique_index_is_an_error() {
        let mut cat = retail_catalog_small();
        let view = augment(&cat, &sid_sales()).unwrap();
        // Install manually without the index.
        let schema = cubedelta_view::summary_schema(&cat, &view).unwrap();
        cat.create_table("SID_sales", schema, cubedelta_storage::TableRole::Summary)
            .unwrap();
        let sd = propagate_view(
            &cat,
            &view,
            &ChangeBatch::single(DeltaSet::insertions(
                "pos",
                vec![row![1i64, 10i64, d(0), 1i64, 1.0]],
            )),
            &PropagateOptions::default(),
        )
        .unwrap();
        assert!(matches!(
            refresh(&mut cat, &view, &sd, &RefreshOptions::default()),
            Err(CoreError::Maintenance(_))
        ));
    }

    #[test]
    fn deletion_from_nonexistent_group_errors() {
        let mut cat = retail_catalog_small();
        let view = augment(&cat, &sid_sales()).unwrap();
        install_summary_table(&mut cat, &view).unwrap();
        // Hand-craft an inconsistent sd: count -1 for an absent group.
        let schema = cubedelta_view::summary_schema(&cat, &view).unwrap();
        let bad = Relation::new(
            schema,
            vec![Row::new(vec![
                Value::Int(99),
                Value::Int(99),
                Value::Date(d(0)),
                Value::Int(-1),
                Value::Int(-5),
                Value::Int(-1),
            ])],
        );
        assert!(matches!(
            refresh(&mut cat, &view, &bad, &RefreshOptions::default()),
            Err(CoreError::Maintenance(_))
        ));
    }
}
