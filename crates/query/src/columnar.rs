//! Vectorized hash aggregation over typed column vectors.
//!
//! The row operator ([`hash_aggregate_metered`]) pays a `Value` enum
//! dispatch per cell touched. This kernel transposes the input once into
//! typed [`ColumnVec`]s (`Int64`/`Float64`/`Str`-dictionary/`Date` plus
//! null bitmaps), builds group keys from the column slices, and folds
//! SUM/COUNT/MIN/MAX into typed accumulator vectors — one tight
//! monomorphic loop per aggregate instead of a polymorphic fold per row.
//!
//! **Equivalence contract.** For any input the kernel's output is
//! *bit-identical* to the row operator's — same schema, same first-seen
//! group order, same `Value` payloads down to float bit patterns — and it
//! books the same work counters ([`ExecutionMetrics`]), plus
//! `vectorized_rows`/`chunks_scanned` which the row path leaves at zero.
//! Three rules make that hold:
//!
//! * group keys compare exactly like `Value` equality: floats through
//!   canonical bits (`-0.0 == 0.0`, every NaN equal), and a column that
//!   mixes `Int`/`Float` falls back to [`ColumnData::Generic`] where
//!   `Int(2) == Float(2.0)` grouping is preserved;
//! * per-group fold order is input row order, so float SUMs accumulate in
//!   the same sequence and produce the same bits;
//! * MIN/MAX replace the accumulator only on *strict* canonical inequality
//!   ([`cmp_f64`]), which keeps the first-seen bit pattern on ties exactly
//!   as `Value::min_sql`/`max_sql` do.
//!
//! Inputs the kernel cannot vectorize (global aggregates, computed-
//! expression aggregate arguments, unknown columns) delegate wholesale to
//! the row operator, so callers never need to pre-check.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use cubedelta_expr::Expr;
use cubedelta_obs::ExecutionMetrics;
use cubedelta_storage::{
    add_f64, canonical_f64_bits, cmp_f64, Column, ColumnData, ColumnVec, Date, Row, Schema,
    Value, CHUNK_ROWS,
};

use crate::aggregate::{AggFunc, AggState};
use crate::error::QueryResult;
use crate::exec::hash_aggregate_metered;
use crate::parallel::MIN_PARALLEL_ROWS;
use crate::relation::Relation;

/// [`hash_aggregate_columnar_metered`] with scratch metrics.
pub fn hash_aggregate_columnar(
    rel: &Relation,
    group_cols: &[&str],
    aggs: &[(AggFunc, Column)],
) -> QueryResult<Relation> {
    hash_aggregate_columnar_metered(rel, group_cols, aggs, &mut ExecutionMetrics::new())
}

/// The aggregate argument's column position when the argument is a bare
/// column reference (`Some(None)` for `COUNT(*)`); `None` means the
/// aggregate needs expression evaluation and the kernel must delegate.
fn columnar_input(schema: &Schema, func: &AggFunc) -> Option<Option<usize>> {
    match func.input() {
        None => Some(None),
        Some(Expr::Column(name)) => schema.index_of(name).ok().map(Some),
        Some(Expr::ColumnIdx(i)) if *i < schema.arity() => Some(Some(*i)),
        Some(_) => None,
    }
}

/// Vectorized `SELECT group_cols, aggs FROM rel GROUP BY group_cols`,
/// bit-identical to [`hash_aggregate_metered`] (see the module docs for the
/// equivalence contract). Books the row kernel's counters plus
/// `vectorized_rows` (input rows through the typed path) and
/// `chunks_scanned` (column slices of [`CHUNK_ROWS`] materialized).
pub fn hash_aggregate_columnar_metered(
    rel: &Relation,
    group_cols: &[&str],
    aggs: &[(AggFunc, Column)],
    m: &mut ExecutionMetrics,
) -> QueryResult<Relation> {
    // Global aggregation (one row even over empty input) and computed
    // aggregate arguments stay on the row operator.
    if group_cols.is_empty() {
        return hash_aggregate_metered(rel, group_cols, aggs, m);
    }
    let mut inputs: Vec<Option<usize>> = Vec::with_capacity(aggs.len());
    for (f, _) in aggs {
        match columnar_input(&rel.schema, f) {
            Some(inp) => inputs.push(inp),
            None => return hash_aggregate_metered(rel, group_cols, aggs, m),
        }
    }
    let gidx = rel.schema.indices_of(group_cols)?;
    let n = rel.rows.len();

    // Transpose the columns the kernel touches into typed vectors.
    let mut needed: Vec<usize> = gidx.clone();
    for &c in inputs.iter().flatten() {
        if !needed.contains(&c) {
            needed.push(c);
        }
    }
    let mut built: HashMap<usize, ColumnVec> = HashMap::with_capacity(needed.len());
    for &c in &needed {
        let mut col = ColumnVec::for_type(rel.schema.columns()[c].datatype);
        for r in &rel.rows {
            col.push(&r[c]);
        }
        built.insert(c, col);
    }
    m.chunks_scanned += (needed.len() * n.div_ceil(CHUNK_ROWS)) as u64;
    m.vectorized_rows += n as u64;
    m.rows_scanned += n as u64;
    m.hash_probes += n as u64;

    let gcols: Vec<&ColumnVec> = gidx.iter().map(|c| &built[c]).collect();
    let mut accs: Vec<Acc> = aggs
        .iter()
        .zip(&inputs)
        .map(|((f, _), inp)| Acc::new(f, *inp, &built))
        .collect();

    // First-seen group assignment: hash buckets hold candidate group ids,
    // `key_rows[g]` is the group's first-seen key (emitted verbatim, like
    // the row kernel's `order` vector).
    let mut buckets: HashMap<u64, Vec<u32>> = HashMap::new();
    let mut key_rows: Vec<Row> = Vec::new();
    for i in 0..n {
        let mut h = DefaultHasher::new();
        for col in &gcols {
            hash_col_value(col, i, &mut h);
        }
        let cands = buckets.entry(h.finish()).or_default();
        let mut gid = None;
        for &g in cands.iter() {
            let key = &key_rows[g as usize];
            if gcols
                .iter()
                .enumerate()
                .all(|(p, col)| col_eq_value(col, i, &key[p]))
            {
                gid = Some(g as usize);
                break;
            }
        }
        let g = match gid {
            Some(g) => g,
            None => {
                let g = key_rows.len();
                m.hash_build_rows += 1;
                cands.push(g as u32);
                key_rows.push(Row::new(gcols.iter().map(|c| c.get(i)).collect()));
                for acc in &mut accs {
                    acc.push_group();
                }
                g
            }
        };
        for acc in &mut accs {
            acc.update(g, i, &built, m);
        }
    }

    let mut cols: Vec<Column> = gidx
        .iter()
        .map(|&i| rel.schema.columns()[i].clone())
        .collect();
    // Aggregate outputs may be NULL (SUM over all-NULL etc.), matching the
    // row kernel's output schema exactly.
    cols.extend(aggs.iter().map(|(_, c)| {
        let mut c = c.clone();
        c.nullable = true;
        c
    }));
    let schema = Schema::new(cols);

    let mut rows = Vec::with_capacity(key_rows.len());
    for (g, key) in key_rows.into_iter().enumerate() {
        let mut out = key.0;
        out.extend(accs.iter().map(|a| a.finalize(g)));
        rows.push(Row::new(out));
    }
    m.groups_touched += rows.len() as u64;
    m.rows_emitted += rows.len() as u64;
    Ok(Relation::new(schema, rows))
}

/// [`hash_aggregate_columnar_parallel_metered`] with scratch metrics.
pub fn hash_aggregate_columnar_parallel(
    rel: &Relation,
    group_cols: &[&str],
    aggs: &[(AggFunc, Column)],
    threads: usize,
) -> QueryResult<Relation> {
    hash_aggregate_columnar_parallel_metered(
        rel,
        group_cols,
        aggs,
        threads,
        &mut ExecutionMetrics::new(),
    )
}

/// The columnar counterpart of
/// [`crate::parallel::hash_aggregate_parallel_metered`]: identical
/// hash-partitioning (same hasher over the same `Value`s, so a row lands in
/// the same partition under either engine), each partition vectorized on
/// its own thread, partials concatenated in partition order. Fallback
/// conditions and `par_fallbacks` booking match the row version, so the
/// two parallel operators emit bit-identical relations for any thread
/// count.
pub fn hash_aggregate_columnar_parallel_metered(
    rel: &Relation,
    group_cols: &[&str],
    aggs: &[(AggFunc, Column)],
    threads: usize,
    m: &mut ExecutionMetrics,
) -> QueryResult<Relation> {
    if threads <= 1 || group_cols.is_empty() || rel.rows.len() < MIN_PARALLEL_ROWS {
        if threads > 1 {
            m.par_fallbacks += 1;
        }
        return hash_aggregate_columnar_metered(rel, group_cols, aggs, m);
    }

    let gidx = rel.schema.indices_of(group_cols)?;

    let mut partitions: Vec<Vec<Row>> = (0..threads).map(|_| Vec::new()).collect();
    for r in &rel.rows {
        let mut h = DefaultHasher::new();
        for &c in &gidx {
            r[c].hash(&mut h);
        }
        partitions[(h.finish() as usize) % threads].push(r.clone());
    }

    let results: Vec<(QueryResult<Relation>, ExecutionMetrics)> = std::thread::scope(|scope| {
        let handles: Vec<_> = partitions
            .into_iter()
            .map(|rows| {
                let schema = rel.schema.clone();
                scope.spawn(move || {
                    let part = Relation::new(schema, rows);
                    let mut pm = ExecutionMetrics::new();
                    let out = hash_aggregate_columnar_metered(&part, group_cols, aggs, &mut pm);
                    (out, pm)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("aggregation worker panicked"))
            .collect()
    });

    let mut out: Option<Relation> = None;
    for (part, pm) in results {
        m.merge(&pm);
        let part = part?;
        match &mut out {
            None => out = Some(part),
            Some(acc) => acc.rows.extend(part.rows),
        }
    }
    Ok(out.unwrap_or_else(|| Relation::empty(rel.schema.project(&gidx))))
}

/// Hashes one column cell into the group hasher. Only internal consistency
/// with [`col_eq_value`] is required (the map is private to one kernel
/// call); typed reprs hash payloads directly, `Generic` uses `Value::hash`
/// so cross-type numeric equality (`Int(2) == Float(2.0)`) keeps colliding.
fn hash_col_value(col: &ColumnVec, i: usize, h: &mut DefaultHasher) {
    if let ColumnData::Generic(vs) = col.data() {
        vs[i].hash(h);
        return;
    }
    if col.is_null(i) {
        h.write_u8(0);
        return;
    }
    match col.data() {
        ColumnData::Int64(xs) => {
            h.write_u8(1);
            h.write_i64(xs[i]);
        }
        ColumnData::Float64(xs) => {
            h.write_u8(2);
            h.write_u64(canonical_f64_bits(xs[i]));
        }
        ColumnData::Str { codes, .. } => {
            // Dictionary codes are injective per column, so the code is a
            // perfect hash proxy for the string.
            h.write_u8(3);
            h.write_u32(codes[i]);
        }
        ColumnData::Date(xs) => {
            h.write_u8(4);
            h.write_i32(xs[i]);
        }
        ColumnData::Generic(_) => unreachable!("handled above"),
    }
}

/// Compares one column cell to a first-seen key value with exactly
/// `Value`-equality semantics (the key value came from the same column, so
/// a typed column only ever meets its own variant).
fn col_eq_value(col: &ColumnVec, i: usize, v: &Value) -> bool {
    if let ColumnData::Generic(vs) = col.data() {
        return vs[i] == *v;
    }
    if col.is_null(i) {
        return v.is_null();
    }
    match (col.data(), v) {
        (ColumnData::Int64(xs), Value::Int(y)) => xs[i] == *y,
        (ColumnData::Float64(xs), Value::Float(y)) => {
            canonical_f64_bits(xs[i]) == canonical_f64_bits(*y)
        }
        (ColumnData::Str { codes, dict }, Value::Str(s)) => {
            dict.get(codes[i]).as_ref() == s.as_ref()
        }
        (ColumnData::Date(xs), Value::Date(d)) => xs[i] == d.0,
        _ => false,
    }
}

/// One aggregate's accumulator vector, typed by the aggregate function and
/// its input column's physical representation. Index `g` is the group id.
enum Acc {
    /// `COUNT(*)`.
    CountStar { counts: Vec<i64> },
    /// `COUNT(col)` — non-NULL count off the bitmap.
    Count { col: usize, counts: Vec<i64> },
    /// `SUM` over an `Int64` column.
    SumI {
        col: usize,
        sums: Vec<i64>,
        seen: Vec<bool>,
    },
    /// `SUM` over a `Float64` column; seeded by the first non-NULL value
    /// (not `0.0 + v`, which would lose `-0.0`), then folded in row order
    /// so the bits match the row kernel's fold.
    SumF {
        col: usize,
        sums: Vec<f64>,
        seen: Vec<bool>,
    },
    /// `MIN`/`MAX` over an `Int64` column.
    OrdI {
        col: usize,
        min: bool,
        vals: Vec<i64>,
        seen: Vec<bool>,
    },
    /// `MIN`/`MAX` over a `Float64` column — strict [`cmp_f64`] replace
    /// keeps the first-seen bit pattern on canonical ties, like `min_sql`.
    OrdF {
        col: usize,
        min: bool,
        vals: Vec<f64>,
        seen: Vec<bool>,
    },
    /// `MIN`/`MAX` over a dictionary `Str` column.
    OrdS {
        col: usize,
        min: bool,
        vals: Vec<Option<Arc<str>>>,
    },
    /// `MIN`/`MAX` over a `Date` column.
    OrdD {
        col: usize,
        min: bool,
        vals: Vec<i32>,
        seen: Vec<bool>,
    },
    /// Anything the typed vectors can't hold bit-exactly (`Generic`
    /// columns, SUM over non-numeric reprs, AVG): per-group [`AggState`]s
    /// driven by materialized values — still the row kernel's arithmetic.
    Fallback {
        col: Option<usize>,
        func: AggFunc,
        states: Vec<AggState>,
    },
}

impl Acc {
    fn new(func: &AggFunc, input: Option<usize>, built: &HashMap<usize, ColumnVec>) -> Acc {
        let fallback = |col: Option<usize>| Acc::Fallback {
            col,
            func: func.clone(),
            states: Vec::new(),
        };
        match (func, input) {
            (AggFunc::CountStar, _) => Acc::CountStar { counts: Vec::new() },
            (AggFunc::Count(_), Some(col)) => Acc::Count {
                col,
                counts: Vec::new(),
            },
            (AggFunc::Sum(_), Some(col)) => match built[&col].data() {
                ColumnData::Int64(_) => Acc::SumI {
                    col,
                    sums: Vec::new(),
                    seen: Vec::new(),
                },
                ColumnData::Float64(_) => Acc::SumF {
                    col,
                    sums: Vec::new(),
                    seen: Vec::new(),
                },
                _ => fallback(Some(col)),
            },
            (AggFunc::Min(_) | AggFunc::Max(_), Some(col)) => {
                let min = matches!(func, AggFunc::Min(_));
                match built[&col].data() {
                    ColumnData::Int64(_) => Acc::OrdI {
                        col,
                        min,
                        vals: Vec::new(),
                        seen: Vec::new(),
                    },
                    ColumnData::Float64(_) => Acc::OrdF {
                        col,
                        min,
                        vals: Vec::new(),
                        seen: Vec::new(),
                    },
                    ColumnData::Str { .. } => Acc::OrdS {
                        col,
                        min,
                        vals: Vec::new(),
                    },
                    ColumnData::Date(_) => Acc::OrdD {
                        col,
                        min,
                        vals: Vec::new(),
                        seen: Vec::new(),
                    },
                    ColumnData::Generic(_) => fallback(Some(col)),
                }
            }
            (_, input) => fallback(input),
        }
    }

    fn push_group(&mut self) {
        match self {
            Acc::CountStar { counts } | Acc::Count { counts, .. } => counts.push(0),
            Acc::SumI { sums, seen, .. } => {
                sums.push(0);
                seen.push(false);
            }
            Acc::SumF { sums, seen, .. } => {
                sums.push(0.0);
                seen.push(false);
            }
            Acc::OrdI { vals, seen, .. } => {
                vals.push(0);
                seen.push(false);
            }
            Acc::OrdF { vals, seen, .. } => {
                vals.push(0.0);
                seen.push(false);
            }
            Acc::OrdS { vals, .. } => vals.push(None),
            Acc::OrdD { vals, seen, .. } => {
                vals.push(0);
                seen.push(false);
            }
            Acc::Fallback { func, states, .. } => states.push(func.new_state()),
        }
    }

    fn update(
        &mut self,
        g: usize,
        i: usize,
        built: &HashMap<usize, ColumnVec>,
        m: &mut ExecutionMetrics,
    ) {
        match self {
            Acc::CountStar { counts } => counts[g] += 1,
            Acc::Count { col, counts } => {
                if !built[col].is_null(i) {
                    counts[g] += 1;
                }
            }
            Acc::SumI { col, sums, seen } => {
                let c = &built[col];
                if !c.is_null(i) {
                    let ColumnData::Int64(xs) = c.data() else {
                        unreachable!("SumI pinned to an Int64 column")
                    };
                    if seen[g] {
                        sums[g] += xs[i];
                    } else {
                        sums[g] = xs[i];
                        seen[g] = true;
                    }
                }
            }
            Acc::SumF { col, sums, seen } => {
                let c = &built[col];
                if !c.is_null(i) {
                    let ColumnData::Float64(xs) = c.data() else {
                        unreachable!("SumF pinned to a Float64 column")
                    };
                    if seen[g] {
                        // Through the shared instance — see `add_f64` for
                        // why an inlined `+=` could disagree on NaN bits.
                        sums[g] = add_f64(sums[g], xs[i]);
                    } else {
                        sums[g] = xs[i];
                        seen[g] = true;
                    }
                }
            }
            Acc::OrdI {
                col,
                min,
                vals,
                seen,
            } => {
                let c = &built[col];
                if !c.is_null(i) {
                    let ColumnData::Int64(xs) = c.data() else {
                        unreachable!("OrdI pinned to an Int64 column")
                    };
                    if seen[g] {
                        m.comparisons += 1;
                        if (*min && xs[i] < vals[g]) || (!*min && xs[i] > vals[g]) {
                            vals[g] = xs[i];
                        }
                    } else {
                        vals[g] = xs[i];
                        seen[g] = true;
                    }
                }
            }
            Acc::OrdF {
                col,
                min,
                vals,
                seen,
            } => {
                let c = &built[col];
                if !c.is_null(i) {
                    let ColumnData::Float64(xs) = c.data() else {
                        unreachable!("OrdF pinned to a Float64 column")
                    };
                    if seen[g] {
                        m.comparisons += 1;
                        let ord = cmp_f64(xs[i], vals[g]);
                        if (*min && ord == std::cmp::Ordering::Less)
                            || (!*min && ord == std::cmp::Ordering::Greater)
                        {
                            vals[g] = xs[i];
                        }
                    } else {
                        vals[g] = xs[i];
                        seen[g] = true;
                    }
                }
            }
            Acc::OrdS { col, min, vals } => {
                let c = &built[col];
                if !c.is_null(i) {
                    let ColumnData::Str { codes, dict } = c.data() else {
                        unreachable!("OrdS pinned to a Str column")
                    };
                    let s = dict.get(codes[i]);
                    match &vals[g] {
                        None => vals[g] = Some(Arc::clone(s)),
                        Some(acc) => {
                            m.comparisons += 1;
                            if (*min && s.as_ref() < acc.as_ref())
                                || (!*min && s.as_ref() > acc.as_ref())
                            {
                                vals[g] = Some(Arc::clone(s));
                            }
                        }
                    }
                }
            }
            Acc::OrdD {
                col,
                min,
                vals,
                seen,
            } => {
                let c = &built[col];
                if !c.is_null(i) {
                    let ColumnData::Date(xs) = c.data() else {
                        unreachable!("OrdD pinned to a Date column")
                    };
                    if seen[g] {
                        m.comparisons += 1;
                        if (*min && xs[i] < vals[g]) || (!*min && xs[i] > vals[g]) {
                            vals[g] = xs[i];
                        }
                    } else {
                        vals[g] = xs[i];
                        seen[g] = true;
                    }
                }
            }
            Acc::Fallback { col, func, states } => {
                let v = match col {
                    Some(c) => built[c].get(i),
                    None => Value::Int(1),
                };
                states[g].update_metered(func, &v, m);
            }
        }
    }

    fn finalize(&self, g: usize) -> Value {
        match self {
            Acc::CountStar { counts } | Acc::Count { counts, .. } => Value::Int(counts[g]),
            Acc::SumI { sums, seen, .. } => {
                if seen[g] {
                    Value::Int(sums[g])
                } else {
                    Value::Null
                }
            }
            Acc::SumF { sums, seen, .. } => {
                if seen[g] {
                    Value::Float(sums[g])
                } else {
                    Value::Null
                }
            }
            Acc::OrdI { vals, seen, .. } => {
                if seen[g] {
                    Value::Int(vals[g])
                } else {
                    Value::Null
                }
            }
            Acc::OrdF { vals, seen, .. } => {
                if seen[g] {
                    Value::Float(vals[g])
                } else {
                    Value::Null
                }
            }
            Acc::OrdS { vals, .. } => match &vals[g] {
                Some(s) => Value::Str(Arc::clone(s)),
                None => Value::Null,
            },
            Acc::OrdD { vals, seen, .. } => {
                if seen[g] {
                    Value::Date(Date(vals[g]))
                } else {
                    Value::Null
                }
            }
            Acc::Fallback { states, .. } => states[g].finalize(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::hash_aggregate;
    use crate::parallel::hash_aggregate_parallel_metered;
    use cubedelta_expr::Expr;
    use cubedelta_storage::DataType;

    fn aggs() -> Vec<(AggFunc, Column)> {
        vec![
            (AggFunc::CountStar, Column::new("cnt", DataType::Int)),
            (
                AggFunc::Count(Expr::col("f")),
                Column::new("cnt_f", DataType::Int),
            ),
            (
                AggFunc::Sum(Expr::col("v")),
                Column::new("sum_v", DataType::Int),
            ),
            (
                AggFunc::Sum(Expr::col("f")),
                Column::new("sum_f", DataType::Float),
            ),
            (
                AggFunc::Min(Expr::col("f")),
                Column::new("min_f", DataType::Float),
            ),
            (
                AggFunc::Max(Expr::col("f")),
                Column::new("max_f", DataType::Float),
            ),
            (
                AggFunc::Min(Expr::col("s")),
                Column::new("min_s", DataType::Str),
            ),
            (
                AggFunc::Max(Expr::col("d")),
                Column::new("max_d", DataType::Date),
            ),
        ]
    }

    fn hostile_relation(n: usize) -> Relation {
        let schema = Schema::new(vec![
            Column::new("k", DataType::Int),
            Column::nullable("v", DataType::Int),
            Column::nullable("f", DataType::Float),
            Column::nullable("s", DataType::Str),
            Column::nullable("d", DataType::Date),
        ]);
        let floats = [
            0.0,
            -0.0,
            f64::NAN,
            f64::from_bits(0xfff8_dead_beef_0001),
            f64::INFINITY,
            f64::NEG_INFINITY,
            1.5,
            -2.5e300,
            f64::MIN_POSITIVE / 2.0,
        ];
        let rows = (0..n)
            .map(|i| {
                Row::new(vec![
                    Value::Int((i % 23) as i64),
                    if i % 7 == 0 {
                        Value::Null
                    } else {
                        Value::Int(i as i64 % 13 - 6)
                    },
                    if i % 5 == 0 {
                        Value::Null
                    } else {
                        Value::Float(floats[i % floats.len()])
                    },
                    if i % 11 == 0 {
                        Value::Null
                    } else {
                        Value::str(format!("s{}", i % 9))
                    },
                    if i % 6 == 0 {
                        Value::Null
                    } else {
                        Value::Date(Date((i % 400) as i32))
                    },
                ])
            })
            .collect();
        Relation::new(schema, rows)
    }

    /// Bit-level render: `Value` equality folds `-0.0 == 0.0` and NaNs, so
    /// byte-identity must be asserted on bit patterns.
    fn bits(rel: &Relation) -> Vec<Vec<String>> {
        rel.rows
            .iter()
            .map(|r| {
                r.iter()
                    .map(|v| match v {
                        Value::Float(f) => format!("F:{:016x}", f.to_bits()),
                        other => format!("{other:?}"),
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn columnar_is_bit_identical_to_row_kernel() {
        let rel = hostile_relation(1000);
        let row_out = hash_aggregate(&rel, &["k"], &aggs()).unwrap();
        let col_out = hash_aggregate_columnar(&rel, &["k"], &aggs()).unwrap();
        assert_eq!(col_out.schema, row_out.schema);
        assert_eq!(bits(&col_out), bits(&row_out), "including emission order");
    }

    #[test]
    fn columnar_books_row_kernel_counters_plus_vector_stats() {
        let rel = hostile_relation(3000);
        let mut rm = ExecutionMetrics::new();
        let mut cm = ExecutionMetrics::new();
        hash_aggregate_metered(&rel, &["k"], &aggs(), &mut rm).unwrap();
        hash_aggregate_columnar_metered(&rel, &["k"], &aggs(), &mut cm).unwrap();
        assert_eq!(cm.rows_scanned, rm.rows_scanned);
        assert_eq!(cm.hash_probes, rm.hash_probes);
        assert_eq!(cm.hash_build_rows, rm.hash_build_rows);
        assert_eq!(cm.comparisons, rm.comparisons, "MIN/MAX comparison parity");
        assert_eq!(cm.groups_touched, rm.groups_touched);
        assert_eq!(cm.rows_emitted, rm.rows_emitted);
        assert_eq!(cm.vectorized_rows, 3000);
        assert_eq!(rm.vectorized_rows, 0);
        // 5 distinct columns touched (k, v, f, s, d) × ⌈3000/1024⌉ chunks.
        assert_eq!(cm.chunks_scanned, 5 * 3);
        assert_eq!(rm.chunks_scanned, 0);
    }

    #[test]
    fn float_group_keys_canonicalize_like_value_eq() {
        // -0.0 and 0.0 (and differently-payloaded NaNs) must land in one
        // group, keyed by the first-seen bit pattern — exactly as the row
        // kernel groups them.
        let schema = Schema::new(vec![
            Column::new("g", DataType::Float),
            Column::new("v", DataType::Int),
        ]);
        let rel = Relation::new(
            schema,
            vec![
                Row::new(vec![Value::Float(-0.0), Value::Int(1)]),
                Row::new(vec![Value::Float(0.0), Value::Int(2)]),
                Row::new(vec![Value::Float(f64::NAN), Value::Int(3)]),
                Row::new(vec![
                    Value::Float(f64::from_bits(0x7ff8_0000_0000_0001)),
                    Value::Int(4),
                ]),
            ],
        );
        let aggs = vec![(
            AggFunc::Sum(Expr::col("v")),
            Column::new("sum_v", DataType::Int),
        )];
        let row_out = hash_aggregate(&rel, &["g"], &aggs).unwrap();
        let col_out = hash_aggregate_columnar(&rel, &["g"], &aggs).unwrap();
        assert_eq!(col_out.len(), 2, "{{-0.0, 0.0}} and {{NaN, NaN'}}");
        assert_eq!(bits(&col_out), bits(&row_out));
        // Key is the first-seen payload: -0.0, not +0.0.
        assert_eq!(bits(&col_out)[0][0], format!("F:{:016x}", (-0.0f64).to_bits()));
    }

    #[test]
    fn min_max_keep_first_seen_bits_on_ties() {
        let schema = Schema::new(vec![
            Column::new("k", DataType::Int),
            Column::new("f", DataType::Float),
        ]);
        let rel = Relation::new(
            schema,
            vec![
                Row::new(vec![Value::Int(1), Value::Float(-0.0)]),
                Row::new(vec![Value::Int(1), Value::Float(0.0)]),
            ],
        );
        let aggs = vec![
            (
                AggFunc::Min(Expr::col("f")),
                Column::new("mn", DataType::Float),
            ),
            (
                AggFunc::Max(Expr::col("f")),
                Column::new("mx", DataType::Float),
            ),
        ];
        let row_out = hash_aggregate(&rel, &["k"], &aggs).unwrap();
        let col_out = hash_aggregate_columnar(&rel, &["k"], &aggs).unwrap();
        assert_eq!(bits(&col_out), bits(&row_out));
        // Both engines keep the first-seen -0.0 on the canonical tie.
        let neg_zero = format!("F:{:016x}", (-0.0f64).to_bits());
        assert_eq!(bits(&col_out)[0][1], neg_zero);
        assert_eq!(bits(&col_out)[0][2], neg_zero);
    }

    #[test]
    fn mixed_int_float_column_promotes_and_groups_like_row_kernel() {
        // Int(2) == Float(2.0) under Value equality; a mixed column must
        // promote to Generic and keep that grouping.
        let schema = Schema::new(vec![
            Column::new("g", DataType::Int),
            Column::nullable("v", DataType::Int),
        ]);
        let rel = Relation::new(
            schema,
            vec![
                Row::new(vec![Value::Int(2), Value::Int(10)]),
                Row::new(vec![Value::Float(2.0), Value::Int(20)]),
                Row::new(vec![Value::Int(3), Value::Float(0.5)]),
            ],
        );
        let aggs = vec![
            (AggFunc::CountStar, Column::new("cnt", DataType::Int)),
            (
                AggFunc::Sum(Expr::col("v")),
                Column::new("sum_v", DataType::Int),
            ),
        ];
        let row_out = hash_aggregate(&rel, &["g"], &aggs).unwrap();
        let col_out = hash_aggregate_columnar(&rel, &["g"], &aggs).unwrap();
        assert_eq!(col_out.len(), 2);
        assert_eq!(bits(&col_out), bits(&row_out));
    }

    #[test]
    fn computed_inputs_and_global_aggregates_delegate_to_row_kernel() {
        let rel = hostile_relation(100);
        // Computed aggregate argument → row kernel, no vectorized rows.
        let neg = vec![(
            AggFunc::Sum(Expr::col("v").neg()),
            Column::new("s", DataType::Int),
        )];
        let mut m = ExecutionMetrics::new();
        let col_out = hash_aggregate_columnar_metered(&rel, &["k"], &neg, &mut m).unwrap();
        let row_out = hash_aggregate(&rel, &["k"], &neg).unwrap();
        assert_eq!(bits(&col_out), bits(&row_out));
        assert_eq!(m.vectorized_rows, 0);
        assert_eq!(m.chunks_scanned, 0);

        // Global aggregate (empty group set) → row kernel, incl. the
        // one-row-over-empty-input rule.
        let empty = Relation::empty(rel.schema.clone());
        let sum = vec![(
            AggFunc::Sum(Expr::col("v")),
            Column::new("s", DataType::Int),
        )];
        let out = hash_aggregate_columnar(&empty, &[], &sum).unwrap();
        assert_eq!(out.len(), 1);
        assert!(out.rows[0][0].is_null());

        // Unknown columns surface the row kernel's error.
        assert!(hash_aggregate_columnar(&rel, &["nope"], &sum).is_err());
        let bad = vec![(
            AggFunc::Sum(Expr::col("nope")),
            Column::new("s", DataType::Int),
        )];
        assert!(hash_aggregate_columnar(&rel, &["k"], &bad).is_err());
    }

    #[test]
    fn empty_grouped_input_is_empty() {
        let rel = Relation::empty(hostile_relation(1).schema);
        let out = hash_aggregate_columnar(&rel, &["k"], &aggs()).unwrap();
        assert!(out.is_empty());
        assert_eq!(out.schema.arity(), 1 + aggs().len());
    }

    #[test]
    fn parallel_columnar_matches_parallel_row_engine_exactly() {
        let rel = hostile_relation(MIN_PARALLEL_ROWS * 3);
        for threads in [1, 2, 4] {
            let mut rm = ExecutionMetrics::new();
            let mut cm = ExecutionMetrics::new();
            let row_out =
                hash_aggregate_parallel_metered(&rel, &["k"], &aggs(), threads, &mut rm).unwrap();
            let col_out =
                hash_aggregate_columnar_parallel_metered(&rel, &["k"], &aggs(), threads, &mut cm)
                    .unwrap();
            // Identical partitioning → identical emission order per thread
            // count, bit for bit.
            assert_eq!(bits(&col_out), bits(&row_out), "threads={threads}");
            assert_eq!(cm.rows_scanned, rm.rows_scanned);
            assert_eq!(cm.comparisons, rm.comparisons);
            assert_eq!(cm.vectorized_rows, rel.rows.len() as u64);
        }
    }

    #[test]
    fn parallel_fallbacks_book_like_row_engine() {
        let small = hostile_relation(100);
        let mut m = ExecutionMetrics::new();
        hash_aggregate_columnar_parallel_metered(&small, &["k"], &aggs(), 4, &mut m).unwrap();
        assert_eq!(m.par_fallbacks, 1, "small input declines parallelism");
        assert_eq!(m.vectorized_rows, 100, "but still vectorizes sequentially");

        let mut m = ExecutionMetrics::new();
        hash_aggregate_columnar_parallel_metered(&small, &["k"], &aggs(), 1, &mut m).unwrap();
        assert_eq!(m.par_fallbacks, 0, "threads=1 is deliberate");
    }

    #[test]
    fn vectorized_rows_is_schedule_independent() {
        let rel = hostile_relation(MIN_PARALLEL_ROWS * 2);
        let mut seq = ExecutionMetrics::new();
        let mut par = ExecutionMetrics::new();
        hash_aggregate_columnar_metered(&rel, &["k"], &aggs(), &mut seq).unwrap();
        hash_aggregate_columnar_parallel_metered(&rel, &["k"], &aggs(), 4, &mut par).unwrap();
        assert_eq!(seq.vectorized_rows, par.vectorized_rows);
        // Chunk counts round up per partition, so they may legitimately
        // differ — which is why chunks_scanned is not a work counter.
        assert!(par.chunks_scanned >= seq.chunks_scanned);
    }
}
