//! Change-set generators for the §6 performance study.

use rand::rngs::StdRng;
use rand::{seq::index::sample, SeedableRng};

use cubedelta_storage::{Catalog, DeltaSet, Row};

use crate::retail::RetailParams;

/// **Update-generating changes** (§6): insertions and deletions of an equal
/// number of tuples over *existing* date, store, and item values. These
/// mostly cause updates amongst the existing tuples in summary tables.
///
/// `size` is the total change-set size (`size/2` insertions plus `size/2`
/// deletions, the deletions drawn from actual `pos` rows so that they apply
/// cleanly).
pub fn update_generating(
    catalog: &Catalog,
    params: &RetailParams,
    size: usize,
    seed: u64,
) -> DeltaSet {
    let mut rng = StdRng::seed_from_u64(seed);
    let pos = catalog.table("pos").expect("pos table exists");
    let n_del = (size / 2).min(pos.len());
    let n_ins = size - n_del;

    // Sample distinct live rows for deletion.
    let live: Vec<&Row> = pos.rows().collect();
    let deletions: Vec<Row> = sample(&mut rng, live.len(), n_del)
        .into_iter()
        .map(|i| live[i].clone())
        .collect();

    let insertions: Vec<Row> = (0..n_ins)
        .map(|_| params.random_pos_row(&mut rng))
        .collect();

    DeltaSet {
        table: "pos".to_string(),
        insertions,
        deletions,
    }
}

/// **Insertion-generating changes** (§6): insertions over *new* dates but
/// existing store and item values. "In many data warehousing applications
/// the only changes to the fact tables are insertions of tuples for new
/// dates" — these cause pure inserts into summary tables grouped by date.
///
/// `new_days` spreads the insertions over that many consecutive new dates
/// (the nightly batch typically carries one new day, i.e. `new_days = 1`).
pub fn insertion_generating(
    params: &RetailParams,
    size: usize,
    new_days: usize,
    seed: u64,
) -> DeltaSet {
    assert!(new_days > 0, "need at least one new day");
    let mut rng = StdRng::seed_from_u64(seed);
    let insertions: Vec<Row> = (0..size)
        .map(|i| params.new_date_pos_row(&mut rng, i % new_days))
        .collect();
    DeltaSet {
        table: "pos".to_string(),
        insertions,
        deletions: Vec::new(),
    }
}

/// A mixed change set: `ins_fraction` of `size` are insertions over existing
/// values, the rest deletions of existing rows. `ins_fraction = 0.5` matches
/// [`update_generating`]; `1.0` is pure insertion over existing dates.
pub fn mixed_changes(
    catalog: &Catalog,
    params: &RetailParams,
    size: usize,
    ins_fraction: f64,
    seed: u64,
) -> DeltaSet {
    assert!((0.0..=1.0).contains(&ins_fraction));
    let mut rng = StdRng::seed_from_u64(seed);
    let pos = catalog.table("pos").expect("pos table exists");
    let n_ins = (size as f64 * ins_fraction).round() as usize;
    let n_del = (size - n_ins).min(pos.len());

    let live: Vec<&Row> = pos.rows().collect();
    let deletions: Vec<Row> = sample(&mut rng, live.len(), n_del)
        .into_iter()
        .map(|i| live[i].clone())
        .collect();
    let insertions: Vec<Row> = (0..n_ins)
        .map(|_| params.random_pos_row(&mut rng))
        .collect();

    DeltaSet {
        table: "pos".to_string(),
        insertions,
        deletions,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::retail::{retail_catalog, EPOCH};
    use crate::scale::WorkloadScale;
    use cubedelta_storage::Value;

    #[test]
    fn update_generating_is_balanced_and_applies() {
        let (mut cat, params) = retail_catalog(WorkloadScale::tiny());
        let delta = update_generating(&cat, &params, 100, 7);
        assert_eq!(delta.insertions.len(), 50);
        assert_eq!(delta.deletions.len(), 50);
        let before = cat.table("pos").unwrap().len();
        cat.table_mut("pos").unwrap().apply_delta(&delta).unwrap();
        assert_eq!(cat.table("pos").unwrap().len(), before);
    }

    #[test]
    fn update_generating_uses_existing_dates() {
        let scale = WorkloadScale::tiny();
        let (cat, params) = retail_catalog(scale);
        let delta = update_generating(&cat, &params, 50, 3);
        for r in &delta.insertions {
            let Value::Date(d) = r[2] else { panic!() };
            assert!(d.0 < EPOCH.0 + scale.dates as i32, "existing dates only");
        }
    }

    #[test]
    fn insertion_generating_uses_new_dates() {
        let scale = WorkloadScale::tiny();
        let (_, params) = retail_catalog(scale);
        let delta = insertion_generating(&params, 40, 2, 5);
        assert_eq!(delta.insertions.len(), 40);
        assert!(delta.deletions.is_empty());
        for r in &delta.insertions {
            let Value::Date(d) = r[2] else { panic!() };
            assert!(d.0 >= EPOCH.0 + scale.dates as i32, "new dates only");
        }
    }

    #[test]
    fn mixed_respects_fraction() {
        let (cat, params) = retail_catalog(WorkloadScale::tiny());
        let delta = mixed_changes(&cat, &params, 100, 0.7, 1);
        assert_eq!(delta.insertions.len(), 70);
        assert_eq!(delta.deletions.len(), 30);
    }

    #[test]
    fn generators_are_deterministic() {
        let (cat, params) = retail_catalog(WorkloadScale::tiny());
        let a = update_generating(&cat, &params, 60, 9);
        let b = update_generating(&cat, &params, 60, 9);
        assert_eq!(a, b);
        let c = update_generating(&cat, &params, 60, 10);
        assert_ne!(a, c);
    }
}
