//! Prometheus exporter integration tests: the rendered registry must be
//! valid exposition format (checked with the in-repo parser, which
//! enforces the histogram invariants), and a live scrape of a running
//! [`WarehouseService`] must reflect the service's actual state.

mod common;

use std::time::Duration;

use common::{small_warehouse, synth_pos_row};
use cubedelta::core::{BatchPolicy, MaintainOptions, WarehouseService};
use cubedelta::obs::{parse_prometheus, render_prometheus, scrape_once, PromFamily};
use cubedelta::storage::{ChangeBatch, DeltaSet};

fn family<'a>(families: &'a [PromFamily], name: &str) -> &'a PromFamily {
    families
        .iter()
        .find(|f| f.name == name)
        .unwrap_or_else(|| panic!("family `{name}` missing"))
}

/// The single (unlabelled) sample value of a counter/gauge family.
fn scalar(families: &[PromFamily], name: &str) -> f64 {
    family(families, name)
        .value(name)
        .unwrap_or_else(|| panic!("`{name}` has no unlabelled sample"))
}

/// A warehouse that has done real work renders to exposition text the
/// strict in-repo parser accepts, with every family under the
/// `cubedelta_` prefix and the maintenance counters present.
#[test]
fn rendered_registry_is_valid_exposition() {
    let mut wh = small_warehouse();
    let batch = ChangeBatch::single(DeltaSet::insertions(
        "pos",
        (0..32).map(synth_pos_row).collect(),
    ));
    wh.maintain(&batch, &MaintainOptions::default()).unwrap();

    let text = render_prometheus(&wh.metrics().snapshot());
    let families = parse_prometheus(&text).unwrap();
    assert!(!families.is_empty());
    for fam in &families {
        assert!(
            fam.name.starts_with("cubedelta_"),
            "family `{}` escaped the namespace",
            fam.name
        );
    }
    assert_eq!(scalar(&families, "cubedelta_maintain_cycles_total"), 1.0);
    // Dotted registry names sanitize to underscores, and histograms
    // carry the full bucket/sum/count series (invariants enforced by
    // `parse_prometheus`).
    let hist = family(&families, "cubedelta_maintain_propagate_us");
    assert!(hist.samples.iter().any(|s| s.0.ends_with("_bucket")));
}

/// Scraping a live service over HTTP reflects its queue state, SLO
/// verdict, and ingest counters.
#[test]
fn live_scrape_reflects_service_state() {
    let mut svc = WarehouseService::start(
        small_warehouse(),
        BatchPolicy {
            max_rows: 4,
            max_batches: 2,
            flush_interval: Duration::from_millis(5),
        },
    );
    let addr = svc.serve_metrics("127.0.0.1:0").unwrap();
    assert_eq!(svc.metrics_addr(), Some(addr));

    for seed in 0..10 {
        svc.ingest(DeltaSet::insertions("pos", vec![synth_pos_row(seed)]))
            .unwrap();
    }
    svc.flush().unwrap();
    assert!(svc.health().is_healthy(), "drained service must be healthy");

    let text = scrape_once(addr).unwrap();
    let families = parse_prometheus(&text).unwrap();
    assert_eq!(scalar(&families, "cubedelta_ingest_rows_total"), 10.0);
    assert_eq!(scalar(&families, "cubedelta_queue_depth"), 0.0);
    assert_eq!(scalar(&families, "cubedelta_healthy"), 1.0);
    assert_eq!(scalar(&families, "cubedelta_cycles_behind"), 0.0);
    let count = family(&families, "cubedelta_staleness_us")
        .value("cubedelta_staleness_us_count")
        .unwrap();
    assert!(count >= 1.0, "staleness histogram never recorded");

    // Re-binding replaces the endpoint; the old port stops serving.
    let addr2 = svc.serve_metrics("127.0.0.1:0").unwrap();
    assert_ne!(addr, addr2);
    assert!(scrape_once(addr2).is_ok());

    let report = svc.shutdown();
    assert!(report.error.is_none());
    // The endpoint died with the service handle.
    assert!(scrape_once(addr2).is_err(), "server must stop at shutdown");
}
