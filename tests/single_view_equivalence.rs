//! Integration tests: single-view maintenance equals recomputation across a
//! spread of view shapes and change patterns (the paper's core correctness
//! claim for the summary-delta method, §4).

mod common;

use common::*;
use cubedelta::core::{MaintainOptions, Warehouse};
use cubedelta::expr::{CmpOp, Expr, Predicate};
use cubedelta::query::AggFunc;
use cubedelta::storage::{row, ChangeBatch, Date, DeltaSet};
use cubedelta::view::SummaryViewDef;
use cubedelta::workload::retail_catalog_small;

fn d(offset: i32) -> Date {
    Date(10000 + offset)
}

/// Installs one view, runs a batch, checks consistency.
fn run_one(def: SummaryViewDef, batch: ChangeBatch) {
    let mut wh = Warehouse::from_catalog(retail_catalog_small());
    wh.create_summary_table(&def).unwrap();
    maintain_and_check(&mut wh, &batch, &MaintainOptions::default());
}

fn mixed_batch() -> ChangeBatch {
    ChangeBatch::single(DeltaSet {
        table: "pos".into(),
        insertions: vec![
            row![1i64, 10i64, d(0), 9i64, 1.5],
            row![2i64, 20i64, d(3), 2i64, 2.0],
            row![3i64, 30i64, d(1), 4i64, 0.8],
        ],
        deletions: vec![
            row![1i64, 10i64, d(0), 5i64, 1.0],
            row![1i64, 20i64, d(1), 2i64, 2.0],
        ],
    })
}

#[test]
fn plain_cube_view() {
    run_one(
        SummaryViewDef::builder("v", "pos")
            .group_by(["storeID", "itemID", "date"])
            .aggregate(AggFunc::CountStar, "cnt")
            .aggregate(AggFunc::Sum(Expr::col("qty")), "total")
            .build(),
        mixed_batch(),
    );
}

#[test]
fn apex_view_global_totals() {
    run_one(
        SummaryViewDef::builder("apex", "pos")
            .aggregate(AggFunc::CountStar, "cnt")
            .aggregate(AggFunc::Sum(Expr::col("qty")), "total")
            .aggregate(AggFunc::Min(Expr::col("date")), "first")
            .aggregate(AggFunc::Max(Expr::col("date")), "last")
            .build(),
        mixed_batch(),
    );
}

#[test]
fn view_with_min_max_over_measure() {
    run_one(
        SummaryViewDef::builder("mm", "pos")
            .group_by(["storeID"])
            .aggregate(AggFunc::Min(Expr::col("qty")), "min_q")
            .aggregate(AggFunc::Max(Expr::col("qty")), "max_q")
            .aggregate(AggFunc::CountStar, "cnt")
            .build(),
        mixed_batch(),
    );
}

#[test]
fn view_with_avg_rewritten() {
    run_one(
        SummaryViewDef::builder("avg_v", "pos")
            .group_by(["itemID"])
            .aggregate(AggFunc::Avg(Expr::col("qty")), "avg_q")
            .build(),
        mixed_batch(),
    );
}

#[test]
fn view_with_expression_source() {
    // SUM(qty * price): revenue per store.
    run_one(
        SummaryViewDef::builder("rev", "pos")
            .group_by(["storeID"])
            .aggregate(
                AggFunc::Sum(Expr::col("qty").mul(Expr::col("price"))),
                "revenue",
            )
            .build(),
        mixed_batch(),
    );
}

#[test]
fn view_with_where_clause() {
    run_one(
        SummaryViewDef::builder("big_sales", "pos")
            .filter(Predicate::cmp(CmpOp::Ge, Expr::col("qty"), Expr::lit(4i64)))
            .group_by(["storeID", "date"])
            .aggregate(AggFunc::CountStar, "cnt")
            .aggregate(AggFunc::Sum(Expr::col("qty")), "total")
            .build(),
        mixed_batch(),
    );
}

#[test]
fn view_with_two_dimension_joins() {
    run_one(
        SummaryViewDef::builder("cc", "pos")
            .join_dimension("stores")
            .join_dimension("items")
            .group_by(["region", "category"])
            .aggregate(AggFunc::CountStar, "cnt")
            .aggregate(AggFunc::Sum(Expr::col("qty")), "total")
            .aggregate(AggFunc::Min(Expr::col("date")), "first")
            .build(),
        mixed_batch(),
    );
}

#[test]
fn deletions_that_empty_every_group() {
    // Delete all four base rows: every summary group must vanish.
    let cat = retail_catalog_small();
    let all_rows: Vec<_> = cat.table("pos").unwrap().rows().cloned().collect();
    let mut wh = Warehouse::from_catalog(cat);
    wh.create_summary_table(
        &SummaryViewDef::builder("v", "pos")
            .group_by(["storeID", "itemID", "date"])
            .aggregate(AggFunc::CountStar, "cnt")
            .aggregate(AggFunc::Sum(Expr::col("qty")), "total")
            .build(),
    )
    .unwrap();
    let batch = ChangeBatch::single(DeltaSet::deletions("pos", all_rows));
    maintain_and_check(&mut wh, &batch, &MaintainOptions::default());
    assert!(wh.catalog().table("v").unwrap().is_empty());
}

#[test]
fn null_heavy_changes() {
    // Insertions with NULL qty mixed with deletions of non-null rows.
    let mut wh = Warehouse::from_catalog(retail_catalog_small());
    wh.create_summary_table(
        &SummaryViewDef::builder("v", "pos")
            .group_by(["storeID", "itemID", "date"])
            .aggregate(AggFunc::CountStar, "cnt")
            .aggregate(AggFunc::Sum(Expr::col("qty")), "total")
            .aggregate(AggFunc::Min(Expr::col("qty")), "min_q")
            .build(),
    )
    .unwrap();
    let null_row = |s: i64, i: i64, off: i32| {
        cubedelta::storage::Row::new(vec![
            cubedelta::storage::Value::Int(s),
            cubedelta::storage::Value::Int(i),
            cubedelta::storage::Value::Date(d(off)),
            cubedelta::storage::Value::Null,
            cubedelta::storage::Value::Float(1.0),
        ])
    };
    let batch = ChangeBatch::single(DeltaSet {
        table: "pos".into(),
        insertions: vec![null_row(1, 10, 0), null_row(5, 20, 2)],
        deletions: vec![row![1i64, 10i64, d(0), 5i64, 1.0]],
    });
    maintain_and_check(&mut wh, &batch, &MaintainOptions::default());
}

#[test]
fn repeated_batches_stay_consistent() {
    let mut wh = Warehouse::from_catalog(retail_catalog_small());
    wh.create_summary_table(
        &SummaryViewDef::builder("v", "pos")
            .join_dimension("items")
            .group_by(["storeID", "category"])
            .aggregate(AggFunc::CountStar, "cnt")
            .aggregate(AggFunc::Min(Expr::col("date")), "first")
            .aggregate(AggFunc::Sum(Expr::col("qty")), "total")
            .build(),
    )
    .unwrap();
    for night in 0..10u64 {
        let batch = small_update_batch(&wh, night, 4);
        maintain_and_check(&mut wh, &batch, &MaintainOptions::default());
    }
}

#[test]
fn pre_aggregation_equivalence_over_batches() {
    for pre in [false, true] {
        let mut wh = Warehouse::from_catalog(retail_catalog_small());
        wh.create_summary_table(
            &SummaryViewDef::builder("v", "pos")
                .join_dimension("stores")
                .group_by(["city", "date"])
                .aggregate(AggFunc::CountStar, "cnt")
                .aggregate(AggFunc::Sum(Expr::col("qty")), "total")
                .build(),
        )
        .unwrap();
        let opts = MaintainOptions {
            use_lattice: true,
            pre_aggregate: pre,
        };
        for night in 0..5u64 {
            let batch = small_update_batch(&wh, night * 7 + 1, 6);
            maintain_and_check(&mut wh, &batch, &opts);
        }
    }
}
