//! Precise error variants (never panics) from `cubedelta::persist` and
//! the durability layer when fed hand-mangled directories: every broken
//! input maps to the right `PersistError` arm with a useful message.

mod common;

use std::fs;
use std::path::PathBuf;

use common::small_warehouse;
use cubedelta::durability::recover_warehouse;
use cubedelta::persist::{load_warehouse, save_warehouse, PersistError};
use cubedelta::MaintainOptions;

fn mangled_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "cubedelta_persist_errors_{tag}_{}",
        std::process::id()
    ));
    let _ = fs::remove_dir_all(&dir);
    save_warehouse(&small_warehouse(), &dir).unwrap();
    dir
}

#[test]
fn missing_view_sql_line_is_engine_error() {
    let dir = mangled_dir("badview");
    // Chop the first view statement in half: the prefix of a valid CREATE
    // VIEW is not a valid statement.
    let views = fs::read_to_string(dir.join("views.sql")).unwrap();
    let first = views.lines().next().unwrap();
    let truncated = &first[..first.len() / 2];
    fs::write(dir.join("views.sql"), format!("{truncated}\n")).unwrap();
    match load_warehouse(&dir) {
        Err(PersistError::Engine(msg)) => {
            assert!(!msg.is_empty(), "engine error should explain the parse failure")
        }
        Err(other) => panic!("expected Engine, got {other:?}"),
        Ok(_) => panic!("a mangled views.sql must not load"),
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn truncated_csv_is_engine_error() {
    let dir = mangled_dir("trunccsv");
    // Cut the fact table's CSV mid-row, at the final record's last
    // separator: that record no longer matches the schema's arity.
    let csv = fs::read_to_string(dir.join("pos.csv")).unwrap();
    let cut = csv.rfind(',').expect("fixture fact table has rows");
    fs::write(dir.join("pos.csv"), &csv[..cut]).unwrap();
    match load_warehouse(&dir) {
        Err(PersistError::Engine(msg)) => {
            assert!(!msg.is_empty(), "engine error should name the bad record")
        }
        Err(other) => panic!("expected Engine, got {other:?}"),
        Ok(_) => panic!("a truncated CSV must not load"),
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn bad_foreign_key_is_engine_error() {
    let dir = mangled_dir("badfk");
    let mut schema = fs::read_to_string(dir.join("schema.txt")).unwrap();
    schema.push_str("fk|pos|storeID|warehouses|warehouseID\n");
    fs::write(dir.join("schema.txt"), schema).unwrap();
    match load_warehouse(&dir) {
        Err(PersistError::Engine(msg)) => {
            assert!(msg.contains("warehouses"), "should name the missing table: {msg}")
        }
        Err(other) => panic!("expected Engine, got {other:?}"),
        Ok(_) => panic!("an FK to a nonexistent table must not load"),
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn missing_table_csv_is_io_error() {
    let dir = mangled_dir("nocsv");
    fs::remove_file(dir.join("stores.csv")).unwrap();
    assert!(matches!(load_warehouse(&dir), Err(PersistError::Io(_))));
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn malformed_schema_lines_are_manifest_errors() {
    for (tag, line, expect) in [
        ("badrole", "table|ghost|starring", "role"),
        ("badtype", "column|pos|ghost|complex|null", "type"),
        ("badnull", "column|pos|ghost|int|maybe", "nullability"),
        ("fdfirst", "fd|ghostdim|k|a,b", "dimkey"),
        ("shape", "telephone|pos", "line"),
    ] {
        let dir = mangled_dir(tag);
        let mut schema = fs::read_to_string(dir.join("schema.txt")).unwrap();
        schema.push_str(line);
        schema.push('\n');
        fs::write(dir.join("schema.txt"), schema).unwrap();
        match load_warehouse(&dir) {
            Err(PersistError::Manifest(msg)) => assert!(
                !msg.is_empty(),
                "{tag}: manifest error should describe the bad {expect}"
            ),
            Err(other) => panic!("{tag}: expected Manifest, got {other:?}"),
            Ok(_) => panic!("{tag}: mangled schema.txt must not load"),
        }
        let _ = fs::remove_dir_all(&dir);
    }
}

#[test]
fn garbled_commitlog_manifest_is_corrupt_error() {
    let dir = mangled_dir("badmanifest");
    fs::write(dir.join("MANIFEST"), "snapshot_lsn=banana\n").unwrap();
    match recover_warehouse(&dir, &MaintainOptions::default()) {
        Err(PersistError::Corrupt { detail, .. }) => {
            assert!(detail.contains("manifest"), "{detail}")
        }
        Err(other) => panic!("expected Corrupt, got {other:?}"),
        Ok(_) => panic!("a garbled MANIFEST must not recover"),
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn interior_commitlog_corruption_is_corrupt_error_with_offset() {
    use cubedelta::core::{BatchPolicy, CommitLog};
    use cubedelta::durability::start_durable;
    use cubedelta::storage::DeltaSet;
    use std::time::Duration;

    let dir = std::env::temp_dir().join(format!(
        "cubedelta_persist_errors_corruptlog_{}",
        std::process::id()
    ));
    let _ = fs::remove_dir_all(&dir);

    // Write a real two-frame log through the service, crash-style (no
    // clean-shutdown compaction): poison the second cycle so the log
    // keeps both frames.
    {
        use cubedelta::core::multi::failpoints;
        let svc = start_durable(
            small_warehouse(),
            BatchPolicy {
                max_rows: 1,
                max_batches: 2,
                flush_interval: Duration::from_millis(2),
            },
            MaintainOptions::default(),
            &dir,
            0,
        )
        .unwrap()
        .service;
        svc.ingest(DeltaSet::insertions("pos", vec![common::synth_pos_row(1)]))
            .unwrap();
        svc.flush().unwrap();
        failpoints::arm_refresh_panic("SID_sales");
        svc.ingest(DeltaSet::insertions("pos", vec![common::synth_pos_row(2)]))
            .unwrap();
        let _ = svc.flush();
        drop(svc.shutdown());
        failpoints::disarm_all();
    }

    // Flip a byte inside frame 1's payload. Frame 2 stays valid behind
    // it, so this is interior corruption, not a torn tail.
    let log_path = dir.join("commit.log");
    let mut bytes = fs::read(&log_path).unwrap();
    assert!(bytes.len() > 40, "two frames on disk");
    bytes[20] ^= 0xff;
    fs::write(&log_path, &bytes).unwrap();

    match CommitLog::open(&dir) {
        Err(e) => {
            let msg = e.to_string();
            assert!(msg.contains("byte 0"), "offset should point at frame 1: {msg}");
        }
        Ok(_) => panic!("interior corruption must not open"),
    }
    match recover_warehouse(&dir, &MaintainOptions::default()) {
        Err(PersistError::Corrupt { offset, detail }) => {
            assert_eq!(offset, 0, "corruption starts at frame 1: {detail}");
        }
        Err(other) => panic!("expected Corrupt, got {other:?}"),
        Ok(_) => panic!("a corrupt commitlog must not recover"),
    }
    let _ = fs::remove_dir_all(&dir);
}
