//! Wall-clock tracing spans behind the `tracing` cargo feature.
//!
//! With the feature **off** (the default) [`span`] compiles to nothing:
//! the name closure is never evaluated and the guard is a zero-sized
//! type, so benches measure the uninstrumented pipeline. With the
//! feature **on**, spans record name, nesting depth, and wall-clock
//! duration into a process-global buffer that [`take_spans`] drains and
//! [`render_spans`] pretty-prints.
//!
//! ```
//! let _guard = cubedelta_obs::trace::span(|| "maintain".to_string());
//! // ... timed work; the span closes when the guard drops.
//! ```

/// One completed span (only ever produced with the `tracing` feature).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Span name, e.g. `propagate:SID_sales`.
    pub name: String,
    /// Nesting depth at entry (0 = root).
    pub depth: usize,
    /// Wall-clock time between entry and guard drop, µs.
    pub wall_us: u64,
}

/// Renders spans as an indented tree, one per line.
pub fn render_spans(spans: &[SpanRecord]) -> String {
    let mut out = String::new();
    for s in spans {
        for _ in 0..s.depth {
            out.push_str("  ");
        }
        out.push_str(&format!("{} {}µs\n", s.name, s.wall_us));
    }
    out
}

#[cfg(feature = "tracing")]
mod enabled {
    use super::SpanRecord;
    use std::cell::Cell;
    use std::sync::Mutex;
    use std::time::Instant;

    static FINISHED: Mutex<Vec<SpanRecord>> = Mutex::new(Vec::new());

    thread_local! {
        static DEPTH: Cell<usize> = const { Cell::new(0) };
    }

    /// Active-span guard; records on drop.
    pub struct SpanGuard {
        name: String,
        depth: usize,
        start: Instant,
    }

    impl Drop for SpanGuard {
        fn drop(&mut self) {
            DEPTH.with(|d| d.set(self.depth));
            let wall_us = self.start.elapsed().as_micros().min(u64::MAX as u128) as u64;
            FINISHED.lock().expect("span buffer poisoned").push(SpanRecord {
                name: std::mem::take(&mut self.name),
                depth: self.depth,
                wall_us,
            });
        }
    }

    /// Opens a span named by `name()`; it closes when the guard drops.
    pub fn span<F: FnOnce() -> String>(name: F) -> SpanGuard {
        let depth = DEPTH.with(|d| {
            let cur = d.get();
            d.set(cur + 1);
            cur
        });
        SpanGuard {
            name: name(),
            depth,
            start: Instant::now(),
        }
    }

    /// Drains and returns every finished span recorded so far (in
    /// completion order: children before parents).
    pub fn take_spans() -> Vec<SpanRecord> {
        std::mem::take(&mut *FINISHED.lock().expect("span buffer poisoned"))
    }
}

#[cfg(feature = "tracing")]
pub use enabled::{span, take_spans, SpanGuard};

#[cfg(not(feature = "tracing"))]
mod disabled {
    use super::SpanRecord;

    /// Zero-sized no-op guard.
    pub struct SpanGuard;

    /// No-op: `name` is never evaluated.
    #[inline(always)]
    pub fn span<F: FnOnce() -> String>(_name: F) -> SpanGuard {
        SpanGuard
    }

    /// Always empty without the `tracing` feature.
    #[inline(always)]
    pub fn take_spans() -> Vec<SpanRecord> {
        Vec::new()
    }
}

#[cfg(not(feature = "tracing"))]
pub use disabled::{span, take_spans, SpanGuard};

#[cfg(test)]
mod tests {
    use super::*;

    #[cfg(not(feature = "tracing"))]
    #[test]
    fn disabled_spans_never_evaluate_names() {
        let _g = span(|| panic!("name closure must not run"));
        assert!(take_spans().is_empty());
    }

    #[cfg(feature = "tracing")]
    #[test]
    fn enabled_spans_record_nesting_and_time() {
        let _ = take_spans(); // isolate from other tests
        {
            let _outer = span(|| "outer".to_string());
            {
                let _inner = span(|| "inner".to_string());
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
        }
        let spans = take_spans();
        let inner = spans.iter().find(|s| s.name == "inner").expect("inner span");
        let outer = spans.iter().find(|s| s.name == "outer").expect("outer span");
        assert_eq!(inner.depth, 1);
        assert_eq!(outer.depth, 0);
        assert!(outer.wall_us >= inner.wall_us);
        assert!(inner.wall_us >= 1_000, "slept 2ms, saw {}µs", inner.wall_us);
        let rendered = render_spans(&spans);
        assert!(rendered.contains("  inner"));
    }

    #[test]
    fn render_indents_by_depth() {
        let spans = vec![
            SpanRecord {
                name: "child".into(),
                depth: 1,
                wall_us: 5,
            },
            SpanRecord {
                name: "root".into(),
                depth: 0,
                wall_us: 9,
            },
        ];
        assert_eq!(render_spans(&spans), "  child 5µs\nroot 9µs\n");
    }
}
