//! Column data types.

use std::fmt;

/// The static type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit IEEE float.
    Float,
    /// UTF-8 string.
    Str,
    /// Calendar date (days since 1970-01-01).
    Date,
}

impl DataType {
    /// True iff values of this type support `+`, `-`, `*`, unary `-`.
    ///
    /// SUM and COUNT aggregate sources must be numeric; MIN/MAX sources may
    /// be any ordered type (the paper takes `MIN(date)`).
    pub fn is_numeric(self) -> bool {
        matches!(self, DataType::Int | DataType::Float)
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Int => "INT",
            DataType::Float => "FLOAT",
            DataType::Str => "STR",
            DataType::Date => "DATE",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_classification() {
        assert!(DataType::Int.is_numeric());
        assert!(DataType::Float.is_numeric());
        assert!(!DataType::Str.is_numeric());
        assert!(!DataType::Date.is_numeric());
    }

    #[test]
    fn display() {
        assert_eq!(DataType::Int.to_string(), "INT");
        assert_eq!(DataType::Date.to_string(), "DATE");
    }
}
