//! Edge queries: computing a child view's contents from a parent view's
//! contents (§5.1), and — by Theorem 5.1 — a child *summary-delta* from a
//! parent summary-delta with the very same query.
//!
//! The aggregate rewrites along an edge `v1 → v2`:
//!
//! * `COUNT(*)`/`COUNT(E)` of `v2` → `SUM` of the corresponding count column
//!   of `v1`;
//! * `SUM(E)` of `v2`, when `v1` computes `SUM(E)` → `SUM` of that column;
//! * `SUM(A)` of `v2`, when `A` ranges over `v1`'s group-by attributes →
//!   `SUM(A · Y)` where `Y` is `v1`'s `COUNT(*)` column;
//! * `COUNT(A)` likewise → `SUM(CASE WHEN A IS NULL THEN 0 ELSE Y END)`;
//! * `MIN(E)`/`MAX(E)` → `MIN`/`MAX` of the parent column or of `A` itself.

use std::collections::HashSet;

use cubedelta_expr::Expr;
use cubedelta_query::{hash_aggregate, hash_join, AggFunc, Relation};
use cubedelta_storage::{Catalog, Column, Row};
use cubedelta_view::{summary_schema, AugmentedView};

use crate::derives::{AggRewrite, DerivesInfo, DimJoinSpec};
use crate::error::{LatticeError, LatticeResult};

/// A compiled derivation query along a lattice edge: evaluate against the
/// parent's *contents* to rematerialize the child, or against the parent's
/// *summary-delta* to propagate changes (Theorem 5.1).
#[derive(Debug, Clone, PartialEq)]
pub struct EdgeQuery {
    /// Parent view name.
    pub parent: String,
    /// Child view name.
    pub child: String,
    /// Functional dimension joins to perform first.
    pub dim_joins: Vec<DimJoinSpec>,
    /// Child group-by attribute names (valid in the joined schema).
    pub group_by: Vec<String>,
    /// Rewritten aggregates with the child's output columns.
    pub aggs: Vec<(AggFunc, Column)>,
}

/// Compiles the derivation query for `child ⊑ parent` given the evidence
/// from [`crate::derives::derives`].
pub fn build_edge_query(
    catalog: &Catalog,
    parent: &AugmentedView,
    child: &AugmentedView,
    info: &DerivesInfo,
) -> LatticeResult<EdgeQuery> {
    let y = &parent.def.aggregates[parent.count_star].alias;
    let child_schema = summary_schema(catalog, child)?;
    let mut aggs = Vec::with_capacity(child.def.aggregates.len());

    for (i, (spec, rw)) in child
        .def
        .aggregates
        .iter()
        .zip(&info.agg_rewrites)
        .enumerate()
    {
        let out_col = child_schema.columns()[child.key_width() + i].clone();
        let func = match rw {
            AggRewrite::FromParentAgg(pi) => {
                let pa = Expr::col(&parent.def.aggregates[*pi].alias);
                match &spec.func {
                    AggFunc::CountStar | AggFunc::Count(_) | AggFunc::Sum(_) => AggFunc::Sum(pa),
                    AggFunc::Min(_) => AggFunc::Min(pa),
                    AggFunc::Max(_) => AggFunc::Max(pa),
                    AggFunc::Avg(_) => {
                        return Err(LatticeError::Construction(
                            "AVG survived augmentation".to_string(),
                        ))
                    }
                }
            }
            AggRewrite::Reaggregate => match &spec.func {
                AggFunc::Sum(e) => AggFunc::Sum(e.clone().mul(Expr::col(y))),
                AggFunc::Count(e) => {
                    AggFunc::Sum(e.clone().case_null(Expr::lit(0i64), Expr::col(y)))
                }
                AggFunc::CountStar => AggFunc::Sum(Expr::col(y)),
                AggFunc::Min(e) => AggFunc::Min(e.clone()),
                AggFunc::Max(e) => AggFunc::Max(e.clone()),
                AggFunc::Avg(_) => {
                    return Err(LatticeError::Construction(
                        "AVG survived augmentation".to_string(),
                    ))
                }
            },
        };
        aggs.push((func, out_col));
    }

    Ok(EdgeQuery {
        parent: parent.def.name.clone(),
        child: child.def.name.clone(),
        dim_joins: info.dim_joins.clone(),
        group_by: child.def.group_by.clone(),
        aggs,
    })
}

/// The duplicate-free lookup relation for one functional dimension join:
/// `SELECT DISTINCT dim_attr, attrs… FROM dim_table`.
fn dim_lookup(catalog: &Catalog, spec: &DimJoinSpec) -> LatticeResult<Relation> {
    let dim = catalog.table(&spec.dim_table)?;
    let mut names: Vec<&str> = vec![spec.dim_attr.as_str()];
    for a in &spec.attrs {
        if *a != spec.dim_attr {
            names.push(a);
        }
    }
    let cols = dim.schema().indices_of(&names)?;
    let schema = dim.schema().project(&cols);
    let mut seen: HashSet<Row> = HashSet::new();
    let mut rows = Vec::new();
    for r in dim.rows() {
        let p = r.project(&cols);
        if seen.insert(p.clone()) {
            rows.push(p);
        }
    }
    Ok(Relation::new(schema, rows))
}

/// Evaluates an edge query over the parent's output rows (its materialized
/// contents, or its summary-delta table — Theorem 5.1 makes both valid).
pub fn derive_child(
    catalog: &Catalog,
    parent_rel: &Relation,
    eq: &EdgeQuery,
) -> LatticeResult<Relation> {
    let joined_storage;
    let input: &Relation = if eq.dim_joins.is_empty() {
        parent_rel
    } else {
        let mut rel: Option<Relation> = None;
        for spec in &eq.dim_joins {
            let lookup = dim_lookup(catalog, spec)?;
            let left = rel.as_ref().unwrap_or(parent_rel);
            rel = Some(hash_join(
                left,
                &lookup,
                &[&spec.parent_attr],
                &[&spec.dim_attr],
                &spec.dim_table,
            )?);
        }
        joined_storage = rel.expect("at least one join ran");
        &joined_storage
    };
    let group_refs: Vec<&str> = eq.group_by.iter().map(String::as_str).collect();
    Ok(hash_aggregate(input, &group_refs, &eq.aggs)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::derives::derives;
    use crate::test_fixtures::*;
    use cubedelta_view::{augment, materialize};

    /// Deriving a child through an edge query must equal materializing the
    /// child from base data.
    fn assert_edge_derivation_correct(
        catalog: &Catalog,
        parent_def: cubedelta_view::SummaryViewDef,
        child_def: cubedelta_view::SummaryViewDef,
    ) {
        let parent = augment(catalog, &parent_def).unwrap();
        let child = augment(catalog, &child_def).unwrap();
        let info = derives(catalog, &child, &parent)
            .unwrap()
            .expect("child derivable from parent");
        let eq = build_edge_query(catalog, &parent, &child, &info).unwrap();

        let parent_contents = materialize(catalog, &parent).unwrap();
        let via_edge = derive_child(catalog, &parent_contents, &eq).unwrap();
        let direct = materialize(catalog, &child).unwrap();
        assert_eq!(
            via_edge.sorted_rows(),
            direct.sorted_rows(),
            "edge derivation {} → {} disagrees with direct materialization",
            parent.def.name,
            child.def.name
        );
    }

    #[test]
    fn scd_from_sid() {
        let cat = retail_catalog_small();
        assert_edge_derivation_correct(&cat, sid_sales(), scd_sales());
    }

    #[test]
    fn sic_from_sid_with_min_reaggregation() {
        let cat = retail_catalog_small();
        assert_edge_derivation_correct(&cat, sid_sales(), sic_sales());
    }

    #[test]
    fn sr_from_sid() {
        let cat = retail_catalog_small();
        assert_edge_derivation_correct(&cat, sid_sales(), sr_sales());
    }

    #[test]
    fn sr_from_scd_via_functional_city_join() {
        let cat = retail_catalog_small();
        assert_edge_derivation_correct(&cat, scd_sales(), sr_sales());
    }

    #[test]
    fn sr_from_sic() {
        let cat = retail_catalog_small();
        assert_edge_derivation_correct(&cat, sic_sales(), sr_sales());
    }

    #[test]
    fn apex_from_sid() {
        // The empty group-by view (global totals) from the top.
        let cat = retail_catalog_small();
        let apex = cubedelta_view::SummaryViewDef::builder("apex", "pos")
            .aggregate(cubedelta_query::AggFunc::CountStar, "cnt")
            .aggregate(
                cubedelta_query::AggFunc::Sum(cubedelta_expr::Expr::col("qty")),
                "total",
            )
            .build();
        assert_edge_derivation_correct(&cat, sid_sales(), apex);
    }

    #[test]
    fn count_of_groupby_attr_reaggregates() {
        // COUNT(date) in the child where date is a parent group-by: rewrites
        // to SUM(CASE WHEN date IS NULL THEN 0 ELSE Y END).
        let cat = retail_catalog_small();
        let child = cubedelta_view::SummaryViewDef::builder("cd", "pos")
            .group_by(["storeID"])
            .aggregate(
                cubedelta_query::AggFunc::Count(cubedelta_expr::Expr::col("date")),
                "date_cnt",
            )
            .build();
        assert_edge_derivation_correct(&cat, sid_sales(), child);
    }

    #[test]
    fn dim_lookup_is_distinct() {
        let cat = retail_catalog_small();
        let spec = DimJoinSpec {
            dim_table: "stores".into(),
            parent_attr: "city".into(),
            dim_attr: "city".into(),
            attrs: vec!["region".into()],
        };
        let rel = dim_lookup(&cat, &spec).unwrap();
        // 3 stores but 3 distinct (city, region) pairs in the fixture; make
        // sure a duplicated city would collapse by checking schema + count.
        assert_eq!(rel.schema.names(), vec!["city", "region"]);
        assert_eq!(rel.len(), 3);
    }
}
