//! Integration tests for dimension-table changes (§4.1.4): prepare views
//! derived from changed dimension tables, combined fact+dimension batches,
//! and hierarchy reorganizations.

mod common;

use common::*;
use cubedelta::core::MaintainOptions;
use cubedelta::storage::{row, ChangeBatch, Date, DeltaSet};

fn d(offset: i32) -> Date {
    Date(10000 + offset)
}

#[test]
fn item_category_reassignment() {
    // The §4.1.4 example: an item moves category; SiC_sales regroups.
    let mut wh = small_warehouse();
    let mut batch = ChangeBatch::new();
    batch.add(DeltaSet {
        table: "items".into(),
        insertions: vec![row![10i64, "cola", "beverages", 0.5]],
        deletions: vec![row![10i64, "cola", "drinks", 0.5]],
    });
    maintain_and_check(&mut wh, &batch, &MaintainOptions::default());
    let sic = wh.catalog().table("SiC_sales").unwrap();
    // Item 10's three pos rows regrouped under beverages.
    assert!(sic
        .rows()
        .any(|r| r[1] == cubedelta::storage::Value::str("beverages")));
    assert!(!sic
        .rows()
        .any(|r| r[1] == cubedelta::storage::Value::str("drinks")
            && r[2] != cubedelta::storage::Value::Int(0)));
}

#[test]
fn store_city_move_hits_city_and_region_views() {
    // Store 2 relocates from boston/east to sf/west.
    let mut wh = small_warehouse();
    let mut batch = ChangeBatch::new();
    batch.add(DeltaSet {
        table: "stores".into(),
        insertions: vec![row![2i64, "sf", "west"]],
        deletions: vec![row![2i64, "boston", "east"]],
    });
    maintain_and_check(&mut wh, &batch, &MaintainOptions::default());
    let sr = wh.catalog().table("sR_sales").unwrap();
    // Store 2 had one pos row (qty 7): east loses it, west gains it.
    let get = |region: &str| {
        sr.rows()
            .find(|r| r[0] == cubedelta::storage::Value::str(region))
            .map(|r| (r[1].clone(), r[2].clone()))
    };
    let (east_cnt, east_qty) = get("east").expect("east row");
    assert_eq!(east_cnt, cubedelta::storage::Value::Int(3));
    assert_eq!(east_qty, cubedelta::storage::Value::Int(10));
    let (west_cnt, west_qty) = get("west").expect("west row");
    assert_eq!(west_cnt, cubedelta::storage::Value::Int(1));
    assert_eq!(west_qty, cubedelta::storage::Value::Int(7));
}

#[test]
fn new_dimension_rows_with_new_facts_in_one_batch() {
    // A brand-new store opens and sells on the same day.
    let mut wh = small_warehouse();
    let mut batch = ChangeBatch::new();
    batch.add(DeltaSet::insertions(
        "stores",
        vec![row![4i64, "austin", "south"]],
    ));
    batch.add(DeltaSet::insertions(
        "pos",
        vec![
            row![4i64, 10i64, d(2), 3i64, 1.0],
            row![4i64, 20i64, d(2), 1i64, 2.0],
        ],
    ));
    maintain_and_check(&mut wh, &batch, &MaintainOptions::default());
    let sr = wh.catalog().table("sR_sales").unwrap();
    assert!(
        sr.rows()
            .any(|r| r[0] == cubedelta::storage::Value::str("south")),
        "new region appears"
    );
}

#[test]
fn dimension_delete_removes_orphaned_fact_contributions() {
    // Close store 3 (no pos rows) — summary tables unchanged; then close
    // store 2 together with deleting its pos row.
    let mut wh = small_warehouse();
    let mut batch = ChangeBatch::new();
    batch.add(DeltaSet::deletions("stores", vec![row![3i64, "sf", "west"]]));
    maintain_and_check(&mut wh, &batch, &MaintainOptions::default());

    let mut batch = ChangeBatch::new();
    batch.add(DeltaSet::deletions(
        "stores",
        vec![row![2i64, "boston", "east"]],
    ));
    batch.add(DeltaSet::deletions(
        "pos",
        vec![row![2i64, 10i64, d(0), 7i64, 1.0]],
    ));
    maintain_and_check(&mut wh, &batch, &MaintainOptions::default());
}

#[test]
fn repeated_dimension_churn_stays_consistent() {
    let mut wh = small_warehouse();
    let cities = ["nyc", "boston", "sf", "austin"];
    let regions = ["east", "east", "west", "south"];
    for round in 0..6usize {
        let from = round % cities.len();
        let to = (round + 1) % cities.len();
        let mut batch = ChangeBatch::new();
        batch.add(DeltaSet {
            table: "stores".into(),
            insertions: vec![row![1i64, cities[to], regions[to]]],
            deletions: vec![row![1i64, cities[from], regions[from]]],
        });
        maintain_and_check(&mut wh, &batch, &MaintainOptions::default());
    }
}
