//! Schemas: ordered, named, typed column lists.

use std::collections::HashMap;
use std::fmt;

use crate::datatype::DataType;
use crate::error::{StorageError, StorageResult};
use crate::row::Row;
use crate::value::Value;

/// A single column definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    /// Column name (unique within a schema).
    pub name: String,
    /// Static type.
    pub datatype: DataType,
    /// Whether NULLs are permitted.
    pub nullable: bool,
}

impl Column {
    /// A non-nullable column.
    pub fn new(name: impl Into<String>, datatype: DataType) -> Self {
        Column {
            name: name.into(),
            datatype,
            nullable: false,
        }
    }

    /// A nullable column.
    pub fn nullable(name: impl Into<String>, datatype: DataType) -> Self {
        Column {
            name: name.into(),
            datatype,
            nullable: true,
        }
    }
}

/// An ordered list of columns with O(1) name lookup.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    columns: Vec<Column>,
    by_name: HashMap<String, usize>,
}

impl Schema {
    /// Builds a schema; panics on duplicate column names (a schema is a
    /// static program artifact, so a duplicate is a programming error).
    pub fn new(columns: Vec<Column>) -> Self {
        let mut by_name = HashMap::with_capacity(columns.len());
        for (i, c) in columns.iter().enumerate() {
            if by_name.insert(c.name.clone(), i).is_some() {
                panic!("duplicate column name `{}` in schema", c.name);
            }
        }
        Schema { columns, by_name }
    }

    /// Number of columns.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// The columns in order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Column position by name.
    pub fn index_of(&self, name: &str) -> StorageResult<usize> {
        self.by_name
            .get(name)
            .copied()
            .ok_or_else(|| StorageError::UnknownColumn(name.to_string()))
    }

    /// Column definition by name.
    pub fn column(&self, name: &str) -> StorageResult<&Column> {
        Ok(&self.columns[self.index_of(name)?])
    }

    /// Column positions for a list of names.
    pub fn indices_of(&self, names: &[&str]) -> StorageResult<Vec<usize>> {
        names.iter().map(|n| self.index_of(n)).collect()
    }

    /// True iff a column with this name exists.
    pub fn contains(&self, name: &str) -> bool {
        self.by_name.contains_key(name)
    }

    /// All column names in order.
    pub fn names(&self) -> Vec<&str> {
        self.columns.iter().map(|c| c.name.as_str()).collect()
    }

    /// Validates a row against this schema: arity, types, nullability.
    pub fn check_row(&self, row: &Row) -> StorageResult<()> {
        if row.arity() != self.arity() {
            return Err(StorageError::ArityMismatch {
                expected: self.arity(),
                actual: row.arity(),
            });
        }
        for (col, val) in self.columns.iter().zip(row.iter()) {
            match val {
                Value::Null => {
                    if !col.nullable {
                        return Err(StorageError::NullViolation(col.name.clone()));
                    }
                }
                v => {
                    let vt = v.data_type().expect("non-null value has a type");
                    if vt != col.datatype {
                        return Err(StorageError::TypeMismatch {
                            column: col.name.clone(),
                            expected: col.datatype.to_string(),
                            actual: vt.to_string(),
                        });
                    }
                }
            }
        }
        Ok(())
    }

    /// A new schema formed by the given column positions (used by project).
    pub fn project(&self, cols: &[usize]) -> Schema {
        Schema::new(cols.iter().map(|&c| self.columns[c].clone()).collect())
    }

    /// A new schema formed by concatenating two schemas, prefixing any
    /// colliding names from `other` with `prefix.` (used by joins).
    pub fn join(&self, other: &Schema, prefix: &str) -> Schema {
        let mut cols = self.columns.clone();
        for c in other.columns() {
            let mut c = c.clone();
            if self.contains(&c.name) {
                c.name = format!("{prefix}.{}", c.name);
            }
            cols.push(c);
        }
        Schema::new(cols)
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, c) in self.columns.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{} {}", c.name, c.datatype)?;
            if c.nullable {
                write!(f, " NULL")?;
            }
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row;

    fn pos_schema() -> Schema {
        Schema::new(vec![
            Column::new("storeID", DataType::Int),
            Column::new("itemID", DataType::Int),
            Column::new("date", DataType::Date),
            Column::nullable("qty", DataType::Int),
            Column::nullable("price", DataType::Float),
        ])
    }

    #[test]
    fn lookup_by_name() {
        let s = pos_schema();
        assert_eq!(s.index_of("date").unwrap(), 2);
        assert_eq!(s.indices_of(&["qty", "storeID"]).unwrap(), vec![3, 0]);
        assert!(s.index_of("nope").is_err());
        assert!(s.contains("price"));
    }

    #[test]
    #[should_panic(expected = "duplicate column")]
    fn duplicate_names_panic() {
        Schema::new(vec![
            Column::new("a", DataType::Int),
            Column::new("a", DataType::Int),
        ]);
    }

    #[test]
    fn check_row_validates() {
        let s = pos_schema();
        let good = Row::new(vec![
            Value::Int(1),
            Value::Int(2),
            Value::Date(crate::value::Date(0)),
            Value::Null,
            Value::Float(9.99),
        ]);
        assert!(s.check_row(&good).is_ok());

        let wrong_arity = row![1i64];
        assert!(matches!(
            s.check_row(&wrong_arity),
            Err(StorageError::ArityMismatch { .. })
        ));

        let null_in_key = Row::new(vec![
            Value::Null,
            Value::Int(2),
            Value::Date(crate::value::Date(0)),
            Value::Int(1),
            Value::Float(1.0),
        ]);
        assert!(matches!(
            s.check_row(&null_in_key),
            Err(StorageError::NullViolation(_))
        ));

        let wrong_type = Row::new(vec![
            Value::str("x"),
            Value::Int(2),
            Value::Date(crate::value::Date(0)),
            Value::Int(1),
            Value::Float(1.0),
        ]);
        assert!(matches!(
            s.check_row(&wrong_type),
            Err(StorageError::TypeMismatch { .. })
        ));
    }

    #[test]
    fn project_and_join() {
        let s = pos_schema();
        let p = s.project(&[0, 2]);
        assert_eq!(p.names(), vec!["storeID", "date"]);

        let dim = Schema::new(vec![
            Column::new("storeID", DataType::Int),
            Column::new("city", DataType::Str),
        ]);
        let j = s.project(&[0, 3]).join(&dim, "stores");
        assert_eq!(j.names(), vec!["storeID", "qty", "stores.storeID", "city"]);
    }
}
