//! The flight-recorder equivalence battery.
//!
//! The journal is only trustworthy if an operator can reconstruct, from
//! the event stream alone, exactly what each maintenance cycle reported
//! at the time — otherwise post-hoc debugging reads fiction. This file
//! pins that contract:
//!
//! * a matrix of seeded mixed fact + dimension cycles at
//!   threads × shards ∈ {1, 4} × {1, 4}, replayed through
//!   [`reconstruct_cycles`], with every reconstructed counter compared
//!   field-for-field against the [`MaintenanceReport`] the cycle
//!   returned;
//! * a proptest over seeds, cycle counts, and scheduling policies
//!   asserting the same equivalence;
//! * the file sink: events written through `attach_file` parse back
//!   byte-equal to the in-memory ring;
//! * failed cycles: the error lands in the stream, the cycle
//!   reconstructs as uncommitted, and the next cycle journals cleanly.

mod common;

use std::time::Duration;

use common::{small_update_batch, small_warehouse};
use cubedelta::core::{MaintainOptions, MaintenancePolicy, Warehouse};
use cubedelta::obs::{parse_journal, reconstruct_cycles, CycleSummary, JournalEvent};
use cubedelta::storage::{row, ChangeBatch, DeltaSet};
use cubedelta::MaintenanceReport;
use proptest::prelude::*;

fn us(d: Duration) -> u64 {
    d.as_micros().min(u64::MAX as u128) as u64
}

/// Mixed batch for sequential cycle `i` (seeded by `seed`): balanced pos
/// updates, with a dimension move riding along every third cycle (store 3
/// bounces between sf and la, both west — city totals move, region
/// totals hold). The move's direction alternates with `i`, so `i` must
/// count this warehouse's cycles 0, 1, 2, … for the deleted dimension
/// row to exist.
fn mixed_batch_seeded(wh: &Warehouse, seed: u64, i: u64) -> ChangeBatch {
    let mut batch = small_update_batch(wh, seed.wrapping_mul(131).wrapping_add(7), 6);
    if i % 3 == 0 {
        let (from, to) = if (i / 3) % 2 == 0 {
            ("sf", "la")
        } else {
            ("la", "sf")
        };
        batch.add(DeltaSet {
            table: "stores".into(),
            insertions: vec![row![3i64, to, "west"]],
            deletions: vec![row![3i64, from, "west"]],
        });
    }
    batch
}

/// [`mixed_batch_seeded`] with the cycle index doubling as the seed.
fn mixed_batch(wh: &Warehouse, i: u64) -> ChangeBatch {
    mixed_batch_seeded(wh, i, i)
}

/// Runs `cycles` seeded maintenance cycles on a fresh small warehouse at
/// the given policy, returning the warehouse and each cycle's
/// (batch rows, report).
fn run_cycles(
    threads: usize,
    shards: usize,
    cycles: u64,
) -> (Warehouse, Vec<(u64, MaintenanceReport)>) {
    let mut wh = small_warehouse();
    wh.set_maintenance_policy(MaintenancePolicy::with_threads(threads).with_shards(shards));
    let mut reports = Vec::with_capacity(cycles as usize);
    for i in 0..cycles {
        let batch = mixed_batch(&wh, i);
        let rows = batch.len() as u64;
        let report = wh.maintain(&batch, &MaintainOptions::default()).unwrap();
        reports.push((rows, report));
    }
    wh.check_consistency().unwrap();
    (wh, reports)
}

/// Field-for-field comparison of a reconstructed cycle against the
/// report the cycle returned at the time.
fn assert_summary_matches(
    summary: &CycleSummary,
    rows: u64,
    report: &MaintenanceReport,
    context: &str,
) {
    assert_eq!(summary.cycle, report.cycle, "{context}: cycle id");
    assert_eq!(summary.rows, rows, "{context}: base-delta rows");
    assert!(summary.committed, "{context}: committed");
    assert_eq!(summary.error, None, "{context}: error");
    assert_eq!(
        summary.propagate_us,
        us(report.propagate_time),
        "{context}: propagate_us"
    );
    assert_eq!(
        summary.apply_base_us,
        us(report.apply_base_time),
        "{context}: apply_base_us"
    );
    assert_eq!(
        summary.refresh_us,
        us(report.refresh_time),
        "{context}: refresh_us"
    );
    assert_eq!(
        summary.per_view.len(),
        report.per_view.len(),
        "{context}: per-view count"
    );
    for (got, want) in summary.per_view.iter().zip(&report.per_view) {
        let ctx = format!("{context}: view `{}`", want.view);
        assert_eq!(got.view, want.view, "{ctx}: name/order");
        assert_eq!(got.source, want.source, "{ctx}: source");
        assert_eq!(got.delta_rows, want.delta_rows as u64, "{ctx}: delta_rows");
        assert_eq!(got.propagate_us, us(want.propagate_time), "{ctx}: propagate_us");
        assert_eq!(got.refresh_us, us(want.refresh_time), "{ctx}: refresh_us");
        assert_eq!(got.inserted, want.refresh.inserted as u64, "{ctx}: inserted");
        assert_eq!(got.deleted, want.refresh.deleted as u64, "{ctx}: deleted");
        assert_eq!(got.updated, want.refresh.updated as u64, "{ctx}: updated");
        assert_eq!(
            got.recomputed,
            want.refresh.recomputed as u64,
            "{ctx}: recomputed"
        );
        assert_eq!(got.skipped, want.refresh.skipped as u64, "{ctx}: skipped");
    }
    // Cycle-level shard totals re-derive exactly from the per-view
    // events.
    let scanned: u64 = summary.per_view.iter().map(|v| v.shard_rows_scanned).sum();
    assert_eq!(
        scanned, report.shard_rows_scanned,
        "{context}: shard rows scanned"
    );
    let merged: u64 = summary.per_view.iter().map(|v| v.shard_merge_us).sum();
    assert_eq!(merged, report.shard_merge_us, "{context}: shard merge time");
    for v in &summary.per_view {
        assert!(
            v.shards == 0 || v.shards == report.shards as u64,
            "{context}: view `{}` claims {} shards, cycle ran {}",
            v.view,
            v.shards,
            report.shards
        );
    }
}

/// Replays the warehouse's journal and matches every committed cycle
/// against its report.
fn assert_journal_matches(wh: &Warehouse, reports: &[(u64, MaintenanceReport)], context: &str) {
    let events = wh.journal().events();
    let summaries = reconstruct_cycles(&events);
    assert_eq!(
        summaries.len(),
        reports.len(),
        "{context}: reconstructed cycle count"
    );
    for (summary, (rows, report)) in summaries.iter().zip(reports) {
        assert_summary_matches(summary, *rows, report, context);
    }
}

/// The acceptance matrix: ≥20 seeded mixed cycles across
/// threads × shards ∈ {1, 4} × {1, 4}, every reconstructed counter equal
/// to its report.
#[test]
fn matrix_replay_matches_reports() {
    for &(threads, shards) in &[(1usize, 1usize), (1, 4), (4, 1), (4, 4)] {
        let (wh, reports) = run_cycles(threads, shards, 6);
        assert_journal_matches(&wh, &reports, &format!("threads={threads} shards={shards}"));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Same equivalence for arbitrary seeds, cycle counts, and policies.
    #[test]
    fn reconstructed_cycles_match_reports(
        seed in 0u64..1_000,
        cycles in 1u64..6,
        threads in prop_oneof![Just(1usize), Just(4usize)],
        shards in prop_oneof![Just(1usize), Just(4usize)],
    ) {
        let mut wh = small_warehouse();
        wh.set_maintenance_policy(
            MaintenancePolicy::with_threads(threads).with_shards(shards),
        );
        let mut reports = Vec::new();
        for i in 0..cycles {
            let batch = mixed_batch_seeded(&wh, seed.wrapping_mul(977).wrapping_add(i), i);
            let rows = batch.len() as u64;
            let report = wh.maintain(&batch, &MaintainOptions::default()).unwrap();
            reports.push((rows, report));
        }
        wh.check_consistency().unwrap();
        assert_journal_matches(&wh, &reports, &format!("seed={seed}"));
    }
}

/// The file sink is a faithful copy of the ring: parsing the sink file
/// yields exactly the in-memory events, and the reconstruction built
/// from the file matches the reports too.
#[test]
fn file_sink_round_trips() {
    let path = std::env::temp_dir().join(format!(
        "cubedelta-journal-replay-{}.jsonl",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&path);
    let mut wh = small_warehouse();
    wh.set_maintenance_policy(MaintenancePolicy::with_threads(2).with_shards(2));
    wh.journal().attach_file(&path).unwrap();
    let mut reports = Vec::new();
    for i in 0..5 {
        let batch = mixed_batch(&wh, i);
        let rows = batch.len() as u64;
        let report = wh.maintain(&batch, &MaintainOptions::default()).unwrap();
        reports.push((rows, report));
    }
    let text = std::fs::read_to_string(&path).unwrap();
    let _ = std::fs::remove_file(&path);
    let from_file = parse_journal(&text).unwrap();
    assert_eq!(from_file, wh.journal().events(), "sink differs from ring");
    let summaries = reconstruct_cycles(&from_file);
    assert_eq!(summaries.len(), reports.len());
    for (summary, (rows, report)) in summaries.iter().zip(&reports) {
        assert_summary_matches(summary, *rows, report, "file sink");
    }
}

/// A failed cycle lands in the stream as `CycleFailed`, reconstructs as
/// uncommitted with the error text, and the next cycle journals under a
/// fresh id.
#[test]
fn failed_cycle_reconstructs_as_uncommitted() {
    let mut wh = small_warehouse();
    // Deleting a row that does not exist drives COUNT(*) negative — the
    // maintenance invariant error.
    let bad = ChangeBatch::single(DeltaSet::deletions(
        "pos",
        vec![row![99i64, 99i64, cubedelta::storage::Date(1), 1i64, 9.9]],
    ));
    let err = wh
        .maintain(&bad, &MaintainOptions::default())
        .expect_err("invariant violation must fail the cycle");

    let good = mixed_batch(&wh, 1);
    let rows = good.len() as u64;
    let report = wh.maintain(&good, &MaintainOptions::default()).unwrap();
    wh.check_consistency().unwrap();

    let events = wh.journal().events();
    assert!(
        events
            .iter()
            .any(|e| matches!(e, JournalEvent::CycleFailed { cycle: 1, .. })),
        "no CycleFailed for cycle 1 in {events:?}"
    );
    let summaries = reconstruct_cycles(&events);
    assert_eq!(summaries.len(), 2);
    assert!(!summaries[0].committed);
    let msg = summaries[0].error.as_deref().unwrap_or_default();
    assert_eq!(msg, err.to_string(), "journaled error text");
    assert_summary_matches(&summaries[1], rows, &report, "cycle after failure");
}
