//! Scalar expressions.

use std::collections::BTreeSet;
use std::fmt;

use cubedelta_storage::{Row, Schema, Value};

use crate::error::{ExprError, ExprResult};

/// Binary arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication — the lattice edge rewrite `SUM(A) → SUM(A · count)`
    /// (§5.1) is built from this.
    Mul,
    /// Division — AVG is rewritten to `SUM/COUNT` (§3.1). Division by zero
    /// yields NULL to keep evaluation total.
    Div,
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
        })
    }
}

/// A scalar expression tree.
///
/// Expressions are built with column *names*, then [`Expr::bind`]-ed against
/// an input [`Schema`], which resolves names to positions. Only bound
/// expressions evaluate.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A named column reference (unbound).
    Column(String),
    /// A positional column reference (produced by `bind`).
    ColumnIdx(usize),
    /// A literal value.
    Literal(Value),
    /// Binary arithmetic.
    Binary {
        /// The operator.
        op: BinOp,
        /// Left operand.
        left: Box<Expr>,
        /// Right operand.
        right: Box<Expr>,
    },
    /// Unary numeric negation (Table 1: prepare-deletions negate SUM/COUNT
    /// sources).
    Neg(Box<Expr>),
    /// `CASE WHEN probe IS NULL THEN when_null ELSE otherwise END` — the
    /// SQL-92 form Table 1 uses for `COUNT(expr)` aggregate sources.
    CaseNull {
        /// The expression tested for NULL.
        probe: Box<Expr>,
        /// Result when `probe` is NULL.
        when_null: Box<Expr>,
        /// Result when `probe` is not NULL.
        otherwise: Box<Expr>,
    },
}

#[allow(clippy::should_implement_trait)] // fluent builders (a.add(b) builds
// an AST node); the std operator traits would obscure that nothing is
// evaluated here.
impl Expr {
    /// A named column reference.
    pub fn col(name: impl Into<String>) -> Expr {
        Expr::Column(name.into())
    }

    /// An integer literal.
    pub fn lit(v: impl Into<Value>) -> Expr {
        Expr::Literal(v.into())
    }

    /// `self + rhs`.
    pub fn add(self, rhs: Expr) -> Expr {
        Expr::Binary {
            op: BinOp::Add,
            left: Box::new(self),
            right: Box::new(rhs),
        }
    }

    /// `self - rhs`.
    pub fn sub(self, rhs: Expr) -> Expr {
        Expr::Binary {
            op: BinOp::Sub,
            left: Box::new(self),
            right: Box::new(rhs),
        }
    }

    /// `self * rhs`.
    pub fn mul(self, rhs: Expr) -> Expr {
        Expr::Binary {
            op: BinOp::Mul,
            left: Box::new(self),
            right: Box::new(rhs),
        }
    }

    /// `self / rhs`.
    pub fn div(self, rhs: Expr) -> Expr {
        Expr::Binary {
            op: BinOp::Div,
            left: Box::new(self),
            right: Box::new(rhs),
        }
    }

    /// `-self`.
    pub fn neg(self) -> Expr {
        Expr::Neg(Box::new(self))
    }

    /// `CASE WHEN self IS NULL THEN when_null ELSE otherwise END`.
    pub fn case_null(self, when_null: Expr, otherwise: Expr) -> Expr {
        Expr::CaseNull {
            probe: Box::new(self),
            when_null: Box::new(when_null),
            otherwise: Box::new(otherwise),
        }
    }

    /// Resolves all column names to positions in `schema`.
    pub fn bind(&self, schema: &Schema) -> ExprResult<Expr> {
        Ok(match self {
            Expr::Column(name) => Expr::ColumnIdx(schema.index_of(name)?),
            Expr::ColumnIdx(i) => Expr::ColumnIdx(*i),
            Expr::Literal(v) => Expr::Literal(v.clone()),
            Expr::Binary { op, left, right } => Expr::Binary {
                op: *op,
                left: Box::new(left.bind(schema)?),
                right: Box::new(right.bind(schema)?),
            },
            Expr::Neg(e) => Expr::Neg(Box::new(e.bind(schema)?)),
            Expr::CaseNull {
                probe,
                when_null,
                otherwise,
            } => Expr::CaseNull {
                probe: Box::new(probe.bind(schema)?),
                when_null: Box::new(when_null.bind(schema)?),
                otherwise: Box::new(otherwise.bind(schema)?),
            },
        })
    }

    /// Evaluates a bound expression against a row.
    pub fn eval(&self, row: &Row) -> ExprResult<Value> {
        Ok(match self {
            Expr::Column(name) => return Err(ExprError::Unbound(name.clone())),
            Expr::ColumnIdx(i) => row[*i].clone(),
            Expr::Literal(v) => v.clone(),
            Expr::Binary { op, left, right } => {
                let l = left.eval(row)?;
                let r = right.eval(row)?;
                match op {
                    BinOp::Add => l.add(&r),
                    BinOp::Sub => l.sub(&r),
                    BinOp::Mul => l.mul(&r),
                    BinOp::Div => match (l.as_f64(), r.as_f64()) {
                        (Some(x), Some(y)) if y != 0.0 => Value::Float(x / y),
                        _ => Value::Null,
                    },
                }
            }
            Expr::Neg(e) => e.eval(row)?.neg(),
            Expr::CaseNull {
                probe,
                when_null,
                otherwise,
            } => {
                if probe.eval(row)?.is_null() {
                    when_null.eval(row)?
                } else {
                    otherwise.eval(row)?
                }
            }
        })
    }

    /// Infers the static result type of this (unbound) expression against an
    /// input schema. Returns `None` when the type cannot be determined
    /// (e.g. a NULL literal).
    ///
    /// Used to derive summary-table column types from aggregate sources.
    pub fn infer_type(&self, schema: &Schema) -> ExprResult<Option<cubedelta_storage::DataType>> {
        use cubedelta_storage::DataType;
        Ok(match self {
            Expr::Column(name) => Some(schema.column(name)?.datatype),
            Expr::ColumnIdx(i) => Some(schema.columns()[*i].datatype),
            Expr::Literal(v) => v.data_type(),
            Expr::Binary { op, left, right } => {
                if *op == BinOp::Div {
                    Some(DataType::Float)
                } else {
                    match (left.infer_type(schema)?, right.infer_type(schema)?) {
                        (Some(DataType::Int), Some(DataType::Int)) => Some(DataType::Int),
                        (Some(a), Some(b)) if a.is_numeric() && b.is_numeric() => {
                            Some(DataType::Float)
                        }
                        _ => None,
                    }
                }
            }
            Expr::Neg(e) => e.infer_type(schema)?,
            Expr::CaseNull {
                when_null,
                otherwise,
                ..
            } => {
                // Either branch can be taken; the type is known only when
                // the branches agree. A literal-NULL branch never produces
                // a (typed) value, so it defers to the other branch; any
                // other unknown poisons the result.
                let is_null_lit =
                    |e: &Expr| matches!(e, Expr::Literal(v) if v.is_null());
                match (when_null.infer_type(schema)?, otherwise.infer_type(schema)?) {
                    (Some(a), Some(b)) if a == b => Some(a),
                    (Some(_), Some(_)) => None,
                    (Some(t), None) if is_null_lit(otherwise) => Some(t),
                    (None, Some(t)) if is_null_lit(when_null) => Some(t),
                    _ => None,
                }
            }
        })
    }

    /// Conservatively decides whether this (unbound) expression can produce
    /// NULL given the input schema's nullability declarations.
    ///
    /// Self-maintainability analysis (§3.1) hinges on this: `SUM(E)` needs a
    /// supporting `COUNT(E)` only "in the presence of nulls".
    pub fn maybe_null(&self, schema: &Schema) -> ExprResult<bool> {
        Ok(match self {
            Expr::Column(name) => schema.column(name)?.nullable,
            Expr::ColumnIdx(i) => schema.columns()[*i].nullable,
            Expr::Literal(v) => v.is_null(),
            Expr::Binary { op, left, right } => {
                // Division can return NULL on a zero divisor regardless of
                // operand nullability.
                *op == BinOp::Div || left.maybe_null(schema)? || right.maybe_null(schema)?
            }
            Expr::Neg(e) => e.maybe_null(schema)?,
            Expr::CaseNull {
                when_null,
                otherwise,
                ..
            } => when_null.maybe_null(schema)? || otherwise.maybe_null(schema)?,
        })
    }

    /// The set of column names this (unbound) expression references.
    ///
    /// The derives relation (§5.1) uses this to decide whether an aggregate
    /// source "is an expression over the group-by attributes of v1".
    pub fn columns(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        self.collect_columns(&mut out);
        out
    }

    fn collect_columns(&self, out: &mut BTreeSet<String>) {
        match self {
            Expr::Column(name) => {
                out.insert(name.clone());
            }
            Expr::ColumnIdx(_) | Expr::Literal(_) => {}
            Expr::Binary { left, right, .. } => {
                left.collect_columns(out);
                right.collect_columns(out);
            }
            Expr::Neg(e) => e.collect_columns(out),
            Expr::CaseNull {
                probe,
                when_null,
                otherwise,
            } => {
                probe.collect_columns(out);
                when_null.collect_columns(out);
                otherwise.collect_columns(out);
            }
        }
    }

    /// Renames every column reference via `f` (used when re-rooting an
    /// expression onto a parent view's output schema).
    pub fn rename_columns(&self, f: &dyn Fn(&str) -> String) -> Expr {
        match self {
            Expr::Column(name) => Expr::Column(f(name)),
            Expr::ColumnIdx(i) => Expr::ColumnIdx(*i),
            Expr::Literal(v) => Expr::Literal(v.clone()),
            Expr::Binary { op, left, right } => Expr::Binary {
                op: *op,
                left: Box::new(left.rename_columns(f)),
                right: Box::new(right.rename_columns(f)),
            },
            Expr::Neg(e) => Expr::Neg(Box::new(e.rename_columns(f))),
            Expr::CaseNull {
                probe,
                when_null,
                otherwise,
            } => Expr::CaseNull {
                probe: Box::new(probe.rename_columns(f)),
                when_null: Box::new(when_null.rename_columns(f)),
                otherwise: Box::new(otherwise.rename_columns(f)),
            },
        }
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Column(name) => write!(f, "{name}"),
            Expr::ColumnIdx(i) => write!(f, "${i}"),
            // Literals render in SQL-parseable form: strings quoted, dates
            // with the DATE keyword — so a displayed definition re-parses.
            Expr::Literal(Value::Str(s)) => write!(f, "'{}'", s.replace('\'', "''")),
            Expr::Literal(Value::Date(d)) => write!(f, "DATE '{d}'"),
            Expr::Literal(v) => write!(f, "{v}"),
            Expr::Binary { op, left, right } => write!(f, "({left} {op} {right})"),
            Expr::Neg(e) => write!(f, "(-{e})"),
            Expr::CaseNull {
                probe,
                when_null,
                otherwise,
            } => write!(
                f,
                "CASE WHEN {probe} IS NULL THEN {when_null} ELSE {otherwise} END"
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cubedelta_storage::{row, Column, DataType};

    fn schema() -> Schema {
        Schema::new(vec![
            Column::new("a", DataType::Int),
            Column::nullable("b", DataType::Int),
            Column::new("c", DataType::Float),
        ])
    }

    #[test]
    fn bind_and_eval_arithmetic() {
        let e = Expr::col("a").mul(Expr::col("c")).add(Expr::lit(1i64));
        let bound = e.bind(&schema()).unwrap();
        let v = bound.eval(&row![2i64, 5i64, 1.5]).unwrap();
        assert_eq!(v, Value::Float(4.0));
    }

    #[test]
    fn unbound_eval_errors() {
        let e = Expr::col("a");
        assert!(matches!(e.eval(&row![1i64]), Err(ExprError::Unbound(_))));
    }

    #[test]
    fn bind_unknown_column_errors() {
        assert!(matches!(
            Expr::col("nope").bind(&schema()),
            Err(ExprError::UnknownColumn(_))
        ));
    }

    #[test]
    fn negation_for_prepare_deletions() {
        // Table 1: SUM(expr) source for deletions is -expr.
        let e = Expr::col("a").neg().bind(&schema()).unwrap();
        assert_eq!(e.eval(&row![7i64, 0i64, 0.0]).unwrap(), Value::Int(-7));
    }

    #[test]
    fn case_null_for_count_expr() {
        // Table 1: COUNT(expr) insertion source:
        //   CASE WHEN expr IS NULL THEN 0 ELSE 1 END
        let e = Expr::col("b")
            .case_null(Expr::lit(0i64), Expr::lit(1i64))
            .bind(&schema())
            .unwrap();
        assert_eq!(
            e.eval(&Row::new(vec![Value::Int(1), Value::Null, Value::Float(0.0)]))
                .unwrap(),
            Value::Int(0)
        );
        assert_eq!(e.eval(&row![1i64, 5i64, 0.0]).unwrap(), Value::Int(1));
    }

    #[test]
    fn division_yields_float_and_null_on_zero() {
        let e = Expr::col("a").div(Expr::col("b")).bind(&schema()).unwrap();
        assert_eq!(e.eval(&row![6i64, 4i64, 0.0]).unwrap(), Value::Float(1.5));
        assert!(e.eval(&row![6i64, 0i64, 0.0]).unwrap().is_null());
    }

    #[test]
    fn null_propagates_through_arithmetic() {
        let e = Expr::col("b").add(Expr::lit(1i64)).bind(&schema()).unwrap();
        assert!(e
            .eval(&Row::new(vec![Value::Int(1), Value::Null, Value::Float(0.0)]))
            .unwrap()
            .is_null());
    }

    #[test]
    fn columns_collects_references() {
        let e = Expr::col("a")
            .mul(Expr::col("c"))
            .add(Expr::col("a").case_null(Expr::lit(0i64), Expr::col("b")));
        let cols = e.columns();
        assert_eq!(
            cols.into_iter().collect::<Vec<_>>(),
            vec!["a".to_string(), "b".to_string(), "c".to_string()]
        );
    }

    #[test]
    fn rename_columns_rewrites() {
        let e = Expr::col("a").add(Expr::col("b"));
        let renamed = e.rename_columns(&|c| format!("v1.{c}"));
        assert_eq!(
            renamed.columns().into_iter().collect::<Vec<_>>(),
            vec!["v1.a".to_string(), "v1.b".to_string()]
        );
    }

    #[test]
    fn infer_type_follows_coercion() {
        use cubedelta_storage::DataType;
        let s = schema();
        assert_eq!(
            Expr::col("a").infer_type(&s).unwrap(),
            Some(DataType::Int)
        );
        assert_eq!(
            Expr::col("a").add(Expr::col("b")).infer_type(&s).unwrap(),
            Some(DataType::Int)
        );
        assert_eq!(
            Expr::col("a").mul(Expr::col("c")).infer_type(&s).unwrap(),
            Some(DataType::Float)
        );
        assert_eq!(
            Expr::col("a").div(Expr::col("b")).infer_type(&s).unwrap(),
            Some(DataType::Float)
        );
        assert_eq!(
            Expr::col("a").neg().infer_type(&s).unwrap(),
            Some(DataType::Int)
        );
        assert_eq!(Expr::lit(Value::Null).infer_type(&s).unwrap(), None);
        assert!(Expr::col("nope").infer_type(&s).is_err());
    }

    #[test]
    fn maybe_null_analysis() {
        let s = schema();
        assert!(!Expr::col("a").maybe_null(&s).unwrap());
        assert!(Expr::col("b").maybe_null(&s).unwrap());
        assert!(Expr::col("a").add(Expr::col("b")).maybe_null(&s).unwrap());
        // Division may null out on zero divisors even with non-null inputs.
        assert!(Expr::col("a").div(Expr::col("a")).maybe_null(&s).unwrap());
        // CASE that maps NULL to 0 and otherwise to 1 can never be NULL.
        assert!(!Expr::col("b")
            .case_null(Expr::lit(0i64), Expr::lit(1i64))
            .maybe_null(&s)
            .unwrap());
    }

    #[test]
    fn display_reads_like_sql() {
        let e = Expr::col("qty").neg();
        assert_eq!(e.to_string(), "(-qty)");
        let c = Expr::col("b").case_null(Expr::lit(0i64), Expr::lit(1i64));
        assert_eq!(c.to_string(), "CASE WHEN b IS NULL THEN 0 ELSE 1 END");
    }
}
