//! A vendored, offline subset of the `criterion` benchmarking API.
//!
//! The build environment has no access to crates.io, so the slice of
//! criterion this workspace's `benches/` use is implemented directly:
//! [`Criterion::benchmark_group`], group configuration
//! (`sample_size`/`warm_up_time`/`measurement_time`),
//! [`BenchmarkGroup::bench_function`] / [`BenchmarkGroup::bench_with_input`],
//! [`Bencher::iter`], [`BenchmarkId`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Measurement model: after a wall-clock warm-up, iterations are batched
//! so each sample lasts roughly `measurement_time / sample_size`, then
//! min / median / mean per-iteration times are reported on stdout —
//! the same `time: [low mid high]` shape criterion prints. There is no
//! statistical regression analysis and nothing is written to
//! `target/criterion`. When invoked with `--test` (as `cargo test
//! --benches` does), each benchmark runs exactly one iteration.

use std::time::{Duration, Instant};

/// Prevents the optimizer from discarding a value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level benchmark driver handed to each `criterion_group!` target.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion { test_mode }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== {name} ==");
        let test_mode = self.test_mode;
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 20,
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_millis(1500),
            test_mode,
        }
    }

    /// A single benchmark outside any group.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group("default");
        group.bench_function(name.into(), f);
        group.finish();
        self
    }
}

/// A `group/parameter` benchmark label.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Label `name/parameter`.
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }
}

impl From<BenchmarkId> for String {
    fn from(id: BenchmarkId) -> String {
        id.id
    }
}

/// A group of benchmarks sharing timing configuration.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
    test_mode: bool,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Wall-clock warm-up before sampling.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Total wall-clock budget for the timed samples.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Runs one benchmark; `f` receives a [`Bencher`] and calls
    /// [`Bencher::iter`] with the code under test.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            warm_up: self.warm_up,
            measurement: self.measurement,
            sample_size: self.sample_size,
            test_mode: self.test_mode,
            samples_ns: Vec::new(),
        };
        f(&mut bencher);
        bencher.report(&self.name, &id);
        self
    }

    /// Runs one parameterized benchmark.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (separator line only; no report files).
    pub fn finish(self) {}
}

/// Timing harness passed to each benchmark closure.
pub struct Bencher {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
    test_mode: bool,
    samples_ns: Vec<f64>,
}

impl Bencher {
    /// Times repeated calls of `f`.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        if self.test_mode {
            black_box(f());
            return;
        }

        // Warm up and estimate the per-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up || warm_iters == 0 {
            black_box(f());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;

        // Batch iterations so each sample is ~ measurement / sample_size.
        let sample_budget = self.measurement.as_secs_f64() / self.sample_size as f64;
        let batch = ((sample_budget / per_iter.max(1e-9)) as u64).clamp(1, 1_000_000);

        self.samples_ns.clear();
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let elapsed = t.elapsed().as_nanos() as f64;
            self.samples_ns.push(elapsed / batch as f64);
        }
    }

    fn report(&self, group: &str, id: &str) {
        if self.test_mode {
            println!("{group}/{id}: ok (test mode, 1 iteration)");
            return;
        }
        if self.samples_ns.is_empty() {
            println!("{group}/{id}: no samples (Bencher::iter never called)");
            return;
        }
        let mut sorted = self.samples_ns.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let min = sorted[0];
        let median = sorted[sorted.len() / 2];
        let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
        println!(
            "{group}/{id:<40} time: [{} {} {}]  ({} samples)",
            fmt_ns(min),
            fmt_ns(median),
            fmt_ns(mean),
            sorted.len(),
        );
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Declares a benchmark group function, like criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_harness_runs_and_reports() {
        let mut c = Criterion { test_mode: false };
        let mut group = c.benchmark_group("smoke");
        group
            .sample_size(3)
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(15));
        let mut ran = 0u64;
        group.bench_function("tiny", |b| {
            b.iter(|| {
                ran += 1;
                black_box(ran)
            })
        });
        group.finish();
        assert!(ran > 0);
    }

    #[test]
    fn benchmark_id_formats_as_name_slash_param() {
        let id = BenchmarkId::new("with_lattice", 64);
        assert_eq!(String::from(id), "with_lattice/64");
    }

    #[test]
    fn fmt_ns_scales_units() {
        assert!(fmt_ns(12.0).ends_with("ns"));
        assert!(fmt_ns(12_000.0).ends_with("µs"));
        assert!(fmt_ns(12_000_000.0).ends_with("ms"));
        assert!(fmt_ns(2_500_000_000.0).ends_with('s'));
    }
}
