//! Integration tests for [HRU96] view selection driving real
//! materialization: the greedy picks reduce measured query cost, and the
//! selected subset maintains correctly as a partially-materialized cube.

mod common;

use cubedelta::core::{AggQuery, CubeBudget, CubeSpec, MaintainOptions, Warehouse};
use cubedelta::expr::Expr;
use cubedelta::lattice::{cube_lattice, SelectionProblem};
use cubedelta::query::AggFunc;
use cubedelta::storage::ChangeBatch;
use cubedelta::workload::{retail_catalog, update_generating, WorkloadScale};

fn scale() -> WorkloadScale {
    WorkloadScale {
        stores: 30,
        cities: 10,
        regions: 3,
        items: 100,
        categories: 8,
        dates: 12,
        pos_rows: 5_000,
        seed: 11,
    }
}

fn cube_spec(budget: CubeBudget) -> CubeSpec {
    CubeSpec::new("c", "pos")
        .dimension("storeID")
        .dimension("category")
        .dimension("date")
        .measure(AggFunc::CountStar, "cnt")
        .measure(AggFunc::Sum(Expr::col("qty")), "total")
        .budget(budget)
}

/// Measured cost of a set of probe queries = rows scanned in the chosen
/// sources (the §3.2 linear cost model, on real tables).
fn probe_cost(wh: &Warehouse) -> usize {
    let probes = [
        vec!["storeID"],
        vec!["category"],
        vec!["date"],
        vec!["storeID", "date"],
        vec!["category", "date"],
        vec![],
    ];
    probes
        .iter()
        .map(|group| {
            let q = AggQuery::over("pos")
                .group_by(group.clone())
                .aggregate(AggFunc::Sum(Expr::col("qty")), "total");
            wh.answer(&q).unwrap().rows_scanned
        })
        .sum()
}

#[test]
fn greedy_picks_lower_measured_query_cost() {
    let (cat, _) = retail_catalog(scale());
    // Budget 0: only the forced top view.
    let mut top_only = Warehouse::from_catalog(cat.clone());
    top_only.create_cube(&cube_spec(CubeBudget::TopK(0))).unwrap();
    // Budget 3: three greedy picks on top.
    let mut picked = Warehouse::from_catalog(cat.clone());
    picked.create_cube(&cube_spec(CubeBudget::TopK(3))).unwrap();
    // Full cube.
    let mut full = Warehouse::from_catalog(cat);
    full.create_cube(&cube_spec(CubeBudget::All)).unwrap();

    let (c_top, c_picked, c_full) = (probe_cost(&top_only), probe_cost(&picked), probe_cost(&full));
    assert!(
        c_picked < c_top,
        "3 greedy picks must beat top-only: {c_picked} vs {c_top}"
    );
    assert!(
        c_full <= c_picked,
        "full cube is at least as cheap: {c_full} vs {c_picked}"
    );
}

#[test]
fn selected_subset_maintains_like_the_full_cube() {
    let (cat, params) = retail_catalog(scale());
    let mut partial = Warehouse::from_catalog(cat.clone());
    partial.create_cube(&cube_spec(CubeBudget::TopK(3))).unwrap();
    let mut full = Warehouse::from_catalog(cat);
    full.create_cube(&cube_spec(CubeBudget::All)).unwrap();

    for night in 0..3u64 {
        let batch = ChangeBatch::single(update_generating(
            partial.catalog(),
            &params,
            400,
            night + 1,
        ));
        partial.maintain(&batch, &MaintainOptions::default()).unwrap();
        full.maintain(&batch, &MaintainOptions::default()).unwrap();
        partial.check_consistency().unwrap();
        full.check_consistency().unwrap();
    }
    // Views present in both warehouses hold identical contents.
    for v in partial.views() {
        assert_eq!(
            partial.catalog().table(&v.def.name).unwrap().sorted_rows(),
            full.catalog().table(&v.def.name).unwrap().sorted_rows(),
            "{} differs between partial and full cubes",
            v.def.name
        );
    }
}

#[test]
fn selection_problem_benefits_match_real_sizes() {
    // Build the selection problem from *actual* materialized sizes and
    // check monotonicity: the model's total cost with all views chosen
    // equals the sum of real sizes.
    let (cat, _) = retail_catalog(scale());
    let mut wh = Warehouse::from_catalog(cat);
    wh.create_cube(&cube_spec(CubeBudget::All)).unwrap();

    let lat = cube_lattice(&["storeID", "category", "date"]);
    let spec = cube_spec(CubeBudget::All);
    let sizes: Vec<u64> = lat
        .nodes()
        .iter()
        .map(|attrs| {
            let names: Vec<&str> = attrs.iter().map(String::as_str).collect();
            // Restore spec order for the view name.
            let ordered: Vec<&str> = ["storeID", "category", "date"]
                .iter()
                .copied()
                .filter(|d| names.contains(d))
                .collect();
            wh.catalog()
                .table(&spec.view_name(&ordered))
                .unwrap()
                .len()
                .max(1) as u64
        })
        .collect();
    let min_cost: u64 = sizes.iter().sum();
    let problem = SelectionProblem::new(&lat, sizes).unwrap();
    let all = problem.select_k(usize::MAX);
    assert_eq!(all.total_cost, min_cost);
}
