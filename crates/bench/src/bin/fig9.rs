//! One-shot harness regenerating Figure 9 of the paper: elapsed time for
//! maintaining all four summary tables, comparing the summary-delta method
//! (with and without the lattice) against rematerialization.
//!
//! ```sh
//! cargo run --release -p cubedelta-bench --bin fig9 -- all
//! cargo run --release -p cubedelta-bench --bin fig9 -- a        # one panel
//! cargo run --release -p cubedelta-bench --bin fig9 -- all --quick
//! ```
//!
//! Panels, as in the paper:
//!   (a) elapsed vs change-set size (1k–10k), pos = 500k, update-generating
//!   (b) elapsed vs pos size (100k–500k), changes = 10k, update-generating
//!   (c) as (a), insertion-generating
//!   (d) as (b), insertion-generating
//!
//! Series: Propagate (lattice), Summary Delta Maint. (propagate+refresh),
//! Rematerialize (lattice cascade), Propagate (w/o lattice).
//!
//! Besides the human-readable tables, every measured point is collected
//! into `BENCH_fig9.json` (written to the working directory): per-phase
//! timings in microseconds, per-view refresh actions, and the full
//! operator-counter set from the summary-delta run — the machine-readable
//! companion to `EXPERIMENTS.md`.
//!
//! The summary-delta run uses the parallel propagate + refresh schedulers
//! at the `CUBEDELTA_THREADS` thread count (minimum 2, so the telemetry
//! always carries a real multi-thread run) and additionally measures a
//! single-thread cycle over identical state (`propagate_1thread_us`,
//! `refresh_1thread_us`) for the scheduler comparison. `host_parallelism`
//! records how many cores the runs actually had, and `speedup_valid` is
//! `false` on a single-core host, where the multi-thread and single-thread
//! numbers time-slice the same CPU and their ratio is meaningless.

use cubedelta_bench::{
    build_warehouse, concurrency_gate, host_parallelism, insertion_batch, run_strategy,
    run_summary_delta_sharded, run_summary_delta_storage, run_summary_delta_threaded, secs,
    update_batch, Strategy,
};
use cubedelta_core::{MaintenancePolicy, StorageMode, Warehouse};
use cubedelta_obs::json::JsonValue;
use cubedelta_storage::ChangeBatch;
use cubedelta_workload::RetailParams;

#[derive(Clone, Copy, PartialEq)]
enum ChangeKind {
    Update,
    Insertion,
}

impl ChangeKind {
    fn label(self) -> &'static str {
        match self {
            ChangeKind::Update => "update-generating",
            ChangeKind::Insertion => "insertion-generating",
        }
    }
}

fn make_batch(
    kind: ChangeKind,
    wh: &Warehouse,
    params: &RetailParams,
    size: usize,
    seed: u64,
) -> ChangeBatch {
    match kind {
        ChangeKind::Update => update_batch(wh, params, size, seed),
        ChangeKind::Insertion => insertion_batch(params, size, seed),
    }
}

fn header() {
    println!(
        "{:>10} {:>10} | {:>10} {:>10} {:>12} {:>14} {:>16}",
        "pos",
        "changes",
        "propagate",
        "sd-maint",
        "rematerial.",
        "prop-no-lattice",
        "refresh-detail"
    );
}

fn run_point(
    wh: &Warehouse,
    params: &RetailParams,
    kind: ChangeKind,
    size: usize,
    seed: u64,
) -> JsonValue {
    let batch = make_batch(kind, wh, params, size, seed);

    // Durability cost of this change set: the bytes a sealed batch of this
    // shape occupies on the commitlog and what encoding it costs, so log
    // volume per Figure-9 point can be read straight from the JSON. The
    // round-trip doubles as a full-size encode/decode equivalence check.
    let enc_t = std::time::Instant::now();
    let encoded = cubedelta_storage::encode_batch(&batch);
    let log_encode_us = enc_t.elapsed().as_micros() as u64;
    let decoded = cubedelta_storage::decode_batch(&encoded).expect("bench batch must round-trip");
    assert_eq!(
        cubedelta_storage::encode_batch(&decoded),
        encoded,
        "commitlog encoding is lossy on a {size}-row {} batch",
        kind.label()
    );
    let log_frame_bytes = encoded.len();

    // The parallel propagate scheduler at the policy thread count (forced to
    // at least 2 so the JSON always records a genuine multi-thread run), and
    // the single-thread executor on identical state for comparison.
    let env_policy = MaintenancePolicy::from_env();
    let threads = env_policy.threads.max(2);
    let shards = env_policy.shards.max(1);
    let (sd1, _, _) = run_summary_delta_threaded(wh, &batch, 1);
    let (sd, report, done_sd) = run_summary_delta_threaded(wh, &batch, threads);
    let (nolat, _) = run_strategy(wh, &batch, Strategy::SummaryDeltaNoLattice);
    let (remat, done_remat) = run_strategy(wh, &batch, Strategy::Rematerialize);

    // Cross-shard propagate over identical state when `CUBEDELTA_SHARDS`
    // asks for it; the refreshed tables must be byte-identical to the
    // unsharded run (the sharding equivalence contract).
    let sharded = (shards > 1).then(|| {
        let (t, r, done) = run_summary_delta_sharded(wh, &batch, threads, shards);
        for def in cubedelta_bench::figure1_defs() {
            assert_eq!(
                done_sd.catalog().table(&def.name).unwrap().to_rows(),
                done.catalog().table(&def.name).unwrap().to_rows(),
                "sharded maintenance diverged on {}",
                def.name
            );
        }
        (t, r)
    });

    // Columnar-engine propagate over identical state: always measured,
    // because row-vs-columnar at the same thread count compares fairly
    // even on a single-core host. The refreshed tables must be
    // byte-identical to the row-engine run (the storage equivalence
    // contract, mirroring the sharding one above).
    let (col, col_report, done_col) =
        run_summary_delta_storage(wh, &batch, threads, StorageMode::Columnar);
    for def in cubedelta_bench::figure1_defs() {
        assert_eq!(
            done_sd.catalog().table(&def.name).unwrap().to_rows(),
            done_col.catalog().table(&def.name).unwrap().to_rows(),
            "columnar maintenance diverged on {}",
            def.name
        );
    }

    // Sanity: both strategies leave identical summary tables.
    for def in cubedelta_bench::figure1_defs() {
        assert_eq!(
            done_sd.catalog().table(&def.name).unwrap().len(),
            done_remat.catalog().table(&def.name).unwrap().len(),
            "strategies disagree on {}",
            def.name
        );
    }

    println!(
        "{:>10} {:>10} | {:>10} {:>10} {:>12} {:>14} {:>16}",
        wh.catalog().table("pos").unwrap().len(),
        size,
        secs(sd.propagate),
        secs(sd.total),
        secs(remat.total),
        secs(nolat.propagate),
        format!("refresh={}", secs(sd.refresh).trim()),
    );

    let mut point = JsonValue::object([
        (
            "pos_rows",
            JsonValue::from(wh.catalog().table("pos").unwrap().len()),
        ),
        ("change_rows", JsonValue::from(size)),
        ("change_kind", JsonValue::from(kind.label())),
        ("seed", JsonValue::from(seed)),
        ("threads", JsonValue::from(threads)),
        ("shards", JsonValue::from(shards)),
        (
            "summary_delta_total_us",
            JsonValue::from(sd.total.as_micros() as u64),
        ),
        (
            "propagate_us",
            JsonValue::from(sd.propagate.as_micros() as u64),
        ),
        (
            "propagate_1thread_us",
            JsonValue::from(sd1.propagate.as_micros() as u64),
        ),
        (
            "refresh_us",
            JsonValue::from(sd.refresh.as_micros() as u64),
        ),
        (
            "refresh_1thread_us",
            JsonValue::from(sd1.refresh.as_micros() as u64),
        ),
        (
            "no_lattice_propagate_us",
            JsonValue::from(nolat.propagate.as_micros() as u64),
        ),
        (
            "rematerialize_total_us",
            JsonValue::from(remat.total.as_micros() as u64),
        ),
        ("log_frame_bytes", JsonValue::from(log_frame_bytes)),
        ("log_encode_us", JsonValue::from(log_encode_us)),
        (
            "propagate_columnar_us",
            JsonValue::from(col.propagate.as_micros() as u64),
        ),
        (
            "summary_delta_columnar_total_us",
            JsonValue::from(col.total.as_micros() as u64),
        ),
        // Per-phase timings, cycle-wide operator counters, per-view detail.
        ("summary_delta_report", report.to_json()),
        // The same cycle through the vectorized columnar engine:
        // `storage_mode`, `chunks_scanned`, and `vectorized_rows` live here.
        ("columnar_report", col_report.to_json()),
    ]);
    if let Some((st, sr)) = sharded {
        point.push_field(
            "propagate_sharded_us",
            JsonValue::from(st.propagate.as_micros() as u64),
        );
        point.push_field(
            "summary_delta_sharded_total_us",
            JsonValue::from(st.total.as_micros() as u64),
        );
        point.push_field("sharded_report", sr.to_json());
    }

    // Flight-recorder cross-check: the cycle reconstructed from the
    // journal's event stream must agree with the report the cycle
    // returned — a bench-time replay of the journal equivalence
    // contract over the full-size workload.
    let cycle = cubedelta_obs::reconstruct_cycles(&done_sd.journal().events())
        .into_iter()
        .find(|c| c.cycle == report.cycle)
        .expect("measured cycle missing from the flight recorder");
    let report_delta_rows: u64 = report.per_view.iter().map(|v| v.delta_rows as u64).sum();
    assert_eq!(
        cycle.total_delta_rows(),
        report_delta_rows,
        "flight recorder disagrees with the maintenance report"
    );
    point.push_field("cycle", JsonValue::from(report.cycle));
    point.push_field(
        "journal_delta_rows",
        JsonValue::from(cycle.total_delta_rows()),
    );
    point.push_field(
        "journal_refresh_rows",
        JsonValue::from(cycle.total_refresh_rows()),
    );
    point
}

fn panel_change_sweep(
    kind: ChangeKind,
    pos_rows: usize,
    sizes: &[usize],
    title: &str,
) -> JsonValue {
    println!("\n== {title} (pos = {pos_rows}) ==");
    println!("(all times in seconds)");
    let (wh, params) = build_warehouse(pos_rows);
    header();
    let points = sizes
        .iter()
        .enumerate()
        .map(|(i, &size)| run_point(&wh, &params, kind, size, 100 + i as u64));
    JsonValue::array(points.collect::<Vec<_>>())
}

fn panel_pos_sweep(
    kind: ChangeKind,
    change_size: usize,
    pos_sizes: &[usize],
    title: &str,
) -> JsonValue {
    println!("\n== {title} (changes = {change_size}) ==");
    println!("(all times in seconds)");
    header();
    let points = pos_sizes.iter().enumerate().map(|(i, &pos_rows)| {
        let (wh, params) = build_warehouse(pos_rows);
        run_point(&wh, &params, kind, change_size, 200 + i as u64)
    });
    JsonValue::array(points.collect::<Vec<_>>())
}

/// The scaled-workload point: `pos` at 10× the §6 base size (1M rows,
/// update-generating changes), row vs columnar engine at the same thread
/// count. Much lighter than `run_point` — no rematerialize or no-lattice
/// baselines, which would dominate the runtime at this scale — but the
/// byte-identity assertion still runs.
fn panel_scaled(kind: ChangeKind, pos_rows: usize, change_size: usize) -> JsonValue {
    println!("\n== Scaled workload (pos = {pos_rows}): row vs columnar engine ==");
    println!("(all times in seconds)");
    let (wh, params) = build_warehouse(pos_rows);
    let batch = make_batch(kind, &wh, &params, change_size, 300);
    let threads = MaintenancePolicy::from_env().threads.max(2);
    let (row_t, row_report, done_row) =
        run_summary_delta_storage(&wh, &batch, threads, StorageMode::Row);
    let (col_t, col_report, done_col) =
        run_summary_delta_storage(&wh, &batch, threads, StorageMode::Columnar);
    for def in cubedelta_bench::figure1_defs() {
        assert_eq!(
            done_row.catalog().table(&def.name).unwrap().to_rows(),
            done_col.catalog().table(&def.name).unwrap().to_rows(),
            "columnar maintenance diverged on {} at scale",
            def.name
        );
    }
    println!(
        "{:>10} {:>10} | row: propagate {} total {} | columnar: propagate {} total {}",
        pos_rows,
        change_size,
        secs(row_t.propagate).trim(),
        secs(row_t.total).trim(),
        secs(col_t.propagate).trim(),
        secs(col_t.total).trim(),
    );
    JsonValue::object([
        ("pos_rows", JsonValue::from(pos_rows)),
        ("change_rows", JsonValue::from(change_size)),
        ("change_kind", JsonValue::from(kind.label())),
        ("threads", JsonValue::from(threads)),
        (
            "row_propagate_us",
            JsonValue::from(row_t.propagate.as_micros() as u64),
        ),
        ("row_total_us", JsonValue::from(row_t.total.as_micros() as u64)),
        (
            "columnar_propagate_us",
            JsonValue::from(col_t.propagate.as_micros() as u64),
        ),
        (
            "columnar_total_us",
            JsonValue::from(col_t.total.as_micros() as u64),
        ),
        ("row_report", row_report.to_json()),
        ("columnar_report", col_report.to_json()),
    ])
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let which = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .map(String::as_str)
        .unwrap_or("all");

    let change_sizes: Vec<usize> = if quick {
        vec![1_000, 5_000, 10_000]
    } else {
        (1..=10).map(|k| k * 1_000).collect()
    };
    let pos_sizes: Vec<usize> = if quick {
        vec![100_000, 300_000, 500_000]
    } else {
        vec![100_000, 150_000, 200_000, 250_000, 300_000, 350_000, 400_000, 450_000, 500_000]
    };
    let big_pos = 500_000;

    let mut panels = JsonValue::Object(Vec::new());
    if which == "a" || which == "all" {
        panels.push_field(
            "a",
            panel_change_sweep(
                ChangeKind::Update,
                big_pos,
                &change_sizes,
                "Figure 9(a): varying change size, update-generating changes",
            ),
        );
    }
    if which == "b" || which == "all" {
        panels.push_field(
            "b",
            panel_pos_sweep(
                ChangeKind::Update,
                10_000,
                &pos_sizes,
                "Figure 9(b): varying pos size, update-generating changes",
            ),
        );
    }
    if which == "c" || which == "all" {
        panels.push_field(
            "c",
            panel_change_sweep(
                ChangeKind::Insertion,
                big_pos,
                &change_sizes,
                "Figure 9(c): varying change size, insertion-generating changes",
            ),
        );
    }
    if which == "d" || which == "all" {
        panels.push_field(
            "d",
            panel_pos_sweep(
                ChangeKind::Insertion,
                10_000,
                &pos_sizes,
                "Figure 9(d): varying pos size, insertion-generating changes",
            ),
        );
    }
    if which == "scaled" || which == "all" {
        panels.push_field(
            "scaled",
            panel_scaled(ChangeKind::Update, 1_000_000, 10_000),
        );
    }

    let host = host_parallelism();
    let env_policy = MaintenancePolicy::from_env();
    let shards = env_policy.shards.max(1);
    let telemetry = JsonValue::object([
        (
            "benchmark",
            JsonValue::from("fig9: summary-delta maintenance vs rematerialization"),
        ),
        (
            "paper",
            JsonValue::from(
                "Maintenance of Data Cubes and Summary Tables in a Warehouse (SIGMOD 1997)",
            ),
        ),
        ("quick", JsonValue::from(quick)),
        ("threads", JsonValue::from(env_policy.threads.max(2))),
        ("shards", JsonValue::from(shards)),
        ("host_parallelism", JsonValue::from(host)),
        // On a single-core host the multi-thread and single-thread runs
        // time-slice the same CPU, so `*_us` vs `*_1thread_us` ratios say
        // nothing about the scheduler. Downstream readers must not report
        // ≈1.0× as a regression when this flag is false.
        ("speedup_valid", JsonValue::from(concurrency_gate(host))),
        // Same gate for the cross-shard propagate comparison: only
        // meaningful when shards were requested *and* the host can run
        // shard workers concurrently.
        (
            "shard_speedup_valid",
            JsonValue::from(shards > 1 && concurrency_gate(host)),
        ),
        // The storage engine the env policy selects for real deployments,
        // and the row-vs-columnar comparison embedded in every point. That
        // ratio holds the thread count fixed, so it is meaningful even on
        // a single-core host — unlike the thread/shard scaling ratios.
        (
            "storage_mode",
            JsonValue::from(env_policy.storage.as_str().to_string()),
        ),
        ("columnar_speedup_valid", JsonValue::from(true)),
        ("panels", panels),
    ]);
    let out = "BENCH_fig9.json";
    match std::fs::write(out, telemetry.render_pretty() + "\n") {
        Ok(()) => println!("\nwrote {out}"),
        Err(e) => eprintln!("\nfailed to write {out}: {e}"),
    }
}
