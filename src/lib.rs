//! # CubeDelta
//!
//! A from-scratch Rust reproduction of **"Maintenance of Data Cubes and
//! Summary Tables in a Warehouse"** (Mumick, Quass & Mumick, SIGMOD 1997):
//! the *summary-delta table method* for incrementally maintaining
//! materialized aggregate views, the propagate/refresh split, and the
//! V-/D-lattice machinery for maintaining many summary tables together.
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`storage`] — in-memory relational substrate (values, multiset tables,
//!   hash indexes, catalog, deferred change sets).
//! * [`expr`] — scalar expressions and predicates.
//! * [`query`] — relational operators and aggregate accumulators.
//! * [`view`] — generalized cube views, self-maintainability augmentation,
//!   summary tables.
//! * [`lattice`] — cube lattices, dimension hierarchies, the derives
//!   relation, V-/D-lattices, lattice-friendly rewriting.
//! * [`core`] — the summary-delta method itself: prepare, propagate,
//!   refresh, multi-view plans, baselines, and the [`Warehouse`] facade.
//! * [`workload`] — the synthetic retail workload of the paper's §6 study.
//! * [`obs`] — observability: operator counters, a metrics registry,
//!   JSON report serialization, and feature-gated tracing spans.
//!
//! ## Quickstart
//!
//! ```
//! use cubedelta::{MaintainOptions, Warehouse};
//! use cubedelta::expr::Expr;
//! use cubedelta::query::AggFunc;
//! use cubedelta::storage::{row, ChangeBatch, DeltaSet};
//! use cubedelta::view::SummaryViewDef;
//! use cubedelta::workload::retail_catalog_small;
//!
//! // A retail warehouse with the paper's pos/stores/items schema.
//! let mut wh = Warehouse::from_catalog(retail_catalog_small());
//!
//! // Figure 1's SID_sales summary table.
//! wh.create_summary_table(
//!     &SummaryViewDef::builder("SID_sales", "pos")
//!         .group_by(["storeID", "itemID", "date"])
//!         .aggregate(AggFunc::CountStar, "TotalCount")
//!         .aggregate(AggFunc::Sum(Expr::col("qty")), "TotalQuantity")
//!         .build(),
//! )
//! .unwrap();
//!
//! // A nightly batch: propagate, apply, refresh.
//! let batch = ChangeBatch::single(DeltaSet::insertions(
//!     "pos",
//!     vec![row![1i64, 10i64, cubedelta::storage::Date(10000), 2i64, 1.0]],
//! ));
//! wh.maintain(&batch, &MaintainOptions::default()).unwrap();
//! wh.check_consistency().unwrap();
//! ```

pub mod durability;
pub mod persist;

pub use cubedelta_core as core;
pub use cubedelta_expr as expr;
pub use cubedelta_lattice as lattice;
pub use cubedelta_obs as obs;
pub use cubedelta_query as query;
pub use cubedelta_sql as sql;
pub use cubedelta_storage as storage;
pub use cubedelta_view as view;
pub use cubedelta_workload as workload;

pub use cubedelta_core::{
    AggQuery, BatchPolicy, CubeBudget, CubeSpec, ExecutionMetrics, Health, Journal, JournalEvent,
    LatticeSnapshot, MaintainOptions, MaintenanceReport, MetricsRegistry, RefreshOptions,
    RefreshStats, SloPolicy, SnapshotReader, ViewReport, Warehouse, WarehouseService,
};
pub use durability::{recover_warehouse, start_durable, DurableStart, Recovery, RecoveryReport};
pub use cubedelta_lattice::ViewLattice;
pub use cubedelta_sql::SqlWarehouse;
pub use cubedelta_view::SummaryViewDef;
