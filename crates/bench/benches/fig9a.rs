//! Figure 9(a): elapsed time vs change-set size, update-generating changes.
//!
//! Criterion variant at a reduced `pos` size (100k) so the suite finishes
//! quickly; the full 500k sweep lives in the `fig9` binary. The shape under
//! test: summary-delta maintenance beats rematerialization at every change
//! size, and propagate-with-lattice beats propagate-without, with the gap
//! growing in the change size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use cubedelta_bench::{build_warehouse, run_strategy, update_batch, Strategy};

fn bench(c: &mut Criterion) {
    let (wh, params) = build_warehouse(100_000);
    let mut group = c.benchmark_group("fig9a_update_changes");
    group
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(3));

    for &size in &[1_000usize, 5_000, 10_000] {
        let batch = update_batch(&wh, &params, size, size as u64);
        for strategy in [
            Strategy::SummaryDelta,
            Strategy::SummaryDeltaNoLattice,
            Strategy::Rematerialize,
        ] {
            group.bench_with_input(
                BenchmarkId::new(strategy.label(), size),
                &batch,
                |b, batch| {
                    b.iter(|| run_strategy(&wh, batch, strategy).0);
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
