//! Summary tables: materialized views installed in the catalog.

use cubedelta_query::AggFunc;
use cubedelta_storage::{Catalog, Column, DataType, Schema, TableRole};

use crate::def::AggSpec;
use crate::error::{ViewError, ViewResult};
use crate::materialize::{joined_schema, materialize};
use crate::self_maintain::AugmentedView;

/// The output [`Column`] for one aggregate, typed against the view's joined
/// input schema. COUNTs are non-nullable INTs; SUM/MIN/MAX adopt their
/// source type and are nullable (a surviving group can have all-NULL
/// sources).
pub fn agg_output_column(input: &Schema, spec: &AggSpec) -> ViewResult<Column> {
    Ok(match &spec.func {
        AggFunc::CountStar | AggFunc::Count(_) => Column::new(&spec.alias, DataType::Int),
        AggFunc::Sum(e) | AggFunc::Min(e) | AggFunc::Max(e) => {
            let ty = e.infer_type(input)?.ok_or_else(|| {
                ViewError::Definition(format!("cannot infer type of `{spec}`"))
            })?;
            Column::nullable(&spec.alias, ty)
        }
        AggFunc::Avg(_) => Column::nullable(&spec.alias, DataType::Float),
    })
}

/// The schema of a summary table: group-by columns (types copied from the
/// joined input) followed by one column per (augmented) aggregate.
pub fn summary_schema(catalog: &Catalog, view: &AugmentedView) -> ViewResult<Schema> {
    let joined = joined_schema(catalog, &view.def)?;
    let mut cols = Vec::with_capacity(view.def.group_by.len() + view.def.aggregates.len());
    for g in &view.def.group_by {
        cols.push(joined.column(g)?.clone());
    }
    for spec in &view.def.aggregates {
        cols.push(agg_output_column(&joined, spec)?);
    }
    Ok(Schema::new(cols))
}

/// Materializes `view` into the catalog as a summary table named after the
/// view, with the composite **unique index on the group-by columns** that
/// backs the refresh function's per-tuple lookup (§6's experimental setup).
pub fn install_summary_table(catalog: &mut Catalog, view: &AugmentedView) -> ViewResult<()> {
    let schema = summary_schema(catalog, view)?;
    let contents = materialize(catalog, view)?;
    let table = catalog.create_table(&view.def.name, schema, TableRole::Summary)?;
    table.set_validate(false);
    table.insert_all(contents.rows)?;
    let group_refs: Vec<&str> = view.def.group_by.iter().map(String::as_str).collect();
    table.create_unique_index(&group_refs)?;
    Ok(())
}

/// Recomputes a summary table's contents from the (already-updated) base
/// tables — the **rematerialization baseline** the paper compares against
/// in Figure 9.
pub fn refresh_from_scratch(catalog: &mut Catalog, view: &AugmentedView) -> ViewResult<()> {
    let contents = materialize(catalog, view)?;
    let table = catalog.table_mut(&view.def.name)?;
    table.truncate();
    table.insert_all(contents.rows)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::def::SummaryViewDef;
    use crate::self_maintain::augment;
    use crate::test_fixtures::retail_catalog_small;
    use cubedelta_expr::Expr;
    use cubedelta_storage::row;

    fn sid_sales_aug(cat: &Catalog) -> AugmentedView {
        let def = SummaryViewDef::builder("SID_sales", "pos")
            .group_by(["storeID", "itemID", "date"])
            .aggregate(AggFunc::CountStar, "TotalCount")
            .aggregate(AggFunc::Sum(Expr::col("qty")), "TotalQuantity")
            .build();
        augment(cat, &def).unwrap()
    }

    #[test]
    fn summary_schema_layout() {
        let cat = retail_catalog_small();
        let aug = sid_sales_aug(&cat);
        let s = summary_schema(&cat, &aug).unwrap();
        // storeID, itemID, date, TotalCount, TotalQuantity, __count_TotalQuantity
        assert_eq!(s.arity(), 3 + aug.def.aggregates.len());
        assert_eq!(s.columns()[0].name, "storeID");
        assert_eq!(s.columns()[3].name, "TotalCount");
        assert_eq!(s.columns()[3].datatype, DataType::Int);
        assert!(!s.columns()[3].nullable);
        assert_eq!(s.columns()[4].name, "TotalQuantity");
        assert!(s.columns()[4].nullable);
    }

    #[test]
    fn install_creates_indexed_summary() {
        let mut cat = retail_catalog_small();
        let aug = sid_sales_aug(&cat);
        install_summary_table(&mut cat, &aug).unwrap();
        let t = cat.table("SID_sales").unwrap();
        assert_eq!(cat.role("SID_sales"), Some(TableRole::Summary));
        assert_eq!(t.len(), 3);
        // The unique index is queryable on the group-by prefix.
        let ix = t.unique_index().expect("unique index installed");
        let key = row![1i64, 10i64, cubedelta_storage::Date(10000)];
        assert!(ix.get(&key).is_some());
    }

    #[test]
    fn refresh_from_scratch_tracks_base() {
        let mut cat = retail_catalog_small();
        let aug = sid_sales_aug(&cat);
        install_summary_table(&mut cat, &aug).unwrap();
        // Base changes: drop everything.
        cat.table_mut("pos").unwrap().truncate();
        refresh_from_scratch(&mut cat, &aug).unwrap();
        assert!(cat.table("SID_sales").unwrap().is_empty());
    }
}
