//! One-shot harness for subscription fan-out: maintenance-cycle cost as
//! the number of live subscriptions scales.
//!
//! ```sh
//! cargo run --release -p cubedelta-bench --bin subfan
//! cargo run --release -p cubedelta-bench --bin subfan -- --quick
//! ```
//!
//! Fan-out is designed to be decoupled from subscription count: specs with
//! an equal bound filter/projection share one evaluation of the view diff
//! (spec grouping), so only the final per-queue clone scales with the
//! subscriber population. The harness pins that claim:
//!
//! * a sweep over 0 / 200 / 2000 subscriptions, all drawn round-robin
//!   from **four distinct specs** — so the diff-evaluation work is
//!   constant and only queue pushes grow;
//! * per-point **maintain wall time** (the worker's cost including
//!   dispatch) and the `fanout_us` histogram (dispatch alone);
//! * the maintenance executor's `lock_waits` counter, which must stay at
//!   **zero**: subscribers never contend with propagate/refresh;
//! * a sublinearity gate: 10× the subscribers must cost far less than
//!   10× the dispatch time (`fanout_sublinear` in the JSON).
//!
//! Results land in `BENCH_subfan.json`, the machine-readable companion to
//! `EXPERIMENTS.md`.

use std::time::{Duration, Instant};

use cubedelta_bench::{build_warehouse, update_batch};
use cubedelta_core::{MaintainOptions, MaintenancePolicy, Subscription, SubscriptionSpec};
use cubedelta_expr::{CmpOp, Expr, Predicate};
use cubedelta_obs::json::JsonValue;

const SUB_COUNTS: [usize; 3] = [0, 200, 2000];

/// Four distinct spec shapes over the Figure-1 lattice; every subscriber
/// in the sweep is one of these, so spec-grouping collapses the diff work
/// to at most four evaluations per view per cycle.
fn distinct_specs() -> Vec<SubscriptionSpec> {
    vec![
        SubscriptionSpec::on("sR_sales"),
        SubscriptionSpec::on("SID_sales")
            .filter(Predicate::cmp(CmpOp::Eq, Expr::col("storeID"), Expr::lit(1i64)))
            .project(["itemID", "date", "TotalQuantity"]),
        SubscriptionSpec::on("sCD_sales").project(["city", "TotalCount"]),
        SubscriptionSpec::on("SiC_sales"),
    ]
}

struct RunConfig {
    pos_rows: usize,
    cycles: usize,
    batch_rows: usize,
}

struct Point {
    subs: usize,
    maintain: Duration,
    fanout_mean_us: f64,
    fanout_p95_us: u64,
    updates_pushed: u64,
    lagged: u64,
    lock_waits: u64,
}

fn run_point(cfg: &RunConfig, subs: usize) -> Point {
    let (mut wh, params) = build_warehouse(cfg.pos_rows);
    wh.set_maintenance_policy(MaintenancePolicy::with_threads(2));

    let specs = distinct_specs();
    // Deep queues: the harness measures push cost, not lag handling.
    let handles: Vec<Subscription> = (0..subs)
        .map(|i| wh.subscribe_with(specs[i % specs.len()].clone(), 64).unwrap())
        .collect();

    let mut maintain = Duration::ZERO;
    let mut lock_waits = 0u64;
    for c in 0..cfg.cycles {
        let batch = update_batch(&wh, &params, cfg.batch_rows, 0xF00D + c as u64);
        let t0 = Instant::now();
        let report = wh.maintain(&batch, &MaintainOptions::default()).unwrap();
        maintain += t0.elapsed();
        lock_waits += report.metrics.lock_waits;
        // Drain so queues never overflow mid-sweep.
        for h in &handles {
            h.drain();
        }
    }

    let fanout = wh.metrics().histogram("fanout_us").snapshot();
    Point {
        subs,
        maintain,
        fanout_mean_us: fanout.mean_us(),
        fanout_p95_us: fanout.quantile_us(0.95),
        updates_pushed: wh.metrics().counter("sub_updates_pushed").get(),
        lagged: wh.metrics().counter("sub_lagged").get(),
        lock_waits,
    }
}

fn main() {
    let quick = std::env::args().skip(1).any(|a| a == "--quick");
    let cfg = if quick {
        RunConfig { pos_rows: 20_000, cycles: 4, batch_rows: 512 }
    } else {
        RunConfig { pos_rows: 100_000, cycles: 8, batch_rows: 2_048 }
    };

    println!("== subscription fan-out: dispatch cost vs live subscriptions ==");
    println!(
        "(pos = {}, {} cycles of {}-row update batches, 4 distinct specs)",
        cfg.pos_rows, cfg.cycles, cfg.batch_rows
    );
    println!(
        "{:>6} {:>14} {:>16} {:>14} {:>10} {:>8} {:>10}",
        "subs", "maintain-ms", "fanout-mean-us", "fanout-p95-us", "pushed", "lagged", "lock-waits"
    );

    let points: Vec<Point> = SUB_COUNTS.iter().map(|&n| run_point(&cfg, n)).collect();
    for p in &points {
        println!(
            "{:>6} {:>14.1} {:>16.1} {:>14} {:>10} {:>8} {:>10}",
            p.subs,
            p.maintain.as_secs_f64() * 1_000.0,
            p.fanout_mean_us,
            p.fanout_p95_us,
            p.updates_pushed,
            p.lagged,
            p.lock_waits,
        );
    }

    // The sublinearity gate: ~10× the subscribers (200 → 2000) must not
    // cost ~10× the dispatch time. Diff evaluation is shared per spec
    // group; only the queue pushes scale, and those are clones of an
    // already-computed update. A generous 5× bound keeps CI noise out.
    let small = points.iter().find(|p| p.subs == 200).unwrap();
    let large = points.iter().find(|p| p.subs == 2000).unwrap();
    let ratio = if small.fanout_mean_us > 0.0 {
        large.fanout_mean_us / small.fanout_mean_us
    } else {
        1.0
    };
    let sublinear = ratio < 5.0;
    let zero_lock_waits = points.iter().all(|p| p.lock_waits == 0);
    println!(
        "\nfan-out mean ratio 2000/200 subs: {ratio:.2} (sublinear: {sublinear}), \
         maintenance lock_waits all zero: {zero_lock_waits}"
    );

    let json_points: Vec<JsonValue> = points
        .iter()
        .map(|p| {
            JsonValue::object([
                ("subscriptions", JsonValue::from(p.subs)),
                (
                    "maintain_us",
                    JsonValue::from(p.maintain.as_micros() as u64),
                ),
                ("fanout_mean_us", JsonValue::from(p.fanout_mean_us)),
                ("fanout_p95_us", JsonValue::from(p.fanout_p95_us)),
                ("updates_pushed", JsonValue::from(p.updates_pushed)),
                ("lagged", JsonValue::from(p.lagged)),
                ("lock_waits", JsonValue::from(p.lock_waits)),
            ])
        })
        .collect();

    let telemetry = JsonValue::object([
        (
            "benchmark",
            JsonValue::from("subfan: subscription fan-out cost vs live subscriptions"),
        ),
        (
            "paper",
            JsonValue::from(
                "Maintenance of Data Cubes and Summary Tables in a Warehouse (SIGMOD 1997)",
            ),
        ),
        ("quick", JsonValue::from(quick)),
        ("pos_rows", JsonValue::from(cfg.pos_rows)),
        ("cycles", JsonValue::from(cfg.cycles)),
        ("batch_rows", JsonValue::from(cfg.batch_rows)),
        ("distinct_specs", JsonValue::from(distinct_specs().len())),
        ("fanout_ratio_2000_over_200", JsonValue::from(ratio)),
        ("fanout_sublinear", JsonValue::from(sublinear)),
        ("zero_lock_waits", JsonValue::from(zero_lock_waits)),
        (
            "host_parallelism",
            JsonValue::from(cubedelta_bench::host_parallelism()),
        ),
        ("points", JsonValue::array(json_points)),
    ]);
    let out = "BENCH_subfan.json";
    match std::fs::write(out, telemetry.render_pretty() + "\n") {
        Ok(()) => println!("\nwrote {out}"),
        Err(e) => eprintln!("\nfailed to write {out}: {e}"),
    }

    assert!(sublinear, "fan-out scaled linearly with subscription count");
    assert!(zero_lock_waits, "subscription dispatch contended with maintenance");
}
