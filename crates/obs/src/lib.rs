//! Observability core for the cubedelta workspace.
//!
//! The paper's evaluation (§6, Figure 9) is entirely about *where time
//! goes* in propagate vs. refresh; this crate supplies the machinery to
//! answer that question honestly at every layer:
//!
//! * [`ExecutionMetrics`] — a plain struct of operator-level counters
//!   (rows scanned, hash probes, index probes, groups touched, …)
//!   threaded by `&mut` through the query operators and the
//!   propagate/refresh pipeline. Zero overhead beyond the increments.
//! * [`MetricsRegistry`] — shared, thread-safe counters, gauges, and
//!   fixed-bucket latency histograms for long-lived aggregation across
//!   maintenance cycles (the warehouse owns one).
//! * [`json`] — a minimal JSON value model and serializer (the
//!   workspace is offline: no serde), used for machine-readable
//!   maintenance reports and bench telemetry.
//! * [`trace`] — lightweight wall-clock spans behind the `tracing`
//!   cargo feature; a no-op with zero argument evaluation when the
//!   feature is off.
//!
//! This crate deliberately has no dependencies so every other crate can
//! use it, including `cubedelta-storage` at the bottom of the stack.

pub mod json;
mod metrics;
mod registry;
pub mod trace;

pub use metrics::ExecutionMetrics;
pub use registry::{
    Counter, Gauge, Histogram, HistogramSnapshot, MetricsRegistry, RegistrySnapshot,
};
