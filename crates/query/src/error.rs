//! Query execution errors.

use std::fmt;

use cubedelta_expr::ExprError;
use cubedelta_storage::StorageError;

/// Result alias for query operations.
pub type QueryResult<T> = Result<T, QueryError>;

/// Errors raised during query planning or execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryError {
    /// Underlying storage error.
    Storage(StorageError),
    /// Underlying expression error.
    Expr(ExprError),
    /// The operator inputs are malformed (e.g. union of different arities).
    Plan(String),
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::Storage(e) => write!(f, "storage: {e}"),
            QueryError::Expr(e) => write!(f, "expr: {e}"),
            QueryError::Plan(m) => write!(f, "plan: {m}"),
        }
    }
}

impl std::error::Error for QueryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            QueryError::Storage(e) => Some(e),
            QueryError::Expr(e) => Some(e),
            QueryError::Plan(_) => None,
        }
    }
}

impl From<StorageError> for QueryError {
    fn from(e: StorageError) -> Self {
        QueryError::Storage(e)
    }
}

impl From<ExprError> for QueryError {
    fn from(e: ExprError) -> Self {
        QueryError::Expr(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: QueryError = StorageError::UnknownTable("t".into()).into();
        assert_eq!(e.to_string(), "storage: unknown table `t`");
        let e: QueryError = ExprError::UnknownColumn("c".into()).into();
        assert!(e.to_string().starts_with("expr:"));
        assert_eq!(QueryError::Plan("bad".into()).to_string(), "plan: bad");
    }
}
