//! Binary encoding of change batches — the commitlog's record payload.
//!
//! The durability layer appends every sealed [`ChangeBatch`] to an
//! append-only log, so the batch needs a compact, deterministic byte form
//! that round-trips *exactly* (bit-for-bit floats, NULLs, interned
//! strings, dates). CSV cannot do that job: it is schema-directed and
//! lossy about type tags, while a log record must be self-describing.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! batch    := u32 delta_count , delta*
//! delta    := str table_name , rows insertions , rows deletions
//! rows     := u32 row_count , row*
//! row      := u32 arity , value*
//! value    := 0x00                        NULL
//!           | 0x01 i64                    Int
//!           | 0x02 u64 (f64 bit pattern)  Float
//!           | 0x03 str                    Str
//!           | 0x04 i32                    Date (days since epoch)
//! str      := u32 byte_len , utf8 bytes
//! ```
//!
//! Floats are carried as raw bit patterns, so NaN payloads and `-0.0`
//! survive unchanged — the log replays to byte-identical tables.
//!
//! [`decode_batch`] never panics on hostile input: every failure is a
//! [`DecodeError`] carrying the byte offset where decoding stopped making
//! sense, which the commitlog folds into its corruption reports.

use std::fmt;
use std::sync::Arc;

use crate::delta::{ChangeBatch, DeltaSet};
use crate::row::Row;
use crate::value::{Date, Value};

/// A malformed byte sequence handed to [`decode_batch`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError {
    /// Byte offset (into the encoded payload) where decoding failed.
    pub offset: usize,
    /// What was wrong there.
    pub detail: String,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "corrupt batch encoding at byte {}: {}", self.offset, self.detail)
    }
}

impl std::error::Error for DecodeError {}

const TAG_NULL: u8 = 0x00;
const TAG_INT: u8 = 0x01;
const TAG_FLOAT: u8 = 0x02;
const TAG_STR: u8 = 0x03;
const TAG_DATE: u8 = 0x04;

/// FNV-1a 64-bit hash — the commitlog's record checksum. Not
/// cryptographic; it detects torn writes and bit rot, which is all a
/// single-writer log needs, and it costs no dependency.
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn put_value(out: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => out.push(TAG_NULL),
        Value::Int(i) => {
            out.push(TAG_INT);
            out.extend_from_slice(&i.to_le_bytes());
        }
        Value::Float(f) => {
            out.push(TAG_FLOAT);
            out.extend_from_slice(&f.to_bits().to_le_bytes());
        }
        Value::Str(s) => {
            out.push(TAG_STR);
            put_str(out, s);
        }
        Value::Date(Date(d)) => {
            out.push(TAG_DATE);
            out.extend_from_slice(&d.to_le_bytes());
        }
    }
}

fn put_rows(out: &mut Vec<u8>, rows: &[Row]) {
    put_u32(out, rows.len() as u32);
    for row in rows {
        put_u32(out, row.arity() as u32);
        for v in row.iter() {
            put_value(out, v);
        }
    }
}

/// Serializes a batch into the commitlog payload format described in the
/// module docs. Deterministic: the same batch always yields the same
/// bytes.
pub fn encode_batch(batch: &ChangeBatch) -> Vec<u8> {
    let mut out = Vec::with_capacity(64 * batch.len().max(1));
    put_u32(&mut out, batch.deltas.len() as u32);
    for delta in &batch.deltas {
        put_str(&mut out, &delta.table);
        put_rows(&mut out, &delta.insertions);
        put_rows(&mut out, &delta.deletions);
    }
    out
}

/// Cursor over an encoded payload; every read is bounds-checked and
/// reports its offset on failure.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn fail<T>(&self, detail: impl Into<String>) -> Result<T, DecodeError> {
        Err(DecodeError {
            offset: self.pos,
            detail: detail.into(),
        })
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        match self.bytes.get(self.pos..self.pos + n) {
            Some(slice) => {
                self.pos += n;
                Ok(slice)
            }
            None => self.fail(format!(
                "need {n} bytes but only {} remain",
                self.bytes.len() - self.pos
            )),
        }
    }

    fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    fn i32(&mut self) -> Result<i32, DecodeError> {
        Ok(i32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    fn i64(&mut self) -> Result<i64, DecodeError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    fn str(&mut self) -> Result<&'a str, DecodeError> {
        let len = self.u32()? as usize;
        let start = self.pos;
        let bytes = self.take(len)?;
        std::str::from_utf8(bytes).map_err(|e| DecodeError {
            offset: start,
            detail: format!("invalid UTF-8 in string: {e}"),
        })
    }

    /// Guards a declared element count against the bytes actually left:
    /// every element needs at least `min_bytes`, so a count larger than
    /// `remaining / min_bytes` is corrupt — reject it *before* allocating.
    fn count(&mut self, what: &str, min_bytes: usize) -> Result<usize, DecodeError> {
        let n = self.u32()? as usize;
        let cap = (self.bytes.len() - self.pos) / min_bytes.max(1);
        if n > cap {
            return self.fail(format!("{what} count {n} exceeds remaining input"));
        }
        Ok(n)
    }

    fn value(&mut self) -> Result<Value, DecodeError> {
        let tag_at = self.pos;
        Ok(match self.u8()? {
            TAG_NULL => Value::Null,
            TAG_INT => Value::Int(self.i64()?),
            TAG_FLOAT => Value::Float(f64::from_bits(self.u64()?)),
            TAG_STR => Value::Str(Arc::from(self.str()?)),
            TAG_DATE => Value::Date(Date(self.i32()?)),
            tag => {
                return Err(DecodeError {
                    offset: tag_at,
                    detail: format!("unknown value tag 0x{tag:02x}"),
                })
            }
        })
    }

    fn rows(&mut self) -> Result<Vec<Row>, DecodeError> {
        // A row is at least the 4-byte arity.
        let n = self.count("row", 4)?;
        let mut rows = Vec::with_capacity(n);
        for _ in 0..n {
            // A value is at least its 1-byte tag.
            let arity = self.count("value", 1)?;
            let mut vals = Vec::with_capacity(arity);
            for _ in 0..arity {
                vals.push(self.value()?);
            }
            rows.push(Row::new(vals));
        }
        Ok(rows)
    }
}

/// Deserializes a payload written by [`encode_batch`]. Trailing bytes
/// after the batch are corruption (the commitlog frames records with
/// exact lengths).
pub fn decode_batch(bytes: &[u8]) -> Result<ChangeBatch, DecodeError> {
    let mut r = Reader { bytes, pos: 0 };
    // A delta is at least: 4-byte name length + two 4-byte row counts.
    let n = r.count("delta", 12)?;
    let mut deltas = Vec::with_capacity(n);
    for _ in 0..n {
        let table = r.str()?.to_string();
        let insertions = r.rows()?;
        let deletions = r.rows()?;
        deltas.push(DeltaSet {
            table,
            insertions,
            deletions,
        });
    }
    if r.pos != bytes.len() {
        return r.fail(format!("{} trailing bytes after batch", bytes.len() - r.pos));
    }
    Ok(ChangeBatch { deltas })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row;

    fn tricky_batch() -> ChangeBatch {
        let mut b = ChangeBatch::new();
        b.add(DeltaSet {
            table: "pos".into(),
            insertions: vec![
                row![1i64, 2.5f64, "plain", Date(10000)],
                Row::new(vec![
                    Value::Null,
                    Value::Float(-0.0),
                    Value::str("comma, \"quote\"\nnewline"),
                    Value::Float(f64::NAN),
                ]),
            ],
            deletions: vec![row![i64::MIN, f64::MAX, "", Date(-1)]],
        });
        b.add(DeltaSet::insertions("stores", vec![row![9i64]]));
        b.add(DeltaSet::new("empty_table"));
        b
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let batch = tricky_batch();
        let bytes = encode_batch(&batch);
        let back = decode_batch(&bytes).unwrap();
        assert_eq!(back.deltas.len(), batch.deltas.len());
        for (a, b) in batch.deltas.iter().zip(&back.deltas) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn nan_bits_survive() {
        // A non-canonical NaN payload must round-trip bit-for-bit.
        let weird = f64::from_bits(0x7ff8_0000_dead_beef);
        let batch = ChangeBatch::single(DeltaSet::insertions(
            "t",
            vec![Row::new(vec![Value::Float(weird)])],
        ));
        let back = decode_batch(&encode_batch(&batch)).unwrap();
        match &back.deltas[0].insertions[0][0] {
            Value::Float(f) => assert_eq!(f.to_bits(), weird.to_bits()),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn empty_batch_roundtrips() {
        let bytes = encode_batch(&ChangeBatch::new());
        assert_eq!(bytes, vec![0, 0, 0, 0]);
        assert!(decode_batch(&bytes).unwrap().deltas.is_empty());
    }

    #[test]
    fn encoding_is_deterministic() {
        assert_eq!(encode_batch(&tricky_batch()), encode_batch(&tricky_batch()));
    }

    #[test]
    fn truncation_reports_offset() {
        let bytes = encode_batch(&tricky_batch());
        for cut in [0, 1, 3, 7, bytes.len() / 2, bytes.len() - 1] {
            let err = decode_batch(&bytes[..cut]).unwrap_err();
            assert!(err.offset <= cut, "offset {} past cut {cut}", err.offset);
        }
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut bytes = encode_batch(&tricky_batch());
        bytes.push(0xff);
        let err = decode_batch(&bytes).unwrap_err();
        assert!(err.detail.contains("trailing"), "{err}");
    }

    #[test]
    fn hostile_counts_do_not_allocate() {
        // Claims u32::MAX deltas with no payload behind the claim.
        let err = decode_batch(&u32::MAX.to_le_bytes()).unwrap_err();
        assert!(err.detail.contains("count"), "{err}");
        // Unknown tag.
        let mut bytes = Vec::new();
        put_u32(&mut bytes, 1); // one delta
        put_str(&mut bytes, "t");
        put_u32(&mut bytes, 1); // one insertion
        put_u32(&mut bytes, 1); // arity 1
        bytes.push(0x7f); // bogus tag
        put_u32(&mut bytes, 0); // deletions
        let err = decode_batch(&bytes).unwrap_err();
        assert!(err.detail.contains("tag"), "{err}");
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a_64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a_64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a_64(b"foobar"), 0x8594_4171_f739_67e8);
    }
}
