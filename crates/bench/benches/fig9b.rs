//! Figure 9(b): elapsed time vs `pos` size, update-generating changes of a
//! fixed size (10k).
//!
//! The shape under test: propagate time is independent of the `pos` size
//! (it only touches the change set), while rematerialization grows linearly
//! with it.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use cubedelta_bench::{build_warehouse, run_strategy, update_batch, Strategy};

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9b_pos_size");
    group
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(3));

    for &pos_rows in &[50_000usize, 100_000, 200_000] {
        let (wh, params) = build_warehouse(pos_rows);
        let batch = update_batch(&wh, &params, 10_000, pos_rows as u64);
        for strategy in [Strategy::SummaryDelta, Strategy::Rematerialize] {
            group.bench_with_input(
                BenchmarkId::new(strategy.label(), pos_rows),
                &batch,
                |b, batch| {
                    b.iter(|| run_strategy(&wh, batch, strategy).0);
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
