//! Baselines from the §6 performance study.
//!
//! * **Rematerialization** — recompute every summary table from the
//!   (already-updated) base tables. With the lattice, lower views are
//!   recomputed from upper views' fresh contents (the cascade the paper's
//!   "Rematerialize" series uses); without it, each view recomputes from
//!   base data independently.
//! * **Propagate without lattice** — every summary-delta computed directly
//!   from the change set (Figure 9's dotted line).

use std::collections::HashMap;

use cubedelta_lattice::{derive_child, DeltaSource, MaintenancePlan, ViewLattice};
use cubedelta_query::Relation;
use cubedelta_storage::{Catalog, ChangeBatch};
use cubedelta_view::{materialize, AugmentedView};

use crate::error::CoreResult;
use crate::multi::propagate_plan;
use crate::propagate::PropagateOptions;

/// Recomputes every summary table directly from base data (no lattice
/// reuse). Base tables must already hold their post-change state.
pub fn rematerialize_direct(
    catalog: &mut Catalog,
    views: &[AugmentedView],
) -> CoreResult<()> {
    for view in views {
        let contents = materialize(catalog, view)?;
        let table = catalog.table_mut(&view.def.name)?;
        table.truncate();
        table.insert_all(contents.rows)?;
    }
    Ok(())
}

/// Recomputes every summary table exploiting the lattice: views derived
/// `FromParent` in the plan are computed from the parent's freshly
/// recomputed *contents* rather than from base data (§3.2's edge queries).
pub fn rematerialize_with_lattice(
    catalog: &mut Catalog,
    views: &[AugmentedView],
    plan: &MaintenancePlan,
) -> CoreResult<()> {
    let by_name: HashMap<&str, &AugmentedView> = views
        .iter()
        .map(|v| (v.def.name.as_str(), v))
        .collect();
    let mut fresh: HashMap<String, Relation> = HashMap::with_capacity(plan.len());
    for step in &plan.steps {
        let view = by_name[step.view.as_str()];
        let contents = match &step.source {
            DeltaSource::Direct => materialize(catalog, view)?,
            DeltaSource::FromParent(eq) => derive_child(catalog, &fresh[&eq.parent], eq)?,
        };
        fresh.insert(step.view.clone(), contents.clone());
        let table = catalog.table_mut(&view.def.name)?;
        table.truncate();
        table.insert_all(contents.rows)?;
    }
    Ok(())
}

/// The "propagate without lattice" baseline: every summary-delta computed
/// directly from the change set.
pub fn propagate_without_lattice(
    catalog: &Catalog,
    lattice: &ViewLattice,
    batch: &ChangeBatch,
    opts: &PropagateOptions,
) -> CoreResult<HashMap<String, Relation>> {
    propagate_plan(catalog, lattice.views(), &lattice.direct_plan(), batch, opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_fixtures::*;
    use cubedelta_storage::{row, Date, DeltaSet};
    use cubedelta_view::{augment, install_summary_table};

    #[test]
    fn rematerialize_variants_agree() {
        let mut cat = retail_catalog_small();
        let views: Vec<AugmentedView> = figure1_defs()
            .iter()
            .map(|d| augment(&cat, d).unwrap())
            .collect();
        for v in &views {
            install_summary_table(&mut cat, v).unwrap();
        }
        // Change the base, then rematerialize both ways.
        let delta = DeltaSet::insertions(
            "pos",
            vec![row![3i64, 20i64, Date(10004), 2i64, 2.0]],
        );
        cat.table_mut("pos").unwrap().apply_delta(&delta).unwrap();

        let lat = ViewLattice::build(&cat, views.clone()).unwrap();
        let plan = lat
            .choose_plan(&cat, |name| cat.table(name).map(|t| t.len()).unwrap_or(0))
            .unwrap();

        let mut cat_a = cat.clone();
        rematerialize_direct(&mut cat_a, &views).unwrap();
        let mut cat_b = cat.clone();
        rematerialize_with_lattice(&mut cat_b, &views, &plan).unwrap();

        for v in &views {
            assert_eq!(
                cat_a.table(&v.def.name).unwrap().sorted_rows(),
                cat_b.table(&v.def.name).unwrap().sorted_rows(),
                "lattice rematerialization differs for {}",
                v.def.name
            );
        }
    }

    #[test]
    fn propagate_without_lattice_is_all_direct() {
        let cat = retail_catalog_small();
        let views: Vec<AugmentedView> = figure1_defs()
            .iter()
            .map(|d| augment(&cat, d).unwrap())
            .collect();
        let lat = ViewLattice::build(&cat, views).unwrap();
        let batch = ChangeBatch::single(DeltaSet::insertions(
            "pos",
            vec![row![1i64, 10i64, Date(10000), 1i64, 1.0]],
        ));
        let deltas =
            propagate_without_lattice(&cat, &lat, &batch, &PropagateOptions::default()).unwrap();
        assert_eq!(deltas.len(), 4);
        assert!(deltas.values().all(|sd| !sd.is_empty()));
    }
}
