//! Maintaining multiple summary tables together (§5.5).
//!
//! "The beauty of our approach is that the summary table maintenance
//! problem has been partitioned into two subproblems — computation of
//! summary-delta tables (propagation), and the application of refresh
//! functions — in such a way that the subproblem of propagation for
//! multiple summary tables can be mapped to the problem of efficiently
//! computing multiple aggregate views in a lattice."
//!
//! [`propagate_plan`] executes a [`MaintenancePlan`] over the D-lattice:
//! root views compute their summary-delta directly from the change set;
//! every other view derives its delta from an ancestor's delta through the
//! lattice edge query (Theorem 5.1).

use std::collections::HashMap;
use std::time::{Duration, Instant};

use cubedelta_lattice::{derive_child, DeltaSource, MaintenancePlan};
use cubedelta_obs::ExecutionMetrics;
use cubedelta_query::Relation;
use cubedelta_storage::{Catalog, ChangeBatch};
use cubedelta_view::AugmentedView;

use crate::error::{CoreError, CoreResult};
use crate::propagate::{propagate_view_metered, PropagateOptions};

/// Per-step observability record from [`propagate_plan_metered`]: which
/// view was propagated, where its delta came from, how long it took, and
/// the operator work it performed.
#[derive(Debug, Clone)]
pub struct PropagationStepReport {
    /// View whose summary-delta this step computed.
    pub view: String,
    /// Parent view name when derived through a lattice edge (Theorem 5.1),
    /// `None` for direct propagation from the change set.
    pub source: Option<String>,
    /// Wall-clock time for this step alone.
    pub time: Duration,
    /// Operator counters booked while computing this step's delta.
    pub metrics: ExecutionMetrics,
}

/// Executes a propagation plan, returning one summary-delta relation per
/// view (keyed by view name). Steps must be topologically ordered, as
/// [`cubedelta_lattice::ViewLattice::choose_plan`] guarantees.
pub fn propagate_plan(
    catalog: &Catalog,
    views: &[AugmentedView],
    plan: &MaintenancePlan,
    batch: &ChangeBatch,
    opts: &PropagateOptions,
) -> CoreResult<HashMap<String, Relation>> {
    propagate_plan_metered(catalog, views, plan, batch, opts).map(|(deltas, _)| deltas)
}

/// [`propagate_plan`], additionally returning one [`PropagationStepReport`]
/// per plan step (in plan order) with per-step timing and operator
/// counters.
pub fn propagate_plan_metered(
    catalog: &Catalog,
    views: &[AugmentedView],
    plan: &MaintenancePlan,
    batch: &ChangeBatch,
    opts: &PropagateOptions,
) -> CoreResult<(HashMap<String, Relation>, Vec<PropagationStepReport>)> {
    let by_name: HashMap<&str, &AugmentedView> = views
        .iter()
        .map(|v| (v.def.name.as_str(), v))
        .collect();

    let mut deltas: HashMap<String, Relation> = HashMap::with_capacity(plan.len());
    let mut reports: Vec<PropagationStepReport> = Vec::with_capacity(plan.len());
    for step in &plan.steps {
        let view = by_name.get(step.view.as_str()).ok_or_else(|| {
            CoreError::Maintenance(format!("plan references unknown view `{}`", step.view))
        })?;
        let start = Instant::now();
        let mut m = ExecutionMetrics::new();
        let (sd, source) = match &step.source {
            DeltaSource::Direct => {
                (propagate_view_metered(catalog, view, batch, opts, &mut m)?, None)
            }
            DeltaSource::FromParent(eq) => {
                let parent_sd = deltas.get(&eq.parent).ok_or_else(|| {
                    CoreError::Maintenance(format!(
                        "plan step `{}` runs before its parent `{}`",
                        step.view, eq.parent
                    ))
                })?;
                // The edge query re-aggregates the parent's delta.
                m.rows_scanned += parent_sd.len() as u64;
                let child = derive_child(catalog, parent_sd, eq)?;
                m.delta_rows += child.len() as u64;
                m.rows_emitted += child.len() as u64;
                m.groups_touched += child.len() as u64;
                (child, Some(eq.parent.clone()))
            }
        };
        reports.push(PropagationStepReport {
            view: step.view.clone(),
            source,
            time: start.elapsed(),
            metrics: m,
        });
        deltas.insert(step.view.clone(), sd);
    }
    Ok((deltas, reports))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_fixtures::*;
    use cubedelta_lattice::ViewLattice;
    use cubedelta_storage::{row, Date, DeltaSet};
    use cubedelta_view::augment;

    fn d(offset: i32) -> Date {
        Date(10000 + offset)
    }

    fn views(cat: &Catalog) -> Vec<AugmentedView> {
        figure1_defs()
            .iter()
            .map(|def| augment(cat, def).unwrap())
            .collect()
    }

    fn mixed_batch() -> ChangeBatch {
        ChangeBatch::single(DeltaSet {
            table: "pos".into(),
            insertions: vec![
                row![1i64, 20i64, d(0), 4i64, 1.0],
                row![2i64, 30i64, d(2), 1i64, 0.5],
                row![3i64, 10i64, d(1), 6i64, 1.0],
            ],
            deletions: vec![
                row![2i64, 10i64, d(0), 7i64, 1.0],
                row![1i64, 10i64, d(0), 3i64, 1.0],
            ],
        })
    }

    /// Theorem 5.1 in action: summary-deltas derived through the D-lattice
    /// equal summary-deltas computed directly from the changes.
    #[test]
    fn theorem_5_1_lattice_deltas_equal_direct_deltas() {
        let cat = retail_catalog_small();
        let vs = views(&cat);
        let lat = ViewLattice::build(&cat, vs.clone()).unwrap();
        let batch = mixed_batch();

        let plan = lat.choose_plan(&cat, |_| 1).unwrap();
        // The plan actually uses lattice edges (not all Direct).
        assert!(plan
            .steps
            .iter()
            .any(|s| matches!(s.source, DeltaSource::FromParent(_))));

        let via_lattice =
            propagate_plan(&cat, &vs, &plan, &batch, &PropagateOptions::default()).unwrap();
        let direct = propagate_plan(
            &cat,
            &vs,
            &lat.direct_plan(),
            &batch,
            &PropagateOptions::default(),
        )
        .unwrap();

        for v in &vs {
            let a = via_lattice[&v.def.name].sorted_rows();
            let b = direct[&v.def.name].sorted_rows();
            assert_eq!(a, b, "D-lattice delta differs for {}", v.def.name);
        }
    }

    #[test]
    fn metered_plan_reports_every_step() {
        let cat = retail_catalog_small();
        let vs = views(&cat);
        let lat = ViewLattice::build(&cat, vs.clone()).unwrap();
        let plan = lat.choose_plan(&cat, |_| 1).unwrap();
        let (deltas, reports) = propagate_plan_metered(
            &cat,
            &vs,
            &plan,
            &mixed_batch(),
            &PropagateOptions::default(),
        )
        .unwrap();
        assert_eq!(reports.len(), plan.len());
        for r in &reports {
            assert_eq!(
                r.metrics.delta_rows,
                deltas[&r.view].len() as u64,
                "{}: delta_rows must equal the step's sd cardinality",
                r.view
            );
        }
        // This plan mixes direct and lattice-derived steps; both kinds must
        // be attributed.
        assert!(reports.iter().any(|r| r.source.is_some()));
        assert!(reports.iter().any(|r| r.source.is_none()));
    }

    #[test]
    fn plan_ordering_violation_is_detected() {
        let cat = retail_catalog_small();
        let vs = views(&cat);
        let lat = ViewLattice::build(&cat, vs.clone()).unwrap();
        let mut plan = lat.choose_plan(&cat, |_| 1).unwrap();
        plan.steps.reverse(); // children before parents
        let err = propagate_plan(
            &cat,
            &vs,
            &plan,
            &mixed_batch(),
            &PropagateOptions::default(),
        );
        assert!(matches!(err, Err(CoreError::Maintenance(_))));
    }

    #[test]
    fn unknown_view_in_plan_is_detected() {
        let cat = retail_catalog_small();
        let vs = views(&cat);
        let plan = MaintenancePlan {
            steps: vec![cubedelta_lattice::vlattice::PlanStep {
                view: "ghost".into(),
                source: DeltaSource::Direct,
            }],
        };
        assert!(matches!(
            propagate_plan(&cat, &vs, &plan, &mixed_batch(), &PropagateOptions::default()),
            Err(CoreError::Maintenance(_))
        ));
    }
}
