//! Preparing changes (§4.1.1, Table 1).
//!
//! The prepare-insertions and prepare-deletions virtual views project the
//! changed tuples (after the view's dimension joins and WHERE clause) onto
//! the view's group-by attributes plus one *aggregate-source* attribute per
//! aggregate function. Table 1 gives the sources:
//!
//! | aggregate      | prepare-insertions                          | prepare-deletions                            |
//! |----------------|---------------------------------------------|----------------------------------------------|
//! | `COUNT(*)`     | `1`                                         | `-1`                                         |
//! | `COUNT(expr)`  | `CASE WHEN expr IS NULL THEN 0 ELSE 1 END`  | `CASE WHEN expr IS NULL THEN 0 ELSE -1 END`  |
//! | `SUM(expr)`    | `expr`                                      | `-expr`                                      |
//! | `MIN(expr)`    | `expr`                                      | `expr`                                       |
//! | `MAX(expr)`    | `expr`                                      | `expr`                                       |
//!
//! Prepare-changes is the `UNION ALL` of the two.

use cubedelta_expr::Expr;
use cubedelta_query::{filter, project, union_all, AggFunc, Relation};
use cubedelta_storage::{Catalog, Column, DataType, Row};
use cubedelta_view::{join_dimensions, joined_schema, AugmentedView};

use crate::error::{CoreError, CoreResult};

/// Whether prepared tuples represent insertions or deletions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sign {
    /// The tuples are being inserted (Table 1's prepare-insertions column).
    Insert,
    /// The tuples are being deleted (Table 1's prepare-deletions column).
    Delete,
}

/// The Table-1 aggregate-source expression for one aggregate function.
pub fn aggregate_source(func: &AggFunc, sign: Sign) -> CoreResult<Expr> {
    Ok(match (func, sign) {
        (AggFunc::CountStar, Sign::Insert) => Expr::lit(1i64),
        (AggFunc::CountStar, Sign::Delete) => Expr::lit(-1i64),
        (AggFunc::Count(e), Sign::Insert) => {
            e.clone().case_null(Expr::lit(0i64), Expr::lit(1i64))
        }
        (AggFunc::Count(e), Sign::Delete) => {
            e.clone().case_null(Expr::lit(0i64), Expr::lit(-1i64))
        }
        (AggFunc::Sum(e), Sign::Insert) => e.clone(),
        (AggFunc::Sum(e), Sign::Delete) => e.clone().neg(),
        (AggFunc::Min(e), _) | (AggFunc::Max(e), _) => e.clone(),
        (AggFunc::Avg(_), _) => {
            return Err(CoreError::Maintenance(
                "AVG must be rewritten to SUM/COUNT before maintenance".to_string(),
            ))
        }
    })
}

/// The canonical name of the `i`-th aggregate-source column in prepare
/// relations.
pub fn source_column_name(view: &AugmentedView, i: usize) -> String {
    format!("__src_{}", view.def.aggregates[i].alias)
}

/// Projects already-joined, already-filtered change tuples into prepare
/// rows: the view's group-by attributes plus the aggregate sources of the
/// given sign.
pub fn prepare_project(
    catalog: &Catalog,
    view: &AugmentedView,
    joined: &Relation,
    sign: Sign,
) -> CoreResult<Relation> {
    let input_schema = joined_schema(catalog, &view.def)?;
    let mut outputs: Vec<(Expr, Column)> = Vec::with_capacity(
        view.def.group_by.len() + view.def.aggregates.len(),
    );
    for g in &view.def.group_by {
        outputs.push((Expr::col(g), input_schema.column(g)?.clone()));
    }
    for (i, spec) in view.def.aggregates.iter().enumerate() {
        let src = aggregate_source(&spec.func, sign)?;
        let col = match &spec.func {
            AggFunc::CountStar | AggFunc::Count(_) => {
                Column::new(source_column_name(view, i), DataType::Int)
            }
            AggFunc::Sum(e) | AggFunc::Min(e) | AggFunc::Max(e) => {
                let ty = e.infer_type(&input_schema)?.ok_or_else(|| {
                    CoreError::Maintenance(format!("cannot type source of {spec}"))
                })?;
                Column::nullable(source_column_name(view, i), ty)
            }
            AggFunc::Avg(_) => unreachable!("rejected by aggregate_source"),
        };
        outputs.push((src, col));
    }
    Ok(project(joined, &outputs)?)
}

/// Joins raw fact-table change rows with the view's dimension tables and
/// applies the WHERE clause — the FROM/WHERE stage of prepare-insertions /
/// prepare-deletions.
pub fn join_and_filter_changes(
    catalog: &Catalog,
    view: &AugmentedView,
    change_rows: &[Row],
) -> CoreResult<Relation> {
    let fact_schema = catalog.table(&view.def.fact_table)?.schema().clone();
    let rel = Relation::new(fact_schema, change_rows.to_vec());
    let joined = join_dimensions(catalog, &view.def, rel)?;
    Ok(filter(&joined, &view.def.where_clause)?)
}

/// The prepare-insertions view over a set of inserted fact tuples
/// (Figure 6's `pi_` view).
pub fn prepare_insertions(
    catalog: &Catalog,
    view: &AugmentedView,
    inserted: &[Row],
) -> CoreResult<Relation> {
    let joined = join_and_filter_changes(catalog, view, inserted)?;
    prepare_project(catalog, view, &joined, Sign::Insert)
}

/// The prepare-deletions view over a set of deleted fact tuples
/// (Figure 6's `pd_` view).
pub fn prepare_deletions(
    catalog: &Catalog,
    view: &AugmentedView,
    deleted: &[Row],
) -> CoreResult<Relation> {
    let joined = join_and_filter_changes(catalog, view, deleted)?;
    prepare_project(catalog, view, &joined, Sign::Delete)
}

/// The prepare-changes view: `prepare_insertions UNION ALL
/// prepare_deletions` (Figure 6's `pc_` view).
pub fn prepare_changes(
    catalog: &Catalog,
    view: &AugmentedView,
    inserted: &[Row],
    deleted: &[Row],
) -> CoreResult<Relation> {
    let pi = prepare_insertions(catalog, view, inserted)?;
    let pd = prepare_deletions(catalog, view, deleted)?;
    Ok(union_all(&pi, &pd)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_fixtures::*;
    use cubedelta_storage::{row, Date, Value};
    use cubedelta_view::augment;

    // --- Table 1, cell by cell -----------------------------------------

    fn eval_source(func: &AggFunc, sign: Sign, row: &Row, schema: &cubedelta_storage::Schema) -> Value {
        aggregate_source(func, sign)
            .unwrap()
            .bind(schema)
            .unwrap()
            .eval(row)
            .unwrap()
    }

    fn qty_schema() -> cubedelta_storage::Schema {
        cubedelta_storage::Schema::new(vec![Column::nullable("qty", DataType::Int)])
    }

    #[test]
    fn table1_count_star() {
        let s = qty_schema();
        assert_eq!(
            eval_source(&AggFunc::CountStar, Sign::Insert, &row![5i64], &s),
            Value::Int(1)
        );
        assert_eq!(
            eval_source(&AggFunc::CountStar, Sign::Delete, &row![5i64], &s),
            Value::Int(-1)
        );
    }

    #[test]
    fn table1_count_expr() {
        let s = qty_schema();
        let f = AggFunc::Count(Expr::col("qty"));
        assert_eq!(eval_source(&f, Sign::Insert, &row![5i64], &s), Value::Int(1));
        assert_eq!(eval_source(&f, Sign::Delete, &row![5i64], &s), Value::Int(-1));
        let null_row = Row::new(vec![Value::Null]);
        assert_eq!(eval_source(&f, Sign::Insert, &null_row, &s), Value::Int(0));
        assert_eq!(eval_source(&f, Sign::Delete, &null_row, &s), Value::Int(0));
    }

    #[test]
    fn table1_sum() {
        let s = qty_schema();
        let f = AggFunc::Sum(Expr::col("qty"));
        assert_eq!(eval_source(&f, Sign::Insert, &row![5i64], &s), Value::Int(5));
        assert_eq!(eval_source(&f, Sign::Delete, &row![5i64], &s), Value::Int(-5));
        let null_row = Row::new(vec![Value::Null]);
        assert!(eval_source(&f, Sign::Insert, &null_row, &s).is_null());
        assert!(eval_source(&f, Sign::Delete, &null_row, &s).is_null());
    }

    #[test]
    fn table1_min_max_keep_value() {
        let s = qty_schema();
        for f in [AggFunc::Min(Expr::col("qty")), AggFunc::Max(Expr::col("qty"))] {
            assert_eq!(eval_source(&f, Sign::Insert, &row![5i64], &s), Value::Int(5));
            assert_eq!(eval_source(&f, Sign::Delete, &row![5i64], &s), Value::Int(5));
        }
    }

    #[test]
    fn table1_avg_rejected() {
        assert!(aggregate_source(&AggFunc::Avg(Expr::col("qty")), Sign::Insert).is_err());
    }

    // --- Figure 6: prepare views for SiC_sales --------------------------

    #[test]
    fn figure6_prepare_views_for_sic_sales() {
        let cat = retail_catalog_small();
        let sic = augment(&cat, &sic_sales()).unwrap();
        let d9 = Date(10009);
        // An insertion of item 10 (drinks) at store 2, qty 4, and a deletion
        // of an existing tuple: (1, 10, d0, 5, 1.0).
        let ins = vec![row![2i64, 10i64, d9, 4i64, 1.0]];
        let del = vec![row![1i64, 10i64, Date(10000), 5i64, 1.0]];

        let pi = prepare_insertions(&cat, &sic, &ins).unwrap();
        assert_eq!(pi.len(), 1);
        // (storeID, category, src_TotalCount, src_EarliestSale,
        //  src_TotalQuantity, src for augmentation COUNT(qty))
        let r = &pi.rows[0];
        assert_eq!(r[0], Value::Int(2));
        assert_eq!(r[1], Value::str("drinks"));
        assert_eq!(r[2], Value::Int(1)); // count source
        assert_eq!(r[3], Value::Date(d9)); // min(date) source
        assert_eq!(r[4], Value::Int(4)); // qty

        let pd = prepare_deletions(&cat, &sic, &del).unwrap();
        assert_eq!(pd.len(), 1);
        let r = &pd.rows[0];
        assert_eq!(r[0], Value::Int(1));
        assert_eq!(r[1], Value::str("drinks"));
        assert_eq!(r[2], Value::Int(-1)); // count source negated
        assert_eq!(r[3], Value::Date(Date(10000))); // date kept as-is
        assert_eq!(r[4], Value::Int(-5)); // qty negated

        let pc = prepare_changes(&cat, &sic, &ins, &del).unwrap();
        assert_eq!(pc.len(), 2);
    }

    #[test]
    fn where_clause_filters_changes() {
        use cubedelta_expr::{CmpOp, Predicate};
        let cat = retail_catalog_small();
        let def = cubedelta_view::SummaryViewDef::builder("big", "pos")
            .filter(Predicate::cmp(CmpOp::Ge, Expr::col("qty"), Expr::lit(5i64)))
            .group_by(["storeID"])
            .aggregate(AggFunc::CountStar, "cnt")
            .build();
        let v = augment(&cat, &def).unwrap();
        let ins = vec![
            row![1i64, 10i64, Date(10000), 9i64, 1.0], // passes
            row![1i64, 10i64, Date(10000), 2i64, 1.0], // filtered out
        ];
        let pi = prepare_insertions(&cat, &v, &ins).unwrap();
        assert_eq!(pi.len(), 1);
    }

    #[test]
    fn prepare_schema_names_are_stable() {
        let cat = retail_catalog_small();
        let sid = augment(&cat, &sid_sales()).unwrap();
        let pc = prepare_changes(&cat, &sid, &[], &[]).unwrap();
        let names = pc.schema.names();
        assert_eq!(names[0], "storeID");
        assert_eq!(names[3], "__src_TotalCount");
        assert_eq!(names[4], "__src_TotalQuantity");
        assert!(pc.is_empty());
    }
}
