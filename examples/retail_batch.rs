//! The paper's full retail scenario: all four Figure-1 summary tables over
//! a generated warehouse, maintained through simulated nightly batches,
//! with the summary-delta method raced against rematerialization (a small
//! interactive version of the §6 study).
//!
//! ```sh
//! cargo run --release --example retail_batch
//! ```

use cubedelta::core::{MaintainOptions, Warehouse};
use cubedelta::expr::Expr;
use cubedelta::query::AggFunc;
use cubedelta::storage::ChangeBatch;
use cubedelta::view::SummaryViewDef;
use cubedelta::workload::{
    insertion_generating, retail_catalog, update_generating, WorkloadScale,
};

fn figure1_defs() -> Vec<SummaryViewDef> {
    vec![
        SummaryViewDef::builder("SID_sales", "pos")
            .group_by(["storeID", "itemID", "date"])
            .aggregate(AggFunc::CountStar, "TotalCount")
            .aggregate(AggFunc::Sum(Expr::col("qty")), "TotalQuantity")
            .build(),
        SummaryViewDef::builder("sCD_sales", "pos")
            .join_dimension("stores")
            .group_by(["city", "date"])
            .aggregate(AggFunc::CountStar, "TotalCount")
            .aggregate(AggFunc::Sum(Expr::col("qty")), "TotalQuantity")
            .build(),
        SummaryViewDef::builder("SiC_sales", "pos")
            .join_dimension("items")
            .group_by(["storeID", "category"])
            .aggregate(AggFunc::CountStar, "TotalCount")
            .aggregate(AggFunc::Min(Expr::col("date")), "EarliestSale")
            .aggregate(AggFunc::Sum(Expr::col("qty")), "TotalQuantity")
            .build(),
        SummaryViewDef::builder("sR_sales", "pos")
            .join_dimension("stores")
            .group_by(["region"])
            .aggregate(AggFunc::CountStar, "TotalCount")
            .aggregate(AggFunc::Sum(Expr::col("qty")), "TotalQuantity")
            .build(),
    ]
}

fn build(scale: WorkloadScale) -> (Warehouse, cubedelta::workload::RetailParams) {
    let (cat, params) = retail_catalog(scale);
    let mut wh = Warehouse::from_catalog(cat);
    for def in figure1_defs() {
        wh.create_summary_table(&def).unwrap();
    }
    (wh, params)
}

fn main() {
    let scale = WorkloadScale::paper(100_000);
    println!(
        "Generating warehouse: pos={} stores={} items={} dates={}",
        scale.pos_rows, scale.stores, scale.items, scale.dates
    );
    let (mut wh, params) = build(scale);
    for def in figure1_defs() {
        println!(
            "  {:10}: {:>7} rows",
            def.name,
            wh.catalog().table(&def.name).unwrap().len()
        );
    }

    // --- night 1: update-generating changes ----------------------------
    println!("\n== Night 1: update-generating changes (5,000 ins + 5,000 del) ==");
    let batch = ChangeBatch::single(update_generating(wh.catalog(), &params, 10_000, 1));
    let report = wh.maintain(&batch, &MaintainOptions::default()).unwrap();
    print_report(&report);
    wh.check_consistency().unwrap();

    // --- night 2: insertion-generating changes -------------------------
    println!("\n== Night 2: insertion-generating changes (10,000 new-date inserts) ==");
    let batch = ChangeBatch::single(insertion_generating(&params, 10_000, 1, 2));
    let report = wh.maintain(&batch, &MaintainOptions::default()).unwrap();
    print_report(&report);
    wh.check_consistency().unwrap();

    // --- the same night, rematerialized, for comparison -----------------
    println!("\n== Same change set, rematerialization baseline ==");
    let (mut rem, _) = build(scale);
    let b1 = ChangeBatch::single(update_generating(rem.catalog(), &params, 10_000, 1));
    rem.maintain(&b1, &MaintainOptions::default()).unwrap();
    let b2 = ChangeBatch::single(insertion_generating(&params, 10_000, 1, 2));
    let rem_report = rem.rematerialize(&b2, true).unwrap();
    println!(
        "rematerialize (lattice): {:>8.1?} total  vs summary-delta: {:>8.1?} total",
        rem_report.total_time(),
        report.total_time()
    );
    println!(
        "batch-window time alone: {:>8.1?} (remat) vs {:>8.1?} (refresh only)",
        rem_report.refresh_time, report.refresh_time
    );
}

fn print_report(report: &cubedelta::core::MaintenanceReport) {
    println!(
        "propagate {:>8.1?} | apply {:>8.1?} | refresh {:>8.1?} | total {:>8.1?}",
        report.propagate_time,
        report.apply_base_time,
        report.refresh_time,
        report.total_time()
    );
    for v in &report.per_view {
        println!(
            "  {:10} <- {:10} delta={:>6} ins={:>5} upd={:>5} del={:>4} recomp={:>3}",
            v.view,
            v.source,
            v.delta_rows,
            v.refresh.inserted,
            v.refresh.updated,
            v.refresh.deleted,
            v.refresh.recomputed
        );
    }
}
