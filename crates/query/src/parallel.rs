//! Parallel hash aggregation.
//!
//! §4.1.2: "techniques for parallelizing aggregation can be used to speed
//! up computation of the summary-delta table." COUNT/SUM/MIN/MAX are
//! *distributive* (§3.1), so the input can be hash-partitioned on the
//! group-by key, each partition aggregated independently on its own thread,
//! and the partials concatenated — partitions own disjoint group sets, so
//! no merge step is needed.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

use cubedelta_obs::ExecutionMetrics;
use cubedelta_storage::{Column, Row};

use crate::aggregate::AggFunc;
use crate::error::QueryResult;
use crate::exec::hash_aggregate_metered;
use crate::relation::Relation;

/// Inputs below this row count aggregate sequentially even when parallelism
/// is requested: partitioning (one row clone per input row plus a thread
/// spawn per partition) costs more than it saves on small relations.
pub const MIN_PARALLEL_ROWS: usize = 4096;

/// Like [`crate::exec::hash_aggregate`], but partitions the input across
/// `threads` worker threads by group-key hash. Falls back to the sequential
/// operator for trivial inputs (small relations, one thread, or a global
/// aggregate, where partitioning cannot help). When parallelism was
/// requested (`threads > 1`) but the fallback is taken, the decision is
/// recorded in [`ExecutionMetrics::par_fallbacks`] so schedulers and tests
/// can see which branch actually ran.
pub fn hash_aggregate_parallel(
    rel: &Relation,
    group_cols: &[&str],
    aggs: &[(AggFunc, Column)],
    threads: usize,
) -> QueryResult<Relation> {
    hash_aggregate_parallel_metered(rel, group_cols, aggs, threads, &mut ExecutionMetrics::new())
}

/// [`hash_aggregate_parallel`] with per-thread [`ExecutionMetrics`]: each
/// worker counts into its own value and the partials merge into `m` at the
/// join point, so counters need no atomics on the hot path.
pub fn hash_aggregate_parallel_metered(
    rel: &Relation,
    group_cols: &[&str],
    aggs: &[(AggFunc, Column)],
    threads: usize,
    m: &mut ExecutionMetrics,
) -> QueryResult<Relation> {
    if threads <= 1 || group_cols.is_empty() || rel.rows.len() < MIN_PARALLEL_ROWS {
        // A single-thread request is a deliberate sequential run, not a
        // fallback; anything else here is parallelism declined.
        if threads > 1 {
            m.par_fallbacks += 1;
        }
        return hash_aggregate_metered(rel, group_cols, aggs, m);
    }

    let gidx = rel.schema.indices_of(group_cols)?;

    // Hash-partition row indexes by group key.
    let mut partitions: Vec<Vec<Row>> = (0..threads).map(|_| Vec::new()).collect();
    for r in &rel.rows {
        let mut h = DefaultHasher::new();
        for &c in &gidx {
            r[c].hash(&mut h);
        }
        partitions[(h.finish() as usize) % threads].push(r.clone());
    }

    // Aggregate each partition on its own thread.
    let results: Vec<(QueryResult<Relation>, ExecutionMetrics)> =
        std::thread::scope(|scope| {
            let handles: Vec<_> = partitions
                .into_iter()
                .map(|rows| {
                    let schema = rel.schema.clone();
                    scope.spawn(move || {
                        let part = Relation::new(schema, rows);
                        let mut pm = ExecutionMetrics::new();
                        let out = hash_aggregate_metered(&part, group_cols, aggs, &mut pm);
                        (out, pm)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("aggregation worker panicked"))
                .collect()
        });

    // Concatenate: partitions hold disjoint groups.
    let mut out: Option<Relation> = None;
    for (part, pm) in results {
        m.merge(&pm);
        let part = part?;
        match &mut out {
            None => out = Some(part),
            Some(acc) => acc.rows.extend(part.rows),
        }
    }
    Ok(out.unwrap_or_else(|| {
        Relation::empty(rel.schema.project(&gidx))
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::hash_aggregate;
    use cubedelta_expr::Expr;
    use cubedelta_storage::{row, DataType, Schema};

    fn big_relation(n: usize) -> Relation {
        let schema = Schema::new(vec![
            Column::new("k", DataType::Int),
            Column::new("v", DataType::Int),
        ]);
        let rows = (0..n as i64)
            .map(|i| row![i % 97, i % 13])
            .collect();
        Relation::new(schema, rows)
    }

    fn aggs() -> Vec<(AggFunc, Column)> {
        vec![
            (AggFunc::CountStar, Column::new("cnt", DataType::Int)),
            (
                AggFunc::Sum(Expr::col("v")),
                Column::new("total", DataType::Int),
            ),
            (
                AggFunc::Min(Expr::col("v")),
                Column::new("mn", DataType::Int),
            ),
            (
                AggFunc::Max(Expr::col("v")),
                Column::new("mx", DataType::Int),
            ),
        ]
    }

    #[test]
    fn parallel_equals_sequential() {
        let rel = big_relation(20_000);
        let seq = hash_aggregate(&rel, &["k"], &aggs()).unwrap();
        for threads in [2, 3, 8] {
            let par = hash_aggregate_parallel(&rel, &["k"], &aggs(), threads).unwrap();
            assert_eq!(par.sorted_rows(), seq.sorted_rows(), "threads={threads}");
        }
    }

    #[test]
    fn small_inputs_fall_back_and_record_it() {
        let rel = big_relation(100);
        let mut m = ExecutionMetrics::new();
        let par =
            hash_aggregate_parallel_metered(&rel, &["k"], &aggs(), 4, &mut m).unwrap();
        let seq = hash_aggregate(&rel, &["k"], &aggs()).unwrap();
        assert_eq!(par.sorted_rows(), seq.sorted_rows());
        assert_eq!(m.par_fallbacks, 1, "declined parallelism must be visible");
        // Work counters still book the sequential pass.
        assert_eq!(m.rows_scanned, 100);
    }

    #[test]
    fn global_aggregate_falls_back_and_records_it() {
        let rel = big_relation(10_000);
        let mut m = ExecutionMetrics::new();
        let par = hash_aggregate_parallel_metered(&rel, &[], &aggs(), 4, &mut m).unwrap();
        assert_eq!(par.len(), 1);
        assert_eq!(m.par_fallbacks, 1);
    }

    #[test]
    fn single_thread_request_is_not_a_fallback() {
        let rel = big_relation(10_000);
        let mut m = ExecutionMetrics::new();
        hash_aggregate_parallel_metered(&rel, &["k"], &aggs(), 1, &mut m).unwrap();
        assert_eq!(m.par_fallbacks, 0, "threads=1 is deliberate, not declined");
    }

    #[test]
    fn parallel_branch_records_no_fallback() {
        let rel = big_relation(MIN_PARALLEL_ROWS * 2);
        let mut m = ExecutionMetrics::new();
        hash_aggregate_parallel_metered(&rel, &["k"], &aggs(), 4, &mut m).unwrap();
        assert_eq!(m.par_fallbacks, 0);
        assert_eq!(m.rows_scanned, (MIN_PARALLEL_ROWS * 2) as u64);
    }

    #[test]
    fn parallel_metrics_cover_every_row() {
        let rel = big_relation(20_000);
        let mut m = ExecutionMetrics::new();
        let out =
            hash_aggregate_parallel_metered(&rel, &["k"], &aggs(), 4, &mut m).unwrap();
        // Partitions cover the input exactly once; merged counters see all.
        assert_eq!(m.rows_scanned, 20_000);
        assert_eq!(m.hash_probes, 20_000);
        assert_eq!(m.groups_touched, out.len() as u64);
        assert_eq!(m.rows_emitted, out.len() as u64);
    }

    #[test]
    fn empty_input_empty_output() {
        let rel = Relation::empty(big_relation(1).schema);
        let par = hash_aggregate_parallel(&rel, &["k"], &aggs(), 4).unwrap();
        assert!(par.is_empty());
    }
}
