//! # cubedelta-query
//!
//! Minimal relational query execution for CubeDelta: scans, filters,
//! projections, foreign-key hash joins, union-all, and hash group-by
//! aggregation — exactly the operator set the paper's view definitions and
//! maintenance queries need (single-block `SELECT-FROM-WHERE-GROUPBY`).
//!
//! The intermediate representation is a materialized [`Relation`] (schema +
//! rows). All maintenance-time inputs are either change sets (small) or
//! summary tables (much smaller than the fact table), so materialized
//! intermediates match the paper's own execution model on a relational
//! backend.

pub mod aggregate;
pub mod columnar;
pub mod error;
pub mod exec;
pub mod parallel;
pub mod relation;
pub mod sort;

pub use aggregate::{AggClass, AggFunc, AggState};
pub use columnar::{
    hash_aggregate_columnar, hash_aggregate_columnar_metered, hash_aggregate_columnar_parallel,
    hash_aggregate_columnar_parallel_metered,
};
pub use error::{QueryError, QueryResult};
pub use exec::{
    filter, filter_metered, hash_aggregate, hash_aggregate_metered, hash_join,
    hash_join_metered, project, project_metered, union_all, union_all_metered,
};
pub use parallel::{
    hash_aggregate_parallel, hash_aggregate_parallel_metered, MIN_PARALLEL_ROWS,
};
pub use relation::Relation;
pub use sort::{sort_aggregate, sort_aggregate_metered};

// Re-export so operator callers can name the counters type without a
// direct `cubedelta-obs` dependency.
pub use cubedelta_obs::ExecutionMetrics;
