//! Lifecycle soak test: many nights of mixed operations — fact changes,
//! dimension changes, views added and dropped mid-stream, occasional
//! rematerialization — with a full consistency audit after every night.

mod common;

use common::figure1_defs;
use cubedelta::core::{MaintainOptions, MaintenancePolicy, Warehouse};
use cubedelta::expr::Expr;
use cubedelta::query::AggFunc;
use cubedelta::storage::{row, ChangeBatch, DeltaSet, Row};
use cubedelta::view::SummaryViewDef;
use cubedelta::workload::{retail_catalog, update_generating, WorkloadScale};

#[test]
fn twenty_nights_of_everything() {
    twenty_nights(MaintenancePolicy::default());
}

/// The same twenty nights with the fact table split into three shards —
/// dimension churn, view lifecycle, and rematerialization must all keep
/// the cached shard partitions coherent with the catalog.
#[test]
fn twenty_nights_of_everything_sharded() {
    twenty_nights(MaintenancePolicy::with_threads(4).with_shards(3));
}

fn twenty_nights(policy: MaintenancePolicy) {
    let scale = WorkloadScale {
        stores: 12,
        cities: 5,
        regions: 2,
        items: 40,
        categories: 5,
        dates: 8,
        pos_rows: 1_500,
        seed: 77,
    };
    let (cat, params) = retail_catalog(scale);
    let mut wh = Warehouse::from_catalog(cat);
    wh.set_maintenance_policy(policy);
    for def in figure1_defs() {
        wh.create_summary_table(&def).unwrap();
    }

    let mut extra_view_installed = false;
    for night in 0..20u64 {
        match night % 5 {
            // Regular update-generating night.
            0 | 1 | 3 => {
                let batch = ChangeBatch::single(update_generating(
                    wh.catalog(),
                    &params,
                    120,
                    night + 1,
                ));
                let opts = MaintainOptions {
                    use_lattice: night % 2 == 0,
                    pre_aggregate: night % 3 == 0,
                };
                wh.maintain(&batch, &opts).unwrap();
            }
            // Dimension churn: a store hops city.
            2 => {
                let store = (night % scale.stores as u64) as i64 + 1;
                let old: Row = wh
                    .catalog()
                    .table("stores")
                    .unwrap()
                    .rows()
                    .find(|r| r[0] == cubedelta::storage::Value::Int(store))
                    .unwrap()
                    .clone();
                let mut batch = ChangeBatch::new();
                batch.add(DeltaSet {
                    table: "stores".into(),
                    insertions: vec![row![store, "roaming", "nomad"]],
                    deletions: vec![old],
                });
                wh.maintain(&batch, &MaintainOptions::default()).unwrap();
                // Move it back next step implicitly via another hop later.
            }
            // View lifecycle: add/drop an extra view.
            4 => {
                if extra_view_installed {
                    wh.drop_summary_table("nightly_extra").unwrap();
                    extra_view_installed = false;
                } else {
                    wh.create_summary_table(
                        &SummaryViewDef::builder("nightly_extra", "pos")
                            .join_dimension("items")
                            .group_by(["category", "date"])
                            .aggregate(AggFunc::CountStar, "cnt")
                            .aggregate(AggFunc::Max(Expr::col("qty")), "peak")
                            .build(),
                    )
                    .unwrap();
                    extra_view_installed = true;
                }
            }
            _ => unreachable!(),
        }
        wh.check_consistency()
            .unwrap_or_else(|e| panic!("night {night}: {e}"));
    }

    // Finish with a rematerialization and confirm it changes nothing.
    let before: Vec<_> = wh
        .views()
        .iter()
        .map(|v| {
            (
                v.def.name.clone(),
                wh.catalog().table(&v.def.name).unwrap().sorted_rows(),
            )
        })
        .collect();
    wh.rematerialize(&ChangeBatch::new(), true).unwrap();
    for (name, rows) in before {
        assert_eq!(
            wh.catalog().table(&name).unwrap().sorted_rows(),
            rows,
            "rematerializing a consistent warehouse changed {name}"
        );
    }
}
