//! Columnar chunk storage: typed column vectors grouped into fixed-size
//! chunks behind a row-API facade.
//!
//! The propagate hot path is a scan-and-hash-aggregate (§4.1); row-form
//! `Vec<Value>` storage pays an enum-dispatch per value touched. This module
//! stores each column as a typed vector — `Int64`, `Float64`,
//! dictionary-encoded `Str`, `Date` — plus a null bitmap, sliced into
//! [`CHUNK_ROWS`]-row [`Chunk`]s, and exposes the same row-at-a-time API as
//! [`Table`] (slot ids, free-list reuse, `apply_delta`, slot-order
//! iteration) so the lattice/refresh/snapshot layers don't churn.
//!
//! **Facade contract.** A [`ColumnarTable`] and a [`Table`] that start from
//! the same row sequence and receive the same sequence of
//! `insert`/`delete`/`apply_delta` calls expose *identical* row sequences
//! from their iterators: inserts reuse freed slots LIFO exactly as
//! [`Table::insert`] does, and `apply_delta` deletes first-matching
//! occurrences in slot order exactly as [`Table::apply_delta`] does. Values
//! round-trip bit-exactly — a `Float64` vector stores raw `f64` bit
//! patterns, so `-0.0` and NaN payloads survive the facade (the
//! canonicalization rule of [`crate::value::cmp_f64`] applies only to
//! *ordering*, never to storage).
//!
//! A column whose declared type doesn't match an arriving value (the
//! `Value` model permits heterogeneous columns when validation is off, and
//! query outputs mix `Int`/`Float` freely) promotes itself to a
//! [`ColumnData::Generic`] vector of plain `Value`s, preserving exact
//! payloads at the cost of the typed fast path.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use crate::datatype::DataType;
use crate::delta::DeltaSet;
use crate::error::{StorageError, StorageResult};
use crate::row::{Row, RowId};
use crate::schema::Schema;
use crate::table::Table;
use crate::value::{Date, Value};

/// Rows per chunk. Chosen so a chunk's worth of one `i64` column (8 KiB)
/// fits comfortably in L1 alongside its null bitmap.
pub const CHUNK_ROWS: usize = 1024;

/// Which storage engine backs fact/summary scans and the summary-delta
/// aggregation kernel. Sampled once at `Warehouse` construction from
/// `CUBEDELTA_STORAGE` (same pattern as the threads/shards knobs); both
/// modes produce byte-identical summary tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StorageMode {
    /// Row-form `Vec<Value>` tables and the row hash-aggregate kernel.
    #[default]
    Row,
    /// Columnar chunks and the vectorized aggregation kernel.
    Columnar,
}

impl StorageMode {
    /// The canonical spelling, as reported through telemetry.
    pub fn as_str(self) -> &'static str {
        match self {
            StorageMode::Row => "row",
            StorageMode::Columnar => "columnar",
        }
    }

    /// Parses an environment-variable value; `None` for anything unusable
    /// (which falls through to the default, like the threads/shards knobs).
    pub fn parse(s: &str) -> Option<StorageMode> {
        match s.trim().to_ascii_lowercase().as_str() {
            "row" => Some(StorageMode::Row),
            "columnar" | "column" | "col" => Some(StorageMode::Columnar),
            _ => None,
        }
    }
}

impl fmt::Display for StorageMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A packed bitmap, one bit per row. Used both for column null bits and for
/// chunk tombstones.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NullBitmap {
    bits: Vec<u64>,
    len: usize,
}

impl NullBitmap {
    /// An empty bitmap.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True iff no bits are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends one bit.
    pub fn push(&mut self, set: bool) {
        let word = self.len / 64;
        if word == self.bits.len() {
            self.bits.push(0);
        }
        if set {
            self.bits[word] |= 1u64 << (self.len % 64);
        }
        self.len += 1;
    }

    /// Bit `i` (false for out-of-range, so sparse callers stay total).
    pub fn get(&self, i: usize) -> bool {
        if i >= self.len {
            return false;
        }
        (self.bits[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Overwrites bit `i`; `i` must be in range.
    pub fn set(&mut self, i: usize, value: bool) {
        assert!(i < self.len, "bitmap index {i} out of range {}", self.len);
        let mask = 1u64 << (i % 64);
        if value {
            self.bits[i / 64] |= mask;
        } else {
            self.bits[i / 64] &= !mask;
        }
    }

    /// Number of set bits.
    pub fn count_set(&self) -> usize {
        self.bits.iter().map(|w| w.count_ones() as usize).sum()
    }
}

/// A string dictionary: interned `Arc<str>` payloads addressed by dense
/// `u32` codes. Grows monotonically — codes stay stable for the life of the
/// column, so tombstoned rows never invalidate live codes.
#[derive(Debug, Clone, Default)]
pub struct StrDict {
    strings: Vec<Arc<str>>,
    codes: HashMap<Arc<str>, u32>,
}

impl StrDict {
    /// An empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Distinct strings interned so far.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// True iff nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// Interns a string, returning its code (existing code for a repeat).
    pub fn intern(&mut self, s: &Arc<str>) -> u32 {
        if let Some(&code) = self.codes.get(s) {
            return code;
        }
        let code = self.strings.len() as u32;
        self.strings.push(Arc::clone(s));
        self.codes.insert(Arc::clone(s), code);
        code
    }

    /// The string behind a code.
    pub fn get(&self, code: u32) -> &Arc<str> {
        &self.strings[code as usize]
    }
}

/// The physical representation of one column.
#[derive(Debug, Clone)]
pub enum ColumnData {
    /// `Value::Int` payloads (NULL rows hold 0 under a set null bit).
    Int64(Vec<i64>),
    /// `Value::Float` payloads, raw bit patterns — `-0.0`/NaN round-trip.
    Float64(Vec<f64>),
    /// Dictionary codes into `dict` (NULL rows hold code 0 under a null
    /// bit; code 0 is only meaningful when the bit is clear).
    Str {
        /// Per-row dictionary codes.
        codes: Vec<u32>,
        /// The column's dictionary.
        dict: StrDict,
    },
    /// `Value::Date` day counts.
    Date(Vec<i32>),
    /// Mixed-type fallback: plain values, exactly as a row would hold them.
    Generic(Vec<Value>),
}

/// One column of one chunk: typed data plus the null bitmap.
#[derive(Debug, Clone)]
pub struct ColumnVec {
    data: ColumnData,
    nulls: NullBitmap,
}

impl ColumnVec {
    /// An empty typed column for a declared [`DataType`].
    pub fn for_type(dt: DataType) -> Self {
        let data = match dt {
            DataType::Int => ColumnData::Int64(Vec::new()),
            DataType::Float => ColumnData::Float64(Vec::new()),
            DataType::Str => ColumnData::Str {
                codes: Vec::new(),
                dict: StrDict::new(),
            },
            DataType::Date => ColumnData::Date(Vec::new()),
        };
        ColumnVec {
            data,
            nulls: NullBitmap::new(),
        }
    }

    /// An empty mixed-type column.
    pub fn generic() -> Self {
        ColumnVec {
            data: ColumnData::Generic(Vec::new()),
            nulls: NullBitmap::new(),
        }
    }

    /// Number of rows (live and tombstoned alike).
    pub fn len(&self) -> usize {
        self.nulls.len()
    }

    /// True iff no rows were pushed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The physical representation.
    pub fn data(&self) -> &ColumnData {
        &self.data
    }

    /// The null bitmap.
    pub fn nulls(&self) -> &NullBitmap {
        &self.nulls
    }

    /// True once the column has fallen back to [`ColumnData::Generic`].
    pub fn is_generic(&self) -> bool {
        matches!(self.data, ColumnData::Generic(_))
    }

    /// True iff row `i` is NULL.
    pub fn is_null(&self, i: usize) -> bool {
        match &self.data {
            ColumnData::Generic(vs) => vs[i].is_null(),
            _ => self.nulls.get(i),
        }
    }

    /// Whether `v` fits this column's typed representation without
    /// promotion (NULL always fits).
    fn accepts(&self, v: &Value) -> bool {
        matches!(
            (&self.data, v),
            (_, Value::Null)
                | (ColumnData::Int64(_), Value::Int(_))
                | (ColumnData::Float64(_), Value::Float(_))
                | (ColumnData::Str { .. }, Value::Str(_))
                | (ColumnData::Date(_), Value::Date(_))
                | (ColumnData::Generic(_), _)
        )
    }

    /// Rewrites the column as [`ColumnData::Generic`], materializing every
    /// row (the mixed-type escape hatch).
    fn promote_to_generic(&mut self) {
        if self.is_generic() {
            return;
        }
        let values: Vec<Value> = (0..self.len()).map(|i| self.get(i)).collect();
        self.data = ColumnData::Generic(values);
    }

    /// Appends a value, promoting to generic on a type mismatch.
    pub fn push(&mut self, v: &Value) {
        if !self.accepts(v) {
            self.promote_to_generic();
        }
        match (&mut self.data, v) {
            (ColumnData::Generic(vs), v) => {
                vs.push(v.clone());
                self.nulls.push(v.is_null());
            }
            (data, Value::Null) => {
                match data {
                    ColumnData::Int64(xs) => xs.push(0),
                    ColumnData::Float64(xs) => xs.push(0.0),
                    ColumnData::Str { codes, .. } => codes.push(0),
                    ColumnData::Date(xs) => xs.push(0),
                    ColumnData::Generic(_) => unreachable!("handled above"),
                }
                self.nulls.push(true);
            }
            (ColumnData::Int64(xs), Value::Int(i)) => {
                xs.push(*i);
                self.nulls.push(false);
            }
            (ColumnData::Float64(xs), Value::Float(f)) => {
                xs.push(*f);
                self.nulls.push(false);
            }
            (ColumnData::Str { codes, dict }, Value::Str(s)) => {
                codes.push(dict.intern(s));
                self.nulls.push(false);
            }
            (ColumnData::Date(xs), Value::Date(d)) => {
                xs.push(d.0);
                self.nulls.push(false);
            }
            _ => unreachable!("accepts() vetted the pairing"),
        }
    }

    /// Overwrites row `i` (slot reuse), promoting on a type mismatch.
    pub fn set(&mut self, i: usize, v: &Value) {
        if !self.accepts(v) {
            self.promote_to_generic();
        }
        match (&mut self.data, v) {
            (ColumnData::Generic(vs), v) => {
                vs[i] = v.clone();
                self.nulls.set(i, v.is_null());
            }
            (_, Value::Null) => self.nulls.set(i, true),
            (ColumnData::Int64(xs), Value::Int(x)) => {
                xs[i] = *x;
                self.nulls.set(i, false);
            }
            (ColumnData::Float64(xs), Value::Float(f)) => {
                xs[i] = *f;
                self.nulls.set(i, false);
            }
            (ColumnData::Str { codes, dict }, Value::Str(s)) => {
                codes[i] = dict.intern(s);
                self.nulls.set(i, false);
            }
            (ColumnData::Date(xs), Value::Date(d)) => {
                xs[i] = d.0;
                self.nulls.set(i, false);
            }
            _ => unreachable!("accepts() vetted the pairing"),
        }
    }

    /// Materializes row `i` back into a [`Value`], bit-exactly.
    pub fn get(&self, i: usize) -> Value {
        if self.is_null(i) {
            return Value::Null;
        }
        match &self.data {
            ColumnData::Int64(xs) => Value::Int(xs[i]),
            ColumnData::Float64(xs) => Value::Float(xs[i]),
            ColumnData::Str { codes, dict } => Value::Str(Arc::clone(dict.get(codes[i]))),
            ColumnData::Date(xs) => Value::Date(Date(xs[i])),
            ColumnData::Generic(vs) => vs[i].clone(),
        }
    }

    /// Distinct strings in this column's dictionary (0 for non-string
    /// columns) — the dictionary-growth observability hook.
    pub fn dict_len(&self) -> usize {
        match &self.data {
            ColumnData::Str { dict, .. } => dict.len(),
            _ => 0,
        }
    }
}

/// A fixed-capacity slice of rows: one [`ColumnVec`] per schema column plus
/// a tombstone bitmap for deleted slots.
#[derive(Debug, Clone)]
pub struct Chunk {
    columns: Vec<ColumnVec>,
    /// True = the slot is deleted (free-listed at the table level).
    tombs: NullBitmap,
}

impl Chunk {
    fn for_schema(schema: &Schema) -> Self {
        Chunk {
            columns: schema
                .columns()
                .iter()
                .map(|c| ColumnVec::for_type(c.datatype))
                .collect(),
            tombs: NullBitmap::new(),
        }
    }

    /// Rows pushed into this chunk (live and tombstoned).
    pub fn len(&self) -> usize {
        self.tombs.len()
    }

    /// True iff no rows were pushed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The chunk's columns.
    pub fn columns(&self) -> &[ColumnVec] {
        &self.columns
    }

    /// True iff slot `offset` is tombstoned.
    pub fn is_dead(&self, offset: usize) -> bool {
        self.tombs.get(offset)
    }

    fn materialize(&self, offset: usize) -> Row {
        Row::new(self.columns.iter().map(|c| c.get(offset)).collect())
    }
}

/// A columnar table behind the [`Table`] facade: same slot ids, free-list
/// reuse, iteration order, and `apply_delta` semantics, so the two engines
/// stay byte-identical (see the module docs for the facade contract).
#[derive(Debug, Clone)]
pub struct ColumnarTable {
    name: String,
    schema: Schema,
    chunk_rows: usize,
    chunks: Vec<Chunk>,
    /// Slots ever allocated (chunk lens summed); slot id → chunk/offset by
    /// division.
    total_slots: usize,
    free: Vec<RowId>,
    live: usize,
    validate: bool,
}

impl ColumnarTable {
    /// An empty columnar table with the default chunk capacity.
    pub fn new(name: impl Into<String>, schema: Schema) -> Self {
        Self::with_chunk_rows(name, schema, CHUNK_ROWS)
    }

    /// An empty columnar table with an explicit chunk capacity (tests pin
    /// tiny chunks to exercise boundary straddles; minimum 1).
    pub fn with_chunk_rows(name: impl Into<String>, schema: Schema, chunk_rows: usize) -> Self {
        ColumnarTable {
            name: name.into(),
            schema,
            chunk_rows: chunk_rows.max(1),
            chunks: Vec::new(),
            total_slots: 0,
            free: Vec::new(),
            live: 0,
            validate: true,
        }
    }

    /// Builds a columnar table from a row table's live rows, in slot order.
    /// The result is *compacted*: holes from previously freed slots are not
    /// replicated, so slot-order equality with the source holds when the
    /// source has no holes (bag equality holds always).
    pub fn from_table(table: &Table) -> Self {
        let mut ct = ColumnarTable::new(table.name(), table.schema().clone());
        ct.validate = false; // source rows already passed the source's checks
        for row in table.rows() {
            ct.insert(row.clone()).expect("unvalidated insert cannot fail");
        }
        ct.validate = true;
        ct
    }

    /// Materializes back into a row table, preserving slot order of live
    /// rows (validation off during the load, restored after).
    pub fn to_table(&self) -> Table {
        let mut t = Table::new(self.name.clone(), self.schema.clone());
        t.set_validate(false);
        for (_, row) in self.iter() {
            t.insert(row).expect("unvalidated insert cannot fail");
        }
        t.set_validate(self.validate);
        t
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Table schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of live rows.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True iff the table holds no live rows.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Disables per-row validation (for trusted bulk loads).
    pub fn set_validate(&mut self, validate: bool) {
        self.validate = validate;
    }

    /// Number of chunks allocated.
    pub fn chunk_count(&self) -> usize {
        self.chunks.len()
    }

    /// Configured rows-per-chunk.
    pub fn chunk_rows(&self) -> usize {
        self.chunk_rows
    }

    /// The chunks in slot order.
    pub fn chunks(&self) -> &[Chunk] {
        &self.chunks
    }

    fn locate(&self, id: RowId) -> Option<(usize, usize)> {
        let idx = id.index();
        if idx >= self.total_slots {
            return None;
        }
        Some((idx / self.chunk_rows, idx % self.chunk_rows))
    }

    /// Inserts a row, returning its slot id. Mirrors [`Table::insert`]:
    /// freed slots are reused LIFO before new slots are appended.
    pub fn insert(&mut self, row: Row) -> StorageResult<RowId> {
        if self.validate {
            self.schema.check_row(&row)?;
        }
        match self.free.pop() {
            Some(id) => {
                let (c, o) = self.locate(id).expect("free-listed id is in range");
                let chunk = &mut self.chunks[c];
                for (col, v) in chunk.columns.iter_mut().zip(row.iter()) {
                    col.set(o, v);
                }
                chunk.tombs.set(o, false);
                self.live += 1;
                Ok(id)
            }
            None => {
                if self
                    .chunks
                    .last()
                    .map_or(true, |c| c.len() == self.chunk_rows)
                {
                    self.chunks.push(Chunk::for_schema(&self.schema));
                }
                let chunk = self.chunks.last_mut().expect("just ensured");
                for (col, v) in chunk.columns.iter_mut().zip(row.iter()) {
                    col.push(v);
                }
                chunk.tombs.push(false);
                let id = RowId(self.total_slots as u32);
                self.total_slots += 1;
                self.live += 1;
                Ok(id)
            }
        }
    }

    /// Bulk insert.
    pub fn insert_all<I: IntoIterator<Item = Row>>(&mut self, rows: I) -> StorageResult<()> {
        for r in rows {
            self.insert(r)?;
        }
        Ok(())
    }

    /// Fetches a row by id (materialized from the columns).
    pub fn get(&self, id: RowId) -> Option<Row> {
        let (c, o) = self.locate(id)?;
        let chunk = &self.chunks[c];
        if o >= chunk.len() || chunk.is_dead(o) {
            return None;
        }
        Some(chunk.materialize(o))
    }

    /// Deletes a row by id, returning it. The slot is tombstoned and
    /// free-listed; column payloads stay in place until reuse.
    pub fn delete(&mut self, id: RowId) -> StorageResult<Row> {
        let (c, o) = self
            .locate(id)
            .ok_or_else(|| StorageError::MissingRow(format!("row id {}", id.0)))?;
        let chunk = &mut self.chunks[c];
        if o >= chunk.len() || chunk.is_dead(o) {
            return Err(StorageError::MissingRow(format!("row id {}", id.0)));
        }
        let row = chunk.materialize(o);
        chunk.tombs.set(o, true);
        self.free.push(id);
        self.live -= 1;
        Ok(row)
    }

    /// Iterates live rows with their ids, in slot order (the same order
    /// [`Table::iter`] yields for an identical operation history).
    pub fn iter(&self) -> impl Iterator<Item = (RowId, Row)> + '_ {
        (0..self.total_slots).filter_map(move |idx| {
            let (c, o) = (idx / self.chunk_rows, idx % self.chunk_rows);
            let chunk = &self.chunks[c];
            if o >= chunk.len() || chunk.is_dead(o) {
                None
            } else {
                Some((RowId(idx as u32), chunk.materialize(o)))
            }
        })
    }

    /// Iterates live rows in slot order.
    pub fn rows(&self) -> impl Iterator<Item = Row> + '_ {
        self.iter().map(|(_, r)| r)
    }

    /// Clones all live rows into a vector, in slot order.
    pub fn to_rows(&self) -> Vec<Row> {
        self.rows().collect()
    }

    /// Sorted snapshot of the rows — canonical multiset form for equality.
    pub fn sorted_rows(&self) -> Vec<Row> {
        let mut v = self.to_rows();
        v.sort();
        v
    }

    /// Applies a deferred change set with exactly [`Table::apply_delta`]'s
    /// algorithm: count pending deletion occurrences, delete the first
    /// matches in slot order, then insert. Errors (and stops, like the row
    /// engine) when a deletion has no matching row.
    pub fn apply_delta(&mut self, delta: &DeltaSet) -> StorageResult<()> {
        if !delta.deletions.is_empty() {
            let mut pending: HashMap<&Row, usize> = HashMap::new();
            for d in &delta.deletions {
                *pending.entry(d).or_insert(0) += 1;
            }
            let mut remaining = delta.deletions.len();
            let mut to_delete: Vec<RowId> = Vec::with_capacity(remaining);
            for (id, row) in self.iter() {
                if remaining == 0 {
                    break;
                }
                if let Some(cnt) = pending.get_mut(&row) {
                    if *cnt > 0 {
                        *cnt -= 1;
                        remaining -= 1;
                        to_delete.push(id);
                    }
                }
            }
            for id in to_delete {
                self.delete(id)?;
            }
            if remaining > 0 {
                return Err(StorageError::MissingRow(format!(
                    "{remaining} deletion(s) had no matching row in `{}`",
                    self.name
                )));
            }
        }
        for r in &delta.insertions {
            self.insert(r.clone())?;
        }
        Ok(())
    }

    /// Removes every row, keeping the schema and chunk capacity.
    pub fn truncate(&mut self) {
        self.chunks.clear();
        self.total_slots = 0;
        self.free.clear();
        self.live = 0;
    }
}

impl fmt::Display for ColumnarTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} {} [{} rows, {} chunks x {}]",
            self.name,
            self.schema,
            self.live,
            self.chunks.len(),
            self.chunk_rows
        )?;
        for row in self.rows() {
            writeln!(f, "  {row}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row;
    use crate::schema::Column;

    fn schema() -> Schema {
        Schema::new(vec![
            Column::new("a", DataType::Int),
            Column::nullable("f", DataType::Float),
            Column::new("s", DataType::Str),
            Column::nullable("d", DataType::Date),
        ])
    }

    fn sample(i: i64) -> Row {
        Row::new(vec![
            Value::Int(i),
            if i % 3 == 0 {
                Value::Null
            } else {
                Value::Float(i as f64 * 0.5)
            },
            Value::str(format!("s{}", i % 5)),
            if i % 4 == 0 {
                Value::Null
            } else {
                Value::Date(Date(i as i32))
            },
        ])
    }

    /// Bit-level row comparison: `Value` equality folds `-0.0 == 0.0`, so
    /// byte-identity assertions compare float bit patterns explicitly.
    fn bits(rows: &[Row]) -> Vec<Vec<String>> {
        rows.iter()
            .map(|r| {
                r.iter()
                    .map(|v| match v {
                        Value::Float(f) => format!("F:{:016x}", f.to_bits()),
                        other => format!("{other:?}"),
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn storage_mode_parses_and_displays() {
        assert_eq!(StorageMode::parse("row"), Some(StorageMode::Row));
        assert_eq!(StorageMode::parse(" Columnar "), Some(StorageMode::Columnar));
        assert_eq!(StorageMode::parse("col"), Some(StorageMode::Columnar));
        assert_eq!(StorageMode::parse("fast"), None);
        assert_eq!(StorageMode::parse(""), None);
        assert_eq!(StorageMode::Columnar.to_string(), "columnar");
        assert_eq!(StorageMode::default(), StorageMode::Row);
    }

    #[test]
    fn bitmap_push_get_set() {
        let mut b = NullBitmap::new();
        for i in 0..200 {
            b.push(i % 3 == 0);
        }
        assert_eq!(b.len(), 200);
        for i in 0..200 {
            assert_eq!(b.get(i), i % 3 == 0, "bit {i}");
        }
        b.set(1, true);
        b.set(0, false);
        assert!(b.get(1));
        assert!(!b.get(0));
        assert!(!b.get(10_000), "out of range reads as clear");
        assert_eq!(b.count_set(), 200usize.div_ceil(3));
    }

    #[test]
    fn dictionary_grows_only_on_distinct_strings() {
        let mut col = ColumnVec::for_type(DataType::Str);
        for i in 0..100 {
            col.push(&Value::str(format!("k{}", i % 7)));
        }
        assert_eq!(col.dict_len(), 7, "7 distinct strings, 100 pushes");
        for i in 0..100 {
            col.push(&Value::str(format!("fresh{i}")));
        }
        assert_eq!(col.dict_len(), 107, "dictionary grows per new string");
        // Round-trip through codes.
        assert_eq!(col.get(3), Value::str("k3"));
        assert_eq!(col.get(100), Value::str("fresh0"));
    }

    #[test]
    fn typed_columns_roundtrip_bit_exactly() {
        let mut col = ColumnVec::for_type(DataType::Float);
        let hostile = [0.0, -0.0, f64::NAN, f64::from_bits(0x7ff8_0000_0000_0001)];
        for &f in &hostile {
            col.push(&Value::Float(f));
        }
        for (i, &f) in hostile.iter().enumerate() {
            match col.get(i) {
                Value::Float(g) => assert_eq!(g.to_bits(), f.to_bits(), "row {i}"),
                v => panic!("expected float, got {v:?}"),
            }
        }
        assert!(!col.is_generic());
    }

    #[test]
    fn mixed_types_promote_to_generic() {
        let mut col = ColumnVec::for_type(DataType::Int);
        col.push(&Value::Int(1));
        col.push(&Value::Null);
        assert!(!col.is_generic());
        col.push(&Value::Float(2.5)); // mismatch → promotion
        assert!(col.is_generic());
        assert_eq!(col.get(0), Value::Int(1));
        assert!(col.get(1).is_null());
        assert_eq!(col.get(2), Value::Float(2.5));
        // Int/Float stay distinct variants through the fallback.
        assert!(matches!(col.get(0), Value::Int(_)));
        assert!(matches!(col.get(2), Value::Float(_)));
    }

    #[test]
    fn chunk_boundary_straddles() {
        // chunk_rows = 4: rows 0..10 straddle three chunks; delete across
        // the 4/8 boundaries, reinsert, and verify against a row Table
        // driven by the identical op sequence.
        let mut ct = ColumnarTable::with_chunk_rows("t", schema(), 4);
        let mut rt = Table::new("t", schema());
        for i in 0..10 {
            let r = sample(i);
            let cid = ct.insert(r.clone()).unwrap();
            let rid = rt.insert(r).unwrap();
            assert_eq!(cid, rid);
        }
        assert_eq!(ct.chunk_count(), 3);
        for id in [3u32, 4, 7, 8] {
            let c = ct.delete(RowId(id)).unwrap();
            let r = rt.delete(RowId(id)).unwrap();
            assert_eq!(c, r);
        }
        for i in 20..23 {
            let r = sample(i);
            let cid = ct.insert(r.clone()).unwrap();
            let rid = rt.insert(r).unwrap();
            assert_eq!(cid, rid, "freed slots must be reused LIFO like Table");
        }
        assert_eq!(bits(&ct.to_rows()), bits(&rt.to_rows()));
        assert_eq!(ct.len(), rt.len());
    }

    #[test]
    fn single_row_chunks() {
        let mut ct = ColumnarTable::with_chunk_rows("t", schema(), 1);
        for i in 0..5 {
            ct.insert(sample(i)).unwrap();
        }
        assert_eq!(ct.chunk_count(), 5);
        ct.delete(RowId(2)).unwrap();
        assert_eq!(ct.to_rows().len(), 4);
        let id = ct.insert(sample(9)).unwrap();
        assert_eq!(id, RowId(2), "single-row chunk slot is reusable");
        assert_eq!(ct.get(RowId(2)).unwrap(), sample(9));
    }

    #[test]
    fn null_bitmap_roundtrips_through_row_facade() {
        let mut ct = ColumnarTable::new("t", schema());
        let rows: Vec<Row> = (0..50).map(sample).collect();
        ct.insert_all(rows.clone()).unwrap();
        let back = ct.to_table();
        assert_eq!(back.to_rows(), rows);
        // NULLs landed in the bitmap, not as Generic promotion.
        for chunk in ct.chunks() {
            assert!(!chunk.columns()[1].is_generic());
            assert!(!chunk.columns()[3].is_generic());
        }
        assert!(ct.chunks()[0].columns()[1].nulls().count_set() > 0);
    }

    #[test]
    fn from_table_to_table_roundtrip() {
        let mut rt = Table::new("t", schema());
        for i in 0..20 {
            rt.insert(sample(i)).unwrap();
        }
        let ct = ColumnarTable::from_table(&rt);
        assert_eq!(ct.len(), rt.len());
        assert_eq!(bits(&ct.to_rows()), bits(&rt.to_rows()));
        assert_eq!(bits(&ct.to_table().to_rows()), bits(&rt.to_rows()));
    }

    #[test]
    fn apply_delta_matches_table_engine() {
        let mut ct = ColumnarTable::with_chunk_rows("t", schema(), 4);
        let mut rt = Table::new("t", schema());
        // Seed with duplicates so multiset deletion semantics matter.
        for i in [1i64, 2, 2, 3, 3, 3, 4] {
            ct.insert(sample(i)).unwrap();
            rt.insert(sample(i)).unwrap();
        }
        let delta = DeltaSet {
            table: "t".into(),
            insertions: vec![sample(7), sample(2)],
            deletions: vec![sample(3), sample(2)],
        };
        ct.apply_delta(&delta).unwrap();
        rt.apply_delta(&delta).unwrap();
        assert_eq!(bits(&ct.to_rows()), bits(&rt.to_rows()));

        // A missing deletion errors in both engines.
        let bad = DeltaSet {
            table: "t".into(),
            insertions: vec![],
            deletions: vec![sample(99)],
        };
        assert!(matches!(
            ct.apply_delta(&bad),
            Err(StorageError::MissingRow(_))
        ));
        assert!(matches!(
            rt.apply_delta(&bad),
            Err(StorageError::MissingRow(_))
        ));
    }

    #[test]
    fn validation_mirrors_table() {
        let mut ct = ColumnarTable::new("t", schema());
        assert!(ct.insert(row![1i64]).is_err(), "arity checked");
        assert!(ct.insert(row!["x", 1.0, "s", 2i64]).is_err(), "types checked");
        ct.set_validate(false);
        assert!(ct.insert(row![1i64]).is_ok(), "trusted mode skips checks");
    }

    #[test]
    fn truncate_clears_everything() {
        let mut ct = ColumnarTable::with_chunk_rows("t", schema(), 2);
        for i in 0..7 {
            ct.insert(sample(i)).unwrap();
        }
        ct.delete(RowId(1)).unwrap();
        ct.truncate();
        assert!(ct.is_empty());
        assert_eq!(ct.chunk_count(), 0);
        let id = ct.insert(sample(1)).unwrap();
        assert_eq!(id, RowId(0), "slot ids restart after truncate");
    }
}
