//! Dimension-table changes (§4.1.4) and MIN/MAX recomputation (§4.2) in
//! action: an item changes category, a store moves city, and extrema get
//! deleted — all maintained incrementally.
//!
//! ```sh
//! cargo run --example dimension_churn
//! ```

use cubedelta::core::{MaintainOptions, Warehouse};
use cubedelta::expr::Expr;
use cubedelta::query::AggFunc;
use cubedelta::storage::{row, ChangeBatch, Date, DeltaSet};
use cubedelta::view::SummaryViewDef;
use cubedelta::workload::retail_catalog_small;

fn main() {
    let mut wh = Warehouse::from_catalog(retail_catalog_small());
    wh.create_summary_table(
        &SummaryViewDef::builder("SiC_sales", "pos")
            .join_dimension("items")
            .group_by(["storeID", "category"])
            .aggregate(AggFunc::CountStar, "TotalCount")
            .aggregate(AggFunc::Min(Expr::col("date")), "EarliestSale")
            .aggregate(AggFunc::Sum(Expr::col("qty")), "TotalQuantity")
            .build(),
    )
    .unwrap();
    println!("Initial SiC_sales:\n{}", wh.catalog().table("SiC_sales").unwrap());

    // --- §4.1.4: a dimension-table change --------------------------------
    println!("== item 10 (cola) moves from `drinks` to `beverages` ==");
    let mut batch = ChangeBatch::new();
    batch.add(DeltaSet {
        table: "items".into(),
        insertions: vec![row![10i64, "cola", "beverages", 0.5]],
        deletions: vec![row![10i64, "cola", "drinks", 0.5]],
    });
    let report = wh.maintain(&batch, &MaintainOptions::default()).unwrap();
    let v = report.view("SiC_sales").unwrap();
    println!(
        "delta rows: {} (ins={} upd={} del={})",
        v.delta_rows, v.refresh.inserted, v.refresh.updated, v.refresh.deleted
    );
    println!("{}", wh.catalog().table("SiC_sales").unwrap());
    wh.check_consistency().unwrap();

    // --- §4.2: deleting the MIN forces a recompute ------------------------
    println!("== deleting the earliest sale of (store 1, beverages) ==");
    let d0 = Date(10000);
    let batch = ChangeBatch::single(DeltaSet::deletions(
        "pos",
        vec![row![1i64, 10i64, d0, 5i64, 1.0]],
    ));
    let report = wh.maintain(&batch, &MaintainOptions::default()).unwrap();
    let v = report.view("SiC_sales").unwrap();
    println!(
        "refresh recomputed {} group(s) from base data (MIN threatened)",
        v.refresh.recomputed
    );
    println!("{}", wh.catalog().table("SiC_sales").unwrap());
    wh.check_consistency().unwrap();

    // --- insertions-only fast path -----------------------------------------
    println!("== inserting an even earlier sale (insertions-only fast path) ==");
    let batch = ChangeBatch::single(DeltaSet::insertions(
        "pos",
        vec![row![1i64, 10i64, Date(9990), 2i64, 1.0]],
    ));
    let report = wh.maintain(&batch, &MaintainOptions::default()).unwrap();
    let v = report.view("SiC_sales").unwrap();
    println!(
        "recomputed: {} (the integrity-constraint optimization merged MIN directly)",
        v.refresh.recomputed
    );
    println!("{}", wh.catalog().table("SiC_sales").unwrap());
    wh.check_consistency().unwrap();
    println!("consistency: OK");
}
