//! Shared, thread-safe metrics: counters, gauges, and fixed-bucket
//! latency histograms, grouped in a [`MetricsRegistry`].
//!
//! Unlike [`crate::ExecutionMetrics`] (per-call-tree plain data), these
//! are long-lived and shared: the warehouse owns one registry and every
//! maintenance cycle records into it, so operators and tests can observe
//! totals across cycles. Handles are cheap clones of `Arc`s; updates are
//! relaxed atomics (totals, not synchronization).

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use crate::json::JsonValue;

/// Monotonic counter handle.
#[derive(Debug, Clone, Default)]
pub struct Counter {
    value: Arc<AtomicU64>,
}

impl Counter {
    /// Adds 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// Last-value-wins gauge handle.
#[derive(Debug, Clone, Default)]
pub struct Gauge {
    value: Arc<AtomicI64>,
}

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adjusts the gauge by `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
    }
}

/// Upper bounds (inclusive) of the latency buckets, in microseconds.
/// Roughly 1-2-5 per decade from 10µs to 10s, plus an overflow bucket.
pub const LATENCY_BUCKETS_US: &[u64] = &[
    10, 20, 50, 100, 200, 500, 1_000, 2_000, 5_000, 10_000, 20_000, 50_000, 100_000, 200_000,
    500_000, 1_000_000, 2_000_000, 5_000_000, 10_000_000,
];

#[derive(Debug)]
struct HistogramInner {
    // One slot per bound plus the overflow bucket.
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum_us: AtomicU64,
    max_us: AtomicU64,
}

/// Fixed-bucket latency histogram handle (microsecond resolution).
#[derive(Debug, Clone)]
pub struct Histogram {
    inner: Arc<HistogramInner>,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            inner: Arc::new(HistogramInner {
                buckets: (0..=LATENCY_BUCKETS_US.len())
                    .map(|_| AtomicU64::new(0))
                    .collect(),
                count: AtomicU64::new(0),
                sum_us: AtomicU64::new(0),
                max_us: AtomicU64::new(0),
            }),
        }
    }
}

impl Histogram {
    /// Records one observation, in microseconds.
    pub fn record_us(&self, us: u64) {
        let idx = LATENCY_BUCKETS_US
            .iter()
            .position(|&bound| us <= bound)
            .unwrap_or(LATENCY_BUCKETS_US.len());
        self.inner.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.inner.count.fetch_add(1, Ordering::Relaxed);
        self.inner.sum_us.fetch_add(us, Ordering::Relaxed);
        self.inner.max_us.fetch_max(us, Ordering::Relaxed);
    }

    /// Records a [`Duration`] observation.
    pub fn record(&self, d: Duration) {
        self.record_us(d.as_micros().min(u64::MAX as u128) as u64);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.inner.count.load(Ordering::Relaxed)
    }

    /// An immutable copy of the current state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .inner
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.inner.count.load(Ordering::Relaxed),
            sum_us: self.inner.sum_us.load(Ordering::Relaxed),
            max_us: self.inner.max_us.load(Ordering::Relaxed),
        }
    }

    fn reset(&self) {
        for b in &self.inner.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.inner.count.store(0, Ordering::Relaxed);
        self.inner.sum_us.store(0, Ordering::Relaxed);
        self.inner.max_us.store(0, Ordering::Relaxed);
    }
}

/// Point-in-time copy of a histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket counts; the final slot is the overflow bucket.
    pub buckets: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of observations, µs.
    pub sum_us: u64,
    /// Largest observation, µs.
    pub max_us: u64,
}

impl HistogramSnapshot {
    /// Mean observation in µs (0 when empty).
    pub fn mean_us(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_us as f64 / self.count as f64
        }
    }

    /// Upper bound (µs) of the bucket containing the `q`-quantile
    /// observation, `q` in `[0, 1]`, capped at `max_us` so the estimate
    /// never exceeds an observed value (a single 5µs sample reports
    /// p50 = 5, not the 10µs bucket bound). Returns `max_us` for the
    /// overflow bucket so the estimate stays finite, and 0 when empty.
    pub fn quantile_us(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return LATENCY_BUCKETS_US
                    .get(i)
                    .copied()
                    .unwrap_or(self.max_us)
                    .min(self.max_us);
            }
        }
        self.max_us
    }

    /// This snapshot as a JSON object.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::object([
            ("count", JsonValue::UInt(self.count)),
            ("sum_us", JsonValue::UInt(self.sum_us)),
            ("max_us", JsonValue::UInt(self.max_us)),
            ("mean_us", JsonValue::Float(self.mean_us())),
            ("p50_us", JsonValue::UInt(self.quantile_us(0.5))),
            ("p90_us", JsonValue::UInt(self.quantile_us(0.9))),
            ("p99_us", JsonValue::UInt(self.quantile_us(0.99))),
        ])
    }
}

#[derive(Debug, Default)]
struct RegistryInner {
    counters: Mutex<BTreeMap<String, Counter>>,
    gauges: Mutex<BTreeMap<String, Gauge>>,
    histograms: Mutex<BTreeMap<String, Histogram>>,
}

/// A named family of shared metrics. Cloning shares the same store.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    inner: Arc<RegistryInner>,
}

impl MetricsRegistry {
    /// A fresh, empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter named `name`, creating it at zero on first use.
    pub fn counter(&self, name: &str) -> Counter {
        self.inner
            .counters
            .lock()
            .expect("registry poisoned")
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// The gauge named `name`, creating it at zero on first use.
    pub fn gauge(&self, name: &str) -> Gauge {
        self.inner
            .gauges
            .lock()
            .expect("registry poisoned")
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// The latency histogram named `name`, creating it empty on first use.
    pub fn histogram(&self, name: &str) -> Histogram {
        self.inner
            .histograms
            .lock()
            .expect("registry poisoned")
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// A point-in-time copy of every metric.
    pub fn snapshot(&self) -> RegistrySnapshot {
        RegistrySnapshot {
            counters: self
                .inner
                .counters
                .lock()
                .expect("registry poisoned")
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: self
                .inner
                .gauges
                .lock()
                .expect("registry poisoned")
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: self
                .inner
                .histograms
                .lock()
                .expect("registry poisoned")
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }

    /// Zeroes every metric (handles stay valid — they share the same
    /// atomics, so outstanding clones observe the reset too).
    ///
    /// Every metric in the registry is a *lifetime* total: counters are
    /// monotonic for the life of the process and the Prometheus exporter
    /// ([`crate::export`]) publishes them as `_total` series, so calling
    /// `reset` while a scrape endpoint is live makes counters go
    /// backwards and breaks `rate()` over the scrape series. `reset` is
    /// intended for bench harnesses and tests that reuse one warehouse
    /// across measurement windows; production services should never call
    /// it — take a [`MetricsRegistry::snapshot`] and diff instead.
    pub fn reset(&self) {
        for c in self.inner.counters.lock().expect("registry poisoned").values() {
            c.reset();
        }
        for g in self.inner.gauges.lock().expect("registry poisoned").values() {
            g.reset();
        }
        for h in self
            .inner
            .histograms
            .lock()
            .expect("registry poisoned")
            .values()
        {
            h.reset();
        }
    }
}

/// Point-in-time copy of a whole registry.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RegistrySnapshot {
    pub counters: BTreeMap<String, u64>,
    pub gauges: BTreeMap<String, i64>,
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl RegistrySnapshot {
    /// The snapshot as a JSON object with `counters`/`gauges`/`histograms`
    /// sections (keys sorted — `BTreeMap` order — for stable diffs).
    pub fn to_json(&self) -> JsonValue {
        JsonValue::object([
            (
                "counters",
                JsonValue::object(
                    self.counters
                        .iter()
                        .map(|(k, v)| (k.clone(), JsonValue::UInt(*v))),
                ),
            ),
            (
                "gauges",
                JsonValue::object(
                    self.gauges
                        .iter()
                        .map(|(k, v)| (k.clone(), JsonValue::Int(*v))),
                ),
            ),
            (
                "histograms",
                JsonValue::object(
                    self.histograms
                        .iter()
                        .map(|(k, v)| (k.clone(), v.to_json())),
                ),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_semantics() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("maintain.cycles");
        c.inc();
        c.add(4);
        // Same name returns the same underlying counter.
        assert_eq!(reg.counter("maintain.cycles").get(), 5);
        // Different name is independent.
        assert_eq!(reg.counter("other").get(), 0);
    }

    #[test]
    fn gauge_semantics() {
        let reg = MetricsRegistry::new();
        let g = reg.gauge("views.materialized");
        g.set(4);
        g.add(-1);
        assert_eq!(reg.gauge("views.materialized").get(), 3);
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = Histogram::default();
        // 10 fast, 10 slow observations.
        for _ in 0..10 {
            h.record_us(5);
        }
        for _ in 0..10 {
            h.record_us(150_000);
        }
        h.record(Duration::from_secs(20)); // overflow bucket
        let s = h.snapshot();
        assert_eq!(s.count, 21);
        assert_eq!(s.max_us, 20_000_000);
        assert_eq!(s.buckets[0], 10); // ≤10µs
        assert_eq!(*s.buckets.last().unwrap(), 1); // overflow
        assert_eq!(s.quantile_us(0.25), 10);
        assert_eq!(s.quantile_us(0.75), 200_000);
        assert_eq!(s.quantile_us(1.0), 20_000_000);
        assert!(s.mean_us() > 0.0);
    }

    #[test]
    fn quantiles_are_monotone_in_q() {
        let h = Histogram::default();
        // A spread across several buckets including the overflow bucket.
        for us in [3, 7, 15, 80, 450, 9_000, 75_000, 300_000, 4_000_000, 15_000_000] {
            h.record_us(us);
        }
        let s = h.snapshot();
        let p50 = s.quantile_us(0.5);
        let p90 = s.quantile_us(0.9);
        let p99 = s.quantile_us(0.99);
        assert!(p50 <= p90, "p50={p50} > p90={p90}");
        assert!(p90 <= p99, "p90={p90} > p99={p99}");
        assert!(p99 <= s.max_us, "p99={p99} > max={}", s.max_us);
        assert_eq!(s.quantile_us(1.0), s.max_us);
    }

    #[test]
    fn single_sample_quantiles_equal_the_sample() {
        // Regression: a lone 5µs observation used to report p50 = 10 (the
        // bucket upper bound), violating p50 ≤ max. The estimate is capped
        // at max_us.
        let h = Histogram::default();
        h.record_us(5);
        let s = h.snapshot();
        for q in [0.0, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(s.quantile_us(q), 5, "q={q}");
        }
    }

    #[test]
    fn empty_histogram_quantiles_are_zero() {
        let s = Histogram::default().snapshot();
        assert_eq!(s.count, 0);
        for q in [0.0, 0.5, 1.0] {
            assert_eq!(s.quantile_us(q), 0, "q={q}");
        }
        assert_eq!(s.mean_us(), 0.0);
    }

    #[test]
    fn bucket_boundary_values_land_in_their_bucket() {
        // Bounds are inclusive: an observation exactly at a bound counts
        // in that bucket, one past it rolls to the next.
        let h = Histogram::default();
        h.record_us(10);
        h.record_us(11);
        let s = h.snapshot();
        assert_eq!(s.buckets[0], 1); // ≤10µs
        assert_eq!(s.buckets[1], 1); // ≤20µs
        assert_eq!(s.quantile_us(0.5), 10);
        // p100 reports the bucket bound capped at the observed max (11).
        assert_eq!(s.quantile_us(1.0), 11);
    }

    #[test]
    fn overflow_bucket_reports_max() {
        let h = Histogram::default();
        h.record_us(30_000_000); // past the last 10s bound
        let s = h.snapshot();
        assert_eq!(*s.buckets.last().unwrap(), 1);
        assert_eq!(s.quantile_us(0.5), 30_000_000);
    }

    #[test]
    fn out_of_range_q_clamps() {
        let h = Histogram::default();
        h.record_us(100);
        let s = h.snapshot();
        assert_eq!(s.quantile_us(-1.0), s.quantile_us(0.0));
        assert_eq!(s.quantile_us(2.0), s.quantile_us(1.0));
    }

    #[test]
    fn snapshot_then_reset() {
        let reg = MetricsRegistry::new();
        reg.counter("a").add(7);
        reg.gauge("b").set(-2);
        reg.histogram("h").record_us(42);
        let snap = reg.snapshot();
        assert_eq!(snap.counters["a"], 7);
        assert_eq!(snap.gauges["b"], -2);
        assert_eq!(snap.histograms["h"].count, 1);

        reg.reset();
        let after = reg.snapshot();
        assert_eq!(after.counters["a"], 0);
        assert_eq!(after.gauges["b"], 0);
        assert_eq!(after.histograms["h"].count, 0);
        // Snapshot taken before the reset is unaffected.
        assert_eq!(snap.counters["a"], 7);
    }

    #[test]
    fn clones_share_storage_across_threads() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("shared");
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(reg.counter("shared").get(), 4000);
    }

    #[test]
    fn snapshot_json_shape() {
        let reg = MetricsRegistry::new();
        reg.counter("x").inc();
        reg.histogram("lat").record_us(99);
        let json = reg.snapshot().to_json().render();
        assert!(json.contains("\"counters\":{\"x\":1}"));
        assert!(json.contains("\"p50_us\""));
    }
}
