//! Warehouses with more than one fact table: views over different fact
//! tables never derive from each other, form separate lattice components,
//! and maintain independently within one batch.

mod common;

use cubedelta::core::{MaintainOptions, Warehouse};
use cubedelta::expr::Expr;
use cubedelta::query::AggFunc;
use cubedelta::storage::{
    row, ChangeBatch, Column, DataType, Date, DeltaSet, Schema,
};
use cubedelta::view::SummaryViewDef;
use cubedelta::workload::retail_catalog_small;

/// Adds a second fact table, `returns(storeID, itemID, date, qty)`, to the
/// retail fixture.
fn two_fact_warehouse() -> Warehouse {
    let mut wh = Warehouse::from_catalog(retail_catalog_small());
    wh.create_fact_table(
        "returns",
        Schema::new(vec![
            Column::new("storeID", DataType::Int),
            Column::new("itemID", DataType::Int),
            Column::new("date", DataType::Date),
            Column::nullable("qty", DataType::Int),
        ]),
    )
    .unwrap();
    wh.add_foreign_key("returns", "storeID", "stores", "storeID").unwrap();
    wh.insert(
        "returns",
        vec![
            row![1i64, 10i64, Date(10001), 1i64],
            row![2i64, 10i64, Date(10002), 2i64],
        ],
    )
    .unwrap();

    wh.create_summary_table(
        &SummaryViewDef::builder("sales_by_store", "pos")
            .group_by(["storeID"])
            .aggregate(AggFunc::CountStar, "cnt")
            .aggregate(AggFunc::Sum(Expr::col("qty")), "sold")
            .build(),
    )
    .unwrap();
    wh.create_summary_table(
        &SummaryViewDef::builder("returns_by_store", "returns")
            .group_by(["storeID"])
            .aggregate(AggFunc::CountStar, "cnt")
            .aggregate(AggFunc::Sum(Expr::col("qty")), "returned")
            .build(),
    )
    .unwrap();
    wh.create_summary_table(
        &SummaryViewDef::builder("returns_by_region", "returns")
            .join_dimension("stores")
            .group_by(["region"])
            .aggregate(AggFunc::CountStar, "cnt")
            .aggregate(AggFunc::Sum(Expr::col("qty")), "returned")
            .build(),
    )
    .unwrap();
    wh
}

#[test]
fn views_over_different_facts_are_unrelated() {
    let mut wh = two_fact_warehouse();
    let lat = wh.lattice().unwrap();
    let idx = |name: &str| {
        lat.views()
            .iter()
            .position(|v| v.def.name == name)
            .unwrap()
    };
    let sales = idx("sales_by_store");
    let ret_store = idx("returns_by_store");
    let ret_region = idx("returns_by_region");
    // Same group-by, different fact tables: no derivation either way.
    assert!(!lat.strictly_below(sales, ret_store));
    assert!(!lat.strictly_below(ret_store, sales));
    // Within the returns component, the region view derives from the store
    // view.
    assert!(lat.strictly_below(ret_region, ret_store));
}

#[test]
fn one_batch_maintains_both_components() {
    let mut wh = two_fact_warehouse();
    let mut batch = ChangeBatch::new();
    batch.add(DeltaSet::insertions(
        "pos",
        vec![row![3i64, 30i64, Date(10003), 4i64, 0.8]],
    ));
    batch.add(DeltaSet {
        table: "returns".into(),
        insertions: vec![row![3i64, 30i64, Date(10003), 1i64]],
        deletions: vec![row![1i64, 10i64, Date(10001), 1i64]],
    });
    let report = wh.maintain(&batch, &MaintainOptions::default()).unwrap();
    wh.check_consistency().unwrap();
    assert_eq!(report.per_view.len(), 3);
    // returns_by_region cascades from returns_by_store.
    let rr = report
        .per_view
        .iter()
        .find(|v| v.view == "returns_by_region")
        .unwrap();
    assert_eq!(rr.source, "returns_by_store");
}

#[test]
fn changes_to_one_fact_leave_other_views_untouched() {
    let mut wh = two_fact_warehouse();
    let before = wh
        .catalog()
        .table("sales_by_store")
        .unwrap()
        .sorted_rows();
    let batch = ChangeBatch::single(DeltaSet::deletions(
        "returns",
        vec![row![2i64, 10i64, Date(10002), 2i64]],
    ));
    let report = wh.maintain(&batch, &MaintainOptions::default()).unwrap();
    wh.check_consistency().unwrap();
    assert_eq!(
        wh.catalog().table("sales_by_store").unwrap().sorted_rows(),
        before
    );
    let sales = report
        .per_view
        .iter()
        .find(|v| v.view == "sales_by_store")
        .unwrap();
    assert_eq!(sales.delta_rows, 0);
    assert_eq!(sales.refresh.total(), 0);
}
