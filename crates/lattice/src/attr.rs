//! Attribute-set lattices with partial materialization.
//!
//! An [`AttrLattice`] holds a set of nodes (attribute sets naming group-by
//! combinations) plus the *derivability* partial order between them. Edges
//! are the covering relation (transitive reduction): each edge `v1 → v2`
//! means `v2` is computable from `v1` by a further aggregation (§3.2).
//!
//! Removing a node (§3.4) models *partial materialization*: incoming and
//! outgoing edges are rewired so that every formerly-transitive derivation
//! survives.

use std::collections::BTreeSet;
use std::fmt;

/// A lattice (or, after node removals, a partial order) over attribute sets.
#[derive(Debug, Clone)]
pub struct AttrLattice {
    nodes: Vec<BTreeSet<String>>,
    /// `le[a][b]` ⇔ node `a` is derivable from node `b` (`a ⊑ b`).
    le: Vec<Vec<bool>>,
    /// Covering edges `(parent, child)`.
    edges: Vec<(usize, usize)>,
}

impl AttrLattice {
    /// Builds a lattice from nodes and a derivability test
    /// `le(a, b) = "a is derivable from b"`. The test must be a partial
    /// order on the given nodes (reflexive, transitive, antisymmetric).
    pub fn build<F>(nodes: Vec<BTreeSet<String>>, le: F) -> Self
    where
        F: Fn(&BTreeSet<String>, &BTreeSet<String>) -> bool,
    {
        let n = nodes.len();
        let mut matrix = vec![vec![false; n]; n];
        for (i, a) in nodes.iter().enumerate() {
            for (j, b) in nodes.iter().enumerate() {
                matrix[i][j] = le(a, b);
            }
        }
        let mut lat = AttrLattice {
            nodes,
            le: matrix,
            edges: Vec::new(),
        };
        lat.recompute_edges();
        lat
    }

    /// Recomputes the covering edges from the order matrix.
    fn recompute_edges(&mut self) {
        let n = self.nodes.len();
        self.edges.clear();
        for child in 0..n {
            for parent in 0..n {
                if parent == child || !self.le[child][parent] || self.le[parent][child] {
                    continue;
                }
                // Covering edge iff no strictly intermediate node.
                let covered = (0..n).any(|m| {
                    m != parent
                        && m != child
                        && self.le[child][m]
                        && !self.le[m][child]
                        && self.le[m][parent]
                        && !self.le[parent][m]
                });
                if !covered {
                    self.edges.push((parent, child));
                }
            }
        }
        self.edges.sort_unstable();
    }

    /// The nodes.
    pub fn nodes(&self) -> &[BTreeSet<String>] {
        &self.nodes
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True iff the lattice is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Covering edges as `(parent, child)` index pairs.
    pub fn edges(&self) -> &[(usize, usize)] {
        &self.edges
    }

    /// True iff node `a` is derivable from node `b`.
    pub fn derivable(&self, a: usize, b: usize) -> bool {
        self.le[a][b]
    }

    /// Indexes of nodes from which `child` has a covering edge.
    pub fn parents(&self, child: usize) -> Vec<usize> {
        self.edges
            .iter()
            .filter(|(_, c)| *c == child)
            .map(|(p, _)| *p)
            .collect()
    }

    /// Indexes of nodes to which `parent` has a covering edge.
    pub fn children(&self, parent: usize) -> Vec<usize> {
        self.edges
            .iter()
            .filter(|(p, _)| *p == parent)
            .map(|(_, c)| *c)
            .collect()
    }

    /// Nodes with no parents (the top elements; a true lattice has one).
    pub fn tops(&self) -> Vec<usize> {
        (0..self.nodes.len())
            .filter(|&i| self.parents(i).is_empty())
            .collect()
    }

    /// Nodes with no children (the bottom elements).
    pub fn bottoms(&self) -> Vec<usize> {
        (0..self.nodes.len())
            .filter(|&i| self.children(i).is_empty())
            .collect()
    }

    /// Finds a node index by its attribute set.
    pub fn find<I, S>(&self, attrs: I) -> Option<usize>
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let set: BTreeSet<String> = attrs
            .into_iter()
            .map(|s| s.as_ref().to_string())
            .collect();
        self.nodes.iter().position(|n| *n == set)
    }

    /// Removes a node, modelling partial materialization (§3.4). Edges are
    /// rewired automatically because the order matrix (minus the removed
    /// node) still contains every transitive derivation: for every incoming
    /// edge `(n1, n)` and outgoing edge `(n, n2)`, the recomputed covering
    /// relation contains `(n1, n2)` unless another path covers it.
    pub fn remove_node(&mut self, idx: usize) {
        self.nodes.remove(idx);
        self.le.remove(idx);
        for row in &mut self.le {
            row.remove(idx);
        }
        self.recompute_edges();
    }

    /// Nodes grouped into levels by longest path from a top (level 0 = the
    /// tops) — the layout used to draw Figures 4, 5, and 8.
    pub fn levels(&self) -> Vec<Vec<usize>> {
        let n = self.nodes.len();
        let mut depth = vec![0usize; n];
        // Longest-path layering: relax repeatedly (the graph is a DAG and
        // small, so O(V·E) is fine).
        let mut changed = true;
        while changed {
            changed = false;
            for &(p, c) in &self.edges {
                if depth[c] < depth[p] + 1 {
                    depth[c] = depth[p] + 1;
                    changed = true;
                }
            }
        }
        let max_depth = depth.iter().copied().max().unwrap_or(0);
        let mut levels = vec![Vec::new(); max_depth + 1];
        for (i, d) in depth.iter().enumerate() {
            levels[*d].push(i);
        }
        levels
    }

    /// Renders the lattice level by level, one line per level — the textual
    /// analogue of the paper's lattice figures.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for level in self.levels() {
            let mut labels: Vec<String> = level
                .iter()
                .map(|&i| {
                    let attrs: Vec<&str> =
                        self.nodes[i].iter().map(String::as_str).collect();
                    format!("({})", attrs.join(", "))
                })
                .collect();
            labels.sort();
            out.push_str(&labels.join("  "));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for AttrLattice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(attrs: &[&str]) -> BTreeSet<String> {
        attrs.iter().map(|s| s.to_string()).collect()
    }

    fn subset_lattice(node_sets: &[&[&str]]) -> AttrLattice {
        AttrLattice::build(node_sets.iter().map(|s| set(s)).collect(), |a, b| {
            a.is_subset(b)
        })
    }

    #[test]
    fn chain_has_chain_edges() {
        let lat = subset_lattice(&[&["a", "b"], &["a"], &[]]);
        assert_eq!(lat.edges(), &[(0, 1), (1, 2)]);
        assert_eq!(lat.tops(), vec![0]);
        assert_eq!(lat.bottoms(), vec![2]);
    }

    #[test]
    fn diamond_covering_edges() {
        let lat = subset_lattice(&[&["a", "b"], &["a"], &["b"], &[]]);
        // (ab)→(a), (ab)→(b), (a)→(), (b)→(); no direct (ab)→().
        assert_eq!(lat.edges(), &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        assert!(lat.derivable(3, 0));
        assert_eq!(lat.parents(3), vec![1, 2]);
        assert_eq!(lat.children(0), vec![1, 2]);
    }

    #[test]
    fn find_locates_nodes() {
        let lat = subset_lattice(&[&["a", "b"], &["a"], &[]]);
        assert_eq!(lat.find(["a"]), Some(1));
        assert_eq!(lat.find(["b"]), None);
        assert_eq!(lat.find(Vec::<&str>::new()), Some(2));
    }

    #[test]
    fn remove_node_rewires_edges() {
        // §3.4: removing (a) from the chain (ab)→(a)→() adds (ab)→().
        let mut lat = subset_lattice(&[&["a", "b"], &["a"], &[]]);
        lat.remove_node(1);
        assert_eq!(lat.len(), 2);
        assert_eq!(lat.edges(), &[(0, 1)]);
        assert_eq!(lat.nodes()[1], set(&[]));
    }

    #[test]
    fn remove_node_in_diamond_keeps_other_path() {
        let mut lat = subset_lattice(&[&["a", "b"], &["a"], &["b"], &[]]);
        lat.remove_node(1); // drop (a)
        // Now nodes: (ab)=0, (b)=1, ()=2. Covering: (ab)→(b)→(); the
        // rewired (ab)→() is transitive through (b), so not a covering edge.
        assert_eq!(lat.edges(), &[(0, 1), (1, 2)]);
    }

    #[test]
    fn levels_layer_by_longest_path() {
        let lat = subset_lattice(&[&["a", "b"], &["a"], &["b"], &[]]);
        let levels = lat.levels();
        assert_eq!(levels.len(), 3);
        assert_eq!(levels[0], vec![0]);
        assert_eq!(levels[1], vec![1, 2]);
        assert_eq!(levels[2], vec![3]);
    }

    #[test]
    fn render_is_stable() {
        let lat = subset_lattice(&[&["a"], &[]]);
        assert_eq!(lat.render(), "(a)\n()\n");
    }
}
