//! Functional-dependency closure of attribute sets across a star schema.
//!
//! The rationale (§5.2): "an attribute in the hierarchy functionally
//! determines all of its descendants … grouping by (storeID) is the same as
//! grouping by (storeID, city, region)". Derivability of one view from
//! another reduces to closure containment: `v2`'s attributes must lie in the
//! closure of `v1`'s group-by attributes.

use std::collections::BTreeSet;

use cubedelta_storage::Catalog;

/// Computes FD closures of attribute sets for one fact table's star schema.
///
/// The closure rules:
/// 1. A fact-table foreign-key column determines the referenced dimension
///    key (they are equated by the FK join).
/// 2. A dimension key determines every column of its dimension table (it is
///    the key).
/// 3. Declared dimension-hierarchy FDs apply transitively
///    (`city → region`).
pub struct AttrClosure<'a> {
    catalog: &'a Catalog,
    fact_table: &'a str,
}

impl<'a> AttrClosure<'a> {
    /// A closure engine for the given fact table.
    pub fn new(catalog: &'a Catalog, fact_table: &'a str) -> Self {
        AttrClosure {
            catalog,
            fact_table,
        }
    }

    /// The FD closure of `attrs`.
    pub fn closure<I, S>(&self, attrs: I) -> BTreeSet<String>
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut out: BTreeSet<String> = attrs
            .into_iter()
            .map(|s| s.as_ref().to_string())
            .collect();
        loop {
            let mut grew = false;
            for fk in self.catalog.foreign_keys() {
                if fk.fact_table != self.fact_table {
                    continue;
                }
                // Rule 1: fact FK column equates to the dimension key.
                if out.contains(&fk.fact_column) && out.insert(fk.dim_key.clone()) {
                    grew = true;
                }
                // Rule 2: the dimension key determines the whole dimension
                // row.
                if out.contains(&fk.dim_key) {
                    if let Ok(dim) = self.catalog.table(&fk.dim_table) {
                        for col in dim.schema().columns() {
                            if out.insert(col.name.clone()) {
                                grew = true;
                            }
                        }
                    }
                }
                // Rule 3: declared hierarchy FDs.
                if let Some(info) = self.catalog.dimension_info(&fk.dim_table) {
                    for fd in &info.fds {
                        if out.contains(&fd.determinant) {
                            for dep in &fd.dependents {
                                if out.insert(dep.clone()) {
                                    grew = true;
                                }
                            }
                        }
                    }
                }
            }
            if !grew {
                return out;
            }
        }
    }

    /// True iff every attribute of `sub` is determined by `attrs`.
    pub fn determines<I, S, J, T>(&self, attrs: I, sub: J) -> bool
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
        J: IntoIterator<Item = T>,
        T: AsRef<str>,
    {
        let closure = self.closure(attrs);
        sub.into_iter().all(|a| closure.contains(a.as_ref()))
    }

    /// The dimension table (joined from the fact table) owning `attr`, if
    /// `attr` is not a fact-table column.
    pub fn owning_dimension(&self, attr: &str) -> Option<&'a str> {
        let fact = self.catalog.table(self.fact_table).ok()?;
        if fact.schema().contains(attr) {
            return None;
        }
        self.catalog.dimension_owning(self.fact_table, attr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_fixtures::retail_catalog_small;

    #[test]
    fn fk_column_determines_dimension_attrs() {
        let cat = retail_catalog_small();
        let c = AttrClosure::new(&cat, "pos");
        let cl = c.closure(["storeID"]);
        assert!(cl.contains("city"));
        assert!(cl.contains("region"));
        assert!(!cl.contains("category"));
    }

    #[test]
    fn hierarchy_fds_apply_without_key() {
        let cat = retail_catalog_small();
        let c = AttrClosure::new(&cat, "pos");
        let cl = c.closure(["city"]);
        assert!(cl.contains("region"));
        assert!(!cl.contains("storeID"));
    }

    #[test]
    fn item_key_determines_all_item_attrs() {
        let cat = retail_catalog_small();
        let c = AttrClosure::new(&cat, "pos");
        assert!(c.determines(["itemID"], ["name", "category", "cost"]));
        assert!(!c.determines(["category"], ["itemID"]));
    }

    #[test]
    fn grouping_equivalence_rationale() {
        // §5.2: grouping by (storeID) == grouping by (storeID, city, region).
        let cat = retail_catalog_small();
        let c = AttrClosure::new(&cat, "pos");
        assert_eq!(
            c.closure(["storeID", "city", "region"]),
            c.closure(["storeID"])
        );
    }

    #[test]
    fn owning_dimension_resolution() {
        let cat = retail_catalog_small();
        let c = AttrClosure::new(&cat, "pos");
        assert_eq!(c.owning_dimension("city"), Some("stores"));
        assert_eq!(c.owning_dimension("category"), Some("items"));
        // Fact columns are owned by the fact table, not a dimension.
        assert_eq!(c.owning_dimension("storeID"), None);
        assert_eq!(c.owning_dimension("date"), None);
    }
}
