//! Deferred change sets.
//!
//! "Source changes received during the day are applied to the views in a
//! nightly batch window" (§1). A [`DeltaSet`] is the deferred set of
//! insertions (`pos_ins`) and deletions (`pos_del`) against one table; a
//! [`ChangeBatch`] bundles the delta sets for all changed tables in one
//! batch window.

use crate::row::Row;

/// Deferred insertions and deletions against a single table.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DeltaSet {
    /// Name of the table the changes target.
    pub table: String,
    /// Rows to insert (the paper's `pos_ins`).
    pub insertions: Vec<Row>,
    /// Rows to delete, multiset semantics (the paper's `pos_del`).
    pub deletions: Vec<Row>,
}

impl DeltaSet {
    /// An empty delta set for the named table.
    pub fn new(table: impl Into<String>) -> Self {
        DeltaSet {
            table: table.into(),
            insertions: Vec::new(),
            deletions: Vec::new(),
        }
    }

    /// A delta set holding only insertions.
    pub fn insertions(table: impl Into<String>, rows: Vec<Row>) -> Self {
        DeltaSet {
            table: table.into(),
            insertions: rows,
            deletions: Vec::new(),
        }
    }

    /// A delta set holding only deletions.
    pub fn deletions(table: impl Into<String>, rows: Vec<Row>) -> Self {
        DeltaSet {
            table: table.into(),
            insertions: Vec::new(),
            deletions: rows,
        }
    }

    /// Total number of changed rows.
    pub fn len(&self) -> usize {
        self.insertions.len() + self.deletions.len()
    }

    /// True iff the delta set carries no changes.
    pub fn is_empty(&self) -> bool {
        self.insertions.is_empty() && self.deletions.is_empty()
    }
}

/// The complete set of deferred changes for one batch window.
#[derive(Debug, Clone, Default)]
pub struct ChangeBatch {
    /// One delta set per changed table.
    pub deltas: Vec<DeltaSet>,
}

impl ChangeBatch {
    /// An empty batch.
    pub fn new() -> Self {
        ChangeBatch { deltas: Vec::new() }
    }

    /// A batch holding a single table's delta set.
    pub fn single(delta: DeltaSet) -> Self {
        ChangeBatch {
            deltas: vec![delta],
        }
    }

    /// Adds a delta set, merging with an existing one for the same table.
    pub fn add(&mut self, delta: DeltaSet) {
        if let Some(existing) = self.deltas.iter_mut().find(|d| d.table == delta.table) {
            existing.insertions.extend(delta.insertions);
            existing.deletions.extend(delta.deletions);
        } else {
            self.deltas.push(delta);
        }
    }

    /// Folds another batch into this one, coalescing per table (each of
    /// `other`'s delta sets goes through [`ChangeBatch::add`]).
    pub fn merge(&mut self, other: ChangeBatch) {
        for delta in other.deltas {
            self.add(delta);
        }
    }

    /// The delta set for a table, if any.
    pub fn for_table(&self, table: &str) -> Option<&DeltaSet> {
        self.deltas.iter().find(|d| d.table == table)
    }

    /// Total number of changed rows across all tables.
    pub fn len(&self) -> usize {
        self.deltas.iter().map(DeltaSet::len).sum()
    }

    /// True iff the batch carries no changes.
    pub fn is_empty(&self) -> bool {
        self.deltas.iter().all(DeltaSet::is_empty)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::row;

    #[test]
    fn delta_set_counts() {
        let d = DeltaSet {
            table: "pos".into(),
            insertions: vec![row![1i64], row![2i64]],
            deletions: vec![row![3i64]],
        };
        assert_eq!(d.len(), 3);
        assert!(!d.is_empty());
        assert!(DeltaSet::new("pos").is_empty());
    }

    #[test]
    fn batch_merge_coalesces_per_table() {
        let mut a = ChangeBatch::single(DeltaSet::insertions("pos", vec![row![1i64]]));
        let mut b = ChangeBatch::single(DeltaSet::deletions("pos", vec![row![2i64]]));
        b.add(DeltaSet::insertions("items", vec![row![3i64]]));
        a.merge(b);
        assert_eq!(a.deltas.len(), 2);
        assert_eq!(a.for_table("pos").unwrap().len(), 2);
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn batch_merges_same_table() {
        let mut b = ChangeBatch::new();
        b.add(DeltaSet::insertions("pos", vec![row![1i64]]));
        b.add(DeltaSet::deletions("pos", vec![row![2i64]]));
        b.add(DeltaSet::insertions("items", vec![row![3i64]]));
        assert_eq!(b.deltas.len(), 2);
        let pos = b.for_table("pos").unwrap();
        assert_eq!(pos.insertions.len(), 1);
        assert_eq!(pos.deletions.len(), 1);
        assert_eq!(b.len(), 3);
        assert!(b.for_table("stores").is_none());
    }
}
