//! Cycle flight recorder: a bounded journal of structured maintenance
//! lifecycle events.
//!
//! The warehouse appends one [`JournalEvent`] per lifecycle step — batch
//! sealed, cycle started, per-view propagate/refresh step, cycle
//! committed or failed, ingest backpressure, shutdown drain — into a
//! bounded in-memory ring (oldest events drop first) and, optionally, a
//! line-delimited JSON file sink. [`reconstruct_cycles`] replays an
//! event stream back into per-cycle [`CycleSummary`] totals equivalent
//! to the `MaintenanceReport` the cycle returned, which is what the
//! journal-replay tests assert byte-for-byte and what post-hoc tooling
//! (and the planned adaptive-lattice cost model) reads.
//!
//! Event serialization is the crate's own [`crate::json`]; every event
//! renders to a single-line JSON object tagged `{"event": "..."}` and
//! parses back losslessly.

use std::collections::VecDeque;
use std::fs::File;
use std::io::Write;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::json::{self, JsonValue};

/// Env var naming a file to mirror journal events into (line-delimited
/// JSON). Sampled when the journal is constructed.
pub const JOURNAL_PATH_ENV_VAR: &str = "CUBEDELTA_JOURNAL_PATH";

/// Env var overriding the in-memory ring capacity (events). Sampled when
/// the journal is constructed.
pub const JOURNAL_CAP_ENV_VAR: &str = "CUBEDELTA_JOURNAL_CAP";

/// Default ring capacity: enough for several hundred cycles of a
/// four-view warehouse.
pub const DEFAULT_JOURNAL_CAP: usize = 4096;

/// One structured lifecycle event. Timings are µs; `cycle` numbers are
/// assigned by [`Journal::next_cycle_id`] and are unique per journal.
#[derive(Debug, Clone, PartialEq)]
pub enum JournalEvent {
    /// The ingest front-end sealed a staged batch for the worker.
    BatchSealed {
        /// Seal sequence number (per journal).
        seq: u64,
        /// Base-table rows in the sealed batch.
        rows: u64,
        /// Number of distinct tables touched.
        tables: u64,
        /// Commitlog LSN assigned to the batch (0 when durability is off).
        lsn: u64,
        /// Frame size appended to the commitlog (0 when durability is off).
        log_bytes: u64,
    },
    /// A maintenance cycle began.
    CycleStarted {
        cycle: u64,
        /// Base-delta rows entering the cycle.
        rows: u64,
    },
    /// One view's propagate step finished.
    PropagateStep {
        cycle: u64,
        view: String,
        /// The table or view the summary delta was computed from.
        source: String,
        /// Rows in the computed summary delta.
        delta_rows: u64,
        time_us: u64,
        /// Shards the step scanned (0 when unsharded).
        shards: u64,
        shard_rows_scanned: u64,
        shard_merge_us: u64,
    },
    /// One view's refresh step finished.
    RefreshStep {
        cycle: u64,
        view: String,
        inserted: u64,
        deleted: u64,
        updated: u64,
        recomputed: u64,
        skipped: u64,
        time_us: u64,
    },
    /// The cycle committed; phase totals mirror the `MaintenanceReport`.
    CycleCommitted {
        cycle: u64,
        rows: u64,
        propagate_us: u64,
        apply_base_us: u64,
        refresh_us: u64,
    },
    /// The cycle failed (error or panic); views may be partially stale.
    CycleFailed { cycle: u64, error: String },
    /// The committed cycle's summary-deltas were fanned out to live
    /// subscriptions.
    SubscriptionFanout {
        cycle: u64,
        /// The snapshot epoch the pushed updates advance subscribers to.
        epoch: u64,
        /// Subscribed views with a non-trivial diff this cycle.
        views: u64,
        /// Updates enqueued (one per receiving subscription).
        updates_pushed: u64,
        /// Subscriptions tipped into the lagged state this cycle.
        lagged: u64,
        time_us: u64,
    },
    /// A producer blocked on the bounded ingest queue.
    Backpressure {
        /// Rows pending (staged + sealed + in flight) when the wait began.
        pending_rows: u64,
    },
    /// The service drained at shutdown.
    ShutdownDrain {
        /// Cycles run over the service's lifetime.
        cycles: u64,
        applied_rows: u64,
        unapplied_rows: u64,
    },
}

impl JournalEvent {
    /// The event's type tag, as used in the JSON `"event"` field.
    pub fn kind(&self) -> &'static str {
        match self {
            JournalEvent::BatchSealed { .. } => "batch_sealed",
            JournalEvent::CycleStarted { .. } => "cycle_started",
            JournalEvent::PropagateStep { .. } => "propagate_step",
            JournalEvent::RefreshStep { .. } => "refresh_step",
            JournalEvent::CycleCommitted { .. } => "cycle_committed",
            JournalEvent::CycleFailed { .. } => "cycle_failed",
            JournalEvent::SubscriptionFanout { .. } => "subscription_fanout",
            JournalEvent::Backpressure { .. } => "backpressure",
            JournalEvent::ShutdownDrain { .. } => "shutdown_drain",
        }
    }

    /// The cycle this event belongs to, when it has one.
    pub fn cycle(&self) -> Option<u64> {
        match self {
            JournalEvent::CycleStarted { cycle, .. }
            | JournalEvent::PropagateStep { cycle, .. }
            | JournalEvent::RefreshStep { cycle, .. }
            | JournalEvent::CycleCommitted { cycle, .. }
            | JournalEvent::CycleFailed { cycle, .. }
            | JournalEvent::SubscriptionFanout { cycle, .. } => Some(*cycle),
            _ => None,
        }
    }

    /// This event as a single JSON object tagged with `"event"`.
    pub fn to_json(&self) -> JsonValue {
        let u = JsonValue::UInt;
        match self {
            JournalEvent::BatchSealed {
                seq,
                rows,
                tables,
                lsn,
                log_bytes,
            } => JsonValue::object([
                ("event", JsonValue::from(self.kind())),
                ("seq", u(*seq)),
                ("rows", u(*rows)),
                ("tables", u(*tables)),
                ("lsn", u(*lsn)),
                ("log_bytes", u(*log_bytes)),
            ]),
            JournalEvent::CycleStarted { cycle, rows } => JsonValue::object([
                ("event", JsonValue::from(self.kind())),
                ("cycle", u(*cycle)),
                ("rows", u(*rows)),
            ]),
            JournalEvent::PropagateStep {
                cycle,
                view,
                source,
                delta_rows,
                time_us,
                shards,
                shard_rows_scanned,
                shard_merge_us,
            } => JsonValue::object([
                ("event", JsonValue::from(self.kind())),
                ("cycle", u(*cycle)),
                ("view", JsonValue::from(view.as_str())),
                ("source", JsonValue::from(source.as_str())),
                ("delta_rows", u(*delta_rows)),
                ("time_us", u(*time_us)),
                ("shards", u(*shards)),
                ("shard_rows_scanned", u(*shard_rows_scanned)),
                ("shard_merge_us", u(*shard_merge_us)),
            ]),
            JournalEvent::RefreshStep {
                cycle,
                view,
                inserted,
                deleted,
                updated,
                recomputed,
                skipped,
                time_us,
            } => JsonValue::object([
                ("event", JsonValue::from(self.kind())),
                ("cycle", u(*cycle)),
                ("view", JsonValue::from(view.as_str())),
                ("inserted", u(*inserted)),
                ("deleted", u(*deleted)),
                ("updated", u(*updated)),
                ("recomputed", u(*recomputed)),
                ("skipped", u(*skipped)),
                ("time_us", u(*time_us)),
            ]),
            JournalEvent::CycleCommitted {
                cycle,
                rows,
                propagate_us,
                apply_base_us,
                refresh_us,
            } => JsonValue::object([
                ("event", JsonValue::from(self.kind())),
                ("cycle", u(*cycle)),
                ("rows", u(*rows)),
                ("propagate_us", u(*propagate_us)),
                ("apply_base_us", u(*apply_base_us)),
                ("refresh_us", u(*refresh_us)),
            ]),
            JournalEvent::CycleFailed { cycle, error } => JsonValue::object([
                ("event", JsonValue::from(self.kind())),
                ("cycle", u(*cycle)),
                ("error", JsonValue::from(error.as_str())),
            ]),
            JournalEvent::SubscriptionFanout {
                cycle,
                epoch,
                views,
                updates_pushed,
                lagged,
                time_us,
            } => JsonValue::object([
                ("event", JsonValue::from(self.kind())),
                ("cycle", u(*cycle)),
                ("epoch", u(*epoch)),
                ("views", u(*views)),
                ("updates_pushed", u(*updates_pushed)),
                ("lagged", u(*lagged)),
                ("time_us", u(*time_us)),
            ]),
            JournalEvent::Backpressure { pending_rows } => JsonValue::object([
                ("event", JsonValue::from(self.kind())),
                ("pending_rows", u(*pending_rows)),
            ]),
            JournalEvent::ShutdownDrain {
                cycles,
                applied_rows,
                unapplied_rows,
            } => JsonValue::object([
                ("event", JsonValue::from(self.kind())),
                ("cycles", u(*cycles)),
                ("applied_rows", u(*applied_rows)),
                ("unapplied_rows", u(*unapplied_rows)),
            ]),
        }
    }

    /// Parses an event from its [`JournalEvent::to_json`] object form.
    pub fn from_json(v: &JsonValue) -> Result<JournalEvent, String> {
        let kind = v
            .get("event")
            .and_then(JsonValue::as_str)
            .ok_or("missing `event` tag")?;
        let field = |name: &str| -> Result<u64, String> {
            v.get(name)
                .and_then(JsonValue::as_u64)
                .ok_or_else(|| format!("{kind}: missing or non-integer `{name}`"))
        };
        let text = |name: &str| -> Result<String, String> {
            v.get(name)
                .and_then(JsonValue::as_str)
                .map(str::to_string)
                .ok_or_else(|| format!("{kind}: missing `{name}`"))
        };
        Ok(match kind {
            "batch_sealed" => JournalEvent::BatchSealed {
                seq: field("seq")?,
                rows: field("rows")?,
                tables: field("tables")?,
                // Lenient: journals written before the durability layer
                // (or with it off) simply lack the log position.
                lsn: v.get("lsn").and_then(JsonValue::as_u64).unwrap_or(0),
                log_bytes: v.get("log_bytes").and_then(JsonValue::as_u64).unwrap_or(0),
            },
            "cycle_started" => JournalEvent::CycleStarted {
                cycle: field("cycle")?,
                rows: field("rows")?,
            },
            "propagate_step" => JournalEvent::PropagateStep {
                cycle: field("cycle")?,
                view: text("view")?,
                source: text("source")?,
                delta_rows: field("delta_rows")?,
                time_us: field("time_us")?,
                shards: field("shards")?,
                shard_rows_scanned: field("shard_rows_scanned")?,
                shard_merge_us: field("shard_merge_us")?,
            },
            "refresh_step" => JournalEvent::RefreshStep {
                cycle: field("cycle")?,
                view: text("view")?,
                inserted: field("inserted")?,
                deleted: field("deleted")?,
                updated: field("updated")?,
                recomputed: field("recomputed")?,
                skipped: field("skipped")?,
                time_us: field("time_us")?,
            },
            "cycle_committed" => JournalEvent::CycleCommitted {
                cycle: field("cycle")?,
                rows: field("rows")?,
                propagate_us: field("propagate_us")?,
                apply_base_us: field("apply_base_us")?,
                refresh_us: field("refresh_us")?,
            },
            "cycle_failed" => JournalEvent::CycleFailed {
                cycle: field("cycle")?,
                error: text("error")?,
            },
            "subscription_fanout" => JournalEvent::SubscriptionFanout {
                cycle: field("cycle")?,
                epoch: field("epoch")?,
                views: field("views")?,
                updates_pushed: field("updates_pushed")?,
                lagged: field("lagged")?,
                time_us: field("time_us")?,
            },
            "backpressure" => JournalEvent::Backpressure {
                pending_rows: field("pending_rows")?,
            },
            "shutdown_drain" => JournalEvent::ShutdownDrain {
                cycles: field("cycles")?,
                applied_rows: field("applied_rows")?,
                unapplied_rows: field("unapplied_rows")?,
            },
            other => return Err(format!("unknown event kind `{other}`")),
        })
    }
}

#[derive(Debug)]
struct JournalInner {
    ring: Mutex<VecDeque<JournalEvent>>,
    cap: usize,
    /// Events evicted from the ring (the file sink, if any, still has them).
    dropped: AtomicU64,
    seal_seq: AtomicU64,
    cycle_seq: AtomicU64,
    sink: Mutex<Option<File>>,
}

/// Shared handle to a bounded event journal. Cloning shares the ring,
/// sequence counters, and file sink, so a cloned `Warehouse` keeps
/// appending to the same flight recorder.
#[derive(Debug, Clone)]
pub struct Journal {
    inner: Arc<JournalInner>,
}

impl Default for Journal {
    /// Equivalent to [`Journal::from_env`]: capacity from
    /// `CUBEDELTA_JOURNAL_CAP`, file sink from `CUBEDELTA_JOURNAL_PATH`.
    fn default() -> Self {
        Journal::from_env()
    }
}

impl Journal {
    /// A journal with an explicit ring capacity and no file sink.
    pub fn with_capacity(cap: usize) -> Journal {
        Journal {
            inner: Arc::new(JournalInner {
                ring: Mutex::new(VecDeque::with_capacity(cap.min(1024))),
                cap: cap.max(1),
                dropped: AtomicU64::new(0),
                seal_seq: AtomicU64::new(0),
                cycle_seq: AtomicU64::new(0),
                sink: Mutex::new(None),
            }),
        }
    }

    /// A journal configured from the environment, sampled once here:
    /// `CUBEDELTA_JOURNAL_CAP` overrides the ring capacity and
    /// `CUBEDELTA_JOURNAL_PATH` attaches a line-delimited JSON file sink.
    /// Unparseable values and file-open failures fall back to the
    /// in-memory defaults — telemetry must never stop the warehouse.
    pub fn from_env() -> Journal {
        let cap = std::env::var(JOURNAL_CAP_ENV_VAR)
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&c| c > 0)
            .unwrap_or(DEFAULT_JOURNAL_CAP);
        let journal = Journal::with_capacity(cap);
        if let Ok(path) = std::env::var(JOURNAL_PATH_ENV_VAR) {
            if !path.trim().is_empty() {
                let _ = journal.attach_file(path.trim());
            }
        }
        journal
    }

    /// Attaches (or replaces) a file sink; subsequent events append as
    /// one JSON object per line.
    pub fn attach_file<P: AsRef<Path>>(&self, path: P) -> std::io::Result<()> {
        let file = File::create(path)?;
        *self.inner.sink.lock().expect("journal sink poisoned") = Some(file);
        Ok(())
    }

    /// Appends one event to the ring (evicting the oldest past capacity)
    /// and the file sink, if attached.
    pub fn record(&self, event: JournalEvent) {
        if let Some(file) = self
            .inner
            .sink
            .lock()
            .expect("journal sink poisoned")
            .as_mut()
        {
            let _ = writeln!(file, "{}", event.to_json().render());
            let _ = file.flush();
        }
        let mut ring = self.inner.ring.lock().expect("journal ring poisoned");
        if ring.len() == self.inner.cap {
            ring.pop_front();
            self.inner.dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(event);
    }

    /// Allocates the next batch-seal sequence number.
    pub fn next_seal_seq(&self) -> u64 {
        self.inner.seal_seq.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Allocates the next cycle id (1-based).
    pub fn next_cycle_id(&self) -> u64 {
        self.inner.cycle_seq.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// The most recently allocated cycle id (0 before any cycle).
    pub fn last_cycle_id(&self) -> u64 {
        self.inner.cycle_seq.load(Ordering::Relaxed)
    }

    /// A copy of the ring's current contents, oldest first.
    pub fn events(&self) -> Vec<JournalEvent> {
        self.inner
            .ring
            .lock()
            .expect("journal ring poisoned")
            .iter()
            .cloned()
            .collect()
    }

    /// Number of events currently retained.
    pub fn len(&self) -> usize {
        self.inner.ring.lock().expect("journal ring poisoned").len()
    }

    /// True when no events are retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events evicted from the ring so far.
    pub fn dropped(&self) -> u64 {
        self.inner.dropped.load(Ordering::Relaxed)
    }

    /// The retained events as line-delimited JSON (the file-sink format).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in self.events() {
            out.push_str(&e.to_json().render());
            out.push('\n');
        }
        out
    }
}

/// Per-view totals reconstructed for one cycle.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ViewCycleTotals {
    pub view: String,
    pub source: String,
    pub delta_rows: u64,
    pub propagate_us: u64,
    pub inserted: u64,
    pub deleted: u64,
    pub updated: u64,
    pub recomputed: u64,
    pub skipped: u64,
    pub refresh_us: u64,
    pub shards: u64,
    pub shard_rows_scanned: u64,
    pub shard_merge_us: u64,
}

/// One maintenance cycle reconstructed from the event stream —
/// equivalent in its counters to the `MaintenanceReport` the cycle
/// returned.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CycleSummary {
    pub cycle: u64,
    /// Base-delta rows entering the cycle.
    pub rows: u64,
    pub committed: bool,
    /// Error text when the cycle failed.
    pub error: Option<String>,
    pub propagate_us: u64,
    pub apply_base_us: u64,
    pub refresh_us: u64,
    /// Per-view totals in event order (plan order).
    pub per_view: Vec<ViewCycleTotals>,
}

impl CycleSummary {
    /// Sum of per-view summary-delta rows.
    pub fn total_delta_rows(&self) -> u64 {
        self.per_view.iter().map(|v| v.delta_rows).sum()
    }

    /// Sum of per-view refresh row effects (inserted+deleted+updated).
    pub fn total_refresh_rows(&self) -> u64 {
        self.per_view
            .iter()
            .map(|v| v.inserted + v.deleted + v.updated)
            .sum()
    }
}

/// Replays an event stream into per-cycle summaries, ordered by cycle
/// id. Events without a cycle (seals, backpressure, shutdown) are
/// skipped; steps for a cycle whose `CycleStarted` was evicted from the
/// ring still accumulate into that cycle's summary.
pub fn reconstruct_cycles(events: &[JournalEvent]) -> Vec<CycleSummary> {
    let mut cycles: Vec<CycleSummary> = Vec::new();
    let mut index: std::collections::BTreeMap<u64, usize> = std::collections::BTreeMap::new();
    let mut slot = |cycles: &mut Vec<CycleSummary>, id: u64| -> usize {
        *index.entry(id).or_insert_with(|| {
            cycles.push(CycleSummary {
                cycle: id,
                ..CycleSummary::default()
            });
            cycles.len() - 1
        })
    };
    for e in events {
        match e {
            JournalEvent::CycleStarted { cycle, rows } => {
                let i = slot(&mut cycles, *cycle);
                cycles[i].rows = *rows;
            }
            JournalEvent::PropagateStep {
                cycle,
                view,
                source,
                delta_rows,
                time_us,
                shards,
                shard_rows_scanned,
                shard_merge_us,
            } => {
                let i = slot(&mut cycles, *cycle);
                cycles[i].per_view.push(ViewCycleTotals {
                    view: view.clone(),
                    source: source.clone(),
                    delta_rows: *delta_rows,
                    propagate_us: *time_us,
                    shards: *shards,
                    shard_rows_scanned: *shard_rows_scanned,
                    shard_merge_us: *shard_merge_us,
                    ..ViewCycleTotals::default()
                });
            }
            JournalEvent::RefreshStep {
                cycle,
                view,
                inserted,
                deleted,
                updated,
                recomputed,
                skipped,
                time_us,
            } => {
                let i = slot(&mut cycles, *cycle);
                let summary = &mut cycles[i];
                let entry = match summary.per_view.iter_mut().find(|v| v.view == *view) {
                    Some(entry) => entry,
                    None => {
                        summary.per_view.push(ViewCycleTotals {
                            view: view.clone(),
                            ..ViewCycleTotals::default()
                        });
                        summary.per_view.last_mut().expect("just pushed")
                    }
                };
                entry.inserted = *inserted;
                entry.deleted = *deleted;
                entry.updated = *updated;
                entry.recomputed = *recomputed;
                entry.skipped = *skipped;
                entry.refresh_us = *time_us;
            }
            JournalEvent::CycleCommitted {
                cycle,
                rows,
                propagate_us,
                apply_base_us,
                refresh_us,
            } => {
                let i = slot(&mut cycles, *cycle);
                let summary = &mut cycles[i];
                summary.committed = true;
                if summary.rows == 0 {
                    summary.rows = *rows;
                }
                summary.propagate_us = *propagate_us;
                summary.apply_base_us = *apply_base_us;
                summary.refresh_us = *refresh_us;
            }
            JournalEvent::CycleFailed { cycle, error } => {
                let i = slot(&mut cycles, *cycle);
                cycles[i].committed = false;
                cycles[i].error = Some(error.clone());
            }
            JournalEvent::BatchSealed { .. }
            | JournalEvent::SubscriptionFanout { .. }
            | JournalEvent::Backpressure { .. }
            | JournalEvent::ShutdownDrain { .. } => {}
        }
    }
    cycles.sort_by_key(|c| c.cycle);
    cycles
}

/// Parses a line-delimited JSON journal (the [`Journal::render`] / file
/// sink format) back into events. Blank lines are skipped; any malformed
/// line is an error naming its line number.
pub fn parse_journal(text: &str) -> Result<Vec<JournalEvent>, String> {
    let mut events = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let value = json::parse(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        events.push(
            JournalEvent::from_json(&value).map_err(|e| format!("line {}: {e}", lineno + 1))?,
        );
    }
    Ok(events)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events(cycle: u64) -> Vec<JournalEvent> {
        vec![
            JournalEvent::BatchSealed {
                seq: cycle,
                rows: 100,
                tables: 1,
                lsn: cycle,
                log_bytes: 96,
            },
            JournalEvent::CycleStarted { cycle, rows: 100 },
            JournalEvent::PropagateStep {
                cycle,
                view: "SID_sales".into(),
                source: "pos".into(),
                delta_rows: 42,
                time_us: 900,
                shards: 4,
                shard_rows_scanned: 100,
                shard_merge_us: 30,
            },
            JournalEvent::RefreshStep {
                cycle,
                view: "SID_sales".into(),
                inserted: 10,
                deleted: 2,
                updated: 30,
                recomputed: 0,
                skipped: 0,
                time_us: 800,
            },
            JournalEvent::CycleCommitted {
                cycle,
                rows: 100,
                propagate_us: 1000,
                apply_base_us: 50,
                refresh_us: 900,
            },
        ]
    }

    #[test]
    fn events_round_trip_through_json() {
        let mut all = sample_events(1);
        all.push(JournalEvent::CycleFailed {
            cycle: 2,
            error: "refresh panicked: \"boom\"\n".into(),
        });
        all.push(JournalEvent::Backpressure { pending_rows: 512 });
        all.push(JournalEvent::ShutdownDrain {
            cycles: 2,
            applied_rows: 100,
            unapplied_rows: 64,
        });
        for e in &all {
            let rendered = e.to_json().render();
            let back = JournalEvent::from_json(&json::parse(&rendered).unwrap()).unwrap();
            assert_eq!(&back, e, "{rendered}");
        }
    }

    #[test]
    fn journal_ring_is_bounded() {
        let j = Journal::with_capacity(3);
        for seq in 0..5 {
            j.record(JournalEvent::BatchSealed {
                seq,
                rows: 1,
                tables: 1,
                lsn: 0,
                log_bytes: 0,
            });
        }
        assert_eq!(j.len(), 3);
        assert_eq!(j.dropped(), 2);
        match &j.events()[0] {
            JournalEvent::BatchSealed { seq, .. } => assert_eq!(*seq, 2),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn sequence_counters_are_monotone_and_shared() {
        let j = Journal::with_capacity(8);
        let clone = j.clone();
        assert_eq!(j.last_cycle_id(), 0);
        assert_eq!(j.next_cycle_id(), 1);
        assert_eq!(clone.next_cycle_id(), 2);
        assert_eq!(j.last_cycle_id(), 2);
        assert_eq!(j.next_seal_seq(), 1);
        assert_eq!(clone.next_seal_seq(), 2);
        // Clones share the ring too.
        clone.record(JournalEvent::Backpressure { pending_rows: 1 });
        assert_eq!(j.len(), 1);
    }

    #[test]
    fn reconstructs_cycle_summaries() {
        let mut events = sample_events(1);
        events.extend(sample_events(2));
        events.push(JournalEvent::CycleStarted { cycle: 3, rows: 7 });
        events.push(JournalEvent::CycleFailed {
            cycle: 3,
            error: "boom".into(),
        });
        let cycles = reconstruct_cycles(&events);
        assert_eq!(cycles.len(), 3);
        let c1 = &cycles[0];
        assert_eq!(c1.cycle, 1);
        assert!(c1.committed);
        assert_eq!(c1.rows, 100);
        assert_eq!(c1.propagate_us, 1000);
        assert_eq!(c1.per_view.len(), 1);
        let v = &c1.per_view[0];
        assert_eq!(v.view, "SID_sales");
        assert_eq!(v.delta_rows, 42);
        assert_eq!(v.inserted, 10);
        assert_eq!(v.shards, 4);
        assert_eq!(c1.total_delta_rows(), 42);
        assert_eq!(c1.total_refresh_rows(), 42);
        let c3 = &cycles[2];
        assert!(!c3.committed);
        assert_eq!(c3.error.as_deref(), Some("boom"));
    }

    #[test]
    fn render_and_parse_journal_round_trip() {
        let j = Journal::with_capacity(64);
        for e in sample_events(1) {
            j.record(e);
        }
        let text = j.render();
        let parsed = parse_journal(&text).unwrap();
        assert_eq!(parsed, j.events());
        assert!(parse_journal("not json\n").is_err());
        assert!(parse_journal("{\"event\":\"martian\"}\n").is_err());
        assert_eq!(parse_journal("").unwrap(), Vec::new());
    }

    #[test]
    fn file_sink_mirrors_events() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!(
            "cubedelta-journal-test-{}.jsonl",
            std::process::id()
        ));
        let j = Journal::with_capacity(2); // smaller than the event count
        j.attach_file(&path).unwrap();
        for e in sample_events(1) {
            j.record(e);
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        let parsed = parse_journal(&text).unwrap();
        // The file kept everything even though the ring evicted.
        assert_eq!(parsed.len(), 5);
        assert_eq!(j.len(), 2);
        let cycles = reconstruct_cycles(&parsed);
        assert_eq!(cycles.len(), 1);
        assert!(cycles[0].committed);
    }
}
