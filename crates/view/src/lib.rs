//! # cubedelta-view
//!
//! Generalized cube views and summary tables.
//!
//! A *generalized cube view* (§3.2) is a single-block
//! `SELECT-FROM-WHERE-GROUPBY` query over a fact table, possibly joined with
//! dimension tables along foreign keys, computing per-view aggregate
//! functions. A *summary table* is its materialization in the warehouse.
//!
//! This crate provides:
//!
//! * [`SummaryViewDef`] — the view definition language (builder API).
//! * [`AugmentedView`] — the self-maintainable form (§3.1): `COUNT(*)` is
//!   always present, `SUM/MIN/MAX(e)` over nullable sources gain a
//!   supporting `COUNT(e)`, and `AVG` is rewritten to `SUM`/`COUNT`.
//! * [`mod@materialize`] — computing view contents from base tables from
//!   scratch (the rematerialization baseline of §6 uses this).
//! * [`install_summary_table`] — materializing into the catalog with the
//!   composite unique index on the group-by columns that the refresh
//!   function's per-tuple lookup relies on.

pub mod def;
pub mod error;
#[cfg(test)]
pub(crate) mod test_fixtures;
pub mod materialize;
pub mod self_maintain;
pub mod summary;

pub use def::{AggSpec, SummaryViewDef, ViewBuilder};
pub use error::{ViewError, ViewResult};
pub use materialize::{join_dimensions, joined_base, joined_schema, materialize};
pub use self_maintain::{augment, AugmentedView, AvgOutput};
pub use summary::{install_summary_table, refresh_from_scratch, summary_schema};
