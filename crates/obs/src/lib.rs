//! Observability core for the cubedelta workspace.
//!
//! The paper's evaluation (§6, Figure 9) is entirely about *where time
//! goes* in propagate vs. refresh; this crate supplies the machinery to
//! answer that question honestly at every layer:
//!
//! * [`ExecutionMetrics`] — a plain struct of operator-level counters
//!   (rows scanned, hash probes, index probes, groups touched, …)
//!   threaded by `&mut` through the query operators and the
//!   propagate/refresh pipeline. Zero overhead beyond the increments.
//! * [`MetricsRegistry`] — shared, thread-safe counters, gauges, and
//!   fixed-bucket latency histograms for long-lived aggregation across
//!   maintenance cycles (the warehouse owns one).
//! * [`json`] — a minimal JSON value model, serializer, and strict
//!   parser (the workspace is offline: no serde), used for
//!   machine-readable maintenance reports, bench telemetry, and the
//!   journal's replay machinery.
//! * [`export`] — Prometheus text-format rendering of a
//!   [`RegistrySnapshot`], a matching validating parser, and a
//!   zero-dependency TCP scrape endpoint ([`MetricsServer`]).
//! * [`journal`] — the cycle flight recorder: a bounded ring (plus
//!   optional file sink) of structured per-cycle lifecycle events, with
//!   a reader that reconstructs per-cycle summaries from the stream.
//! * [`trace`] — lightweight wall-clock spans behind the `tracing`
//!   cargo feature; a no-op with zero argument evaluation when the
//!   feature is off.
//!
//! This crate deliberately has no dependencies so every other crate can
//! use it, including `cubedelta-storage` at the bottom of the stack.

pub mod export;
pub mod journal;
pub mod json;
mod metrics;
mod registry;
pub mod trace;

pub use export::{parse_prometheus, render_prometheus, scrape_once, MetricsServer, PromFamily};
pub use journal::{
    parse_journal, reconstruct_cycles, CycleSummary, Journal, JournalEvent, ViewCycleTotals,
    DEFAULT_JOURNAL_CAP, JOURNAL_CAP_ENV_VAR, JOURNAL_PATH_ENV_VAR,
};
pub use metrics::ExecutionMetrics;
pub use registry::{
    Counter, Gauge, Histogram, HistogramSnapshot, MetricsRegistry, RegistrySnapshot,
};
