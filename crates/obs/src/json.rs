//! A minimal JSON value model and serializer.
//!
//! The workspace builds offline, so there is no serde; reports and bench
//! telemetry are assembled as [`JsonValue`] trees and rendered directly.
//! Output is valid RFC 8259 JSON: strings are escaped, non-finite floats
//! render as `null`, and object key order is the insertion order (kept
//! deterministic by construction).

use std::fmt;

/// One JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    Null,
    Bool(bool),
    Int(i64),
    UInt(u64),
    Float(f64),
    Str(String),
    Array(Vec<JsonValue>),
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Builds an object from `(key, value)` pairs, preserving order.
    pub fn object<K: Into<String>, I: IntoIterator<Item = (K, JsonValue)>>(
        fields: I,
    ) -> JsonValue {
        JsonValue::Object(fields.into_iter().map(|(k, v)| (k.into(), v)).collect())
    }

    /// Builds an array from values.
    pub fn array<I: IntoIterator<Item = JsonValue>>(items: I) -> JsonValue {
        JsonValue::Array(items.into_iter().collect())
    }

    /// Appends a field to an object; panics on non-objects.
    pub fn push_field(&mut self, key: impl Into<String>, value: JsonValue) {
        match self {
            JsonValue::Object(fields) => fields.push((key.into(), value)),
            other => panic!("push_field on non-object JSON value: {other:?}"),
        }
    }

    /// Compact rendering (no whitespace).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty rendering with two-space indentation — the format used for
    /// checked-in bench telemetry, so diffs stay reviewable.
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, level: usize) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Int(n) => out.push_str(&n.to_string()),
            JsonValue::UInt(n) => out.push_str(&n.to_string()),
            JsonValue::Float(x) => {
                if x.is_finite() {
                    // Keep integral floats readable but unambiguous.
                    if x.fract() == 0.0 && x.abs() < 1e15 {
                        out.push_str(&format!("{x:.1}"));
                    } else {
                        out.push_str(&format!("{x}"));
                    }
                } else {
                    out.push_str("null");
                }
            }
            JsonValue::Str(s) => write_escaped(out, s),
            JsonValue::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, level + 1);
                    item.write(out, indent, level + 1);
                }
                newline_indent(out, indent, level);
                out.push(']');
            }
            JsonValue::Object(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline_indent(out, indent, level + 1);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, level + 1);
                }
                newline_indent(out, indent, level);
                out.push('}');
            }
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for JsonValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

impl From<&str> for JsonValue {
    fn from(s: &str) -> Self {
        JsonValue::Str(s.to_string())
    }
}

impl From<String> for JsonValue {
    fn from(s: String) -> Self {
        JsonValue::Str(s)
    }
}

impl From<u64> for JsonValue {
    fn from(n: u64) -> Self {
        JsonValue::UInt(n)
    }
}

impl From<i64> for JsonValue {
    fn from(n: i64) -> Self {
        JsonValue::Int(n)
    }
}

impl From<usize> for JsonValue {
    fn from(n: usize) -> Self {
        JsonValue::UInt(n as u64)
    }
}

impl From<f64> for JsonValue {
    fn from(x: f64) -> Self {
        JsonValue::Float(x)
    }
}

impl From<bool> for JsonValue {
    fn from(b: bool) -> Self {
        JsonValue::Bool(b)
    }
}

/// Microsecond rendering of a duration, the unit used throughout the
/// bench telemetry.
pub fn duration_us(d: std::time::Duration) -> JsonValue {
    JsonValue::UInt(d.as_micros().min(u64::MAX as u128) as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_scalars_and_nesting() {
        let v = JsonValue::object([
            ("name", JsonValue::from("SID_sales")),
            ("rows", JsonValue::from(42u64)),
            ("neg", JsonValue::from(-3i64)),
            ("ok", JsonValue::from(true)),
            ("ratio", JsonValue::from(0.5)),
            ("none", JsonValue::Null),
            (
                "phases",
                JsonValue::array([JsonValue::from("propagate"), JsonValue::from("refresh")]),
            ),
        ]);
        assert_eq!(
            v.render(),
            r#"{"name":"SID_sales","rows":42,"neg":-3,"ok":true,"ratio":0.5,"none":null,"phases":["propagate","refresh"]}"#
        );
    }

    #[test]
    fn escapes_strings() {
        let v = JsonValue::from("a\"b\\c\nd\te\u{1}");
        assert_eq!(v.render(), r#""a\"b\\c\nd\te\u0001""#);
    }

    #[test]
    fn non_finite_floats_render_null() {
        assert_eq!(JsonValue::Float(f64::NAN).render(), "null");
        assert_eq!(JsonValue::Float(f64::INFINITY).render(), "null");
    }

    #[test]
    fn pretty_rendering_indents() {
        let v = JsonValue::object([("a", JsonValue::array([JsonValue::from(1u64)]))]);
        assert_eq!(v.render_pretty(), "{\n  \"a\": [\n    1\n  ]\n}");
    }

    #[test]
    fn empty_containers_stay_compact() {
        assert_eq!(JsonValue::Array(vec![]).render_pretty(), "[]");
        assert_eq!(JsonValue::Object(vec![]).render_pretty(), "{}");
    }

    #[test]
    fn duration_renders_in_micros() {
        let d = std::time::Duration::from_millis(3);
        assert_eq!(duration_us(d).render(), "3000");
    }
}
