//! Shared in-crate test fixtures: a miniature retail warehouse matching the
//! paper's running example (§2).

use cubedelta_storage::{
    row, Catalog, Column, DataType, Date, DimensionInfo, FunctionalDependency, Row, Schema,
    TableRole,
};

/// A small retail catalog: `pos` (4 rows), `stores` (3 rows),
/// `items` (3 rows), with foreign keys and dimension hierarchies registered.
///
/// `pos` rows (storeID, itemID, date, qty, price):
/// `(1,10,d0,5,1.0) (1,10,d0,3,1.0) (1,20,d1,2,2.0) (2,10,d0,7,1.0)`
/// where `d0 = Date(10000)`, `d1 = Date(10001)`.
pub fn retail_catalog_small() -> Catalog {
    let mut cat = Catalog::new();

    cat.create_table(
        "pos",
        Schema::new(vec![
            Column::new("storeID", DataType::Int),
            Column::new("itemID", DataType::Int),
            Column::new("date", DataType::Date),
            Column::nullable("qty", DataType::Int),
            Column::nullable("price", DataType::Float),
        ]),
        TableRole::Fact,
    )
    .unwrap();

    cat.create_table(
        "stores",
        Schema::new(vec![
            Column::new("storeID", DataType::Int),
            Column::new("city", DataType::Str),
            Column::new("region", DataType::Str),
        ]),
        TableRole::Dimension,
    )
    .unwrap();

    cat.create_table(
        "items",
        Schema::new(vec![
            Column::new("itemID", DataType::Int),
            Column::new("name", DataType::Str),
            Column::new("category", DataType::Str),
            Column::new("cost", DataType::Float),
        ]),
        TableRole::Dimension,
    )
    .unwrap();

    cat.add_foreign_key("pos", "storeID", "stores", "storeID").unwrap();
    cat.add_foreign_key("pos", "itemID", "items", "itemID").unwrap();
    cat.set_dimension_info(
        "stores",
        DimensionInfo {
            key: "storeID".into(),
            fds: vec![
                FunctionalDependency::new("storeID", &["city"]),
                FunctionalDependency::new("city", &["region"]),
            ],
        },
    )
    .unwrap();
    cat.set_dimension_info(
        "items",
        DimensionInfo {
            key: "itemID".into(),
            fds: vec![FunctionalDependency::new("itemID", &["name", "category", "cost"])],
        },
    )
    .unwrap();

    let d0 = Date(10000);
    let d1 = Date(10001);
    let pos_rows: Vec<Row> = vec![
        row![1i64, 10i64, d0, 5i64, 1.0],
        row![1i64, 10i64, d0, 3i64, 1.0],
        row![1i64, 20i64, d1, 2i64, 2.0],
        row![2i64, 10i64, d0, 7i64, 1.0],
    ];
    cat.table_mut("pos").unwrap().insert_all(pos_rows).unwrap();

    cat.table_mut("stores")
        .unwrap()
        .insert_all(vec![
            row![1i64, "nyc", "east"],
            row![2i64, "boston", "east"],
            row![3i64, "sf", "west"],
        ])
        .unwrap();

    cat.table_mut("items")
        .unwrap()
        .insert_all(vec![
            row![10i64, "cola", "drinks", 0.5],
            row![20i64, "chips", "snacks", 1.0],
            row![30i64, "juice", "drinks", 0.8],
        ])
        .unwrap();

    cat
}
