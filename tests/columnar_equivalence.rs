//! Storage-equivalence battery: the vectorized columnar aggregation engine
//! must leave every summary table **byte-identical** (same physical row
//! order, bit-exact payloads) to the row-form engine, for arbitrary seeded
//! fact + dimension batches, across the full threads {1,4} × shards {1,4}
//! scheduling matrix.
//!
//! The battery covers the hostile corners of the contract:
//!
//! * MIN/MAX eviction-recompute cycles — deleting the extremum forces the
//!   §4.2 recompute path, which reads the fact table back through whatever
//!   engine the policy selects;
//! * NULL-heavy change sets — the null bitmap must agree with row-form
//!   NULL skipping in every aggregate;
//! * empty deltas — a cycle that computes nothing must still agree;
//! * single-row chunks — `ColumnarTable` with `chunk_rows = 1` must stay
//!   row-for-row equivalent to `Table` through the row facade under the
//!   same insert/delete/apply_delta sequence.

mod common;

use common::figure1_defs;
use cubedelta::core::{MaintainOptions, MaintenancePolicy, StorageMode, Warehouse};
use cubedelta::expr::Expr;
use cubedelta::query::AggFunc;
use cubedelta::storage::{ChangeBatch, ColumnarTable, Date, DeltaSet, Row, Table, Value};
use cubedelta::view::SummaryViewDef;
use cubedelta::workload::retail_catalog_small;
use proptest::prelude::*;

/// An extra view with float MIN/MAX so eviction recomputes exercise the
/// `Float64` ordered-aggregate path (the Figure-1 views only order dates).
fn price_extrema_def() -> SummaryViewDef {
    SummaryViewDef::builder("S_price", "pos")
        .group_by(["storeID"])
        .aggregate(AggFunc::CountStar, "TotalCount")
        .aggregate(AggFunc::Min(Expr::col("price")), "MinPrice")
        .aggregate(AggFunc::Max(Expr::col("price")), "MaxPrice")
        .aggregate(AggFunc::Sum(Expr::col("price")), "Revenue")
        .build()
}

/// A warehouse over the small retail fixture with the Figure-1 views plus
/// the float-extrema view, pinned to the given schedule and engine.
fn engine_warehouse(threads: usize, shards: usize, storage: StorageMode) -> Warehouse {
    let mut wh = Warehouse::from_catalog(retail_catalog_small());
    for def in figure1_defs() {
        wh.create_summary_table(&def).unwrap();
    }
    wh.create_summary_table(&price_extrema_def()).unwrap();
    wh.set_maintenance_policy(
        MaintenancePolicy::with_threads(threads)
            .with_shards(shards)
            .with_storage(storage),
    );
    wh
}

/// Asserts every summary table AND the base fact table match byte for byte
/// (physical row order included) between two warehouses.
fn assert_byte_identical(a: &Warehouse, b: &Warehouse, label: &str) {
    for v in a.views() {
        let name = &v.def.name;
        assert_eq!(
            a.catalog().table(name).unwrap().to_rows(),
            b.catalog().table(name).unwrap().to_rows(),
            "{name} byte layout diverges ({label})"
        );
    }
    assert_eq!(
        a.catalog().table("pos").unwrap().to_rows(),
        b.catalog().table("pos").unwrap().to_rows(),
        "base fact table diverges ({label})"
    );
}

/// Strategy: a pos row over small domains. `null_weight` inflates the
/// NULL-qty arm for the NULL-heavy battery.
fn pos_row(null_weight: u32) -> impl Strategy<Value = Row> {
    (
        1i64..=3,
        prop_oneof![Just(10i64), Just(20i64), Just(30i64)],
        0i32..4,
        prop_oneof![
            3 => (1i64..=9).prop_map(Value::Int),
            null_weight => Just(Value::Null)
        ],
        prop_oneof![
            4 => (1u32..=40).prop_map(|p| Value::Float(p as f64 / 4.0)),
            1 => Just(Value::Null)
        ],
    )
        .prop_map(|(s, i, doff, qty, price)| {
            Row::new(vec![
                Value::Int(s),
                Value::Int(i),
                Value::Date(Date(10000 + doff)),
                qty,
                price,
            ])
        })
}

/// Strategy: a change script — per step, rows to insert and seeds resolved
/// against the live fact table as deletions (so deletions always land,
/// which is what drives MIN/MAX evictions).
fn change_script(null_weight: u32) -> impl Strategy<Value = Vec<(Vec<Row>, Vec<usize>)>> {
    proptest::collection::vec(
        (
            proptest::collection::vec(pos_row(null_weight), 0..6),
            proptest::collection::vec(0usize..64, 0..5),
        ),
        1..4,
    )
}

fn batch_from_step(wh: &Warehouse, ins: &[Row], del_seeds: &[usize]) -> ChangeBatch {
    let live: Vec<Row> = wh.catalog().table("pos").unwrap().rows().cloned().collect();
    let mut deletions = Vec::new();
    let mut used = std::collections::HashSet::new();
    for &s in del_seeds {
        if live.is_empty() {
            break;
        }
        let idx = s % live.len();
        if used.insert(idx) {
            deletions.push(live[idx].clone());
        }
    }
    ChangeBatch::single(DeltaSet {
        table: "pos".into(),
        insertions: ins.to_vec(),
        deletions,
    })
}

/// Runs a change script through a row-engine and a columnar-engine
/// warehouse at each (threads, shards) point, asserting byte-identity
/// after every cycle — and that every schedule/engine combination matches
/// the 1-thread unsharded row reference.
fn run_matrix(script: &[(Vec<Row>, Vec<usize>)]) {
    let mut reference = engine_warehouse(1, 1, StorageMode::Row);
    let mut pairs: Vec<(Warehouse, Warehouse, usize, usize)> = [1usize, 4]
        .into_iter()
        .flat_map(|t| [1usize, 4].map(|s| (t, s)))
        .map(|(t, s)| {
            (
                engine_warehouse(t, s, StorageMode::Row),
                engine_warehouse(t, s, StorageMode::Columnar),
                t,
                s,
            )
        })
        .collect();

    for (step, (ins, dels)) in script.iter().enumerate() {
        let batch = batch_from_step(&reference, ins, dels);
        reference
            .maintain(&batch, &MaintainOptions::default())
            .unwrap();
        for (row_wh, col_wh, t, s) in pairs.iter_mut() {
            let row_report = row_wh.maintain(&batch, &MaintainOptions::default()).unwrap();
            let col_report = col_wh.maintain(&batch, &MaintainOptions::default()).unwrap();
            assert_eq!(col_report.storage, StorageMode::Columnar);
            assert_byte_identical(
                row_wh,
                col_wh,
                &format!("step {step}, threads {t}, shards {s}"),
            );
            assert_byte_identical(
                &reference,
                col_wh,
                &format!("step {step}, threads {t}, shards {s}, vs reference"),
            );
            // Refresh must take identical Figure-7 actions per view — the
            // engines may count work differently, but never act differently.
            for (a, b) in row_report.per_view.iter().zip(&col_report.per_view) {
                assert_eq!(a.view, b.view);
                assert_eq!(
                    a.refresh, b.refresh,
                    "step {step}: {} refresh actions differ (threads {t}, shards {s})",
                    a.view
                );
            }
        }
    }
    for (_, col_wh, _, _) in &pairs {
        col_wh.check_consistency().unwrap();
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The headline contract: arbitrary seeded change scripts leave every
    /// summary table byte-identical between engines, across the full
    /// threads × shards matrix.
    #[test]
    fn columnar_engine_is_byte_identical_across_schedules(script in change_script(1)) {
        run_matrix(&script);
    }

    /// The same contract under NULL-heavy change sets: most qty values are
    /// NULL, so the null bitmap dominates aggregate input skipping.
    #[test]
    fn columnar_engine_matches_on_null_heavy_batches(script in change_script(12)) {
        run_matrix(&script);
    }

    /// `ColumnarTable` with single-row chunks stays row-for-row equivalent
    /// to `Table` through the facade for any insert/delete/apply_delta
    /// sequence (every row straddles a chunk boundary).
    #[test]
    fn single_row_chunks_mirror_table_semantics(
        initial in proptest::collection::vec(pos_row(3), 0..8),
        script in change_script(3),
    ) {
        let schema = retail_catalog_small().table("pos").unwrap().schema().clone();
        let mut table = Table::new("pos", schema.clone());
        table.insert_all(initial.clone()).unwrap();
        let mut columnar = ColumnarTable::with_chunk_rows("pos", schema, 1);
        for r in initial {
            columnar.insert(r).unwrap();
        }
        for (ins, dels) in &script {
            let live: Vec<Row> = table.rows().cloned().collect();
            let mut deletions = Vec::new();
            let mut used = std::collections::HashSet::new();
            for &s in dels {
                if live.is_empty() { break; }
                let idx = s % live.len();
                if used.insert(idx) {
                    deletions.push(live[idx].clone());
                }
            }
            let delta = DeltaSet {
                table: "pos".into(),
                insertions: ins.clone(),
                deletions,
            };
            table.apply_delta(&delta).unwrap();
            columnar.apply_delta(&delta).unwrap();
            prop_assert_eq!(columnar.len(), table.len());
            prop_assert_eq!(columnar.sorted_rows(), table.sorted_rows());
        }
    }
}

/// Deleting every holder of a group's extremum forces the §4.2 MIN/MAX
/// eviction recompute, which re-reads the fact table. Both engines must
/// recompute to the same bytes — checked across the schedule matrix.
#[test]
fn minmax_eviction_recompute_is_byte_identical() {
    for (threads, shards) in [(1, 1), (1, 4), (4, 1), (4, 4)] {
        let mut row_wh = engine_warehouse(threads, shards, StorageMode::Row);
        let mut col_wh = engine_warehouse(threads, shards, StorageMode::Columnar);

        // Install a known per-store extremum, then delete exactly its
        // holders: MaxPrice (and the date minimum in SiC_sales) must fall
        // back to recomputation.
        let spike: Vec<Row> = (1..=3)
            .map(|s| {
                Row::new(vec![
                    Value::Int(s),
                    Value::Int(10),
                    Value::Date(Date(9_000)), // earlier than every fixture date
                    Value::Int(1),
                    Value::Float(999.5),
                ])
            })
            .collect();
        let ins = ChangeBatch::single(DeltaSet::insertions("pos", spike.clone()));
        row_wh.maintain(&ins, &MaintainOptions::default()).unwrap();
        col_wh.maintain(&ins, &MaintainOptions::default()).unwrap();
        assert_byte_identical(&row_wh, &col_wh, "after extremum insert");

        let del = ChangeBatch::single(DeltaSet {
            table: "pos".into(),
            insertions: vec![],
            deletions: spike,
        });
        let row_report = row_wh.maintain(&del, &MaintainOptions::default()).unwrap();
        let col_report = col_wh.maintain(&del, &MaintainOptions::default()).unwrap();
        assert_byte_identical(
            &row_wh,
            &col_wh,
            &format!("after extremum eviction, threads {threads}, shards {shards}"),
        );
        let recomputed = |r: &cubedelta::core::MaintenanceReport| {
            r.per_view
                .iter()
                .map(|v| v.refresh.recomputed)
                .sum::<usize>()
        };
        assert!(
            recomputed(&row_report) > 0,
            "eviction batch should force a recompute (threads {threads}, shards {shards})"
        );
        assert_eq!(
            recomputed(&row_report),
            recomputed(&col_report),
            "engines disagree on recompute count (threads {threads}, shards {shards})"
        );
        col_wh.check_consistency().unwrap();
    }
}

/// An empty change batch is a degenerate but legal cycle: no deltas, no
/// refresh actions, and no divergence between engines.
#[test]
fn empty_delta_cycles_are_byte_identical() {
    for (threads, shards) in [(1, 1), (4, 4)] {
        let mut row_wh = engine_warehouse(threads, shards, StorageMode::Row);
        let mut col_wh = engine_warehouse(threads, shards, StorageMode::Columnar);
        let empty = ChangeBatch::single(DeltaSet {
            table: "pos".into(),
            insertions: vec![],
            deletions: vec![],
        });
        let row_report = row_wh.maintain(&empty, &MaintainOptions::default()).unwrap();
        let col_report = col_wh.maintain(&empty, &MaintainOptions::default()).unwrap();
        assert_byte_identical(&row_wh, &col_wh, "empty delta");
        for (a, b) in row_report.per_view.iter().zip(&col_report.per_view) {
            assert_eq!(a.delta_rows, 0, "empty batch produced a delta in {}", a.view);
            assert_eq!(b.delta_rows, 0, "empty batch produced a delta in {}", b.view);
        }
        col_wh.check_consistency().unwrap();
    }
}
