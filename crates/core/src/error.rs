//! Core-layer errors.

use std::fmt;

use cubedelta_expr::ExprError;
use cubedelta_lattice::LatticeError;
use cubedelta_query::QueryError;
use cubedelta_storage::StorageError;
use cubedelta_view::ViewError;

/// Result alias for maintenance operations.
pub type CoreResult<T> = Result<T, CoreError>;

/// Errors raised by the maintenance engine.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// Underlying storage error.
    Storage(StorageError),
    /// Underlying expression error.
    Expr(ExprError),
    /// Underlying query error.
    Query(QueryError),
    /// Underlying view error.
    View(ViewError),
    /// Underlying lattice error.
    Lattice(LatticeError),
    /// A maintenance invariant was violated (e.g. negative COUNT(*), a plan
    /// step referencing a missing delta).
    Maintenance(String),
    /// The ingestion queue is at capacity and the caller declined to block
    /// (`try_ingest`). Retry later, or use the blocking `ingest`.
    Backpressure,
    /// The ingestion front-end refused the request: the service is shutting
    /// down, or a previous maintenance cycle failed and the service is
    /// holding its staged deltas for the operator (see
    /// `ShutdownReport::unapplied`).
    Ingest(String),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Storage(e) => write!(f, "storage: {e}"),
            CoreError::Expr(e) => write!(f, "expr: {e}"),
            CoreError::Query(e) => write!(f, "query: {e}"),
            CoreError::View(e) => write!(f, "view: {e}"),
            CoreError::Lattice(e) => write!(f, "lattice: {e}"),
            CoreError::Maintenance(m) => write!(f, "maintenance: {m}"),
            CoreError::Backpressure => write!(f, "ingest: queue full (backpressure)"),
            CoreError::Ingest(m) => write!(f, "ingest: {m}"),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<StorageError> for CoreError {
    fn from(e: StorageError) -> Self {
        CoreError::Storage(e)
    }
}

impl From<ExprError> for CoreError {
    fn from(e: ExprError) -> Self {
        CoreError::Expr(e)
    }
}

impl From<QueryError> for CoreError {
    fn from(e: QueryError) -> Self {
        CoreError::Query(e)
    }
}

impl From<ViewError> for CoreError {
    fn from(e: ViewError) -> Self {
        CoreError::View(e)
    }
}

impl From<LatticeError> for CoreError {
    fn from(e: LatticeError) -> Self {
        CoreError::Lattice(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: CoreError = StorageError::UnknownTable("t".into()).into();
        assert!(e.to_string().contains("unknown table"));
        let e: CoreError = LatticeError::Construction("c".into()).into();
        assert!(matches!(e, CoreError::Lattice(_)));
        assert!(CoreError::Maintenance("bad".into()).to_string().contains("bad"));
    }
}
