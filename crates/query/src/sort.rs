//! Sort-based aggregation.
//!
//! The multidimensional-aggregate literature the paper builds on
//! ([AAD+96, SAG96], §5.5) chooses between *sort-based* and *hash-based*
//! pipelines per lattice edge. This module supplies the sort-based
//! operator: order the input by the group-by key, then fold runs of equal
//! keys in one pass. Output arrives in key order — handy when the consumer
//! wants sorted summary tables, and cache-friendlier than hashing when the
//! input is nearly sorted (e.g. date-appended change sets).

use std::cell::Cell;

use cubedelta_obs::ExecutionMetrics;
use cubedelta_storage::{Column, Row};

use crate::aggregate::{AggFunc, AggState};
use crate::error::{QueryError, QueryResult};
use crate::relation::Relation;

/// Like [`crate::exec::hash_aggregate`], but sorts instead of hashing.
/// Produces identical rows (up to order); output is sorted by group key.
pub fn sort_aggregate(
    rel: &Relation,
    group_cols: &[&str],
    aggs: &[(AggFunc, Column)],
) -> QueryResult<Relation> {
    sort_aggregate_metered(rel, group_cols, aggs, &mut ExecutionMetrics::new())
}

/// [`sort_aggregate`], booking scans, sort key comparisons, groups
/// touched, and emits into `m`.
pub fn sort_aggregate_metered(
    rel: &Relation,
    group_cols: &[&str],
    aggs: &[(AggFunc, Column)],
    m: &mut ExecutionMetrics,
) -> QueryResult<Relation> {
    let gidx = rel.schema.indices_of(group_cols)?;
    let bound: Vec<(AggFunc, Option<cubedelta_expr::Expr>)> = aggs
        .iter()
        .map(|(f, _)| {
            let input = f.input().map(|e| e.bind(&rel.schema)).transpose()?;
            Ok::<_, QueryError>((f.clone(), input))
        })
        .collect::<Result<_, _>>()?;

    // Sort row references by group key, counting key comparisons (the
    // sort-vs-hash cost the §5.5 literature weighs).
    m.rows_scanned += rel.rows.len() as u64;
    let cmp_count = Cell::new(0u64);
    let mut order: Vec<&Row> = rel.rows.iter().collect();
    order.sort_by(|a, b| {
        cmp_count.set(cmp_count.get() + 1);
        for &c in &gidx {
            match a[c].cmp(&b[c]) {
                std::cmp::Ordering::Equal => continue,
                other => return other,
            }
        }
        std::cmp::Ordering::Equal
    });
    m.comparisons += cmp_count.get();

    let mut cols: Vec<Column> = gidx
        .iter()
        .map(|&i| rel.schema.columns()[i].clone())
        .collect();
    cols.extend(aggs.iter().map(|(_, c)| {
        let mut c = c.clone();
        c.nullable = true;
        c
    }));
    let schema = cubedelta_storage::Schema::new(cols);

    let mut rows: Vec<Row> = Vec::new();
    let mut current: Option<(Row, Vec<AggState>)> = None;
    let flush = |current: &mut Option<(Row, Vec<AggState>)>, rows: &mut Vec<Row>| {
        if let Some((key, states)) = current.take() {
            let mut out = key.0;
            out.extend(states.iter().map(AggState::finalize));
            rows.push(Row::new(out));
        }
    };

    for r in order {
        let key = r.project(&gidx);
        let same = current.as_ref().map(|(k, _)| *k == key).unwrap_or(false);
        if !same {
            flush(&mut current, &mut rows);
            current = Some((
                key,
                bound.iter().map(|(f, _)| f.new_state()).collect(),
            ));
        }
        let states = &mut current.as_mut().expect("run opened").1;
        for ((func, input), state) in bound.iter().zip(states.iter_mut()) {
            let v = match input {
                Some(e) => e.eval(r)?,
                None => cubedelta_storage::Value::Int(1),
            };
            state.update_metered(func, &v, m);
        }
    }
    flush(&mut current, &mut rows);

    // SQL global aggregation: one row over empty input.
    if gidx.is_empty() && rows.is_empty() {
        let states: Vec<AggState> = bound.iter().map(|(f, _)| f.new_state()).collect();
        rows.push(Row::new(states.iter().map(AggState::finalize).collect()));
    }

    m.groups_touched += rows.len() as u64;
    m.rows_emitted += rows.len() as u64;
    Ok(Relation::new(schema, rows))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::hash_aggregate;
    use cubedelta_expr::Expr;
    use cubedelta_storage::{row, DataType, Schema, Value};

    fn rel() -> Relation {
        Relation::new(
            Schema::new(vec![
                Column::new("k", DataType::Int),
                Column::nullable("v", DataType::Int),
            ]),
            vec![
                row![2i64, 5i64],
                row![1i64, 3i64],
                row![2i64, 1i64],
                Row::new(vec![Value::Int(1), Value::Null]),
                row![3i64, 9i64],
            ],
        )
    }

    fn aggs() -> Vec<(AggFunc, Column)> {
        vec![
            (AggFunc::CountStar, Column::new("cnt", DataType::Int)),
            (
                AggFunc::Sum(Expr::col("v")),
                Column::new("total", DataType::Int),
            ),
            (
                AggFunc::Min(Expr::col("v")),
                Column::new("mn", DataType::Int),
            ),
        ]
    }

    #[test]
    fn matches_hash_aggregate() {
        let r = rel();
        let sorted = sort_aggregate(&r, &["k"], &aggs()).unwrap();
        let hashed = hash_aggregate(&r, &["k"], &aggs()).unwrap();
        assert_eq!(sorted.sorted_rows(), hashed.sorted_rows());
    }

    #[test]
    fn output_is_key_ordered() {
        let out = sort_aggregate(&rel(), &["k"], &aggs()).unwrap();
        let keys: Vec<_> = out.rows.iter().map(|r| r[0].clone()).collect();
        assert_eq!(keys, vec![Value::Int(1), Value::Int(2), Value::Int(3)]);
    }

    #[test]
    fn global_aggregate_over_empty() {
        let empty = Relation::empty(rel().schema);
        let out = sort_aggregate(&empty, &[], &aggs()).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out.rows[0][0], Value::Int(0));
        assert!(out.rows[0][1].is_null());
    }

    #[test]
    fn grouped_over_empty_is_empty() {
        let empty = Relation::empty(rel().schema);
        let out = sort_aggregate(&empty, &["k"], &aggs()).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn metered_sort_counts_comparisons() {
        let mut m = ExecutionMetrics::new();
        let out = sort_aggregate_metered(&rel(), &["k"], &aggs(), &mut m).unwrap();
        assert_eq!(m.rows_scanned, 5);
        assert!(m.comparisons > 0, "sorting 5 rows must compare keys");
        assert_eq!(m.groups_touched, 3);
        assert_eq!(m.rows_emitted, out.len() as u64);
    }

    #[test]
    fn multi_column_keys() {
        let r = Relation::new(
            Schema::new(vec![
                Column::new("a", DataType::Int),
                Column::new("b", DataType::Str),
                Column::new("v", DataType::Int),
            ]),
            vec![
                row![1i64, "y", 1i64],
                row![1i64, "x", 2i64],
                row![1i64, "x", 3i64],
            ],
        );
        let out = sort_aggregate(
            &r,
            &["a", "b"],
            &[(AggFunc::CountStar, Column::new("cnt", DataType::Int))],
        )
        .unwrap();
        assert_eq!(out.rows[0], row![1i64, "x", 2i64]);
        assert_eq!(out.rows[1], row![1i64, "y", 1i64]);
    }
}
