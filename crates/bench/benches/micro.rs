//! Micro-benches for the maintenance building blocks: prepare/aggregate
//! (propagate for one view), D-lattice edge derivation, and the indexed
//! refresh itself.

use criterion::{criterion_group, criterion_main, Criterion};

use cubedelta_bench::{build_warehouse, figure1_defs, update_batch};
use cubedelta_core::{
    propagate_view, refresh, PropagateOptions, RefreshOptions,
};
use cubedelta_lattice::{build_edge_query, derives};
use cubedelta_view::augment;

fn bench(c: &mut Criterion) {
    let (wh, params) = build_warehouse(100_000);
    let catalog = wh.catalog();
    let batch = update_batch(&wh, &params, 10_000, 99);

    let defs = figure1_defs();
    let sid = augment(catalog, &defs[0]).unwrap();
    let scd = augment(catalog, &defs[1]).unwrap();

    let mut group = c.benchmark_group("micro");
    group
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(500))
        .measurement_time(std::time::Duration::from_secs(3));

    // Propagate a single view's summary-delta from 10k changes.
    group.bench_function("propagate_sid_direct_10k", |b| {
        b.iter(|| propagate_view(catalog, &sid, &batch, &PropagateOptions::default()).unwrap());
    });
    group.bench_function("propagate_scd_direct_10k", |b| {
        b.iter(|| propagate_view(catalog, &scd, &batch, &PropagateOptions::default()).unwrap());
    });

    // Derive sCD's delta from SID's delta (the D-lattice edge).
    let sid_delta = propagate_view(catalog, &sid, &batch, &PropagateOptions::default()).unwrap();
    let info = derives(catalog, &scd, &sid).unwrap().expect("scd ⊑ sid");
    let eq = build_edge_query(catalog, &sid, &scd, &info).unwrap();
    group.bench_function("derive_scd_from_sid_delta", |b| {
        b.iter(|| cubedelta_lattice::derive_child(catalog, &sid_delta, &eq).unwrap());
    });

    // The indexed refresh of SID_sales with a 10k-group delta.
    group.bench_function("refresh_sid_10k_delta", |b| {
        b.iter(|| {
            let mut cat = wh.catalog().clone();
            for d in &batch.deltas {
                cat.table_mut(&d.table).unwrap().apply_delta(d).unwrap();
            }
            refresh(&mut cat, &sid, &sid_delta, &RefreshOptions::default()).unwrap()
        });
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
