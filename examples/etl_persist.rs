//! ETL and persistence: load base data from CSV, define views, run a night
//! of maintenance, save the whole warehouse to a directory, and restore it.
//!
//! ```sh
//! cargo run --example etl_persist
//! ```

use cubedelta::persist::{load_warehouse, save_warehouse};
use cubedelta::sql::SqlWarehouse;
use cubedelta::storage::{
    load_csv, parse_csv, ChangeBatch, Column, DataType, DeltaSet, DimensionInfo,
    FunctionalDependency, Schema,
};
use cubedelta::{MaintainOptions, Warehouse};

fn pos_schema() -> Schema {
    Schema::new(vec![
        Column::new("storeID", DataType::Int),
        Column::new("itemID", DataType::Int),
        Column::new("date", DataType::Date),
        Column::nullable("qty", DataType::Int),
        Column::nullable("price", DataType::Float),
    ])
}

fn main() {
    let mut wh = Warehouse::new();
    wh.create_fact_table("pos", pos_schema()).unwrap();
    wh.create_dimension_table(
        "stores",
        Schema::new(vec![
            Column::new("storeID", DataType::Int),
            Column::new("city", DataType::Str),
            Column::new("region", DataType::Str),
        ]),
        DimensionInfo {
            key: "storeID".into(),
            fds: vec![
                FunctionalDependency::new("storeID", &["city"]),
                FunctionalDependency::new("city", &["region"]),
            ],
        },
    )
    .unwrap();
    wh.add_foreign_key("pos", "storeID", "stores", "storeID").unwrap();

    // --- ETL: flat files in ------------------------------------------------
    load_csv(
        wh.catalog_mut().table_mut("stores").unwrap(),
        "storeID,city,region\n1,nyc,east\n2,boston,east\n3,sf,west\n",
    )
    .unwrap();
    load_csv(
        wh.catalog_mut().table_mut("pos").unwrap(),
        "storeID,itemID,date,qty,price\n\
         1,100,1997-05-12,5,1.25\n\
         1,100,1997-05-12,3,1.25\n\
         2,200,1997-05-13,2,4.00\n\
         3,100,1997-05-13,7,1.25\n",
    )
    .unwrap();
    println!("loaded {} pos rows from CSV", wh.catalog().table("pos").unwrap().len());

    wh.create_summary_table_sql(
        "CREATE VIEW region_sales AS \
         SELECT region, COUNT(*) AS cnt, SUM(qty) AS total \
         FROM pos, stores WHERE pos.storeID = stores.storeID GROUP BY region",
    )
    .unwrap();

    // --- a nightly batch, also CSV-shaped --------------------------------
    let increment = parse_csv(
        &pos_schema(),
        "storeID,itemID,date,qty,price\n2,200,1997-05-14,6,4.00\n",
    )
    .unwrap();
    let report = wh
        .maintain(
            &ChangeBatch::single(DeltaSet::insertions("pos", increment)),
            &MaintainOptions::default(),
        )
        .unwrap();
    print!("{report}");

    // --- save / restore -----------------------------------------------------
    let dir = std::env::temp_dir().join("cubedelta_etl_demo");
    save_warehouse(&wh, &dir).unwrap();
    println!("\nsaved to {}", dir.display());
    for entry in std::fs::read_dir(&dir).unwrap() {
        println!("  {}", entry.unwrap().file_name().to_string_lossy());
    }

    let restored = load_warehouse(&dir).unwrap();
    restored.check_consistency().unwrap();
    println!(
        "\nrestored: {} views, region_sales = {:?}",
        restored.views().len(),
        restored
            .catalog()
            .table("region_sales")
            .unwrap()
            .sorted_rows()
    );
    std::fs::remove_dir_all(&dir).unwrap();
}
