//! # cubedelta-expr
//!
//! Scalar expressions and predicates over [`cubedelta_storage`] rows.
//!
//! Expressions are the language of *aggregate sources* (Table 1 of the
//! paper): prepare-insertions projects `1 AS _count`, `qty AS _quantity`;
//! prepare-deletions projects `-1` and `-qty`; `COUNT(expr)` sources use the
//! SQL-92 `CASE WHEN expr IS NULL THEN 0 ELSE ±1 END` form. Predicates
//! express view `WHERE` clauses and join conditions.

pub mod error;
pub mod expr;
pub mod predicate;

pub use error::{ExprError, ExprResult};
pub use expr::{BinOp, Expr};
pub use predicate::{CmpOp, Predicate};
