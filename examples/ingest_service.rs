//! Async batched ingestion: wrap a [`Warehouse`] in a
//! [`WarehouseService`], stream deltas from several producer threads, and
//! let the background worker seal batches and run maintenance cycles.
//!
//! ```sh
//! cargo run --example ingest_service
//! ```

use std::time::Duration;

use cubedelta::core::{BatchPolicy, WarehouseService};
use cubedelta::expr::Expr;
use cubedelta::query::AggFunc;
use cubedelta::storage::{row, Date, DeltaSet};
use cubedelta::view::SummaryViewDef;
use cubedelta::workload::retail_catalog_small;
use cubedelta::Warehouse;

fn main() {
    // A small retail warehouse with one summary table over pos.
    let mut wh = Warehouse::from_catalog(retail_catalog_small());
    wh.create_summary_table(
        &SummaryViewDef::builder("SID_sales", "pos")
            .group_by(["storeID", "itemID", "date"])
            .aggregate(AggFunc::CountStar, "TotalCount")
            .aggregate(AggFunc::Sum(Expr::col("qty")), "TotalQuantity")
            .build(),
    )
    .unwrap();

    // Hand the warehouse to the service. The policy seals a staged batch
    // at 256 rows or 20ms of age, whichever comes first, and lets at most
    // 4 sealed batches queue before producers feel backpressure.
    let svc = WarehouseService::start(
        wh,
        BatchPolicy {
            max_rows: 256,
            max_batches: 4,
            flush_interval: Duration::from_millis(20),
        },
    );

    // Four producers race blocking `ingest`; the worker runs
    // propagate + refresh cycles behind them, in seal order.
    std::thread::scope(|scope| {
        for producer in 0..4i64 {
            let svc = &svc;
            scope.spawn(move || {
                for i in 0..500i64 {
                    let store = (producer + i) % 3 + 1;
                    let item = [10i64, 20, 30][(i % 3) as usize];
                    let delta = DeltaSet::insertions(
                        "pos",
                        vec![row![store, item, Date(10_000 + (i % 4) as i32), i % 7 + 1, 1.0]],
                    );
                    svc.ingest(delta).expect("ingest");
                }
            });
        }
    });

    // Drain everything staged, then stop the worker and take the
    // warehouse back, with the full accounting.
    svc.flush().expect("flush");
    println!(
        "health after drain: {}",
        if svc.health().is_healthy() { "healthy" } else { "degraded" }
    );
    let report = svc.shutdown();
    assert!(report.error.is_none() && report.unapplied.is_empty());

    println!(
        "ingested {} rows in {} batches over {} cycles",
        report.rows_ingested, report.batches_sealed, report.cycles
    );
    println!(
        "SID_sales now has {} groups",
        report
            .warehouse
            .catalog()
            .table("SID_sales")
            .unwrap()
            .len()
    );
    report.warehouse.check_consistency().unwrap();
    println!("summary tables consistent with base data");
}
