//! The V-lattice of summary tables and derivation-plan selection (§5).
//!
//! A set of (augmented) generalized cube views is arranged into a
//! partially-materialized lattice using the derives relation. By
//! **Theorem 5.1** the D-lattice of summary-delta tables is identical to the
//! V-lattice modulo table renaming, so the same structure plans both
//! rematerialization cascades and delta propagation.
//!
//! Parent selection (§5.5) maps to the multi-aggregate computation problem
//! of [AAD+96, SAG96]; we use their greedy flavour: derive each view from
//! the candidate ancestor with the smallest estimated size, tie-breaking on
//! the number of dimension joins the edge needs (join annotations included
//! in the cost, as §5.5 prescribes).

use std::collections::HashMap;
use std::fmt;

use cubedelta_storage::Catalog;
use cubedelta_view::AugmentedView;

use crate::derives::{derives, DerivesInfo};
use crate::error::{LatticeError, LatticeResult};
use crate::rewrite::{build_edge_query, EdgeQuery};

/// Where a view's summary-delta (or recomputed contents) comes from.
#[derive(Debug, Clone, PartialEq)]
pub enum DeltaSource {
    /// Computed directly from the base-table change set (lattice roots, or
    /// every view in the "without lattice" baseline).
    Direct,
    /// Computed from an ancestor's summary-delta via an edge query.
    FromParent(EdgeQuery),
}

/// One step of a maintenance plan. Steps are topologically ordered: a
/// `FromParent` step always appears after its parent's step.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanStep {
    /// The view this step computes a summary-delta for.
    pub view: String,
    /// Where the delta comes from.
    pub source: DeltaSource,
}

/// A topologically-ordered propagation plan over the D-lattice.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MaintenancePlan {
    /// The ordered steps.
    pub steps: Vec<PlanStep>,
}

impl MaintenancePlan {
    /// Number of steps (= number of views).
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// True iff the plan is empty.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// The step for a view, if present.
    pub fn step(&self, view: &str) -> Option<&PlanStep> {
        self.steps.iter().find(|s| s.view == view)
    }
}

impl fmt::Display for MaintenancePlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for s in &self.steps {
            match &s.source {
                DeltaSource::Direct => writeln!(f, "{} <- changes", s.view)?,
                DeltaSource::FromParent(eq) => {
                    let dims: Vec<&str> =
                        eq.dim_joins.iter().map(|d| d.dim_table.as_str()).collect();
                    if dims.is_empty() {
                        writeln!(f, "{} <- {}", s.view, eq.parent)?
                    } else {
                        writeln!(f, "{} <- {} [join {}]", s.view, eq.parent, dims.join(", "))?
                    }
                }
            }
        }
        Ok(())
    }
}

/// The V-lattice over a set of summary tables.
#[derive(Clone)]
pub struct ViewLattice {
    views: Vec<AugmentedView>,
    by_name: HashMap<String, usize>,
    /// `strict[c][p]`: view `c` is strictly below view `p` (derivable from
    /// it, with mutual derivability broken by name so the relation is a
    /// DAG). Holds the derivation evidence.
    strict: Vec<Vec<Option<DerivesInfo>>>,
    /// Covering edges `(parent, child)` of the strict order.
    edges: Vec<(usize, usize)>,
}

impl ViewLattice {
    /// Builds the V-lattice. View names must be unique.
    pub fn build(catalog: &Catalog, views: Vec<AugmentedView>) -> LatticeResult<Self> {
        let n = views.len();
        let mut by_name = HashMap::with_capacity(n);
        for (i, v) in views.iter().enumerate() {
            if by_name.insert(v.def.name.clone(), i).is_some() {
                return Err(LatticeError::Construction(format!(
                    "duplicate view name `{}`",
                    v.def.name
                )));
            }
        }

        // Raw derivability, then strictify.
        let mut raw: Vec<Vec<Option<DerivesInfo>>> = vec![vec![None; n]; n];
        for c in 0..n {
            for p in 0..n {
                if c != p {
                    raw[c][p] = derives(catalog, &views[c], &views[p])?;
                }
            }
        }
        let mut strict: Vec<Vec<Option<DerivesInfo>>> = vec![vec![None; n]; n];
        for c in 0..n {
            for p in 0..n {
                if raw[c][p].is_none() {
                    continue;
                }
                let mutual = raw[p][c].is_some();
                // Mutually-derivable views are ordered by name for a
                // deterministic DAG.
                if !mutual || views[p].def.name < views[c].def.name {
                    strict[c][p] = raw[c][p].clone();
                }
            }
        }

        // Covering edges: strict pairs with no strict intermediate.
        let mut edges = Vec::new();
        for c in 0..n {
            for p in 0..n {
                if strict[c][p].is_none() {
                    continue;
                }
                let covered = (0..n).any(|m| {
                    m != c && m != p && strict[c][m].is_some() && strict[m][p].is_some()
                });
                if !covered {
                    edges.push((p, c));
                }
            }
        }
        edges.sort_unstable();

        Ok(ViewLattice {
            views,
            by_name,
            strict,
            edges,
        })
    }

    /// The views, in construction order.
    pub fn views(&self) -> &[AugmentedView] {
        &self.views
    }

    /// Look up a view by name.
    pub fn view(&self, name: &str) -> Option<&AugmentedView> {
        self.by_name.get(name).map(|&i| &self.views[i])
    }

    /// Covering edges as `(parent, child)` index pairs.
    pub fn edges(&self) -> &[(usize, usize)] {
        &self.edges
    }

    /// True iff `child` is strictly derivable from `parent` (by index).
    pub fn strictly_below(&self, child: usize, parent: usize) -> bool {
        self.strict[child][parent].is_some()
    }

    /// Indexes of views with no parents (lattice tops).
    pub fn tops(&self) -> Vec<usize> {
        (0..self.views.len())
            .filter(|&c| (0..self.views.len()).all(|p| self.strict[c][p].is_none()))
            .collect()
    }

    /// A topological order: every view appears after all its ancestors.
    pub fn topo_order(&self) -> Vec<usize> {
        let n = self.views.len();
        let mut remaining: Vec<usize> = (0..n).collect();
        let mut placed = vec![false; n];
        let mut order = Vec::with_capacity(n);
        while !remaining.is_empty() {
            let before = order.len();
            remaining.retain(|&c| {
                let ready = (0..n).all(|p| self.strict[c][p].is_none() || placed[p]);
                if ready {
                    order.push(c);
                }
                !ready
            });
            for &i in &order[before..] {
                placed[i] = true;
            }
            assert!(
                order.len() > before,
                "strict derives relation contains a cycle"
            );
        }
        order
    }

    /// Chooses a propagation plan (§5.5): for each view, derive from the
    /// candidate strict ancestor minimizing `(estimated size, number of
    /// dimension joins, name)`; views with no ancestor compute directly from
    /// the change set. `estimated_size` is typically the current summary
    /// table's row count — the best available stand-in for its delta's size.
    pub fn choose_plan<F>(
        &self,
        catalog: &Catalog,
        estimated_size: F,
    ) -> LatticeResult<MaintenancePlan>
    where
        F: Fn(&str) -> usize,
    {
        let mut steps = Vec::with_capacity(self.views.len());
        for &c in &self.topo_order() {
            let child = &self.views[c];
            let mut best: Option<(usize, usize, &str, usize)> = None; // (size, joins, name, idx)
            for p in 0..self.views.len() {
                if let Some(info) = &self.strict[c][p] {
                    let cand = (
                        estimated_size(&self.views[p].def.name),
                        info.dim_joins.len(),
                        self.views[p].def.name.as_str(),
                        p,
                    );
                    if best.map(|b| (cand.0, cand.1, cand.2) < (b.0, b.1, b.2)).unwrap_or(true) {
                        best = Some(cand);
                    }
                }
            }
            let source = match best {
                None => DeltaSource::Direct,
                Some((_, _, _, p)) => {
                    let info = self.strict[c][p].as_ref().expect("candidate has info");
                    DeltaSource::FromParent(build_edge_query(
                        catalog,
                        &self.views[p],
                        child,
                        info,
                    )?)
                }
            };
            steps.push(PlanStep {
                view: child.def.name.clone(),
                source,
            });
        }
        Ok(MaintenancePlan { steps })
    }

    /// Cost-based plan selection with the change set in the model (§5.5
    /// maps this to \[AAD+96, SAG96] and says to include "the join cost
    /// estimate in the cost of the derivation"). The summary-delta of a
    /// view holds at most `min(|view|, |changes|)` rows, and every
    /// derivation pays one pass over its input times one unit per joined
    /// dimension table; a view computes directly from the changes whenever
    /// that is cheaper than every ancestor-delta derivation.
    pub fn choose_plan_costed<F>(
        &self,
        catalog: &Catalog,
        estimated_size: F,
        batch_rows: usize,
    ) -> LatticeResult<MaintenancePlan>
    where
        F: Fn(&str) -> usize,
    {
        let mut steps = Vec::with_capacity(self.views.len());
        for &c in &self.topo_order() {
            let child = &self.views[c];
            let direct_cost =
                batch_rows.saturating_mul(1 + child.def.dim_joins.len());
            let mut best: Option<(usize, usize, &str, usize)> = None; // (cost, joins, name, idx)
            for p in 0..self.views.len() {
                if let Some(info) = &self.strict[c][p] {
                    let delta_rows =
                        estimated_size(&self.views[p].def.name).min(batch_rows);
                    let cost = delta_rows.saturating_mul(1 + info.dim_joins.len());
                    let cand = (
                        cost,
                        info.dim_joins.len(),
                        self.views[p].def.name.as_str(),
                        p,
                    );
                    if best
                        .map(|b| (cand.0, cand.1, cand.2) < (b.0, b.1, b.2))
                        .unwrap_or(true)
                    {
                        best = Some(cand);
                    }
                }
            }
            let source = match best {
                Some((cost, _, _, p)) if cost <= direct_cost => {
                    let info = self.strict[c][p].as_ref().expect("candidate has info");
                    DeltaSource::FromParent(build_edge_query(
                        catalog,
                        &self.views[p],
                        child,
                        info,
                    )?)
                }
                _ => DeltaSource::Direct,
            };
            steps.push(PlanStep {
                view: child.def.name.clone(),
                source,
            });
        }
        Ok(MaintenancePlan { steps })
    }

    /// The trivial plan computing every summary-delta directly from the
    /// change set — the "propagate without lattice" baseline of Figure 9.
    pub fn direct_plan(&self) -> MaintenancePlan {
        MaintenancePlan {
            steps: self
                .views
                .iter()
                .map(|v| PlanStep {
                    view: v.def.name.clone(),
                    source: DeltaSource::Direct,
                })
                .collect(),
        }
    }

    /// Renders the lattice level by level with its covering edges — the
    /// textual analogue of Figure 8.
    pub fn render(&self) -> String {
        let n = self.views.len();
        // Longest path from a top.
        let mut depth = vec![0usize; n];
        let mut changed = true;
        while changed {
            changed = false;
            for &(p, c) in &self.edges {
                if depth[c] < depth[p] + 1 {
                    depth[c] = depth[p] + 1;
                    changed = true;
                }
            }
        }
        let max_depth = depth.iter().copied().max().unwrap_or(0);
        let mut out = String::new();
        for d in 0..=max_depth {
            let mut labels: Vec<String> = (0..n)
                .filter(|&i| depth[i] == d)
                .map(|i| {
                    let v = &self.views[i];
                    format!("{}({})", v.def.name, v.def.group_by.join(","))
                })
                .collect();
            labels.sort();
            out.push_str(&labels.join("  "));
            out.push('\n');
        }
        for &(p, c) in &self.edges {
            let dims: Vec<&str> = self.strict[c][p]
                .as_ref()
                .map(|i| i.dim_joins.iter().map(|d| d.dim_table.as_str()).collect())
                .unwrap_or_default();
            if dims.is_empty() {
                out.push_str(&format!(
                    "{} -> {}\n",
                    self.views[p].def.name, self.views[c].def.name
                ));
            } else {
                out.push_str(&format!(
                    "{} -> {} [join {}]\n",
                    self.views[p].def.name,
                    self.views[c].def.name,
                    dims.join(", ")
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_fixtures::*;

    fn lattice() -> (Catalog, ViewLattice) {
        let cat = retail_catalog_small();
        let views = figure1_views(&cat);
        let lat = ViewLattice::build(&cat, views).unwrap();
        (cat, lat)
    }

    #[test]
    fn figure_1_views_form_expected_lattice() {
        let (_, lat) = lattice();
        // SID_sales is the single top; sR_sales the single bottom.
        let tops = lat.tops();
        assert_eq!(tops.len(), 1);
        assert_eq!(lat.views()[tops[0]].def.name, "SID_sales");

        let sid = 0;
        let scd = 1;
        let sic = 2;
        let sr = 3;
        assert!(lat.strictly_below(scd, sid));
        assert!(lat.strictly_below(sic, sid));
        assert!(lat.strictly_below(sr, sid));
        assert!(lat.strictly_below(sr, scd));
        assert!(lat.strictly_below(sr, sic));
        assert!(!lat.strictly_below(sid, sr));
        assert!(!lat.strictly_below(scd, sic));

        // Covering edges: SID→sCD, SID→SiC, sCD→sR, SiC→sR (no direct
        // SID→sR since intermediates exist).
        let edges: Vec<(String, String)> = lat
            .edges()
            .iter()
            .map(|&(p, c)| {
                (
                    lat.views()[p].def.name.clone(),
                    lat.views()[c].def.name.clone(),
                )
            })
            .collect();
        assert!(edges.contains(&("SID_sales".into(), "sCD_sales".into())));
        assert!(edges.contains(&("SID_sales".into(), "SiC_sales".into())));
        assert!(edges.contains(&("sCD_sales".into(), "sR_sales".into())));
        assert!(edges.contains(&("SiC_sales".into(), "sR_sales".into())));
        assert!(!edges.contains(&("SID_sales".into(), "sR_sales".into())));
    }

    #[test]
    fn topo_order_puts_ancestors_first() {
        let (_, lat) = lattice();
        let order = lat.topo_order();
        let pos = |name: &str| {
            order
                .iter()
                .position(|&i| lat.views()[i].def.name == name)
                .unwrap()
        };
        assert!(pos("SID_sales") < pos("sCD_sales"));
        assert!(pos("SID_sales") < pos("SiC_sales"));
        assert!(pos("sCD_sales") < pos("sR_sales"));
        assert!(pos("SiC_sales") < pos("sR_sales"));
    }

    #[test]
    fn plan_prefers_small_parents() {
        let (cat, lat) = lattice();
        // Pretend sCD_sales is much smaller than SiC_sales and SID_sales.
        let sizes = |name: &str| match name {
            "SID_sales" => 1000,
            "sCD_sales" => 10,
            "SiC_sales" => 500,
            _ => 0,
        };
        let plan = lat.choose_plan(&cat, sizes).unwrap();
        assert_eq!(plan.len(), 4);
        // SID is a root.
        assert_eq!(plan.step("SID_sales").unwrap().source, DeltaSource::Direct);
        // sR derives from the smallest ancestor, sCD.
        match &plan.step("sR_sales").unwrap().source {
            DeltaSource::FromParent(eq) => assert_eq!(eq.parent, "sCD_sales"),
            other => panic!("expected FromParent, got {other:?}"),
        }
        // Steps are topologically ordered.
        let idx = |v: &str| plan.steps.iter().position(|s| s.view == v).unwrap();
        assert!(idx("sCD_sales") < idx("sR_sales"));
    }

    #[test]
    fn costed_plan_prefers_cheap_parent_deltas() {
        let (cat, lat) = lattice();
        // Parents far smaller than the batch: derive through the lattice.
        let sizes = |name: &str| match name {
            "SID_sales" => 50,
            "sCD_sales" => 10,
            "SiC_sales" => 20,
            _ => 5,
        };
        let plan = lat.choose_plan_costed(&cat, sizes, 10_000).unwrap();
        let from_parent = plan
            .steps
            .iter()
            .filter(|s| matches!(s.source, DeltaSource::FromParent(_)))
            .count();
        assert_eq!(from_parent, 3);
        // sR derives from sCD: delta ≤ 10 rows, 1 join → cost 20, beating
        // SiC (cost 40) and Direct (10k × 2).
        match &plan.step("sR_sales").unwrap().source {
            DeltaSource::FromParent(eq) => assert_eq!(eq.parent, "sCD_sales"),
            other => panic!("expected FromParent, got {other:?}"),
        }
    }

    #[test]
    fn costed_plan_falls_back_to_direct_for_tiny_batches() {
        let (cat, lat) = lattice();
        // Parents enormous, batch a single row: the edge pays
        // min(size, 1)·(1+joins) = 1·2 for sCD from SID, while Direct pays
        // 1·(1 + 1 dim) = 2 — tie goes to the parent. Make the edge pricier
        // than Direct by checking SiC (1 join either way) stays FromParent
        // but a view whose direct cost is 1 (no dims) picks whichever is
        // ≤. Here: SID itself has no ancestors → Direct.
        let plan = lat
            .choose_plan_costed(&cat, |_| usize::MAX, 1)
            .unwrap();
        assert_eq!(plan.step("SID_sales").unwrap().source, DeltaSource::Direct);
        // Every step still valid and topologically ordered.
        let mut seen = std::collections::HashSet::new();
        for s in &plan.steps {
            if let DeltaSource::FromParent(eq) = &s.source {
                assert!(seen.contains(eq.parent.as_str()));
            }
            seen.insert(s.view.as_str());
        }
    }

    #[test]
    fn direct_plan_has_no_parents() {
        let (_, lat) = lattice();
        let plan = lat.direct_plan();
        assert!(plan
            .steps
            .iter()
            .all(|s| s.source == DeltaSource::Direct));
    }

    #[test]
    fn duplicate_view_names_rejected() {
        let cat = retail_catalog_small();
        let views = vec![
            figure1_views(&cat)[0].clone(),
            figure1_views(&cat)[0].clone(),
        ];
        assert!(matches!(
            ViewLattice::build(&cat, views),
            Err(LatticeError::Construction(_))
        ));
    }

    #[test]
    fn render_mentions_join_annotations() {
        let (_, lat) = lattice();
        let render = lat.render();
        assert!(render.contains("SID_sales -> SiC_sales [join items]"));
        assert!(render.contains("SID_sales -> sCD_sales [join stores]"));
        // sCD→sR needs the functional stores join (region from city).
        assert!(render.contains("sCD_sales -> sR_sales [join stores]"));
    }

    #[test]
    fn mutually_derivable_views_break_by_name() {
        // Two views with identical group-bys and aggregates are mutually
        // derivable; the name order decides parenthood deterministically.
        let cat = retail_catalog_small();
        let a = cubedelta_view::augment(
            &cat,
            &cubedelta_view::SummaryViewDef::builder("alpha", "pos")
                .group_by(["storeID"])
                .aggregate(cubedelta_query::AggFunc::CountStar, "cnt")
                .build(),
        )
        .unwrap();
        let b = cubedelta_view::augment(
            &cat,
            &cubedelta_view::SummaryViewDef::builder("beta", "pos")
                .group_by(["storeID"])
                .aggregate(cubedelta_query::AggFunc::CountStar, "cnt")
                .build(),
        )
        .unwrap();
        let lat = ViewLattice::build(&cat, vec![b, a]).unwrap();
        // alpha < beta, so beta is strictly below alpha.
        let beta = 0;
        let alpha = 1;
        assert!(lat.strictly_below(beta, alpha));
        assert!(!lat.strictly_below(alpha, beta));
        let order = lat.topo_order();
        assert_eq!(order, vec![alpha, beta]);
    }
}
