//! Robustness: the SQL front-end must never panic — arbitrary input
//! produces either a parse result or an error.

use cubedelta_sql::{parse_query, parse_view, tokenize};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Arbitrary bytes-ish strings: lexer and parsers return, never panic.
    #[test]
    fn arbitrary_text_never_panics(input in ".{0,120}") {
        let _ = tokenize(&input);
        let _ = parse_view(&input);
        let _ = parse_query(&input);
    }

    /// SQL-ish soup (keywords, idents, punctuation shuffled): still no
    /// panics, and successful parses are structurally sane.
    #[test]
    fn sql_soup_never_panics(
        words in proptest::collection::vec(
            prop_oneof![
                Just("SELECT"), Just("FROM"), Just("WHERE"), Just("GROUP"),
                Just("BY"), Just("CREATE"), Just("VIEW"), Just("AS"),
                Just("COUNT"), Just("SUM"), Just("MIN"), Just("AVG"),
                Just("AND"), Just("OR"), Just("NOT"), Just("IS"), Just("NULL"),
                Just("DATE"), Just("pos"), Just("stores"), Just("qty"),
                Just("("), Just(")"), Just(","), Just("*"), Just("="),
                Just("<="), Just("'97'"), Just("3"), Just("1.5"), Just("."),
                Just("storeID"), Just("x"),
            ],
            0..25,
        )
    ) {
        let input = words.join(" ");
        if let Ok(q) = parse_query(&input) {
            prop_assert!(!q.fact_table.is_empty());
        }
        if let Ok(v) = parse_view(&input) {
            prop_assert!(!v.name.is_empty());
            prop_assert!(!v.fact_table.is_empty());
        }
    }
}
