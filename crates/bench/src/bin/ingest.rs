//! One-shot harness for the async ingestion front-end
//! ([`cubedelta_core::WarehouseService`]): sustained ingest throughput and
//! staleness as the producer count scales.
//!
//! ```sh
//! cargo run --release -p cubedelta-bench --bin ingest
//! cargo run --release -p cubedelta-bench --bin ingest -- --quick
//! ```
//!
//! For each producer count (1, 2, 4, 8) the harness starts a service over
//! the §6 retail warehouse, races the producers through blocking `ingest`
//! with insertion-generating deltas, then `flush`es and shuts down. It
//! reports:
//!
//! * **throughput** — accepted rows per second of wall clock, from the
//!   first `ingest` to the completed `flush` (so the denominator includes
//!   every maintenance cycle the rows forced);
//! * **staleness** — the `flush_latency_us` histogram: time from a batch's
//!   first staged row to that batch's cycle completing, i.e. how old a
//!   delta can get before a reader of the summary tables sees it;
//! * queue pressure — sealed-batch count and producer `backpressure_waits`.
//!
//! Results are collected into `BENCH_ingest.json` (written to the working
//! directory), the machine-readable companion to `EXPERIMENTS.md`. As with
//! `BENCH_fig9.json`, `host_parallelism` records the cores the run really
//! had and `scaling_valid` is `false` on hosts with too few cores for the
//! producer counts to run concurrently — downstream readers must not treat
//! flat throughput there as a regression.
//!
//! Set `CUBEDELTA_COMMITLOG_DIR=/some/dir` to measure the **durable**
//! path instead: every sealed batch is appended + fsync'd to a commitlog
//! (one subdirectory per producer count) before the seal is acknowledged,
//! and each point additionally reports `log_appended_bytes` and the
//! `fsync_us` latency distribution — the price of crash safety in the
//! same units as the rest of the sweep.

use std::time::{Duration, Instant};

use cubedelta_bench::build_warehouse;
use cubedelta_core::ingest::DurabilityPolicy;
use cubedelta_core::{BatchPolicy, MaintainOptions, MaintenancePolicy, WarehouseService};
use cubedelta_obs::json::JsonValue;
use cubedelta_workload::insertion_generating;

const PRODUCER_COUNTS: [usize; 4] = [1, 2, 4, 8];

struct RunConfig {
    pos_rows: usize,
    /// Rows each producer ingests in total.
    rows_per_producer: usize,
    /// Rows per ingested delta.
    delta_rows: usize,
    policy: BatchPolicy,
}

fn run_point(cfg: &RunConfig, producers: usize) -> JsonValue {
    let (mut wh, params) = build_warehouse(cfg.pos_rows);
    // Pin the maintenance thread count so every point runs the same
    // refresh schedule; the sweep varies only the producer side.
    wh.set_maintenance_policy(MaintenancePolicy::with_threads(
        MaintenancePolicy::from_env().threads.max(2),
    ));
    // With CUBEDELTA_COMMITLOG_DIR set, every sealed batch is appended to
    // an fsync'd commitlog before the seal is acknowledged — the point
    // then measures durable-path throughput and the fsync tax shows up in
    // `fsync_us`. Each producer count logs to its own subdirectory so the
    // points stay independent.
    let durability = DurabilityPolicy::from_env().map(|p| {
        let dir = p.dir.join(format!("p{producers}"));
        let _ = std::fs::remove_dir_all(&dir);
        DurabilityPolicy::new(dir)
    });
    let durable = durability.is_some();
    let svc = match durability {
        Some(d) => WarehouseService::start_with_durability(
            wh,
            cfg.policy,
            MaintainOptions::default(),
            d,
        )
        .expect("open commitlog"),
        None => WarehouseService::start(wh, cfg.policy),
    };

    let deltas_per_producer = cfg.rows_per_producer.div_ceil(cfg.delta_rows);
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for p in 0..producers {
            let svc = &svc;
            let params = &params;
            scope.spawn(move || {
                for i in 0..deltas_per_producer {
                    let seed = (p * 1_000_000 + i) as u64;
                    let delta = insertion_generating(params, cfg.delta_rows, 1, seed);
                    svc.ingest(delta).expect("ingest");
                }
            });
        }
    });
    svc.flush().expect("flush");
    let elapsed = t0.elapsed();

    let latency = svc.metrics().histogram("flush_latency_us").snapshot();
    let backpressure_waits = svc.metrics().counter("backpressure_waits").get();
    let log_appended_bytes = svc.metrics().counter("log_appended_bytes").get();
    let fsync = svc.metrics().histogram("fsync_us").snapshot();
    let healthy = svc.health().is_healthy();
    let report = svc.shutdown();
    assert!(report.error.is_none(), "cycle failed: {:?}", report.error);
    assert!(report.unapplied.is_empty());
    assert_eq!(report.rows_applied, report.rows_ingested);
    assert!(healthy, "drained service reported degraded health");

    // Flight-recorder cross-check: the journal must reconstruct exactly
    // the cycles the service ran (the ring may have evicted the oldest
    // events on long runs — only assert when it kept everything).
    let journal = report.warehouse.journal();
    let summaries = cubedelta_obs::reconstruct_cycles(&journal.events());
    if journal.dropped() == 0 {
        let committed = summaries.iter().filter(|c| c.committed).count() as u64;
        assert_eq!(committed, report.cycles, "journal lost committed cycles");
    }

    let rows = report.rows_applied;
    let throughput = rows as f64 / elapsed.as_secs_f64();
    println!(
        "{:>10} {:>12} {:>14.0} {:>10} {:>14.1} {:>14} {:>14}",
        producers,
        rows,
        throughput,
        report.batches_sealed,
        latency.mean_us() / 1_000.0,
        latency.quantile_us(0.95) / 1_000,
        backpressure_waits,
    );

    JsonValue::object([
        ("producers", JsonValue::from(producers)),
        ("rows_ingested", JsonValue::from(rows)),
        ("cycles", JsonValue::from(report.cycles)),
        ("batches_sealed", JsonValue::from(report.batches_sealed)),
        ("elapsed_us", JsonValue::from(elapsed.as_micros() as u64)),
        ("throughput_rows_per_s", JsonValue::from(throughput)),
        ("staleness_mean_us", JsonValue::from(latency.mean_us())),
        (
            "staleness_p50_us",
            JsonValue::from(latency.quantile_us(0.50)),
        ),
        (
            "staleness_p95_us",
            JsonValue::from(latency.quantile_us(0.95)),
        ),
        (
            "staleness_max_us",
            JsonValue::from(latency.quantile_us(1.0)),
        ),
        ("backpressure_waits", JsonValue::from(backpressure_waits)),
        ("durable", JsonValue::from(durable)),
        ("log_appended_bytes", JsonValue::from(log_appended_bytes)),
        ("fsync_count", JsonValue::from(fsync.count)),
        ("fsync_mean_us", JsonValue::from(fsync.mean_us())),
        ("fsync_p95_us", JsonValue::from(fsync.quantile_us(0.95))),
        ("journal_events", JsonValue::from(journal.len())),
        ("journal_events_dropped", JsonValue::from(journal.dropped())),
        ("healthy_after_drain", JsonValue::from(healthy)),
    ])
}

fn main() {
    let quick = std::env::args().skip(1).any(|a| a == "--quick");
    let cfg = if quick {
        RunConfig {
            pos_rows: 20_000,
            rows_per_producer: 4_000,
            delta_rows: 64,
            policy: BatchPolicy {
                max_rows: 1_024,
                max_batches: 4,
                flush_interval: Duration::from_millis(10),
            },
        }
    } else {
        RunConfig {
            pos_rows: 100_000,
            rows_per_producer: 20_000,
            delta_rows: 64,
            policy: BatchPolicy {
                max_rows: 4_096,
                max_batches: 4,
                flush_interval: Duration::from_millis(25),
            },
        }
    };

    println!("== ingestion front-end: throughput & staleness vs producers ==");
    println!(
        "(pos = {}, {} rows/producer, {}-row deltas, max_rows = {}, flush = {:?})",
        cfg.pos_rows,
        cfg.rows_per_producer,
        cfg.delta_rows,
        cfg.policy.max_rows,
        cfg.policy.flush_interval,
    );
    println!(
        "{:>10} {:>12} {:>14} {:>10} {:>14} {:>14} {:>14}",
        "producers",
        "rows",
        "rows/s",
        "batches",
        "stale-mean-ms",
        "stale-p95-ms",
        "bp-waits"
    );

    let points: Vec<JsonValue> = PRODUCER_COUNTS
        .iter()
        .map(|&p| run_point(&cfg, p))
        .collect();

    let host_parallelism = cubedelta_bench::host_parallelism();
    let telemetry = JsonValue::object([
        (
            "benchmark",
            JsonValue::from("ingest: async batched ingestion throughput & staleness"),
        ),
        (
            "paper",
            JsonValue::from(
                "Maintenance of Data Cubes and Summary Tables in a Warehouse (SIGMOD 1997)",
            ),
        ),
        ("quick", JsonValue::from(quick)),
        ("pos_rows", JsonValue::from(cfg.pos_rows)),
        ("rows_per_producer", JsonValue::from(cfg.rows_per_producer)),
        ("delta_rows", JsonValue::from(cfg.delta_rows)),
        ("batch_max_rows", JsonValue::from(cfg.policy.max_rows)),
        ("batch_max_batches", JsonValue::from(cfg.policy.max_batches)),
        (
            "flush_interval_us",
            JsonValue::from(cfg.policy.flush_interval.as_micros() as u64),
        ),
        (
            "maintenance_threads",
            JsonValue::from(MaintenancePolicy::from_env().threads.max(2)),
        ),
        ("host_parallelism", JsonValue::from(host_parallelism)),
        (
            "durable",
            JsonValue::from(DurabilityPolicy::from_env().is_some()),
        ),
        // Same gate as fig9's `speedup_valid`: scaling ratios measured on
        // a single-core host time-slice one CPU and say nothing about the
        // front-end. (The old gate demanded more cores than the largest
        // producer count — host_parallelism > 8 — which marked every run
        // on a typical CI machine invalid even though producers are mostly
        // blocked on the queue, not compute-bound.)
        (
            "scaling_valid",
            JsonValue::from(cubedelta_bench::concurrency_gate(host_parallelism)),
        ),
        ("points", JsonValue::array(points)),
    ]);
    let out = "BENCH_ingest.json";
    match std::fs::write(out, telemetry.render_pretty() + "\n") {
        Ok(()) => println!("\nwrote {out}"),
        Err(e) => eprintln!("\nfailed to write {out}: {e}"),
    }
}
