//! Greedy view selection after Harinarayan, Rajaraman & Ullman \[HRU96].
//!
//! The paper assumes its summary tables "have been chosen to be
//! materialized, either by the database administrator, or by using an
//! algorithm such as \[HRU96]" (§2). This module supplies that algorithm:
//! given a lattice of candidate views with estimated sizes, greedily pick
//! the set of views maximizing the *benefit* — the total reduction in the
//! cost of answering each lattice point from its cheapest materialized
//! ancestor (linear cost model: answering from a view costs its row count).
//!
//! Two budgets are supported: a maximum *number of views* (HRU96's main
//! setting) and a maximum *total row budget* (its benefit-per-unit-space
//! variant).

use std::collections::BTreeSet;

use crate::attr::AttrLattice;
use crate::error::{LatticeError, LatticeResult};

/// A candidate lattice annotated with estimated view sizes (rows).
pub struct SelectionProblem<'a> {
    lattice: &'a AttrLattice,
    sizes: Vec<u64>,
}

/// The outcome of a greedy selection run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Selection {
    /// Indexes (into the lattice's nodes) of the selected views, in pick
    /// order. Always includes the top view(s): they are the only way to
    /// answer themselves.
    pub chosen: Vec<usize>,
    /// The benefit realized by each pick, parallel to `chosen` (the forced
    /// top views carry benefit 0).
    pub benefits: Vec<u64>,
    /// Total cost of answering every lattice point from its cheapest chosen
    /// ancestor, after the final pick.
    pub total_cost: u64,
}

impl Selection {
    /// The attribute sets of the chosen views.
    pub fn chosen_attrs<'a>(&self, lattice: &'a AttrLattice) -> Vec<&'a BTreeSet<String>> {
        self.chosen.iter().map(|&i| &lattice.nodes()[i]).collect()
    }
}

impl<'a> SelectionProblem<'a> {
    /// Builds a selection problem. `sizes[i]` estimates the row count of
    /// lattice node `i`; it must be monotone along derivability for the
    /// greedy guarantees to hold (ancestors at least as large), but the
    /// algorithm itself tolerates any positive sizes.
    pub fn new(lattice: &'a AttrLattice, sizes: Vec<u64>) -> LatticeResult<Self> {
        if sizes.len() != lattice.len() {
            return Err(LatticeError::Construction(format!(
                "{} sizes for {} lattice nodes",
                sizes.len(),
                lattice.len()
            )));
        }
        if sizes.contains(&0) {
            return Err(LatticeError::Construction(
                "view size estimates must be positive".to_string(),
            ));
        }
        Ok(SelectionProblem { lattice, sizes })
    }

    /// Cost of answering node `q` given the chosen set: the size of its
    /// smallest chosen ancestor (or itself, if chosen). `u64::MAX` if
    /// unanswerable (no chosen ancestor — cannot happen once tops are in).
    fn answer_cost(&self, q: usize, chosen: &[bool]) -> u64 {
        let mut best = u64::MAX;
        for (v, &is_chosen) in chosen.iter().enumerate() {
            if is_chosen && self.lattice.derivable(q, v) {
                best = best.min(self.sizes[v]);
            }
        }
        best
    }

    fn total_cost(&self, chosen: &[bool]) -> u64 {
        (0..self.lattice.len())
            .map(|q| self.answer_cost(q, chosen))
            .fold(0u64, |a, b| a.saturating_add(b))
    }

    /// HRU96 greedy selection of at most `k` views *beyond* the forced top
    /// views. Stops early when no candidate adds benefit.
    pub fn select_k(&self, k: usize) -> Selection {
        self.run(|_, picks| picks < k)
    }

    /// Greedy selection under a total row budget (benefit per unit space):
    /// repeatedly picks the candidate with the best benefit/size ratio that
    /// still fits the remaining budget. The forced top views count against
    /// the budget first.
    pub fn select_budget(&self, row_budget: u64) -> Selection {
        let n = self.lattice.len();
        let mut chosen = vec![false; n];
        let mut sel = Selection {
            chosen: Vec::new(),
            benefits: Vec::new(),
            total_cost: 0,
        };
        let mut spent: u64 = 0;
        for t in self.lattice.tops() {
            chosen[t] = true;
            spent = spent.saturating_add(self.sizes[t]);
            sel.chosen.push(t);
            sel.benefits.push(0);
        }
        let mut cost = self.total_cost(&chosen);
        loop {
            let mut best: Option<(u64, u64, usize)> = None; // (ratio, benefit, cand)
            for cand in 0..n {
                if chosen[cand] || spent.saturating_add(self.sizes[cand]) > row_budget {
                    continue;
                }
                chosen[cand] = true;
                let new_cost = self.total_cost(&chosen);
                chosen[cand] = false;
                let benefit = cost.saturating_sub(new_cost);
                if benefit == 0 {
                    continue;
                }
                let ratio = benefit / self.sizes[cand].max(1);
                if best.map(|(r, _, _)| ratio > r).unwrap_or(true) {
                    best = Some((ratio, benefit, cand));
                }
            }
            let Some((_, benefit, cand)) = best else { break };
            chosen[cand] = true;
            cost -= benefit;
            spent = spent.saturating_add(self.sizes[cand]);
            sel.chosen.push(cand);
            sel.benefits.push(benefit);
        }
        sel.total_cost = cost;
        sel
    }

    fn run<F>(&self, mut keep_going: F) -> Selection
    where
        F: FnMut(&Selection, usize) -> bool,
    {
        let n = self.lattice.len();
        let mut chosen = vec![false; n];
        let mut sel = Selection {
            chosen: Vec::new(),
            benefits: Vec::new(),
            total_cost: 0,
        };
        for t in self.lattice.tops() {
            chosen[t] = true;
            sel.chosen.push(t);
            sel.benefits.push(0);
        }
        let mut cost = self.total_cost(&chosen);
        let mut picks = 0;
        loop {
            if !keep_going(&sel, picks) {
                break;
            }
            let mut best: Option<(u64, usize)> = None;
            for cand in 0..n {
                if chosen[cand] {
                    continue;
                }
                chosen[cand] = true;
                let new_cost = self.total_cost(&chosen);
                chosen[cand] = false;
                let benefit = cost.saturating_sub(new_cost);
                if benefit > 0 && best.map(|(b, _)| benefit > b).unwrap_or(true) {
                    best = Some((benefit, cand));
                }
            }
            let Some((benefit, cand)) = best else { break };
            chosen[cand] = true;
            cost -= benefit;
            sel.chosen.push(cand);
            sel.benefits.push(benefit);
            picks += 1;
        }
        sel.total_cost = cost;
        sel
    }

}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cube::cube_lattice;
    use crate::hierarchy::Hierarchy;
    use crate::product::combined_lattice;

    /// The worked example from HRU96 §3 (their Figure: 8-view lattice with
    /// sizes in millions of rows).
    fn hru_example() -> (AttrLattice, Vec<u64>) {
        let lat = cube_lattice(&["p", "s", "c"]);
        // Sizes keyed by attribute set; HRU96's example values:
        // psc=6M, pc=6M, ps=0.8M, sc=6M, p=0.2M, s=0.01M, c=0.1M, ()=1.
        let size_of = |attrs: &BTreeSet<String>| -> u64 {
            let key: Vec<&str> = attrs.iter().map(String::as_str).collect();
            match key.join("") {
                k if k == "cps" => 6_000_000,
                k if k == "cp" => 6_000_000,
                k if k == "ps" => 800_000,
                k if k == "cs" => 6_000_000,
                k if k == "p" => 200_000,
                k if k == "s" => 10_000,
                k if k == "c" => 100_000,
                _ => 1,
            }
        };
        let sizes = lat.nodes().iter().map(size_of).collect();
        (lat, sizes)
    }

    #[test]
    fn hru_example_first_pick_is_ps() {
        // HRU96: the first greedy pick is (p, s) with benefit 2.8M.
        let (lat, sizes) = hru_example();
        let prob = SelectionProblem::new(&lat, sizes).unwrap();
        let sel = prob.select_k(1);
        // chosen = [top, ps]
        assert_eq!(sel.chosen.len(), 2);
        let picked = &lat.nodes()[sel.chosen[1]];
        let attrs: Vec<&str> = picked.iter().map(String::as_str).collect();
        assert_eq!(attrs, vec!["p", "s"]);
        // (ps) improves ps, p, s, () from 6M to 0.8M each: 4 × 5.2M.
        assert_eq!(sel.benefits[1], 4 * 5_200_000);
    }

    #[test]
    fn greedy_benefits_are_monotone_nonincreasing_here() {
        let (lat, sizes) = hru_example();
        let prob = SelectionProblem::new(&lat, sizes).unwrap();
        let sel = prob.select_k(5);
        for w in sel.benefits[1..].windows(2) {
            assert!(w[0] >= w[1], "greedy benefits increased: {:?}", sel.benefits);
        }
    }

    #[test]
    fn selecting_everything_reaches_minimum_cost() {
        let (lat, sizes) = hru_example();
        let min_cost: u64 = sizes.iter().sum();
        let prob = SelectionProblem::new(&lat, sizes).unwrap();
        let sel = prob.select_k(usize::MAX);
        assert_eq!(sel.total_cost, min_cost, "every view answered by itself");
    }

    #[test]
    fn budget_selection_respects_budget() {
        let (lat, sizes) = hru_example();
        let prob = SelectionProblem::new(&lat, sizes.clone()).unwrap();
        let budget = 7_000_000; // top (6M) + ~1M of extras
        let sel = prob.select_budget(budget);
        let spent: u64 = sel.chosen.iter().map(|&i| sizes[i]).sum();
        assert!(spent <= budget, "spent {spent} > budget {budget}");
        assert!(sel.chosen.len() >= 2, "budget admits at least one extra");
    }

    #[test]
    fn retail_combined_lattice_selection() {
        // Select 3 extra views over the Figure-5 lattice with plausible
        // sizes (coarser views smaller).
        let lat = combined_lattice(&[
            Hierarchy::new("stores", &["storeID", "city", "region"]),
            Hierarchy::new("items", &["itemID", "category"]),
            Hierarchy::flat("date"),
        ]);
        let sizes: Vec<u64> = lat
            .nodes()
            .iter()
            .map(|attrs| {
                let mut s: u64 = 1;
                for a in attrs {
                    s = s.saturating_mul(match a.as_str() {
                        "storeID" => 300,
                        "city" => 60,
                        "region" => 8,
                        "itemID" => 3000,
                        "category" => 50,
                        "date" => 365,
                        _ => 1,
                    });
                }
                s.min(500_000) // capped by the fact table
            })
            .collect();
        let prob = SelectionProblem::new(&lat, sizes).unwrap();
        let sel = prob.select_k(3);
        assert_eq!(sel.chosen.len(), 4, "top + 3 picks");
        assert!(sel.benefits[1] > 0);
        // Cost never increases as picks accumulate.
        assert!(sel.total_cost < 24 * 500_000);
    }

    #[test]
    fn size_validation() {
        let lat = cube_lattice(&["a"]);
        assert!(SelectionProblem::new(&lat, vec![1]).is_err());
        assert!(SelectionProblem::new(&lat, vec![0, 1]).is_err());
        assert!(SelectionProblem::new(&lat, vec![5, 1]).is_ok());
    }
}
