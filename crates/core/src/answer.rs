//! Answering ad-hoc aggregate queries from materialized summary tables.
//!
//! The reason warehouses keep summary tables at all: "Each edge `v1 → v2`
//! implies that `v2` can be answered using `v1`, instead of accessing the
//! base data" (§3.2). Given an aggregate query, this module finds the
//! smallest materialized view the query is derivable from (the derives
//! relation of §5.1), rewrites the query onto it (COUNT → SUM of partial
//! counts, etc.), and executes it there — falling back to the base tables
//! only when no view qualifies.

use cubedelta_expr::Predicate;
use cubedelta_lattice::{build_edge_query, derive_child, derives};
use cubedelta_query::{project, AggFunc, Relation};
use cubedelta_storage::{Catalog, Column};
use cubedelta_view::{augment, materialize, AugmentedView, SummaryViewDef};

use crate::error::{CoreError, CoreResult};
use crate::warehouse::{LatticeSnapshot, Warehouse};

/// An ad-hoc aggregate query: one `SELECT-FROM-WHERE-GROUPBY` block over
/// the star schema, like the views themselves.
#[derive(Debug, Clone)]
pub struct AggQuery {
    /// The fact table queried.
    pub fact_table: String,
    /// Group-by attributes (fact or dimension columns).
    pub group_by: Vec<String>,
    /// Requested aggregates with output names.
    pub aggregates: Vec<(AggFunc, String)>,
    /// WHERE clause. Must match the candidate views' WHERE clause for view
    /// reuse (the paper's views share theirs); a differing clause forces
    /// base-table execution.
    pub where_clause: Predicate,
}

impl AggQuery {
    /// Starts a query over a fact table.
    pub fn over(fact_table: impl Into<String>) -> Self {
        AggQuery {
            fact_table: fact_table.into(),
            group_by: Vec::new(),
            aggregates: Vec::new(),
            where_clause: Predicate::True,
        }
    }

    /// Adds group-by attributes.
    pub fn group_by<I, S>(mut self, attrs: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.group_by.extend(attrs.into_iter().map(Into::into));
        self
    }

    /// Adds an aggregate output.
    pub fn aggregate(mut self, func: AggFunc, alias: impl Into<String>) -> Self {
        self.aggregates.push((func, alias.into()));
        self
    }

    /// Sets the WHERE clause.
    pub fn filter(mut self, pred: Predicate) -> Self {
        self.where_clause = pred;
        self
    }

    /// Lowers the query to an (unnamed) view definition so the derives
    /// machinery applies to it. Needs only catalog *metadata* (schemas,
    /// FKs), so it works against a live warehouse and a frozen snapshot
    /// alike.
    pub(crate) fn as_view_def(&self, catalog: &Catalog) -> CoreResult<SummaryViewDef> {
        let fact_schema = catalog.table(&self.fact_table)?.schema().clone();
        let mut b = SummaryViewDef::builder("__query", &self.fact_table)
            .filter(self.where_clause.clone())
            .group_by(self.group_by.iter().map(String::as_str));
        let mut joined = std::collections::HashSet::new();
        let mut needed: Vec<String> = self.group_by.clone();
        for (f, _) in &self.aggregates {
            if let Some(e) = f.input() {
                needed.extend(e.columns());
            }
        }
        needed.extend(self.where_clause.columns());
        for attr in needed {
            if fact_schema.contains(&attr) {
                continue;
            }
            let dim = catalog
                .dimension_owning(&self.fact_table, &attr)
                .ok_or_else(|| {
                    CoreError::Maintenance(format!("unknown query attribute `{attr}`"))
                })?;
            if joined.insert(dim.to_string()) {
                b = b.join_dimension(dim);
            }
        }
        for (f, alias) in &self.aggregates {
            b = b.aggregate(f.clone(), alias);
        }
        Ok(b.build())
    }
}

/// A query result, with provenance.
#[derive(Debug, Clone)]
pub struct Answer {
    /// The result rows: group-by columns then the requested aggregates, in
    /// query order.
    pub relation: Relation,
    /// Which materialized view answered the query, or the fact table name
    /// if the query fell back to base data.
    pub answered_from: String,
    /// How many rows the chosen source held (the §3.2 linear cost).
    pub rows_scanned: usize,
}

/// Trims an augmented result down to exactly the outputs the user asked
/// for: drops support columns and reconstitutes AVG from its SUM/COUNT
/// parts.
fn finalize(aug: &AugmentedView, raw: &Relation) -> CoreResult<Relation> {
    use cubedelta_expr::Expr;
    let mut outputs: Vec<(Expr, Column)> = Vec::new();
    for g in &aug.def.group_by {
        outputs.push((Expr::col(g), raw.schema.column(g)?.clone()));
    }
    // The user's aggregates are the first `user_agg_count` entries (AVG
    // replaced in place by its SUM part).
    for i in 0..aug.user_agg_count {
        let spec = &aug.def.aggregates[i];
        if let Some(avg) = aug.avgs.iter().find(|a| a.sum_idx == i) {
            let sum_alias = &aug.def.aggregates[avg.sum_idx].alias;
            let cnt_alias = &aug.def.aggregates[avg.count_idx].alias;
            outputs.push((
                Expr::col(sum_alias).div(Expr::col(cnt_alias)),
                Column::nullable(&avg.alias, cubedelta_storage::DataType::Float),
            ));
        } else {
            outputs.push((
                Expr::col(&spec.alias),
                raw.schema.column(&spec.alias)?.clone(),
            ));
        }
    }
    Ok(project(raw, &outputs)?)
}

/// Answers a query from the smallest materialized view it is derivable
/// from (the §5.1 derives relation), against any catalog + view set —
/// live warehouse or pinned snapshot. `None` when no view qualifies and
/// the query would need base-table execution.
fn answer_from_views(
    catalog: &Catalog,
    views: &[AugmentedView],
    query: &AggQuery,
) -> CoreResult<Option<Answer>> {
    let def = query.as_view_def(catalog)?;
    let q = augment(catalog, &def)?;

    // Candidate views, smallest table first.
    let mut candidates: Vec<(&AugmentedView, usize)> = views
        .iter()
        .filter_map(|v| catalog.table(&v.def.name).ok().map(|t| (v, t.len())))
        .collect();
    candidates.sort_by_key(|(v, n)| (*n, v.def.name.clone()));

    for (view, rows) in candidates {
        if let Some(info) = derives(catalog, &q, view)? {
            let eq = build_edge_query(catalog, view, &q, &info)?;
            let source = Relation::from_table(catalog.table(&view.def.name)?);
            let raw = derive_child(catalog, &source, &eq)?;
            return Ok(Some(Answer {
                relation: finalize(&q, &raw)?,
                answered_from: view.def.name.clone(),
                rows_scanned: rows,
            }));
        }
    }
    Ok(None)
}

impl Warehouse {
    /// Answers an aggregate query, preferring the smallest materialized
    /// summary table it is derivable from.
    pub fn answer(&self, query: &AggQuery) -> CoreResult<Answer> {
        if let Some(ans) = answer_from_views(self.catalog(), self.views(), query)? {
            return Ok(ans);
        }

        // Fall back to the base tables.
        let def = query.as_view_def(self.catalog())?;
        let q = augment(self.catalog(), &def)?;
        let raw = materialize(self.catalog(), &q)?;
        Ok(Answer {
            relation: finalize(&q, &raw)?,
            answered_from: query.fact_table.clone(),
            rows_scanned: self.catalog().table(&query.fact_table)?.len(),
        })
    }
}

impl LatticeSnapshot {
    /// Answers an aggregate query from this pinned epoch: every summary
    /// table agrees with the same committed cycle, and execution takes no
    /// warehouse lock whatsoever.
    ///
    /// Snapshots hold summary and dimension tables but not bulk fact data,
    /// so a query no materialized view can answer is refused (rather than
    /// silently computed over an empty fact stand-in) — route it to the
    /// live warehouse's [`Warehouse::answer`] instead.
    pub fn answer(&self, query: &AggQuery) -> CoreResult<Answer> {
        answer_from_views(self.catalog(), self.views(), query)?.ok_or_else(|| {
            CoreError::Maintenance(format!(
                "query over `{}` is not derivable from any summary table in snapshot \
                 epoch {}; base-table fallback requires the live warehouse",
                query.fact_table,
                self.epoch()
            ))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_fixtures::*;
    use crate::warehouse::MaintainOptions;
    use cubedelta_expr::{CmpOp, Expr};
    use cubedelta_storage::{row, ChangeBatch, Date, DeltaSet, Value};

    fn warehouse() -> Warehouse {
        let mut wh = Warehouse::from_catalog(retail_catalog_small());
        for def in figure1_defs() {
            wh.create_summary_table(&def).unwrap();
        }
        wh
    }

    #[test]
    fn region_totals_answered_from_smallest_view() {
        let wh = warehouse();
        let q = AggQuery::over("pos")
            .group_by(["region"])
            .aggregate(AggFunc::CountStar, "cnt")
            .aggregate(AggFunc::Sum(Expr::col("qty")), "total");
        let ans = wh.answer(&q).unwrap();
        // sR_sales holds region totals directly and is the smallest table.
        assert_eq!(ans.answered_from, "sR_sales");
        assert_eq!(ans.relation.sorted_rows(), vec![row!["east", 4i64, 17i64]]);
    }

    #[test]
    fn category_rollup_uses_sic_sales() {
        let wh = warehouse();
        let q = AggQuery::over("pos")
            .group_by(["category"])
            .aggregate(AggFunc::Sum(Expr::col("qty")), "total");
        let ans = wh.answer(&q).unwrap();
        // Both SID_sales and SiC_sales qualify (3 rows each in the tiny
        // fixture); either way the answer comes from a view, not the base.
        assert_ne!(ans.answered_from, "pos");
        assert_eq!(
            ans.relation.sorted_rows(),
            vec![row!["drinks", 15i64], row!["snacks", 2i64]]
        );
    }

    #[test]
    fn per_item_query_falls_back_to_base() {
        // No view groups by itemID alone finer than SID_sales; SID_sales
        // does qualify (itemID is a group-by). It should NOT fall back.
        let wh = warehouse();
        let q = AggQuery::over("pos")
            .group_by(["itemID"])
            .aggregate(AggFunc::CountStar, "cnt");
        let ans = wh.answer(&q).unwrap();
        assert_eq!(ans.answered_from, "SID_sales");

        // But a query over `price` (not aggregated anywhere) must fall back.
        let q = AggQuery::over("pos")
            .group_by(["storeID"])
            .aggregate(AggFunc::Sum(Expr::col("price")), "revenue");
        let ans = wh.answer(&q).unwrap();
        assert_eq!(ans.answered_from, "pos");
        assert_eq!(ans.rows_scanned, 4);
    }

    #[test]
    fn filtered_query_falls_back() {
        let wh = warehouse();
        let q = AggQuery::over("pos")
            .group_by(["region"])
            .aggregate(AggFunc::CountStar, "cnt")
            .filter(Predicate::cmp(CmpOp::Gt, Expr::col("qty"), Expr::lit(4i64)));
        let ans = wh.answer(&q).unwrap();
        assert_eq!(ans.answered_from, "pos", "differing WHERE blocks view reuse");
        assert_eq!(ans.relation.sorted_rows(), vec![row!["east", 2i64]]);
    }

    #[test]
    fn avg_is_recomposed_from_parts() {
        let wh = warehouse();
        let q = AggQuery::over("pos")
            .group_by(["region"])
            .aggregate(AggFunc::Avg(Expr::col("qty")), "avg_qty");
        let ans = wh.answer(&q).unwrap();
        assert_eq!(ans.relation.schema.names(), vec!["region", "avg_qty"]);
        assert_eq!(
            ans.relation.sorted_rows(),
            vec![row!["east", 17.0 / 4.0]]
        );
    }

    #[test]
    fn answers_track_maintenance() {
        let mut wh = warehouse();
        let q = AggQuery::over("pos")
            .group_by(["region"])
            .aggregate(AggFunc::Sum(Expr::col("qty")), "total");
        let before = wh.answer(&q).unwrap();
        assert_eq!(before.relation.rows[0][1], Value::Int(17));

        let batch = ChangeBatch::single(DeltaSet::insertions(
            "pos",
            vec![row![3i64, 10i64, Date(10001), 100i64, 1.0]],
        ));
        wh.maintain(&batch, &MaintainOptions::default()).unwrap();
        let after = wh.answer(&q).unwrap();
        // Store 3 is in the west.
        assert_eq!(
            after.relation.sorted_rows(),
            vec![row!["east", 17i64], row!["west", 100i64]]
        );
    }

    #[test]
    fn snapshot_answers_stay_on_their_pinned_epoch() {
        let mut wh = warehouse();
        let q = AggQuery::over("pos")
            .group_by(["region"])
            .aggregate(AggFunc::Sum(Expr::col("qty")), "total");
        let pinned = wh.read_snapshot();
        assert_eq!(
            pinned.answer(&q).unwrap().relation.sorted_rows(),
            vec![row!["east", 17i64]]
        );

        let batch = ChangeBatch::single(DeltaSet::insertions(
            "pos",
            vec![row![3i64, 10i64, Date(10001), 100i64, 1.0]],
        ));
        wh.maintain(&batch, &MaintainOptions::default()).unwrap();

        // The pinned epoch still answers the pre-cycle state; a fresh pin
        // sees the committed cycle.
        assert_eq!(
            pinned.answer(&q).unwrap().relation.sorted_rows(),
            vec![row!["east", 17i64]]
        );
        let fresh = wh.read_snapshot();
        assert!(fresh.epoch() > pinned.epoch());
        assert_eq!(
            fresh.answer(&q).unwrap().relation.sorted_rows(),
            vec![row!["east", 17i64], row!["west", 100i64]]
        );
    }

    #[test]
    fn snapshot_refuses_base_table_fallback() {
        let wh = warehouse();
        // `price` is aggregated by no view, so only base execution could
        // answer this — which a snapshot must refuse, not fake with its
        // empty fact stand-in.
        let q = AggQuery::over("pos")
            .group_by(["storeID"])
            .aggregate(AggFunc::Sum(Expr::col("price")), "revenue");
        let snap = wh.read_snapshot();
        let err = snap.answer(&q).unwrap_err();
        assert!(err.to_string().contains("not derivable"), "{err}");
        // The live warehouse still answers it from base data.
        assert_eq!(wh.answer(&q).unwrap().answered_from, "pos");
    }

    #[test]
    fn global_totals_from_any_view() {
        let wh = warehouse();
        let q = AggQuery::over("pos").aggregate(AggFunc::CountStar, "cnt");
        let ans = wh.answer(&q).unwrap();
        assert_ne!(ans.answered_from, "pos", "views answer the apex");
        assert_eq!(ans.relation.rows[0][0], Value::Int(4));
    }
}
