//! Error types for the storage layer.

use std::fmt;

/// Result alias used throughout the storage crate.
pub type StorageResult<T> = Result<T, StorageError>;

/// Errors raised by the storage layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// A table with this name already exists in the catalog.
    TableExists(String),
    /// No table with this name exists in the catalog.
    UnknownTable(String),
    /// No column with this name exists in the schema.
    UnknownColumn(String),
    /// A row's arity does not match the table schema.
    ArityMismatch { expected: usize, actual: usize },
    /// A value's type does not match the column type.
    TypeMismatch {
        column: String,
        expected: String,
        actual: String,
    },
    /// A NULL was supplied for a non-nullable column.
    NullViolation(String),
    /// A unique-index insert collided with an existing key.
    DuplicateKey(String),
    /// A deletion referenced a row that is not present in the table.
    MissingRow(String),
    /// An index with this name already exists on the table.
    IndexExists(String),
    /// No index with this name exists on the table.
    UnknownIndex(String),
    /// A sharded table was requested with zero shards.
    InvalidShardCount,
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::TableExists(name) => write!(f, "table `{name}` already exists"),
            StorageError::UnknownTable(name) => write!(f, "unknown table `{name}`"),
            StorageError::UnknownColumn(name) => write!(f, "unknown column `{name}`"),
            StorageError::ArityMismatch { expected, actual } => {
                write!(f, "row arity {actual} does not match schema arity {expected}")
            }
            StorageError::TypeMismatch {
                column,
                expected,
                actual,
            } => write!(
                f,
                "type mismatch in column `{column}`: expected {expected}, got {actual}"
            ),
            StorageError::NullViolation(column) => {
                write!(f, "NULL supplied for non-nullable column `{column}`")
            }
            StorageError::DuplicateKey(key) => write!(f, "duplicate key {key}"),
            StorageError::MissingRow(row) => write!(f, "row not found for deletion: {row}"),
            StorageError::IndexExists(name) => write!(f, "index `{name}` already exists"),
            StorageError::UnknownIndex(name) => write!(f, "unknown index `{name}`"),
            StorageError::InvalidShardCount => {
                write!(f, "sharded table requires at least one shard")
            }
        }
    }
}

impl std::error::Error for StorageError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_informative() {
        let cases: Vec<(StorageError, &str)> = vec![
            (StorageError::TableExists("pos".into()), "table `pos` already exists"),
            (StorageError::UnknownTable("nope".into()), "unknown table `nope`"),
            (StorageError::UnknownColumn("qty".into()), "unknown column `qty`"),
            (
                StorageError::ArityMismatch { expected: 5, actual: 3 },
                "row arity 3 does not match schema arity 5",
            ),
            (
                StorageError::NullViolation("storeID".into()),
                "NULL supplied for non-nullable column `storeID`",
            ),
        ];
        for (err, expected) in cases {
            assert_eq!(err.to_string(), expected);
        }
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(
            StorageError::UnknownTable("a".into()),
            StorageError::UnknownTable("a".into())
        );
        assert_ne!(
            StorageError::UnknownTable("a".into()),
            StorageError::UnknownTable("b".into())
        );
    }
}
