//! Differential testing: seeded randomized workloads through the
//! summary-delta maintenance pipeline AND the full-recompute baseline
//! (`core::baseline`), asserting every summary table agrees after every
//! cycle.
//!
//! Three warehouses start from identical state and receive identical
//! batches each cycle:
//!
//! * `inc`   — incremental maintenance, sequential (1 thread)
//! * `par`   — incremental maintenance, parallel propagate **and refresh**
//!   schedulers (4 threads)
//! * `shd`   — incremental maintenance with the fact table split into 4
//!   shards (cross-shard propagate + partial-sd merge), 4 threads
//! * `col`   — incremental maintenance through the vectorized columnar
//!   aggregation engine (`StorageMode::Columnar`), 4 threads
//! * `base`  — the rematerialize-from-scratch baseline (direct recompute,
//!   no lattice), i.e. the ground truth
//!
//! Beyond bag equality with the baseline, every cycle also asserts the
//! 1-thread, 4-thread, sharded, and columnar warehouses are
//! *byte-identical* (same physical row order in every summary table) and
//! that refresh took the same Figure-7 actions per view — the parallel
//! batch window, the sharded propagate, and the columnar kernel are pure
//! scheduling/engine changes.
//!
//! Batches mix fact insertions/deletions (update-generating and
//! insertion-heavy mixes) with periodic dimension changes (an item moved to
//! a new category, a store moved to a new city) — the §4.1.4 path that
//! forces a Direct plan.
//!
//! Cycle count defaults to 6; override with `CUBEDELTA_DIFF_CYCLES` (CI
//! quick mode uses 3).

use cubedelta::core::{MaintainOptions, MaintenancePolicy, StorageMode, Warehouse};
use cubedelta::storage::{ChangeBatch, DeltaSet, Row, Value};
use cubedelta::workload::{mixed_changes, retail_catalog, RetailParams, WorkloadScale};

mod common;

fn cycles() -> usize {
    std::env::var("CUBEDELTA_DIFF_CYCLES")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(6)
}

/// A warehouse over the tiny retail workload with the Figure-1 views.
fn workload_warehouse(seed: u64) -> (Warehouse, RetailParams) {
    let (catalog, params) = retail_catalog(WorkloadScale::tiny().with_seed(seed));
    let mut wh = Warehouse::from_catalog(catalog);
    for def in common::figure1_defs() {
        wh.create_summary_table(&def).unwrap();
    }
    (wh, params)
}

/// Moves one dimension row to a fresh attribute value: an item to a new
/// category (cycle parity even) or a store to a new city (odd). Dimension
/// updates travel as delete + insert pairs.
fn dimension_change(wh: &Warehouse, cycle: usize) -> DeltaSet {
    let (table, col) = if cycle % 2 == 0 {
        ("items", 2) // category
    } else {
        ("stores", 1) // city
    };
    let t = wh.catalog().table(table).unwrap();
    let old = t
        .rows()
        .nth(cycle * 7 % t.len())
        .expect("dimension table is non-empty")
        .clone();
    let moved: Row = old
        .values()
        .iter()
        .enumerate()
        .map(|(i, v)| {
            if i == col {
                Value::Str(format!("relabelled-{cycle}").into())
            } else {
                v.clone()
            }
        })
        .collect();
    DeltaSet {
        table: table.to_string(),
        insertions: vec![moved],
        deletions: vec![old],
    }
}

/// One cycle's change batch: a seeded fact mix, plus a dimension move
/// every third cycle.
fn cycle_batch(wh: &Warehouse, params: &RetailParams, seed: u64, cycle: usize) -> ChangeBatch {
    let ins_fraction = [0.3, 0.5, 0.8][cycle % 3];
    let fact = mixed_changes(
        wh.catalog(),
        params,
        120,
        ins_fraction,
        seed.wrapping_mul(1_000_003).wrapping_add(cycle as u64),
    );
    let mut batch = ChangeBatch::single(fact);
    if cycle % 3 == 2 {
        batch.add(dimension_change(wh, cycle));
    }
    batch
}

fn assert_views_match(a: &Warehouse, b: &Warehouse, label: &str, cycle: usize) {
    for v in a.views() {
        let name = &v.def.name;
        assert_eq!(
            a.catalog().table(name).unwrap().sorted_rows(),
            b.catalog().table(name).unwrap().sorted_rows(),
            "cycle {cycle}: {name} diverges ({label})"
        );
    }
}

fn run_differential(seed: u64) {
    let (mut inc, params) = workload_warehouse(seed);
    inc.set_maintenance_policy(MaintenancePolicy::with_threads(1));
    let mut par = inc.clone();
    par.set_maintenance_policy(MaintenancePolicy::with_threads(4));
    let mut shd = inc.clone();
    shd.set_maintenance_policy(MaintenancePolicy::with_threads(4).with_shards(4));
    let mut col = inc.clone();
    col.set_maintenance_policy(
        MaintenancePolicy::with_threads(4).with_storage(StorageMode::Columnar),
    );
    let mut base = inc.clone();

    for cycle in 0..cycles() {
        let batch = cycle_batch(&inc, &params, seed, cycle);

        let inc_report = inc.maintain(&batch, &MaintainOptions::default()).unwrap();
        let par_report = par.maintain(&batch, &MaintainOptions::default()).unwrap();
        let shd_report = shd.maintain(&batch, &MaintainOptions::default()).unwrap();
        let col_report = col.maintain(&batch, &MaintainOptions::default()).unwrap();
        base.rematerialize(&batch, false).unwrap();

        assert_views_match(&inc, &base, "incremental vs full recompute", cycle);
        assert_views_match(&par, &base, "parallel vs full recompute", cycle);
        assert_views_match(&shd, &base, "sharded vs full recompute", cycle);
        assert_views_match(&col, &base, "columnar vs full recompute", cycle);
        // Parallel refresh canonicalizes each summary-delta before applying,
        // so even the physical layout matches the 1-thread run byte for
        // byte, and each view's refresh took identical Figure-7 actions.
        // The same holds for the sharded run: merging per-shard partial
        // summary-deltas is invisible after canonicalization.
        for v in inc.views() {
            let name = &v.def.name;
            assert_eq!(
                par.catalog().table(name).unwrap().to_rows(),
                inc.catalog().table(name).unwrap().to_rows(),
                "cycle {cycle}: {name} byte layout differs between 1 and 4 threads"
            );
            assert_eq!(
                shd.catalog().table(name).unwrap().to_rows(),
                inc.catalog().table(name).unwrap().to_rows(),
                "cycle {cycle}: {name} byte layout differs between sharded and unsharded"
            );
            assert_eq!(
                col.catalog().table(name).unwrap().to_rows(),
                inc.catalog().table(name).unwrap().to_rows(),
                "cycle {cycle}: {name} byte layout differs between columnar and row engines"
            );
        }
        for (a, b) in inc_report.per_view.iter().zip(&par_report.per_view) {
            assert_eq!(a.view, b.view, "cycle {cycle}: per-view order differs");
            assert_eq!(
                a.refresh, b.refresh,
                "cycle {cycle}: {} refresh actions differ across schedules",
                a.view
            );
        }
        for (a, b) in inc_report.per_view.iter().zip(&shd_report.per_view) {
            assert_eq!(a.view, b.view, "cycle {cycle}: sharded per-view order differs");
            assert_eq!(
                a.refresh, b.refresh,
                "cycle {cycle}: {} refresh actions differ under sharding",
                a.view
            );
        }
        // The columnar engine is a different executor, so its operator
        // counters legitimately differ (`vectorized_rows` instead of
        // row-fold work) — but refresh must still take identical actions.
        for (a, b) in inc_report.per_view.iter().zip(&col_report.per_view) {
            assert_eq!(a.view, b.view, "cycle {cycle}: columnar per-view order differs");
            assert_eq!(
                a.refresh, b.refresh,
                "cycle {cycle}: {} refresh actions differ under the columnar engine",
                a.view
            );
        }
        assert_eq!(
            col_report.storage,
            StorageMode::Columnar,
            "cycle {cycle}: report lost the storage mode"
        );
        assert!(
            col_report.metrics.vectorized_rows > 0,
            "cycle {cycle}: columnar kernel never engaged"
        );
        // Base tables advanced identically, so the next cycle's deletions
        // (sampled from `inc`) apply cleanly everywhere.
        assert_eq!(
            inc.catalog().table("pos").unwrap().sorted_rows(),
            base.catalog().table("pos").unwrap().sorted_rows(),
            "cycle {cycle}: base fact tables diverge"
        );
        assert_eq!(
            shd.catalog().table("pos").unwrap().sorted_rows(),
            base.catalog().table("pos").unwrap().sorted_rows(),
            "cycle {cycle}: sharded base fact table diverges"
        );
        assert_eq!(inc_report.threads, 1);
        assert_eq!(par_report.threads, 4);
        assert_eq!(shd_report.shards, 4, "cycle {cycle}: report lost shard count");
        assert_eq!(
            inc_report.metrics.work_pairs(),
            par_report.metrics.work_pairs(),
            "cycle {cycle}: schedule changed the work done"
        );
    }
    inc.check_consistency().unwrap();
    par.check_consistency().unwrap();
    shd.check_consistency().unwrap();
    col.check_consistency().unwrap();
}

#[test]
fn randomized_workloads_match_full_recompute_seed_a() {
    run_differential(0xC0FFEE);
}

#[test]
fn randomized_workloads_match_full_recompute_seed_b() {
    run_differential(1997);
}

#[test]
fn insertion_only_cycles_match_full_recompute() {
    // Pure-insertion batches take the §4.2 insertions-only refresh
    // shortcut; the baseline must still agree.
    let (mut inc, params) = workload_warehouse(7);
    let mut base = inc.clone();
    for cycle in 0..cycles().min(4) {
        let fact = cubedelta::workload::insertion_generating(
            &params,
            80,
            1 + cycle % 2,
            900 + cycle as u64,
        );
        let batch = ChangeBatch::single(fact);
        inc.maintain(&batch, &MaintainOptions::default()).unwrap();
        base.rematerialize(&batch, false).unwrap();
        assert_views_match(&inc, &base, "insertion-only", cycle);
    }
    inc.check_consistency().unwrap();
}
