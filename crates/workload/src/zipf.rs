//! A small Zipf sampler for skewed workloads.
//!
//! Real retail data is heavily skewed — a few items dominate sales. The
//! paper's study uses uniform data; we keep uniform as the default and
//! offer Zipf(α) as an option so the benches can probe how skew shifts the
//! propagate/refresh balance (skew concentrates changes into fewer groups:
//! smaller summary-deltas, more updates relative to inserts).

use rand::rngs::StdRng;
use rand::Rng;

/// A Zipf(α) distribution over ranks `1..=n`, sampled by inverted CDF over
/// a precomputed table. `α = 0` degenerates to uniform.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the distribution. `n` must be positive; typical α ∈ [0.5, 1.5].
    pub fn new(n: usize, alpha: f64) -> Self {
        assert!(n > 0, "Zipf needs a positive support");
        assert!(alpha >= 0.0, "Zipf exponent must be non-negative");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += 1.0 / (k as f64).powf(alpha);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf }
    }

    /// Support size.
    pub fn n(&self) -> usize {
        self.cdf.len()
    }

    /// Samples a rank in `0..n` (0 = most popular).
    pub fn sample(&self, rng: &mut StdRng) -> usize {
        let u: f64 = rng.gen();
        // First index whose cdf ≥ u.
        match self
            .cdf
            .binary_search_by(|c| c.partial_cmp(&u).expect("cdf has no NaN"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn histogram(z: &Zipf, samples: usize, seed: u64) -> Vec<usize> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut h = vec![0usize; z.n()];
        for _ in 0..samples {
            h[z.sample(&mut rng)] += 1;
        }
        h
    }

    #[test]
    fn alpha_zero_is_uniformish() {
        let z = Zipf::new(10, 0.0);
        let h = histogram(&z, 50_000, 1);
        let (min, max) = (h.iter().min().unwrap(), h.iter().max().unwrap());
        assert!(
            (*max as f64) / (*min as f64) < 1.2,
            "uniform histogram too skewed: {h:?}"
        );
    }

    #[test]
    fn high_alpha_concentrates_mass() {
        let z = Zipf::new(100, 1.2);
        let h = histogram(&z, 50_000, 2);
        assert!(h[0] > h[10] && h[10] > h[60], "not monotone-ish: {:?}", &h[..12]);
        // Rank 0 should dominate: more than 10% of all samples.
        assert!(h[0] > 5_000, "rank 0 got {}", h[0]);
    }

    #[test]
    fn samples_stay_in_range() {
        let z = Zipf::new(7, 1.0);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 7);
        }
    }

    #[test]
    #[should_panic(expected = "positive support")]
    fn empty_support_panics() {
        Zipf::new(0, 1.0);
    }
}
