//! Live subscriptions over summary tables: per-cycle delta push.
//!
//! The maintenance cycle already computes, per summary view, the net change
//! per group — the §4 summary-delta. This module lets clients register a
//! standing filter/project query over one lattice node and receive that
//! change stream instead of re-polling: an initial result pinned to a
//! [`LatticeSnapshot`] epoch, then one [`SubscriptionUpdate`] per committed
//! cycle under **bag semantics** (deletes cancel inserts by multiplicity
//! counts, never set-dedup — the SpacetimeDB `subscription/delta.rs`
//! discipline).
//!
//! Fan-out cost is decoupled from subscription count by *spec grouping* (the
//! DBToaster "share one delta pass" idea): subscriptions with an equal bound
//! filter and projection share one evaluation of the view diff; the computed
//! update is cloned into each subscriber's bounded queue. A slow subscriber
//! never blocks the maintenance worker: when its queue is full, pending
//! updates are dropped and replaced by a single `Lagged { resync_epoch }`
//! marker, after which the client calls [`Subscription::resync`].

use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use cubedelta_expr::Predicate;
use cubedelta_lattice::derives::{derives, AggRewrite};
use cubedelta_obs::{Counter, Gauge, Histogram, Journal, JournalEvent, MetricsRegistry};
use cubedelta_query::Relation;
use cubedelta_storage::{Row, Schema};

use crate::answer::AggQuery;
use crate::error::{CoreError, CoreResult};
use crate::warehouse::{LatticeSnapshot, SnapshotReader};

/// Environment variable bounding each subscription's update queue (messages,
/// not rows). Sampled once when the registry is constructed.
pub const SUB_QUEUE_ENV_VAR: &str = "CUBEDELTA_SUB_QUEUE";

/// Default per-subscription queue capacity when [`SUB_QUEUE_ENV_VAR`] is
/// unset.
pub const DEFAULT_SUB_QUEUE: usize = 64;

fn queue_capacity_from_env() -> usize {
    std::env::var(SUB_QUEUE_ENV_VAR)
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or(DEFAULT_SUB_QUEUE)
}

/// What a client subscribes to: a filter/project over one summary view
/// (one lattice node).
#[derive(Debug, Clone)]
pub struct SubscriptionSpec {
    /// The summary view subscribed to.
    pub view: String,
    /// Row filter over the view's columns (by name; bound at registration).
    pub filter: Predicate,
    /// Output columns, in order. `None` keeps the view's full row.
    pub project: Option<Vec<String>>,
}

impl SubscriptionSpec {
    /// Starts a spec over a summary view, unfiltered and unprojected.
    pub fn on(view: impl Into<String>) -> Self {
        SubscriptionSpec {
            view: view.into(),
            filter: Predicate::True,
            project: None,
        }
    }

    /// Sets the row filter.
    pub fn filter(mut self, pred: Predicate) -> Self {
        self.filter = pred;
        self
    }

    /// Sets the projection.
    pub fn project<I, S>(mut self, cols: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.project = Some(cols.into_iter().map(Into::into).collect());
        self
    }

    /// Resolves the spec against a snapshot: binds the filter to the view's
    /// schema and the projection to column indices. The bound pair is what
    /// spec-grouping compares, so two subscriptions bind equal iff they
    /// evaluate identically.
    fn bind_to(&self, snap: &LatticeSnapshot) -> CoreResult<BoundSpec> {
        if snap.view(&self.view).is_none() {
            return Err(CoreError::Maintenance(format!(
                "subscription target `{}` is not a summary view",
                self.view
            )));
        }
        let schema = snap.table(&self.view)?.schema().clone();
        let filter = self.filter.bind(&schema)?;
        let project = match &self.project {
            Some(cols) => {
                let names: Vec<&str> = cols.iter().map(String::as_str).collect();
                schema.indices_of(&names)?
            }
            None => (0..schema.arity()).collect(),
        };
        let out_schema = schema.project(&project);
        Ok(BoundSpec {
            filter,
            project,
            out_schema,
        })
    }

    /// Evaluates the spec against a pinned snapshot, canonicalized so equal
    /// states are byte-identical regardless of evaluation order.
    pub fn eval(&self, snap: &LatticeSnapshot) -> CoreResult<Relation> {
        let bound = self.bind_to(snap)?;
        bound.eval_table(snap, &self.view)
    }

    /// Rewrites an ad-hoc [`AggQuery`] onto a materialized lattice node the
    /// query is derivable from (§5.1 derives relation), producing a spec
    /// whose per-cycle updates equal re-running the query each epoch.
    ///
    /// Two rewrites are attempted, smallest view first:
    ///
    /// 1. the query's WHERE matches the view's WHERE (the paper's views
    ///    share theirs) and the spec filter is `True`;
    /// 2. the view has WHERE `True` and the query's WHERE ranges only over
    ///    the query's group-by attributes — it becomes a *residual* row
    ///    filter over the view's output.
    ///
    /// The rewrite requires an exact group-by match with no dimension joins
    /// and every user aggregate present on the view verbatim
    /// (`FromParentAgg`): anything coarser would need re-aggregation per
    /// update, which a push stream cannot do incrementally. Output columns
    /// keep the *view's* aggregate names. AVG is rejected (not
    /// incrementally pushable; subscribe to its SUM/COUNT parts instead).
    pub fn from_query(
        catalog: &cubedelta_storage::Catalog,
        views: &[cubedelta_view::AugmentedView],
        query: &AggQuery,
    ) -> CoreResult<SubscriptionSpec> {
        use cubedelta_query::AggFunc;
        if query
            .aggregates
            .iter()
            .any(|(f, _)| matches!(f, AggFunc::Avg(_)))
        {
            return Err(CoreError::Maintenance(
                "AVG is not incrementally pushable; subscribe to its SUM and COUNT parts"
                    .into(),
            ));
        }

        // Candidate rewrites: (query variant lowered to a view def, residual
        // filter over the target view's columns).
        let mut attempts: Vec<(AggQuery, Predicate)> = vec![(query.clone(), Predicate::True)];
        if query.where_clause != Predicate::True {
            let group_set: BTreeSet<&str> =
                query.group_by.iter().map(String::as_str).collect();
            if query
                .where_clause
                .columns()
                .iter()
                .all(|c| group_set.contains(c.as_str()))
            {
                let mut unfiltered = query.clone();
                unfiltered.where_clause = Predicate::True;
                attempts.push((unfiltered, query.where_clause.clone()));
            }
        }

        let mut candidates: Vec<(&cubedelta_view::AugmentedView, usize)> = views
            .iter()
            .filter_map(|v| catalog.table(&v.def.name).ok().map(|t| (v, t.len())))
            .collect();
        candidates.sort_by_key(|(v, n)| (*n, v.def.name.clone()));

        for (variant, residual) in &attempts {
            let def = variant.as_view_def(catalog)?;
            let q = cubedelta_view::augment(catalog, &def)?;
            for (view, _) in &candidates {
                let Some(info) = derives(catalog, &q, view)? else {
                    continue;
                };
                // Push streams cannot re-join or re-aggregate per update:
                // the view must carry the query's groups and aggregates
                // verbatim.
                if !info.dim_joins.is_empty() {
                    continue;
                }
                let q_groups: BTreeSet<&str> =
                    q.def.group_by.iter().map(String::as_str).collect();
                let v_groups: BTreeSet<&str> =
                    view.def.group_by.iter().map(String::as_str).collect();
                if q_groups != v_groups {
                    continue;
                }
                let mut agg_cols: Vec<String> = Vec::with_capacity(q.user_agg_count);
                let mut ok = true;
                for rewrite in info.agg_rewrites.iter().take(q.user_agg_count) {
                    match rewrite {
                        AggRewrite::FromParentAgg(j) => {
                            agg_cols.push(view.def.aggregates[*j].alias.clone())
                        }
                        AggRewrite::Reaggregate => {
                            ok = false;
                            break;
                        }
                    }
                }
                if !ok {
                    continue;
                }
                let mut project: Vec<String> = variant.group_by.clone();
                project.extend(agg_cols);
                return Ok(SubscriptionSpec {
                    view: view.def.name.clone(),
                    filter: residual.clone(),
                    project: Some(project),
                });
            }
        }
        Err(CoreError::Maintenance(format!(
            "query over `{}` is not pushable from any summary table: subscriptions \
             need a view carrying the query's exact group-by and aggregates",
            query.fact_table
        )))
    }
}

/// A spec resolved against a concrete view schema. Equality of the bound
/// filter and projection indices implies identical evaluation, so this is
/// the spec-group key.
#[derive(Debug, Clone)]
struct BoundSpec {
    filter: Predicate,
    project: Vec<usize>,
    out_schema: Schema,
}

impl BoundSpec {
    fn matches(&self, other: &BoundSpec) -> bool {
        self.filter == other.filter && self.project == other.project
    }

    /// Full evaluation over the view's table in a snapshot.
    fn eval_table(&self, snap: &LatticeSnapshot, view: &str) -> CoreResult<Relation> {
        let table = snap.table(view)?;
        let mut rows = Vec::new();
        for row in table.rows() {
            if self.filter.eval(row)? {
                rows.push(row.project(&self.project));
            }
        }
        Ok(Relation::new(self.out_schema.clone(), rows).canonicalized())
    }
}

/// One cycle's worth of change for a subscription, under bag semantics:
/// `inserts` and `deletes` are multisets; a row appearing in both with equal
/// multiplicity has already been cancelled out.
#[derive(Debug, Clone, PartialEq)]
pub struct SubscriptionUpdate {
    /// The snapshot epoch this update advances the client to.
    pub epoch: u64,
    /// The maintenance cycle that produced it.
    pub cycle: u64,
    /// Rows entering the result (with multiplicity).
    pub inserts: Vec<Row>,
    /// Rows leaving the result (with multiplicity).
    pub deletes: Vec<Row>,
}

impl SubscriptionUpdate {
    /// True when the cycle changed nothing visible to this subscription.
    pub fn is_empty(&self) -> bool {
        self.inserts.is_empty() && self.deletes.is_empty()
    }

    /// Applies the update to a client-held relation under bag semantics,
    /// rebuilding it in canonical (sorted) row order so the result is
    /// byte-identical to [`SubscriptionSpec::eval`] at `self.epoch`.
    pub fn apply_to(&self, rel: &mut Relation) -> CoreResult<()> {
        let mut counts: BTreeMap<&Row, i64> = BTreeMap::new();
        for row in &rel.rows {
            *counts.entry(row).or_insert(0) += 1;
        }
        for row in &self.deletes {
            *counts.entry(row).or_insert(0) -= 1;
        }
        for row in &self.inserts {
            *counts.entry(row).or_insert(0) += 1;
        }
        let mut rows = Vec::new();
        for (row, n) in counts {
            if n < 0 {
                return Err(CoreError::Maintenance(format!(
                    "subscription update for epoch {} deletes row {row} more times \
                     than the client holds it",
                    self.epoch
                )));
            }
            for _ in 0..n {
                rows.push(row.clone());
            }
        }
        rel.rows = rows;
        Ok(())
    }
}

/// What a subscriber receives from its queue.
///
/// Updates are shared: every member of a spec group holds an [`Arc`] to
/// the *same* computed [`SubscriptionUpdate`], so fanning a cycle out to
/// thousands of subscribers costs one refcount bump per queue, not one
/// deep row copy — the piece that keeps dispatch time decoupled from the
/// subscriber population.
#[derive(Debug, Clone, PartialEq)]
pub enum SubscriptionMessage {
    /// A per-cycle delta to apply.
    Update(Arc<SubscriptionUpdate>),
    /// The subscriber fell behind (queue overflow) or the view was
    /// rebuilt/dropped; pending updates were discarded. Call
    /// [`Subscription::resync`] to re-pin at `resync_epoch` or later.
    Lagged {
        /// The earliest epoch a resync is guaranteed to reach.
        resync_epoch: u64,
    },
}

#[derive(Debug, Default)]
struct QueueState {
    messages: VecDeque<SubscriptionMessage>,
    lagged: bool,
    closed: bool,
}

/// A bounded MPSC-ish queue: the dispatcher pushes, one client pops.
#[derive(Debug, Default)]
struct SubQueue {
    state: Mutex<QueueState>,
    avail: Condvar,
}

enum PushOutcome {
    Pushed,
    Lagged,
    Skipped,
}

impl SubQueue {
    /// Pushes an update, converting overflow into a single `Lagged` marker.
    fn push_update(&self, capacity: usize, update: Arc<SubscriptionUpdate>) -> PushOutcome {
        let mut st = self.state.lock().unwrap_or_else(|p| p.into_inner());
        if st.closed {
            return PushOutcome::Skipped;
        }
        if st.lagged {
            // Keep the pending marker pointing at the newest missed epoch
            // so a late reader resyncs as far forward as possible.
            if let Some(SubscriptionMessage::Lagged { resync_epoch }) = st.messages.back_mut() {
                *resync_epoch = update.epoch;
            }
            return PushOutcome::Skipped;
        }
        if st.messages.len() >= capacity {
            let resync_epoch = update.epoch;
            st.messages.clear();
            st.messages
                .push_back(SubscriptionMessage::Lagged { resync_epoch });
            st.lagged = true;
            self.avail.notify_all();
            return PushOutcome::Lagged;
        }
        st.messages.push_back(SubscriptionMessage::Update(update));
        self.avail.notify_all();
        PushOutcome::Pushed
    }

    /// Forces the subscriber into the lagged state (view rebuilt/dropped).
    fn force_lag(&self, resync_epoch: u64) -> bool {
        let mut st = self.state.lock().unwrap_or_else(|p| p.into_inner());
        if st.closed || st.lagged {
            return false;
        }
        st.messages.clear();
        st.messages
            .push_back(SubscriptionMessage::Lagged { resync_epoch });
        st.lagged = true;
        self.avail.notify_all();
        true
    }

    fn close(&self) {
        let mut st = self.state.lock().unwrap_or_else(|p| p.into_inner());
        st.closed = true;
        st.messages.clear();
        self.avail.notify_all();
    }

    fn try_recv(&self) -> Option<SubscriptionMessage> {
        let mut st = self.state.lock().unwrap_or_else(|p| p.into_inner());
        st.messages.pop_front()
    }

    fn recv_timeout(&self, timeout: Duration) -> Option<SubscriptionMessage> {
        let deadline = Instant::now() + timeout;
        let mut st = self.state.lock().unwrap_or_else(|p| p.into_inner());
        loop {
            if let Some(msg) = st.messages.pop_front() {
                return Some(msg);
            }
            if st.closed {
                return None;
            }
            let now = Instant::now();
            if now >= deadline {
                return None;
            }
            let (next, timed_out) = self
                .avail
                .wait_timeout(st, deadline - now)
                .unwrap_or_else(|p| p.into_inner());
            st = next;
            if timed_out.timed_out() && st.messages.is_empty() {
                return None;
            }
        }
    }

    fn is_lagged(&self) -> bool {
        self.state.lock().unwrap_or_else(|p| p.into_inner()).lagged
    }

    fn clear_lag(&self) {
        let mut st = self.state.lock().unwrap_or_else(|p| p.into_inner());
        st.messages.clear();
        st.lagged = false;
    }
}

/// One registered subscriber within a spec group.
#[derive(Debug)]
struct SubEntry {
    id: u64,
    /// Snapshot epoch the subscriber's initial result is pinned to; updates
    /// are pushed only for epochs strictly after it.
    start_epoch: u64,
    capacity: usize,
    queue: Arc<SubQueue>,
}

/// Subscriptions sharing one bound (filter, projection): the view diff is
/// evaluated once per group, then cloned into each member's queue.
#[derive(Debug)]
struct SpecGroup {
    bound: BoundSpec,
    subs: Vec<SubEntry>,
}

#[derive(Debug, Default)]
struct RegistryState {
    by_view: HashMap<String, Vec<SpecGroup>>,
}

#[derive(Debug)]
struct RegistryInner {
    state: Mutex<RegistryState>,
    reader: SnapshotReader,
    /// Live subscription count, readable without the state lock so the
    /// maintenance path can skip dispatch entirely when nobody listens.
    active: AtomicUsize,
    next_id: AtomicU64,
    default_capacity: usize,
    journal: Journal,
    subscriptions_active: Gauge,
    sub_updates_pushed: Counter,
    sub_lagged: Counter,
    fanout_us: Histogram,
}

impl RegistryInner {
    fn unsubscribe(&self, view: &str, id: u64) {
        let mut state = self.state.lock().unwrap_or_else(|p| p.into_inner());
        let Some(groups) = state.by_view.get_mut(view) else {
            return;
        };
        let mut removed = false;
        for group in groups.iter_mut() {
            if let Some(pos) = group.subs.iter().position(|s| s.id == id) {
                let entry = group.subs.swap_remove(pos);
                entry.queue.close();
                removed = true;
                break;
            }
        }
        if removed {
            groups.retain(|g| !g.subs.is_empty());
            if groups.is_empty() {
                state.by_view.remove(view);
            }
            self.active.fetch_sub(1, Ordering::Relaxed);
            self.subscriptions_active.add(-1);
        }
    }
}

/// The subscription hub: lives on the [`crate::warehouse::Warehouse`] and is
/// shared (via `Clone`) with [`crate::ingest::WarehouseService`].
#[derive(Debug, Clone)]
pub struct SubscriptionRegistry {
    inner: Arc<RegistryInner>,
}

impl SubscriptionRegistry {
    pub(crate) fn new(reader: SnapshotReader, metrics: &MetricsRegistry, journal: Journal) -> Self {
        SubscriptionRegistry {
            inner: Arc::new(RegistryInner {
                state: Mutex::new(RegistryState::default()),
                reader,
                active: AtomicUsize::new(0),
                next_id: AtomicU64::new(1),
                default_capacity: queue_capacity_from_env(),
                journal,
                subscriptions_active: metrics.gauge("subscriptions_active"),
                sub_updates_pushed: metrics.counter("sub_updates_pushed"),
                sub_lagged: metrics.counter("sub_lagged"),
                fanout_us: metrics.histogram("fanout_us"),
            }),
        }
    }

    /// Registers a subscription with the default queue capacity
    /// ([`SUB_QUEUE_ENV_VAR`], default [`DEFAULT_SUB_QUEUE`]).
    pub fn subscribe(&self, spec: SubscriptionSpec) -> CoreResult<Subscription> {
        self.subscribe_with(spec, self.inner.default_capacity)
    }

    /// Registers a subscription with an explicit queue capacity (min 1).
    ///
    /// The initial result and the registration's start epoch come from ONE
    /// snapshot read taken under the registry lock, so no committed cycle
    /// can fall between them: every epoch after `start_epoch` is delivered
    /// as an update, and none is double-counted in the initial state.
    pub fn subscribe_with(
        &self,
        spec: SubscriptionSpec,
        capacity: usize,
    ) -> CoreResult<Subscription> {
        let capacity = capacity.max(1);
        let mut state = self.inner.state.lock().unwrap_or_else(|p| p.into_inner());
        let snap = self.inner.reader.read();
        let bound = spec.bind_to(&snap)?;
        let initial = bound.eval_table(&snap, &spec.view)?;
        let id = self.inner.next_id.fetch_add(1, Ordering::Relaxed);
        let queue = Arc::new(SubQueue::default());
        let entry = SubEntry {
            id,
            start_epoch: snap.epoch(),
            capacity,
            queue: Arc::clone(&queue),
        };
        let groups = state.by_view.entry(spec.view.clone()).or_default();
        match groups.iter_mut().find(|g| g.bound.matches(&bound)) {
            Some(group) => group.subs.push(entry),
            None => groups.push(SpecGroup {
                bound,
                subs: vec![entry],
            }),
        }
        self.inner.active.fetch_add(1, Ordering::Relaxed);
        self.inner.subscriptions_active.add(1);
        let start_epoch = snap.epoch();
        drop(state);
        Ok(Subscription {
            inner: Arc::clone(&self.inner),
            spec,
            id,
            capacity,
            queue,
            initial,
            start_epoch,
        })
    }

    /// Number of live subscriptions.
    pub fn active(&self) -> usize {
        self.inner.active.load(Ordering::Relaxed)
    }

    /// Cheap pre-check for the maintenance path.
    pub(crate) fn has_subscribers(&self) -> bool {
        self.active() > 0
    }

    /// Evaluates the committed cycle's summary-deltas against every spec
    /// group and fans the per-group update out to members. Called by the
    /// warehouse right after `publish`, with the pre-cycle (`prev`) and
    /// just-published (`new`) snapshots and the cycle's per-view deltas.
    ///
    /// Cost: one diff + one filter/project pass per *distinct* bound spec,
    /// then O(members) queue pushes — decoupled from both the total view
    /// count (views without subscribers are skipped) and the subscription
    /// count (members share their group's evaluation).
    pub(crate) fn dispatch_cycle(
        &self,
        prev: &LatticeSnapshot,
        new: &LatticeSnapshot,
        deltas: &HashMap<String, Relation>,
    ) {
        let started = Instant::now();
        let mut state = self.inner.state.lock().unwrap_or_else(|p| p.into_inner());
        let epoch = new.epoch();
        let cycle = new.cycle();
        let mut views_touched = 0u64;
        let mut pushed = 0u64;
        let mut lagged = 0u64;
        for (view, groups) in state.by_view.iter_mut() {
            let changed = deltas.get(view).is_some_and(|d| !d.is_empty());
            if !changed {
                continue;
            }
            let diff = match view_diff(prev, new, view, &deltas[view]) {
                Ok(diff) => diff,
                Err(_) => {
                    // Diffing failed (e.g. the view vanished mid-cycle):
                    // force every subscriber to resync rather than push a
                    // wrong delta.
                    for group in groups.iter_mut() {
                        for sub in &group.subs {
                            if sub.queue.force_lag(epoch) {
                                lagged += 1;
                            }
                        }
                    }
                    continue;
                }
            };
            if diff.is_empty() {
                continue;
            }
            views_touched += 1;
            for group in groups.iter_mut() {
                let update = match group_update(&group.bound, &diff, epoch, cycle) {
                    Ok(Some(update)) => Arc::new(update),
                    Ok(None) => continue,
                    Err(_) => {
                        for sub in &group.subs {
                            if sub.queue.force_lag(epoch) {
                                lagged += 1;
                            }
                        }
                        continue;
                    }
                };
                for sub in &group.subs {
                    // A subscriber registered at epoch >= this cycle's
                    // publish already holds the post-cycle state.
                    if sub.start_epoch >= epoch {
                        continue;
                    }
                    match sub.queue.push_update(sub.capacity, Arc::clone(&update)) {
                        PushOutcome::Pushed => pushed += 1,
                        PushOutcome::Lagged => lagged += 1,
                        PushOutcome::Skipped => {}
                    }
                }
            }
        }
        drop(state);
        let time_us = started.elapsed().as_micros() as u64;
        self.inner.sub_updates_pushed.add(pushed);
        self.inner.sub_lagged.add(lagged);
        self.inner.fanout_us.record_us(time_us);
        self.inner.journal.record(JournalEvent::SubscriptionFanout {
            cycle,
            epoch,
            views: views_touched,
            updates_pushed: pushed,
            lagged,
            time_us,
        });
    }

    /// DDL invalidation: any subscribed view whose table version changed
    /// outside a maintenance cycle (rebuild, drop, direct insert) cannot be
    /// patched incrementally — lag those subscribers so they resync.
    pub(crate) fn invalidate_changed(&self, prev: &LatticeSnapshot, new: &LatticeSnapshot) {
        let state = self.inner.state.lock().unwrap_or_else(|p| p.into_inner());
        let epoch = new.epoch();
        let mut lagged = 0u64;
        for (view, groups) in state.by_view.iter() {
            let same = match (prev.catalog().table_version(view), new.catalog().table_version(view))
            {
                (Ok(a), Ok(b)) => Arc::ptr_eq(&a, &b),
                _ => false,
            };
            if same {
                continue;
            }
            for group in groups {
                for sub in &group.subs {
                    if sub.queue.force_lag(epoch) {
                        lagged += 1;
                    }
                }
            }
        }
        drop(state);
        self.inner.sub_lagged.add(lagged);
    }
}

/// Reconstructs the view's row-level change for one cycle from its
/// summary-delta: per affected group key, the old row (if any) leaves and
/// the new row (if any) enters. Uses the summary table's unique group-key
/// index when available.
fn view_diff(
    prev: &LatticeSnapshot,
    new: &LatticeSnapshot,
    view: &str,
    delta: &Relation,
) -> CoreResult<Vec<(Row, i64)>> {
    let aug = new
        .view(view)
        .ok_or_else(|| CoreError::Maintenance(format!("view `{view}` missing from snapshot")))?;
    let kw = aug.key_width();
    let key_cols: Vec<usize> = (0..kw).collect();
    let mut keys: BTreeSet<Row> = BTreeSet::new();
    for row in &delta.rows {
        keys.insert(row.project(&key_cols));
    }
    let old_table = prev.table(view)?;
    let new_table = new.table(view)?;
    let mut diff = Vec::new();
    for key in keys {
        let old = lookup(old_table, &key, kw);
        let newr = lookup(new_table, &key, kw);
        if old == newr {
            continue;
        }
        if let Some(row) = old {
            diff.push((row.clone(), -1));
        }
        if let Some(row) = newr {
            diff.push((row.clone(), 1));
        }
    }
    Ok(diff)
}

/// Finds the (at most one) row of a summary table matching a group-key
/// prefix. Summary tables keep a unique index on the group-by columns; fall
/// back to a linear prefix scan when absent (e.g. apex views with no
/// group-by).
fn lookup<'t>(table: &'t cubedelta_storage::Table, key: &Row, kw: usize) -> Option<&'t Row> {
    if kw == 0 {
        return table.rows().next();
    }
    if let Some(ix) = table.unique_index() {
        if ix.columns() == (0..kw).collect::<Vec<_>>().as_slice() {
            return ix.get(key).and_then(|id| table.get(id));
        }
    }
    let key_cols: Vec<usize> = (0..kw).collect();
    table.rows().find(|r| &r.project(&key_cols) == key)
}

/// Evaluates one spec group over a view diff under bag semantics: the net
/// count per projected row, expanded in canonical order.
fn group_update(
    bound: &BoundSpec,
    diff: &[(Row, i64)],
    epoch: u64,
    cycle: u64,
) -> CoreResult<Option<SubscriptionUpdate>> {
    let mut counts: BTreeMap<Row, i64> = BTreeMap::new();
    for (row, sign) in diff {
        if !bound.filter.eval(row)? {
            continue;
        }
        *counts.entry(row.project(&bound.project)).or_insert(0) += sign;
    }
    let mut inserts = Vec::new();
    let mut deletes = Vec::new();
    for (row, n) in counts {
        match n.cmp(&0) {
            std::cmp::Ordering::Greater => {
                for _ in 0..n {
                    inserts.push(row.clone());
                }
            }
            std::cmp::Ordering::Less => {
                for _ in 0..-n {
                    deletes.push(row.clone());
                }
            }
            std::cmp::Ordering::Equal => {}
        }
    }
    if inserts.is_empty() && deletes.is_empty() {
        return Ok(None);
    }
    Ok(Some(SubscriptionUpdate {
        epoch,
        cycle,
        inserts,
        deletes,
    }))
}

/// A live subscription handle. Dropping it unregisters.
#[derive(Debug)]
pub struct Subscription {
    inner: Arc<RegistryInner>,
    spec: SubscriptionSpec,
    id: u64,
    capacity: usize,
    queue: Arc<SubQueue>,
    initial: Relation,
    start_epoch: u64,
}

impl Subscription {
    /// The subscribed view.
    pub fn view(&self) -> &str {
        &self.spec.view
    }

    /// The spec as registered.
    pub fn spec(&self) -> &SubscriptionSpec {
        &self.spec
    }

    /// The initial result, pinned to [`Self::start_epoch`]. After a
    /// [`Self::resync`] this is the re-pinned state.
    pub fn initial(&self) -> &Relation {
        &self.initial
    }

    /// The epoch the initial result is pinned to; the first pushed update
    /// carries a strictly greater epoch.
    pub fn start_epoch(&self) -> u64 {
        self.start_epoch
    }

    /// Pops the next pending message without blocking.
    pub fn try_recv(&self) -> Option<SubscriptionMessage> {
        self.queue.try_recv()
    }

    /// Waits up to `timeout` for the next message. `None` on timeout or
    /// after the registry side closed the queue.
    pub fn recv_timeout(&self, timeout: Duration) -> Option<SubscriptionMessage> {
        self.queue.recv_timeout(timeout)
    }

    /// Drains all currently pending messages.
    pub fn drain(&self) -> Vec<SubscriptionMessage> {
        let mut out = Vec::new();
        while let Some(msg) = self.try_recv() {
            out.push(msg);
        }
        out
    }

    /// Whether the subscription is in the lagged state (a `Lagged` marker
    /// was or will be delivered; no further updates until [`Self::resync`]).
    pub fn is_lagged(&self) -> bool {
        self.queue.is_lagged()
    }

    /// Re-pins the subscription: re-evaluates the spec against the current
    /// snapshot, replaces the initial result, clears the lag state, and
    /// resumes update delivery from the new epoch. Returns the new start
    /// epoch.
    pub fn resync(&mut self) -> CoreResult<u64> {
        let mut state = self.inner.state.lock().unwrap_or_else(|p| p.into_inner());
        let snap = self.inner.reader.read();
        let bound = self.spec.bind_to(&snap)?;
        let initial = bound.eval_table(&snap, &self.spec.view)?;

        // Remove the old entry (wherever its group is), then re-insert with
        // the new start epoch — the bound spec may have changed if the view
        // was rebuilt with a different schema.
        let groups = state.by_view.entry(self.spec.view.clone()).or_default();
        for group in groups.iter_mut() {
            if let Some(pos) = group.subs.iter().position(|s| s.id == self.id) {
                group.subs.swap_remove(pos);
                break;
            }
        }
        groups.retain(|g| !g.subs.is_empty());
        self.queue.clear_lag();
        let entry = SubEntry {
            id: self.id,
            start_epoch: snap.epoch(),
            capacity: self.capacity,
            queue: Arc::clone(&self.queue),
        };
        match groups.iter_mut().find(|g| g.bound.matches(&bound)) {
            Some(group) => group.subs.push(entry),
            None => groups.push(SpecGroup {
                bound,
                subs: vec![entry],
            }),
        }
        drop(state);
        self.initial = initial;
        self.start_epoch = snap.epoch();
        Ok(self.start_epoch)
    }
}

impl Drop for Subscription {
    fn drop(&mut self) {
        self.inner.unsubscribe(&self.spec.view, self.id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_fixtures::*;
    use crate::warehouse::{MaintainOptions, Warehouse};
    use cubedelta_expr::{CmpOp, Expr};
    use cubedelta_query::AggFunc;
    use cubedelta_storage::{row, ChangeBatch, Date, DeltaSet};

    fn warehouse() -> Warehouse {
        let mut wh = Warehouse::from_catalog(retail_catalog_small());
        for def in figure1_defs() {
            wh.create_summary_table(&def).unwrap();
        }
        wh
    }

    fn pos_batch() -> ChangeBatch {
        ChangeBatch::single(DeltaSet {
            table: "pos".into(),
            insertions: vec![row![2i64, 20i64, Date(10003), 4i64, 2.0]],
            deletions: vec![row![1i64, 10i64, Date(10000), 5i64, 1.0]],
        })
    }

    #[test]
    fn spec_eval_filters_and_projects() {
        let wh = warehouse();
        let snap = wh.read_snapshot();
        let spec = SubscriptionSpec::on("SID_sales")
            .filter(Predicate::cmp(
                CmpOp::Eq,
                Expr::col("storeID"),
                Expr::lit(1i64),
            ))
            .project(["storeID", "TotalQuantity"]);
        let rel = spec.eval(&snap).unwrap();
        assert_eq!(rel.schema.names(), vec!["storeID", "TotalQuantity"]);
        assert!(rel.rows.iter().all(|r| r[0] == 1i64.into()));
    }

    #[test]
    fn spec_rejects_unknown_view_and_column() {
        let wh = warehouse();
        let snap = wh.read_snapshot();
        assert!(SubscriptionSpec::on("nope").eval(&snap).is_err());
        assert!(SubscriptionSpec::on("SID_sales")
            .project(["no_such_col"])
            .eval(&snap)
            .is_err());
    }

    #[test]
    fn update_applies_under_bag_semantics() {
        let schema = Schema::new(vec![cubedelta_storage::Column::new(
            "x",
            cubedelta_storage::DataType::Int,
        )]);
        // The client holds {1, 1, 2}: duplicate rows are meaningful.
        let mut rel = Relation::new(schema, vec![row![1i64], row![1i64], row![2i64]]);
        let up = SubscriptionUpdate {
            epoch: 1,
            cycle: 1,
            inserts: vec![row![3i64]],
            deletes: vec![row![1i64]],
        };
        up.apply_to(&mut rel).unwrap();
        // ONE copy of 1 deleted, not both.
        assert_eq!(rel.rows, vec![row![1i64], row![2i64], row![3i64]]);

        let over_delete = SubscriptionUpdate {
            epoch: 2,
            cycle: 2,
            inserts: vec![],
            deletes: vec![row![2i64], row![2i64]],
        };
        assert!(over_delete.apply_to(&mut rel).is_err());
    }

    #[test]
    fn from_query_rewrites_onto_exact_view() {
        let wh = warehouse();
        let q = AggQuery::over("pos")
            .group_by(["region"])
            .aggregate(AggFunc::Sum(Expr::col("qty")), "total");
        let spec = SubscriptionSpec::from_query(wh.catalog(), wh.views(), &q).unwrap();
        assert_eq!(spec.view, "sR_sales");
        // Output keeps the view's aggregate names.
        assert_eq!(
            spec.project.as_deref(),
            Some(&["region".to_string(), "TotalQuantity".to_string()][..])
        );
        let rel = spec.eval(&wh.read_snapshot()).unwrap();
        assert_eq!(rel.sorted_rows(), vec![row!["east", 17i64]]);
    }

    #[test]
    fn from_query_residual_filter_over_group_by() {
        let wh = warehouse();
        let q = AggQuery::over("pos")
            .group_by(["region"])
            .aggregate(AggFunc::Sum(Expr::col("qty")), "total")
            .filter(Predicate::cmp(
                CmpOp::Eq,
                Expr::col("region"),
                Expr::lit("east"),
            ));
        let spec = SubscriptionSpec::from_query(wh.catalog(), wh.views(), &q).unwrap();
        assert_eq!(spec.view, "sR_sales");
        assert_ne!(spec.filter, Predicate::True);
        let rel = spec.eval(&wh.read_snapshot()).unwrap();
        assert_eq!(rel.sorted_rows(), vec![row!["east", 17i64]]);
    }

    #[test]
    fn from_query_rejects_avg_and_coarser_rollups() {
        let wh = warehouse();
        let avg = AggQuery::over("pos")
            .group_by(["region"])
            .aggregate(AggFunc::Avg(Expr::col("qty")), "a");
        assert!(SubscriptionSpec::from_query(wh.catalog(), wh.views(), &avg).is_err());

        // `city` totals are derivable from sCD_sales only by re-aggregating
        // across dates — not pushable.
        let coarser = AggQuery::over("pos")
            .group_by(["city"])
            .aggregate(AggFunc::Sum(Expr::col("qty")), "total");
        assert!(SubscriptionSpec::from_query(wh.catalog(), wh.views(), &coarser).is_err());

        // A WHERE over a non-group-by column can't become a residual filter.
        let filtered = AggQuery::over("pos")
            .group_by(["region"])
            .aggregate(AggFunc::Sum(Expr::col("qty")), "total")
            .filter(Predicate::cmp(CmpOp::Gt, Expr::col("qty"), Expr::lit(1i64)));
        assert!(SubscriptionSpec::from_query(wh.catalog(), wh.views(), &filtered).is_err());
    }

    #[test]
    fn initial_plus_update_replays_snapshot() {
        let mut wh = warehouse();
        let sub = wh
            .subscribe(SubscriptionSpec::on("sR_sales"))
            .unwrap();
        let mut held = sub.initial().clone();
        wh.maintain(&pos_batch(), &MaintainOptions::default()).unwrap();
        let snap = wh.read_snapshot();

        let msg = sub.try_recv().expect("update pushed");
        let SubscriptionMessage::Update(up) = msg else {
            panic!("expected update, got {msg:?}");
        };
        assert_eq!(up.epoch, snap.epoch());
        up.apply_to(&mut held).unwrap();
        assert_eq!(held, sub.spec().eval(&snap).unwrap());
        drop(sub);
        assert_eq!(wh.subscriptions().active(), 0);
    }

    #[test]
    fn lag_then_resync_converges() {
        let mut wh = warehouse();
        let mut sub = wh
            .subscribe_with(SubscriptionSpec::on("SID_sales"), 1)
            .unwrap();
        // Two cycles against capacity 1: the second push lags the queue.
        wh.maintain(&pos_batch(), &MaintainOptions::default()).unwrap();
        let b2 = ChangeBatch::single(DeltaSet::insertions(
            "pos",
            vec![row![3i64, 10i64, Date(10004), 7i64, 1.0]],
        ));
        wh.maintain(&b2, &MaintainOptions::default()).unwrap();
        assert!(sub.is_lagged());
        let msgs = sub.drain();
        assert!(matches!(
            msgs.last(),
            Some(SubscriptionMessage::Lagged { .. })
        ));

        let epoch = sub.resync().unwrap();
        assert_eq!(epoch, wh.read_snapshot().epoch());
        assert!(!sub.is_lagged());
        assert_eq!(
            sub.initial(),
            &sub.spec().eval(&wh.read_snapshot()).unwrap()
        );

        // Updates flow again after the resync.
        let b3 = ChangeBatch::single(DeltaSet::insertions(
            "pos",
            vec![row![1i64, 20i64, Date(10005), 2i64, 1.0]],
        ));
        wh.maintain(&b3, &MaintainOptions::default()).unwrap();
        assert!(matches!(
            sub.try_recv(),
            Some(SubscriptionMessage::Update(_))
        ));
    }

    #[test]
    fn spec_groups_share_evaluation() {
        let mut wh = warehouse();
        let subs: Vec<_> = (0..8)
            .map(|_| wh.subscribe(SubscriptionSpec::on("sR_sales")).unwrap())
            .collect();
        assert_eq!(wh.subscriptions().active(), 8);
        wh.maintain(&pos_batch(), &MaintainOptions::default()).unwrap();
        for sub in &subs {
            assert!(matches!(
                sub.try_recv(),
                Some(SubscriptionMessage::Update(_))
            ));
        }
    }

    #[test]
    fn ddl_rebuild_lags_subscribers() {
        let mut wh = warehouse();
        let sub = wh.subscribe(SubscriptionSpec::on("sR_sales")).unwrap();
        // Dropping the view changes its table version outside any cycle —
        // the subscriber cannot be patched incrementally and must resync.
        wh.drop_summary_table("sR_sales").unwrap();
        assert!(sub.is_lagged());
        assert!(matches!(
            sub.try_recv(),
            Some(SubscriptionMessage::Lagged { .. })
        ));
        // An unaffected view's subscribers are left alone.
        let other = wh.subscribe(SubscriptionSpec::on("SID_sales")).unwrap();
        wh.drop_summary_table("sCD_sales").unwrap();
        assert!(!other.is_lagged());
    }
}
