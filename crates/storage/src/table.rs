//! Multiset tables with slotted storage and hash indexes.

use std::collections::HashMap;
use std::fmt;

use crate::delta::DeltaSet;
use crate::error::{StorageError, StorageResult};
use crate::index::{HashIndex, UniqueIndex};
use crate::row::{Row, RowId};
use crate::schema::Schema;

/// An in-memory multiset (bag) of rows.
///
/// Duplicates are allowed — the paper's `pos` fact table "is allowed to
/// contain duplicates, for example, when an item is sold in different
/// transactions in the same store on the same date" (§2). Rows live in
/// slots; deleting frees the slot for reuse so row ids stay dense.
///
/// A table may carry any number of named multiset [`HashIndex`]es, plus at
/// most one [`UniqueIndex`] (summary tables use one on their group-by
/// columns; it backs the O(1) refresh lookup).
#[derive(Debug, Clone)]
pub struct Table {
    name: String,
    schema: Schema,
    slots: Vec<Option<Row>>,
    free: Vec<RowId>,
    live: usize,
    indexes: HashMap<String, HashIndex>,
    unique: Option<UniqueIndex>,
    /// When false, insert/delete skip per-row schema validation. Bulk loads
    /// from trusted generators turn this off; the default is on.
    validate: bool,
}

impl Table {
    /// An empty table.
    pub fn new(name: impl Into<String>, schema: Schema) -> Self {
        Table {
            name: name.into(),
            schema,
            slots: Vec::new(),
            free: Vec::new(),
            live: 0,
            indexes: HashMap::new(),
            unique: None,
            validate: true,
        }
    }

    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Table schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of live rows.
    pub fn len(&self) -> usize {
        self.live
    }

    /// True iff the table holds no rows.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Disables per-row validation (for trusted bulk loads).
    pub fn set_validate(&mut self, validate: bool) {
        self.validate = validate;
    }

    /// Creates a named multiset hash index over columns given by name,
    /// populating it from existing rows.
    pub fn create_index(&mut self, index_name: &str, columns: &[&str]) -> StorageResult<()> {
        if self.indexes.contains_key(index_name) {
            return Err(StorageError::IndexExists(index_name.to_string()));
        }
        let cols = self.schema.indices_of(columns)?;
        let mut ix = HashIndex::new(cols);
        for (id, row) in self.iter() {
            ix.insert(row, id);
        }
        self.indexes.insert(index_name.to_string(), ix);
        Ok(())
    }

    /// Creates the table's unique index over columns given by name,
    /// populating it from existing rows. Errors if two rows share a key.
    pub fn create_unique_index(&mut self, columns: &[&str]) -> StorageResult<()> {
        let cols = self.schema.indices_of(columns)?;
        let mut ix = UniqueIndex::new(cols);
        for (id, row) in self.iter() {
            ix.insert(row, id)?;
        }
        self.unique = Some(ix);
        Ok(())
    }

    /// The unique index, if one was created.
    pub fn unique_index(&self) -> Option<&UniqueIndex> {
        self.unique.as_ref()
    }

    /// A named multiset index.
    pub fn index(&self, name: &str) -> StorageResult<&HashIndex> {
        self.indexes
            .get(name)
            .ok_or_else(|| StorageError::UnknownIndex(name.to_string()))
    }

    /// Inserts a row, returning its id.
    pub fn insert(&mut self, row: Row) -> StorageResult<RowId> {
        if self.validate {
            self.schema.check_row(&row)?;
        }
        let id = match self.free.pop() {
            Some(id) => id,
            None => {
                let id = RowId(self.slots.len() as u32);
                self.slots.push(None);
                id
            }
        };
        if let Some(ix) = &mut self.unique {
            if let Err(e) = ix.insert(&row, id) {
                self.free.push(id);
                return Err(e);
            }
        }
        for ix in self.indexes.values_mut() {
            ix.insert(&row, id);
        }
        self.slots[id.index()] = Some(row);
        self.live += 1;
        Ok(id)
    }

    /// Bulk insert.
    pub fn insert_all<I: IntoIterator<Item = Row>>(&mut self, rows: I) -> StorageResult<()> {
        for r in rows {
            self.insert(r)?;
        }
        Ok(())
    }

    /// Fetches a row by id.
    pub fn get(&self, id: RowId) -> Option<&Row> {
        self.slots.get(id.index()).and_then(|s| s.as_ref())
    }

    /// Deletes a row by id, returning it.
    pub fn delete(&mut self, id: RowId) -> StorageResult<Row> {
        let slot = self
            .slots
            .get_mut(id.index())
            .ok_or_else(|| StorageError::MissingRow(format!("row id {}", id.0)))?;
        let row = slot
            .take()
            .ok_or_else(|| StorageError::MissingRow(format!("row id {}", id.0)))?;
        if let Some(ix) = &mut self.unique {
            ix.remove(&row);
        }
        for ix in self.indexes.values_mut() {
            ix.remove(&row, id);
        }
        self.free.push(id);
        self.live -= 1;
        Ok(row)
    }

    /// Replaces the row at `id` in place, keeping indexes consistent.
    ///
    /// This is the refresh function's "update tuple" operation.
    pub fn update(&mut self, id: RowId, new_row: Row) -> StorageResult<()> {
        if self.validate {
            self.schema.check_row(&new_row)?;
        }
        let old = self
            .slots
            .get(id.index())
            .and_then(|s| s.clone())
            .ok_or_else(|| StorageError::MissingRow(format!("row id {}", id.0)))?;
        if let Some(ix) = &mut self.unique {
            ix.remove(&old);
            ix.insert(&new_row, id)?;
        }
        for ix in self.indexes.values_mut() {
            ix.remove(&old, id);
            ix.insert(&new_row, id);
        }
        self.slots[id.index()] = Some(new_row);
        Ok(())
    }

    /// Iterates over live rows with their ids.
    pub fn iter(&self) -> impl Iterator<Item = (RowId, &Row)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|r| (RowId(i as u32), r)))
    }

    /// Iterates over live rows.
    pub fn rows(&self) -> impl Iterator<Item = &Row> {
        self.slots.iter().filter_map(|s| s.as_ref())
    }

    /// Like [`rows`](Self::rows), but books the full pass as `live` rows
    /// scanned in `m`. Callers that may abandon the iterator early should
    /// count per-row instead.
    pub fn scan(&self, m: &mut cubedelta_obs::ExecutionMetrics) -> impl Iterator<Item = &Row> {
        m.rows_scanned += self.live as u64;
        self.rows()
    }

    /// Clones all live rows into a vector.
    pub fn to_rows(&self) -> Vec<Row> {
        self.rows().cloned().collect()
    }

    /// Applies a deferred change set: all deletions (multiset semantics —
    /// each deletion removes exactly one matching occurrence), then all
    /// insertions. One scan handles the whole deletion batch.
    ///
    /// Errors with [`StorageError::MissingRow`] if some deletion has no
    /// matching row; the table is left with all found deletions applied.
    pub fn apply_delta(&mut self, delta: &DeltaSet) -> StorageResult<()> {
        if !delta.deletions.is_empty() {
            // Count how many occurrences of each row must go.
            let mut pending: HashMap<&Row, usize> = HashMap::new();
            for d in &delta.deletions {
                *pending.entry(d).or_insert(0) += 1;
            }
            let mut remaining = delta.deletions.len();
            let mut to_delete: Vec<RowId> = Vec::with_capacity(remaining);
            for (id, row) in self.iter() {
                if remaining == 0 {
                    break;
                }
                if let Some(cnt) = pending.get_mut(row) {
                    if *cnt > 0 {
                        *cnt -= 1;
                        remaining -= 1;
                        to_delete.push(id);
                    }
                }
            }
            for id in to_delete {
                self.delete(id)?;
            }
            if remaining > 0 {
                return Err(StorageError::MissingRow(format!(
                    "{remaining} deletion(s) had no matching row in `{}`",
                    self.name
                )));
            }
        }
        for r in &delta.insertions {
            self.insert(r.clone())?;
        }
        Ok(())
    }

    /// Removes every row, keeping schema and index definitions.
    pub fn truncate(&mut self) {
        self.slots.clear();
        self.free.clear();
        self.live = 0;
        if let Some(ix) = &mut self.unique {
            ix.clear();
        }
        for ix in self.indexes.values_mut() {
            ix.clear();
        }
    }

    /// Sorted snapshot of the rows — canonical form for multiset equality
    /// in tests ("does incremental maintenance equal rematerialization?").
    pub fn sorted_rows(&self) -> Vec<Row> {
        let mut v = self.to_rows();
        v.sort();
        v
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{} {} [{} rows]", self.name, self.schema, self.live)?;
        for row in self.rows() {
            writeln!(f, "  {row}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datatype::DataType;
    use crate::row;
    use crate::schema::Column;

    fn table() -> Table {
        Table::new(
            "t",
            Schema::new(vec![
                Column::new("a", DataType::Int),
                Column::new("b", DataType::Str),
            ]),
        )
    }

    #[test]
    fn insert_get_delete() {
        let mut t = table();
        let id = t.insert(row![1i64, "x"]).unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(id), Some(&row![1i64, "x"]));
        let r = t.delete(id).unwrap();
        assert_eq!(r, row![1i64, "x"]);
        assert!(t.is_empty());
        assert!(t.get(id).is_none());
        assert!(t.delete(id).is_err());
    }

    #[test]
    fn slots_are_reused() {
        let mut t = table();
        let id0 = t.insert(row![1i64, "x"]).unwrap();
        t.delete(id0).unwrap();
        let id1 = t.insert(row![2i64, "y"]).unwrap();
        assert_eq!(id0, id1, "freed slot should be reused");
    }

    #[test]
    fn duplicates_allowed() {
        let mut t = table();
        t.insert(row![1i64, "x"]).unwrap();
        t.insert(row![1i64, "x"]).unwrap();
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn validation_rejects_bad_rows() {
        let mut t = table();
        assert!(t.insert(row![1i64]).is_err());
        assert!(t.insert(row!["oops", "x"]).is_err());
        t.set_validate(false);
        // Trusted mode skips the check.
        assert!(t.insert(row![1i64]).is_ok());
    }

    #[test]
    fn unique_index_enforced_and_maintained() {
        let mut t = table();
        t.create_unique_index(&["a"]).unwrap();
        let id = t.insert(row![1i64, "x"]).unwrap();
        assert!(t.insert(row![1i64, "y"]).is_err());
        assert_eq!(t.len(), 1, "failed insert must not leak a row");
        assert_eq!(t.unique_index().unwrap().get(&row![1i64]), Some(id));
        t.delete(id).unwrap();
        assert_eq!(t.unique_index().unwrap().get(&row![1i64]), None);
        t.insert(row![1i64, "y"]).unwrap();
    }

    #[test]
    fn named_index_lookup() {
        let mut t = table();
        t.insert(row![1i64, "x"]).unwrap();
        t.insert(row![1i64, "y"]).unwrap();
        t.insert(row![2i64, "z"]).unwrap();
        t.create_index("by_a", &["a"]).unwrap();
        assert_eq!(t.index("by_a").unwrap().get(&row![1i64]).len(), 2);
        assert!(t.create_index("by_a", &["a"]).is_err());
        assert!(t.index("nope").is_err());
    }

    #[test]
    fn update_keeps_indexes_consistent() {
        let mut t = table();
        t.create_unique_index(&["a"]).unwrap();
        t.create_index("by_b", &["b"]).unwrap();
        let id = t.insert(row![1i64, "x"]).unwrap();
        t.update(id, row![2i64, "y"]).unwrap();
        assert_eq!(t.unique_index().unwrap().get(&row![1i64]), None);
        assert_eq!(t.unique_index().unwrap().get(&row![2i64]), Some(id));
        assert!(t.index("by_b").unwrap().get(&row!["x"]).is_empty());
        assert_eq!(t.index("by_b").unwrap().get(&row!["y"]), &[id]);
    }

    #[test]
    fn apply_delta_multiset_deletion() {
        let mut t = table();
        t.insert(row![1i64, "x"]).unwrap();
        t.insert(row![1i64, "x"]).unwrap();
        t.insert(row![2i64, "y"]).unwrap();
        let delta = DeltaSet {
            table: "t".into(),
            insertions: vec![row![3i64, "z"]],
            deletions: vec![row![1i64, "x"]],
        };
        t.apply_delta(&delta).unwrap();
        // Exactly one of the two duplicates goes.
        assert_eq!(
            t.sorted_rows(),
            vec![row![1i64, "x"], row![2i64, "y"], row![3i64, "z"]]
        );
    }

    #[test]
    fn apply_delta_missing_row_errors() {
        let mut t = table();
        t.insert(row![1i64, "x"]).unwrap();
        let delta = DeltaSet {
            table: "t".into(),
            insertions: vec![],
            deletions: vec![row![9i64, "nope"]],
        };
        assert!(matches!(
            t.apply_delta(&delta),
            Err(StorageError::MissingRow(_))
        ));
    }

    #[test]
    fn scan_books_rows_scanned() {
        let mut t = table();
        t.insert(row![1i64, "x"]).unwrap();
        t.insert(row![2i64, "y"]).unwrap();
        let mut m = cubedelta_obs::ExecutionMetrics::new();
        assert_eq!(t.scan(&mut m).count(), 2);
        assert_eq!(m.rows_scanned, 2);
    }

    #[test]
    fn truncate_clears_rows_and_indexes() {
        let mut t = table();
        t.create_unique_index(&["a"]).unwrap();
        t.insert(row![1i64, "x"]).unwrap();
        t.truncate();
        assert!(t.is_empty());
        assert!(t.unique_index().unwrap().is_empty());
        // Key is reusable after truncate.
        t.insert(row![1i64, "x"]).unwrap();
    }
}
