//! A vendored, dependency-free subset of the `rand` 0.8 API.
//!
//! The build environment for this workspace has no access to crates.io, so
//! the handful of `rand` entry points the workload generators use are
//! implemented here directly: [`rngs::StdRng`] (a xoshiro256++ generator
//! seeded via SplitMix64), the [`SeedableRng`] and [`Rng`] traits, and
//! [`seq::index::sample`]. Streams are deterministic per seed, which is all
//! the workload and tests rely on — they never pin exact values, only
//! determinism and distribution shape.

/// Random number generator trait: the `gen`/`gen_range` surface.
pub trait Rng {
    /// The raw 64-bit output of the generator.
    fn next_u64(&mut self) -> u64;

    /// A uniformly distributed value of `T` (implemented for `f64` in
    /// `[0, 1)` and the primitive integers over their full range).
    fn gen<T: Standard>(&mut self) -> T {
        T::from_rng(self)
    }

    /// A uniformly distributed value in the given range. Supports
    /// `Range` and `RangeInclusive` over the primitive integer types and
    /// `f64`, like `rand::Rng::gen_range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

/// Seedable generators (the `seed_from_u64` constructor).
pub trait SeedableRng: Sized {
    /// Builds the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types with a natural uniform distribution for [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn from_rng<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform draw from `[0, bound)` without modulo bias (Lemire's method).
fn bounded_u64<R: Rng + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    loop {
        let x = rng.next_u64();
        let m = (x as u128).wrapping_mul(bound as u128);
        let lo = m as u64;
        if lo >= bound || lo >= bound.wrapping_neg() % bound {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + bounded_u64(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t;
                }
                (start as i128 + bounded_u64(rng, span as u64) as i128) as $t
            }
        }
    )*};
}
range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let u: f64 = rng.gen();
        self.start + u * (self.end - self.start)
    }
}

/// Generator implementations.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The standard generator: xoshiro256++ with SplitMix64 seeding.
    ///
    /// Not the ChaCha12 generator real `rand` uses, but deterministic per
    /// seed and statistically solid for workload synthesis.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers (`rand::seq`).
pub mod seq {
    /// Index sampling (`rand::seq::index`).
    pub mod index {
        use crate::Rng;

        /// Samples `amount` distinct indices from `0..length`, like
        /// `rand::seq::index::sample`. Partial Fisher–Yates over a dense
        /// index table: O(length) memory, O(amount) swaps.
        pub fn sample<R: Rng + ?Sized>(
            rng: &mut R,
            length: usize,
            amount: usize,
        ) -> Vec<usize> {
            assert!(
                amount <= length,
                "cannot sample {amount} indices from {length}"
            );
            let mut indices: Vec<usize> = (0..length).collect();
            for i in 0..amount {
                let j = rng.gen_range(i..length);
                indices.swap(i, j);
            }
            indices.truncate(amount);
            indices
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(0..97usize);
            assert!(x < 97);
            let y = rng.gen_range(1..=20i64);
            assert!((1..=20).contains(&y));
            let f = rng.gen_range(-2.0..3.0f64);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn unit_f64_is_uniformish() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn sample_yields_distinct_indices() {
        let mut rng = StdRng::seed_from_u64(5);
        let picks = crate::seq::index::sample(&mut rng, 100, 30);
        assert_eq!(picks.len(), 30);
        let mut sorted = picks.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 30, "indices must be distinct");
        assert!(picks.iter().all(|&i| i < 100));
    }

    #[test]
    #[should_panic(expected = "cannot sample")]
    fn oversample_panics() {
        let mut rng = StdRng::seed_from_u64(5);
        crate::seq::index::sample(&mut rng, 3, 4);
    }
}
