//! A tour of the paper's lattice machinery, regenerating Figures 4, 5,
//! and 8 as text, and showing the §5.2 lattice-friendly rewriting plus the
//! §5.5 propagation plan.
//!
//! ```sh
//! cargo run --example lattice_tour
//! ```

use cubedelta::expr::Expr;
use cubedelta::lattice::{
    combined_lattice, cube_lattice, make_lattice_friendly, Hierarchy, ViewLattice,
};
use cubedelta::query::AggFunc;
use cubedelta::view::{augment, SummaryViewDef};
use cubedelta::workload::retail_catalog_small;

fn main() {
    // --- Figure 4: the data-cube lattice --------------------------------
    println!("== Figure 4: cube lattice over (storeID, itemID, date) ==");
    let fig4 = cube_lattice(&["storeID", "itemID", "date"]);
    println!("{fig4}");

    // --- Figure 5: the combined lattice ---------------------------------
    println!("== Figure 5: combined lattice (store & item hierarchies) ==");
    let fig5 = combined_lattice(&[
        Hierarchy::new("stores", &["storeID", "city", "region"]),
        Hierarchy::new("items", &["itemID", "category"]),
        Hierarchy::flat("date"),
    ]);
    println!("{} nodes, {} covering edges", fig5.len(), fig5.edges().len());
    println!("{fig5}");

    // --- Figure 8: the V-lattice of the four summary tables -------------
    let cat = retail_catalog_small();
    let defs = vec![
        SummaryViewDef::builder("SID_sales", "pos")
            .group_by(["storeID", "itemID", "date"])
            .aggregate(AggFunc::CountStar, "TotalCount")
            .aggregate(AggFunc::Sum(Expr::col("qty")), "TotalQuantity")
            .build(),
        SummaryViewDef::builder("sCD_sales", "pos")
            .join_dimension("stores")
            .group_by(["city", "date"])
            .aggregate(AggFunc::CountStar, "TotalCount")
            .aggregate(AggFunc::Sum(Expr::col("qty")), "TotalQuantity")
            .build(),
        SummaryViewDef::builder("SiC_sales", "pos")
            .join_dimension("items")
            .group_by(["storeID", "category"])
            .aggregate(AggFunc::CountStar, "TotalCount")
            .aggregate(AggFunc::Min(Expr::col("date")), "EarliestSale")
            .aggregate(AggFunc::Sum(Expr::col("qty")), "TotalQuantity")
            .build(),
        SummaryViewDef::builder("sR_sales", "pos")
            .join_dimension("stores")
            .group_by(["region"])
            .aggregate(AggFunc::CountStar, "TotalCount")
            .aggregate(AggFunc::Sum(Expr::col("qty")), "TotalQuantity")
            .build(),
    ];

    println!("== Figure 8: V-lattice of the Figure-1 summary tables ==");
    let views: Vec<_> = defs.iter().map(|d| augment(&cat, d).unwrap()).collect();
    let vlat = ViewLattice::build(&cat, views).unwrap();
    println!("{}", vlat.render());

    // --- §5.2: lattice-friendly rewriting --------------------------------
    println!("== After lattice-friendly rewriting (sCD_sales gains region) ==");
    let friendly = make_lattice_friendly(&cat, &defs).unwrap();
    for d in &friendly {
        println!("  {}({})", d.name, d.group_by.join(", "));
    }
    let views: Vec<_> = friendly.iter().map(|d| augment(&cat, d).unwrap()).collect();
    let vlat = ViewLattice::build(&cat, views).unwrap();
    println!("\n{}", vlat.render());

    // --- §5.5: the propagation plan over the D-lattice -------------------
    println!("== Propagation plan (D-lattice ≡ V-lattice, Theorem 5.1) ==");
    let plan = vlat
        .choose_plan(&cat, |name| {
            cat.table(name).map(|t| t.len()).unwrap_or(usize::MAX)
        })
        .unwrap();
    print!("{plan}");
}
