//! Crash-safe warehouse service: commitlog + snapshots + recovery.
//!
//! This is the blessed entry point tying the core ingestion service's
//! durability hooks ([`cubedelta_core::ingest`]'s `DurabilityPolicy`) to
//! the top-level persistence format ([`crate::persist`]):
//!
//! * [`start_durable`] opens (or initializes) a durability directory and
//!   starts a [`WarehouseService`] whose sealed batches are appended to
//!   an fsync'd commitlog before the seal is acknowledged, and whose
//!   committed cycles advance a manifest and periodically snapshot the
//!   warehouse (compacting the log behind the snapshot).
//! * [`recover_warehouse`] rebuilds a warehouse from such a directory:
//!   load the manifest's snapshot, then replay every commitlog frame
//!   above the snapshot's LSN. Maintenance is deterministic, so the
//!   result is **byte-identical** to the uninterrupted run — the
//!   invariant `tests/crash_recovery.rs` drives with injected panics and
//!   real process aborts.
//!
//! Directory layout:
//!
//! ```text
//! dir/
//!   commit.log        length-prefixed, checksummed frames (one per batch)
//!   MANIFEST          snapshot_lsn / snapshot_dir / last_applied_lsn
//!   snapshot-<lsn>/   a persist::save_snapshot directory
//! ```
//!
//! Torn commitlog tails (a crash mid-append) are detected by checksum on
//! reopen and discarded with a logged warning — the torn frame's seal was
//! never acknowledged, so no accepted batch is affected. Interior
//! corruption, by contrast, surfaces as [`PersistError::Corrupt`] with
//! the byte offset.

use std::path::Path;
use std::sync::Arc;

use cubedelta_core::ingest::{BatchPolicy, DurabilityPolicy, SnapshotFn, WarehouseService};
use cubedelta_core::{CommitLog, CommitLogError, MaintainOptions, Manifest, Warehouse};

use crate::persist::{load_snapshot, save_snapshot, PersistError};

/// What recovery did, for assertions and operator logs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryReport {
    /// LSN the loaded snapshot covered.
    pub snapshot_lsn: u64,
    /// Highest LSN applied after replay (== `snapshot_lsn` when the log
    /// tail was empty).
    pub last_lsn: u64,
    /// Commitlog frames replayed on top of the snapshot.
    pub replayed_batches: u64,
    /// Base-delta rows those frames carried.
    pub replayed_rows: u64,
    /// Bytes dropped from a torn log tail (0 on a clean log).
    pub torn_bytes_discarded: u64,
}

/// A recovered warehouse plus the accounting of how it was rebuilt.
pub struct Recovery {
    pub warehouse: Warehouse,
    pub report: RecoveryReport,
}

/// A started durable service; `recovery` is `Some` when the directory
/// already existed and the warehouse was rebuilt from it.
pub struct DurableStart {
    pub service: WarehouseService,
    pub recovery: Option<RecoveryReport>,
}

fn map_log_err(e: CommitLogError) -> PersistError {
    match e {
        CommitLogError::Io(e) => PersistError::Io(e),
        CommitLogError::Corrupt { offset, detail } => PersistError::Corrupt { offset, detail },
    }
}

/// The [`SnapshotFn`] wiring [`save_snapshot`] into the core service.
pub fn snapshot_writer() -> SnapshotFn {
    Arc::new(|wh: &Warehouse, target: &Path| {
        save_snapshot(wh, target).map_err(|e| e.to_string())
    })
}

/// Rebuilds the warehouse recorded in a durability directory: loads the
/// manifest's snapshot, then replays every commitlog frame with an LSN
/// above the snapshot's, bumping the `recovery_replayed_batches` counter
/// in the recovered warehouse's registry.
///
/// Replay applies each logged batch through the normal maintenance path,
/// so it is exactly the uninterrupted run's suffix — and because every
/// cycle is deterministic (any thread/shard count), the recovered
/// summary tables are byte-identical to a run that never crashed. A
/// torn tail is discarded (with a warning) before replay; a batch that
/// *fails* to replay is [`PersistError::Engine`] naming its LSN.
pub fn recover_warehouse(dir: &Path, opts: &MaintainOptions) -> Result<Recovery, PersistError> {
    let manifest = Manifest::load(dir).map_err(map_log_err)?.ok_or_else(|| {
        PersistError::Manifest(format!(
            "no MANIFEST in {} — not a durable warehouse directory",
            dir.display()
        ))
    })?;
    let mut wh = load_snapshot(&dir.join(&manifest.snapshot_dir))?;
    if manifest.snapshot_lsn > 0 {
        wh.set_last_applied_lsn(manifest.snapshot_lsn);
    }
    // Publish the restored state as epoch 0 *before* replay begins:
    // readers of the new incarnation can pin the pre-crash committed
    // state immediately, and the replayed cycles publish epochs 1..k on
    // top — strictly monotone, no epoch reuse (the LSN label carries the
    // cross-incarnation identity).
    wh.publish_initial_snapshot();

    // Open validates every frame and truncates a torn tail; drop the
    // writer handle immediately — recovery only needs the scan.
    let (log, open) = CommitLog::open(dir).map_err(map_log_err)?;
    drop(log);

    let mut report = RecoveryReport {
        snapshot_lsn: manifest.snapshot_lsn,
        last_lsn: manifest.snapshot_lsn,
        replayed_batches: 0,
        replayed_rows: 0,
        torn_bytes_discarded: open.torn_bytes_discarded,
    };
    for rec in &open.records {
        if rec.lsn <= manifest.snapshot_lsn {
            continue; // already inside the snapshot
        }
        wh.maintain(&rec.batch, opts).map_err(|e| {
            PersistError::Engine(format!("replay of commitlog lsn {} failed: {e}", rec.lsn))
        })?;
        wh.set_last_applied_lsn(rec.lsn);
        report.replayed_batches += 1;
        report.replayed_rows += rec.batch.len() as u64;
        report.last_lsn = rec.lsn;
    }
    wh.metrics()
        .counter("recovery_replayed_batches")
        .add(report.replayed_batches);
    Ok(Recovery {
        warehouse: wh,
        report,
    })
}

/// Opens (or initializes) the durability directory `dir` and starts a
/// durable [`WarehouseService`].
///
/// * Fresh directory: `initial` is snapshotted as `snapshot-0`, the
///   manifest is written, and the service starts on `initial` itself.
/// * Existing directory: the warehouse is [recovered](recover_warehouse)
///   from the snapshot + log tail and `initial` is **discarded** — it
///   only describes the world before the first start. The report of what
///   replay did comes back in [`DurableStart::recovery`].
///
/// `snapshot_every` is the snapshot cadence in applied batches (`0` =
/// snapshot only at clean shutdown). The maintenance `opts` are used both
/// for replay and for the running service, which is what byte-identity
/// requires.
pub fn start_durable(
    initial: Warehouse,
    policy: BatchPolicy,
    opts: MaintainOptions,
    dir: &Path,
    snapshot_every: u64,
) -> Result<DurableStart, PersistError> {
    std::fs::create_dir_all(dir)?;
    let (warehouse, recovery) = match Manifest::load(dir).map_err(map_log_err)? {
        None => {
            save_snapshot(&initial, &dir.join("snapshot-0"))?;
            Manifest {
                snapshot_lsn: 0,
                snapshot_dir: "snapshot-0".into(),
                last_applied_lsn: 0,
            }
            .store(dir)
            .map_err(map_log_err)?;
            (initial, None)
        }
        Some(_) => {
            let rec = recover_warehouse(dir, &opts)?;
            (rec.warehouse, Some(rec.report))
        }
    };
    let durability = DurabilityPolicy::new(dir)
        .snapshot_every(snapshot_every)
        .with_snapshot_fn(snapshot_writer());
    let service = WarehouseService::start_with_durability(warehouse, policy, opts, durability)
        .map_err(|e| PersistError::Engine(e.to_string()))?;
    Ok(DurableStart { service, recovery })
}
