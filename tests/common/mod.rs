#![allow(dead_code)] // shared across integration-test binaries; each uses a subset
//! Shared helpers for the integration tests.

use cubedelta::core::{MaintainOptions, Warehouse};
use cubedelta::expr::Expr;
use cubedelta::query::AggFunc;
use cubedelta::storage::{row, Catalog, ChangeBatch, Date, DeltaSet, Row, Value};
use cubedelta::view::SummaryViewDef;
use cubedelta::workload::retail_catalog_small;

/// The paper's four Figure-1 views.
pub fn figure1_defs() -> Vec<SummaryViewDef> {
    vec![
        SummaryViewDef::builder("SID_sales", "pos")
            .group_by(["storeID", "itemID", "date"])
            .aggregate(AggFunc::CountStar, "TotalCount")
            .aggregate(AggFunc::Sum(Expr::col("qty")), "TotalQuantity")
            .build(),
        SummaryViewDef::builder("sCD_sales", "pos")
            .join_dimension("stores")
            .group_by(["city", "date"])
            .aggregate(AggFunc::CountStar, "TotalCount")
            .aggregate(AggFunc::Sum(Expr::col("qty")), "TotalQuantity")
            .build(),
        SummaryViewDef::builder("SiC_sales", "pos")
            .join_dimension("items")
            .group_by(["storeID", "category"])
            .aggregate(AggFunc::CountStar, "TotalCount")
            .aggregate(AggFunc::Min(Expr::col("date")), "EarliestSale")
            .aggregate(AggFunc::Sum(Expr::col("qty")), "TotalQuantity")
            .build(),
        SummaryViewDef::builder("sR_sales", "pos")
            .join_dimension("stores")
            .group_by(["region"])
            .aggregate(AggFunc::CountStar, "TotalCount")
            .aggregate(AggFunc::Sum(Expr::col("qty")), "TotalQuantity")
            .build(),
    ]
}

/// A warehouse over the miniature retail fixture with all Figure-1 views
/// installed.
pub fn small_warehouse() -> Warehouse {
    let mut wh = Warehouse::from_catalog(retail_catalog_small());
    for def in figure1_defs() {
        wh.create_summary_table(&def).unwrap();
    }
    wh
}

/// Deterministic pseudo-random pos row over the small fixture's dimensions
/// (stores 1–3, items 10/20/30, a few dates, occasional NULL qty).
pub fn synth_pos_row(seed: u64) -> Row {
    let store = (seed % 3) as i64 + 1;
    let item = [10i64, 20, 30][(seed / 3 % 3) as usize];
    let date = Date(10000 + (seed / 9 % 4) as i32);
    if seed % 11 == 0 {
        Row::new(vec![
            Value::Int(store),
            Value::Int(item),
            Value::Date(date),
            Value::Null,
            Value::Float(1.0),
        ])
    } else {
        let qty = (seed % 7) as i64 + 1;
        row![store, item, date, qty, 1.0]
    }
}

/// Applies a batch with the summary-delta method and asserts every summary
/// table still matches recomputation from base data.
pub fn maintain_and_check(wh: &mut Warehouse, batch: &ChangeBatch, opts: &MaintainOptions) {
    wh.maintain(batch, opts).unwrap();
    wh.check_consistency().unwrap();
}

/// Collects up to `n` current pos rows for deletion batches.
pub fn existing_pos_rows(catalog: &Catalog, n: usize) -> Vec<Row> {
    catalog
        .table("pos")
        .unwrap()
        .rows()
        .take(n)
        .cloned()
        .collect()
}

/// A balanced update-generating batch over the small fixture.
pub fn small_update_batch(wh: &Warehouse, seed: u64, size: usize) -> ChangeBatch {
    let dels = existing_pos_rows(wh.catalog(), size / 2);
    let ins: Vec<Row> = (0..size - dels.len())
        .map(|i| synth_pos_row(seed.wrapping_mul(31).wrapping_add(i as u64)))
        .collect();
    ChangeBatch::single(DeltaSet {
        table: "pos".into(),
        insertions: ins,
        deletions: dels,
    })
}
