//! Lattice-friendly view rewriting (§5.2).
//!
//! "It is also possible to change the definitions of summary tables slightly
//! so that the derives relation between them grows larger, and we do not
//! repeat joins along the lattice paths."
//!
//! Two rewrites, applied to a fixpoint:
//!
//! 1. **Dimension-attribute widening** — if some other view groups by an
//!    attribute `g` that a view `v`'s group-by attributes functionally
//!    determine, add `g` to `v`'s group-by list (grouping is unchanged by
//!    FDs; §5.2's rationale). This is how `sCD_sales` gains `region` in
//!    Example 5.3 / Figure 8, letting `sR_sales` derive from it without
//!    re-joining `stores`.
//! 2. **Aggregate sharing** — if a view `w` whose group-by attributes are
//!    all determined by `v`'s computes an aggregate `a(E)` that `v` cannot
//!    derive, add `a(E)` to `v` (fresh alias), so `w ⊑ v` holds.

use cubedelta_storage::Catalog;
use cubedelta_view::{AggSpec, SummaryViewDef};

use crate::closure::AttrClosure;
use crate::error::{LatticeError, LatticeResult};

/// Rewrites a set of view definitions to be lattice-friendly. Returns the
/// rewritten definitions in the same order. The rewrite is conservative: it
/// only adds group-by attributes (never changing the grouping, thanks to
/// FDs) and aggregates other views need.
pub fn make_lattice_friendly(
    catalog: &Catalog,
    defs: &[SummaryViewDef],
) -> LatticeResult<Vec<SummaryViewDef>> {
    let mut out: Vec<SummaryViewDef> = defs.to_vec();
    // Each addition can enable more; iterate to a fixpoint (bounded: the
    // attribute/aggregate universe is finite).
    for _round in 0..32 {
        let mut changed = false;

        for v_idx in 0..out.len() {
            let closure = {
                let v = &out[v_idx];
                AttrClosure::new(catalog, &v.fact_table).closure(v.group_by.iter())
            };

            for w_idx in 0..out.len() {
                if w_idx == v_idx || out[w_idx].fact_table != out[v_idx].fact_table {
                    continue;
                }

                // Rule 1: widen v's group-by with FD-determined attributes
                // that w groups by.
                let missing: Vec<String> = out[w_idx]
                    .group_by
                    .iter()
                    .filter(|g| closure.contains(*g) && !out[v_idx].group_by.contains(g))
                    .cloned()
                    .collect();
                for g in missing {
                    // Record the owning dimension join if v lacks it.
                    let fact = out[v_idx].fact_table.clone();
                    let dim = AttrClosure::new(catalog, &fact)
                        .owning_dimension(&g)
                        .map(str::to_string);
                    if let Some(dim) = dim {
                        if !out[v_idx].dim_joins.contains(&dim) {
                            out[v_idx].dim_joins.push(dim);
                        }
                    }
                    out[v_idx].group_by.push(g);
                    changed = true;
                }

                // Rule 2: share aggregates downward. Only when w is fully
                // below v (all of w's group-bys determined by v's).
                let w_below_v = out[w_idx]
                    .group_by
                    .iter()
                    .all(|g| closure.contains(g));
                if !w_below_v {
                    continue;
                }
                let w_aggs: Vec<AggSpec> = out[w_idx].aggregates.clone();
                for spec in w_aggs {
                    let v = &out[v_idx];
                    let already = v.aggregates.iter().any(|a| a.func == spec.func);
                    // Derivable anyway if the source ranges over attributes
                    // v will have (its group-by closure).
                    let derivable_by_expr = spec
                        .func
                        .input()
                        .map(|e| e.columns().iter().all(|c| closure.contains(c)))
                        .unwrap_or(true); // COUNT(*) always derivable
                    if already || derivable_by_expr {
                        continue;
                    }
                    // Add the aggregate under a fresh alias.
                    let mut alias = spec.alias.clone();
                    let mut n = 0;
                    while out[v_idx].group_by.contains(&alias)
                        || out[v_idx].aggregates.iter().any(|a| a.alias == alias)
                    {
                        n += 1;
                        alias = format!("{}_{n}", spec.alias);
                    }
                    // The source must still resolve in v's joined schema;
                    // pull in owning dimensions for its columns.
                    if let Some(e) = spec.func.input() {
                        let fact = out[v_idx].fact_table.clone();
                        for c in e.columns() {
                            let dim = AttrClosure::new(catalog, &fact)
                                .owning_dimension(&c)
                                .map(str::to_string);
                            if let Some(dim) = dim {
                                if !out[v_idx].dim_joins.contains(&dim) {
                                    out[v_idx].dim_joins.push(dim);
                                }
                            }
                        }
                    }
                    out[v_idx].aggregates.push(AggSpec::new(spec.func, alias));
                    changed = true;
                }
            }
        }

        if !changed {
            return Ok(out);
        }
    }
    Err(LatticeError::Construction(
        "lattice-friendly rewriting did not converge".to_string(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_fixtures::*;

    #[test]
    fn scd_gains_region_like_figure_8() {
        let cat = retail_catalog_small();
        let defs = vec![sid_sales(), scd_sales(), sic_sales(), sr_sales()];
        let out = make_lattice_friendly(&cat, &defs).unwrap();
        let scd = &out[1];
        assert!(
            scd.group_by.contains(&"region".to_string()),
            "sCD_sales extended with region (Example 5.3): {:?}",
            scd.group_by
        );
        // SID_sales keeps its original group-by — none of the others' attrs
        // are determined *and missing*... storeID determines city/region and
        // itemID determines category, so SID actually widens too; that is
        // the §5.2 "join all dimension tables at the top-most point" effect.
        let sid = &out[0];
        assert!(sid.group_by.contains(&"storeID".to_string()));
        assert!(sid.group_by.contains(&"city".to_string()));
        assert!(sid.group_by.contains(&"category".to_string()));
    }

    #[test]
    fn widened_lattice_has_fuller_derives() {
        use crate::vlattice::ViewLattice;
        use cubedelta_view::augment;

        let cat = retail_catalog_small();
        let defs = vec![sid_sales(), scd_sales(), sic_sales(), sr_sales()];
        let out = make_lattice_friendly(&cat, &defs).unwrap();
        let views = out.iter().map(|d| augment(&cat, d).unwrap()).collect();
        let lat = ViewLattice::build(&cat, views).unwrap();
        // After widening, sR still sits below sCD; the edge no longer needs
        // a dimension join because region is now a sCD group-by column.
        let scd = 1;
        let sr = 3;
        assert!(lat.strictly_below(sr, scd));
        let render = lat.render();
        assert!(
            render.contains("sCD_sales -> sR_sales\n"),
            "join-free edge expected, got:\n{render}"
        );
    }

    #[test]
    fn aggregate_sharing_enables_derivation() {
        use cubedelta_expr::Expr;
        use cubedelta_query::AggFunc;

        // Parent groups by (storeID, itemID) but does not carry SUM(price);
        // a child view needs SUM(price) and groups by storeID.
        let cat = retail_catalog_small();
        let parent = SummaryViewDef::builder("si", "pos")
            .group_by(["storeID", "itemID"])
            .aggregate(AggFunc::CountStar, "cnt")
            .build();
        let child = SummaryViewDef::builder("s_price", "pos")
            .group_by(["storeID"])
            .aggregate(AggFunc::Sum(Expr::col("price")), "revenue")
            .build();
        let out = make_lattice_friendly(&cat, &[parent, child]).unwrap();
        assert!(
            out[0]
                .aggregates
                .iter()
                .any(|a| matches!(&a.func, AggFunc::Sum(e) if *e == Expr::col("price"))),
            "parent gains SUM(price): {:?}",
            out[0].aggregates
        );
    }

    #[test]
    fn fixpoint_reaches_stability() {
        let cat = retail_catalog_small();
        let defs = vec![sid_sales(), scd_sales(), sic_sales(), sr_sales()];
        let once = make_lattice_friendly(&cat, &defs).unwrap();
        let twice = make_lattice_friendly(&cat, &once).unwrap();
        assert_eq!(once, twice, "rewriting is idempotent");
    }
}
