//! Workload scale parameters.

/// Cardinalities for the synthetic retail warehouse.
///
/// Defaults mirror the paper's §6 setup in spirit: hundreds of stores, a
/// few thousand items, a year of dates, and a `pos` table whose size is the
/// primary experimental variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkloadScale {
    /// Number of stores (each mapped to a city and region).
    pub stores: usize,
    /// Number of distinct cities (stores hash onto cities).
    pub cities: usize,
    /// Number of distinct regions (cities hash onto regions).
    pub regions: usize,
    /// Number of items.
    pub items: usize,
    /// Number of distinct categories (items hash onto categories).
    pub categories: usize,
    /// Number of distinct sale dates in the base data.
    pub dates: usize,
    /// Number of `pos` fact tuples.
    pub pos_rows: usize,
    /// RNG seed; equal seeds give identical workloads.
    pub seed: u64,
}

/// Item-popularity skew applied on top of a scale.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum Skew {
    /// Every item equally likely (the paper's setting).
    #[default]
    Uniform,
    /// Zipf(α) over item ranks — real retail's hot-seller shape.
    Zipf(f64),
}

impl WorkloadScale {
    /// A small scale for unit tests (hundreds of rows).
    pub fn tiny() -> Self {
        WorkloadScale {
            stores: 10,
            cities: 5,
            regions: 2,
            items: 20,
            categories: 4,
            dates: 7,
            pos_rows: 300,
            seed: 42,
        }
    }

    /// The paper's §6 shape with a parameterized `pos` size
    /// (100k–500k in the study).
    pub fn paper(pos_rows: usize) -> Self {
        WorkloadScale {
            stores: 300,
            cities: 60,
            regions: 8,
            items: 3000,
            categories: 50,
            dates: 365,
            pos_rows,
            seed: 1997,
        }
    }

    /// Returns a copy with a different seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

impl Default for WorkloadScale {
    fn default() -> Self {
        WorkloadScale::tiny()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets() {
        let t = WorkloadScale::tiny();
        assert!(t.pos_rows < 1000);
        let p = WorkloadScale::paper(500_000);
        assert_eq!(p.pos_rows, 500_000);
        assert_eq!(p.stores, 300);
        assert_eq!(p.with_seed(7).seed, 7);
    }
}
