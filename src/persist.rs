//! Saving and restoring a warehouse as a directory of flat files.
//!
//! Layout written by [`save_warehouse`]:
//!
//! ```text
//! dir/
//!   schema.txt    base-table schemas, roles, foreign keys, dimension FDs
//!   views.sql     one CREATE VIEW statement per line (paper-style SQL)
//!   <table>.csv   contents of every fact and dimension table
//! ```
//!
//! [`load_warehouse`] reverses it: base tables are loaded from CSV, then
//! every view is re-created (and rematerialized) from its SQL — summary
//! tables are derived state, so persisting their *definitions* suffices and
//! keeps the format trivially auditable.
//!
//! ## `schema.txt` grammar
//!
//! One record per line, fields separated by `|`, no escaping (table and
//! column names must not contain `|` or newlines). Blank lines are
//! ignored. Five record kinds:
//!
//! ```text
//! table|<name>|<role>                 role ∈ {fact, dimension}
//! column|<table>|<name>|<type>|<null> type ∈ {int, float, str, date},
//!                                     null ∈ {null, notnull}
//! dimkey|<table>|<key>                dimension table's key column
//! fd|<table>|<det>|<dep1,dep2,...>    functional dependency det → deps
//! fk|<fact>|<fcol>|<dim>|<dkey>       foreign key fact.fcol → dim.dkey
//! ```
//!
//! Ordering rules: `column` records follow their `table` record (grouping
//! is by the table-name field, so interleaving is tolerated); an `fd`
//! must come after its table's `dimkey`; `fk` records may appear
//! anywhere. Any other line shape is a [`PersistError::Manifest`].
//!
//! ## Snapshots
//!
//! The durability layer ([`crate::durability`]) needs more than
//! `save_warehouse`: recovery must reproduce summary tables *byte for
//! byte*, including physical row order, and rematerialization only
//! guarantees the right contents. [`save_snapshot`] therefore writes a
//! `save_warehouse` directory plus `summary/<view>.csv` with each summary
//! table's materialized rows; [`load_snapshot`] rebuilds the warehouse
//! and then overwrites each summary table's contents from those files,
//! restoring the exact physical layout.

use std::fs;
use std::io::Write as _;
use std::path::Path;

use cubedelta_core::{CoreError, Warehouse};
use cubedelta_sql::SqlWarehouse;
use cubedelta_storage::{
    load_csv, to_csv, Column, DataType, DimensionInfo, FunctionalDependency, Schema, TableRole,
};

/// Subdirectory of a snapshot holding materialized summary-table rows.
const SUMMARY_SUBDIR: &str = "summary";

/// Errors from saving or loading a warehouse directory.
#[derive(Debug)]
pub enum PersistError {
    /// Filesystem trouble.
    Io(std::io::Error),
    /// A malformed line in `schema.txt`.
    Manifest(String),
    /// An engine error while rebuilding.
    Engine(String),
    /// A checksum or framing failure in a durability artifact (commitlog
    /// frame, `MANIFEST`), with the byte offset where validation failed.
    Corrupt {
        /// Byte offset into the corrupt file.
        offset: u64,
        /// What failed to validate there.
        detail: String,
    },
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "io: {e}"),
            PersistError::Manifest(m) => write!(f, "manifest: {m}"),
            PersistError::Engine(m) => write!(f, "engine: {m}"),
            PersistError::Corrupt { offset, detail } => {
                write!(f, "corrupt at byte {offset}: {detail}")
            }
        }
    }
}

impl std::error::Error for PersistError {}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e)
    }
}

impl From<CoreError> for PersistError {
    fn from(e: CoreError) -> Self {
        PersistError::Engine(e.to_string())
    }
}

fn role_name(role: TableRole) -> &'static str {
    match role {
        TableRole::Fact => "fact",
        TableRole::Dimension => "dimension",
        TableRole::Summary => "summary",
        TableRole::Other => "other",
    }
}

fn type_name(t: DataType) -> &'static str {
    match t {
        DataType::Int => "int",
        DataType::Float => "float",
        DataType::Str => "str",
        DataType::Date => "date",
    }
}

fn parse_type(s: &str) -> Result<DataType, PersistError> {
    Ok(match s {
        "int" => DataType::Int,
        "float" => DataType::Float,
        "str" => DataType::Str,
        "date" => DataType::Date,
        other => return Err(PersistError::Manifest(format!("unknown type `{other}`"))),
    })
}

/// Writes the warehouse's base tables, relational metadata, and view
/// definitions under `dir` (created if missing). Summary-table *contents*
/// are not written; they are derived state, rebuilt on load.
pub fn save_warehouse(wh: &Warehouse, dir: &Path) -> Result<(), PersistError> {
    fs::create_dir_all(dir)?;
    let cat = wh.catalog();

    let mut schema_out = String::new();
    for role in [TableRole::Fact, TableRole::Dimension] {
        for name in cat.tables_with_role(role) {
            let table = cat.table(name).expect("listed table exists");
            schema_out.push_str(&format!("table|{name}|{}\n", role_name(role)));
            for c in table.schema().columns() {
                schema_out.push_str(&format!(
                    "column|{name}|{}|{}|{}\n",
                    c.name,
                    type_name(c.datatype),
                    if c.nullable { "null" } else { "notnull" }
                ));
            }
            if let Some(info) = cat.dimension_info(name) {
                schema_out.push_str(&format!("dimkey|{name}|{}\n", info.key));
                for fd in &info.fds {
                    schema_out.push_str(&format!(
                        "fd|{name}|{}|{}\n",
                        fd.determinant,
                        fd.dependents.join(",")
                    ));
                }
            }
            // Contents.
            fs::write(dir.join(format!("{name}.csv")), to_csv(table))?;
        }
    }
    for fk in cat.foreign_keys() {
        schema_out.push_str(&format!(
            "fk|{}|{}|{}|{}\n",
            fk.fact_table, fk.fact_column, fk.dim_table, fk.dim_key
        ));
    }
    fs::write(dir.join("schema.txt"), schema_out)?;

    let mut views = fs::File::create(dir.join("views.sql"))?;
    for view in wh.views() {
        // The augmented definition's user prefix is what the owner wrote;
        // re-augmentation on load regenerates the support columns. We strip
        // augmentation by rebuilding the definition from the user prefix.
        let mut def = view.def.clone();
        def.aggregates.truncate(view.user_agg_count);
        writeln!(views, "{def}")?;
    }
    Ok(())
}

/// Restores a warehouse saved by [`save_warehouse`]: loads base tables from
/// CSV, re-registers metadata, then re-creates (and rematerializes) every
/// view from its SQL.
pub fn load_warehouse(dir: &Path) -> Result<Warehouse, PersistError> {
    let mut wh = Warehouse::new();
    let schema_text = fs::read_to_string(dir.join("schema.txt"))?;

    // Pass 1: gather column definitions per table.
    let mut tables: Vec<(String, TableRole)> = Vec::new();
    let mut columns: Vec<(String, Column)> = Vec::new();
    let mut dim_infos: Vec<(String, DimensionInfo)> = Vec::new();
    let mut fks: Vec<(String, String, String, String)> = Vec::new();

    for line in schema_text.lines().filter(|l| !l.trim().is_empty()) {
        let parts: Vec<&str> = line.split('|').collect();
        match parts.as_slice() {
            ["table", name, role] => {
                let role = match *role {
                    "fact" => TableRole::Fact,
                    "dimension" => TableRole::Dimension,
                    other => {
                        return Err(PersistError::Manifest(format!("unknown role `{other}`")))
                    }
                };
                tables.push((name.to_string(), role));
            }
            ["column", table, name, ty, nullness] => {
                let ty = parse_type(ty)?;
                let col = match *nullness {
                    "null" => Column::nullable(*name, ty),
                    "notnull" => Column::new(*name, ty),
                    other => {
                        return Err(PersistError::Manifest(format!(
                            "unknown nullability `{other}`"
                        )))
                    }
                };
                columns.push((table.to_string(), col));
            }
            ["dimkey", table, key] => {
                dim_infos.push((
                    table.to_string(),
                    DimensionInfo {
                        key: key.to_string(),
                        fds: Vec::new(),
                    },
                ));
            }
            ["fd", table, det, deps] => {
                let info = dim_infos
                    .iter_mut()
                    .find(|(t, _)| t == table)
                    .ok_or_else(|| {
                        PersistError::Manifest(format!("fd before dimkey for `{table}`"))
                    })?;
                info.1.fds.push(FunctionalDependency::new(
                    *det,
                    &deps.split(',').collect::<Vec<_>>(),
                ));
            }
            ["fk", fact, fcol, dim, dkey] => {
                fks.push((
                    fact.to_string(),
                    fcol.to_string(),
                    dim.to_string(),
                    dkey.to_string(),
                ));
            }
            other => {
                return Err(PersistError::Manifest(format!("bad line {other:?}")));
            }
        }
    }

    // Pass 2: create tables, metadata, load contents.
    for (name, role) in &tables {
        let cols: Vec<Column> = columns
            .iter()
            .filter(|(t, _)| t == name)
            .map(|(_, c)| c.clone())
            .collect();
        let schema = Schema::new(cols);
        match role {
            TableRole::Fact => wh.create_fact_table(name, schema)?,
            TableRole::Dimension => {
                let info = dim_infos
                    .iter()
                    .find(|(t, _)| t == name)
                    .map(|(_, i)| i.clone())
                    .unwrap_or_default();
                wh.create_dimension_table(name, schema, info)?
            }
            _ => unreachable!("only fact/dimension roles are written"),
        }
        let csv = fs::read_to_string(dir.join(format!("{name}.csv")))?;
        load_csv(wh.catalog_mut().table_mut(name).map_err(CoreError::from)?, &csv)
            .map_err(|e| PersistError::Engine(e.to_string()))?;
    }
    for (fact, fcol, dim, dkey) in fks {
        wh.add_foreign_key(&fact, &fcol, &dim, &dkey)?;
    }

    // Pass 3: views.
    let views_path = dir.join("views.sql");
    if views_path.exists() {
        for line in fs::read_to_string(views_path)?
            .lines()
            .filter(|l| !l.trim().is_empty())
        {
            wh.create_summary_table_sql(line)
                .map_err(|e| PersistError::Engine(e.to_string()))?;
        }
    }
    // A freshly loaded warehouse starts its epoch numbering at 0, with
    // the restored state published (base contents were loaded through
    // `catalog_mut`, which does not publish on its own).
    wh.publish_initial_snapshot();
    Ok(wh)
}

/// Writes a recovery snapshot: a [`save_warehouse`] directory plus the
/// materialized rows of every summary table under `summary/`, then
/// fsyncs every file so the snapshot is durable before the commitlog
/// manifest flips to it.
pub fn save_snapshot(wh: &Warehouse, dir: &Path) -> Result<(), PersistError> {
    save_warehouse(wh, dir)?;
    let sdir = dir.join(SUMMARY_SUBDIR);
    fs::create_dir_all(&sdir)?;
    for view in wh.views() {
        let table = wh
            .catalog()
            .table(&view.def.name)
            .map_err(CoreError::from)?;
        fs::write(sdir.join(format!("{}.csv", view.def.name)), to_csv(table))?;
    }
    sync_tree(dir)?;
    Ok(())
}

/// Restores a [`save_snapshot`] directory. After the usual
/// [`load_warehouse`] rebuild, each summary table's rows are replaced
/// with the snapshot's materialized contents, so the physical layout
/// (row order, hence CSV bytes) matches the warehouse that wrote the
/// snapshot exactly. A directory written by plain [`save_warehouse`]
/// (no `summary/`) loads too, with rematerialized contents.
pub fn load_snapshot(dir: &Path) -> Result<Warehouse, PersistError> {
    let mut wh = load_warehouse(dir)?;
    let sdir = dir.join(SUMMARY_SUBDIR);
    if !sdir.is_dir() {
        return Ok(wh);
    }
    let names: Vec<String> = wh.views().iter().map(|v| v.def.name.clone()).collect();
    for name in names {
        let csv = fs::read_to_string(sdir.join(format!("{name}.csv")))?;
        let table = wh.catalog_mut().table_mut(&name).map_err(CoreError::from)?;
        table.truncate();
        load_csv(table, &csv).map_err(|e| PersistError::Engine(e.to_string()))?;
    }
    // Republish epoch 0 now that the summary tables carry the snapshot's
    // materialized bytes (not the load-time rematerialization).
    wh.publish_initial_snapshot();
    Ok(wh)
}

/// Fsyncs every regular file under `dir` (one level of subdirectories —
/// the snapshot layout is flat plus `summary/`), then the directories
/// themselves.
fn sync_tree(dir: &Path) -> Result<(), PersistError> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            for sub in fs::read_dir(&path)? {
                let sub = sub?.path();
                if sub.is_file() {
                    fs::File::open(&sub)?.sync_data()?;
                }
            }
            fs::File::open(&path)?.sync_data()?;
        } else if path.is_file() {
            fs::File::open(&path)?.sync_data()?;
        }
    }
    fs::File::open(dir)?.sync_data()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cubedelta_core::MaintainOptions;
    use cubedelta_expr::{CmpOp, Expr, Predicate};
    use cubedelta_query::AggFunc;
    use cubedelta_storage::{row, ChangeBatch, Date, DeltaSet};
    use cubedelta_view::SummaryViewDef;
    use cubedelta_workload::retail_catalog_small;

    fn tempdir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("cubedelta_persist_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn sample_warehouse() -> Warehouse {
        let mut wh = Warehouse::from_catalog(retail_catalog_small());
        wh.create_summary_table(
            &SummaryViewDef::builder("SID_sales", "pos")
                .group_by(["storeID", "itemID", "date"])
                .aggregate(AggFunc::CountStar, "TotalCount")
                .aggregate(AggFunc::Sum(Expr::col("qty")), "TotalQuantity")
                .build(),
        )
        .unwrap();
        wh.create_summary_table(
            &SummaryViewDef::builder("big_region", "pos")
                .join_dimension("stores")
                .filter(Predicate::cmp(CmpOp::Ge, Expr::col("qty"), Expr::lit(3i64)))
                .group_by(["region"])
                .aggregate(AggFunc::CountStar, "cnt")
                .aggregate(AggFunc::Min(Expr::col("date")), "first")
                .build(),
        )
        .unwrap();
        wh
    }

    #[test]
    fn save_load_roundtrip() {
        let wh = sample_warehouse();
        let dir = tempdir("roundtrip");
        save_warehouse(&wh, &dir).unwrap();
        let restored = load_warehouse(&dir).unwrap();

        // Base tables identical.
        for t in ["pos", "stores", "items"] {
            assert_eq!(
                restored.catalog().table(t).unwrap().sorted_rows(),
                wh.catalog().table(t).unwrap().sorted_rows(),
                "{t} differs"
            );
        }
        // Views rebuilt with identical contents (incl. the filtered one).
        for v in wh.views() {
            assert_eq!(
                restored.catalog().table(&v.def.name).unwrap().sorted_rows(),
                wh.catalog().table(&v.def.name).unwrap().sorted_rows(),
                "{} differs",
                v.def.name
            );
        }
        restored.check_consistency().unwrap();
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn restored_warehouse_maintains() {
        let wh = sample_warehouse();
        let dir = tempdir("maintain");
        save_warehouse(&wh, &dir).unwrap();
        let mut restored = load_warehouse(&dir).unwrap();
        let batch = ChangeBatch::single(DeltaSet {
            table: "pos".into(),
            insertions: vec![row![3i64, 30i64, Date(10002), 8i64, 0.8]],
            deletions: vec![row![1i64, 10i64, Date(10000), 5i64, 1.0]],
        });
        restored.maintain(&batch, &MaintainOptions::default()).unwrap();
        restored.check_consistency().unwrap();
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshot_restores_physical_row_order() {
        // Maintain a couple of batches so the summary tables' physical
        // order reflects incremental refresh (insertions appended, not
        // the order a rematerialization would produce), then prove the
        // snapshot brings back that exact layout.
        let mut wh = sample_warehouse();
        for seed in [7i64, 2, 9, 4] {
            let batch = ChangeBatch::single(DeltaSet::insertions(
                "pos",
                vec![row![(seed % 3) + 1, 10i64 * ((seed % 3) + 1), Date(10000 + seed as i32), seed, 0.5]],
            ));
            wh.maintain(&batch, &MaintainOptions::default()).unwrap();
        }
        let dir = tempdir("snapshot");
        save_snapshot(&wh, &dir).unwrap();
        let restored = load_snapshot(&dir).unwrap();
        for v in wh.views() {
            let name = &v.def.name;
            assert_eq!(
                restored.catalog().table(name).unwrap().to_rows(),
                wh.catalog().table(name).unwrap().to_rows(),
                "{name} physical layout differs"
            );
        }
        restored.check_consistency().unwrap();
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_dir_errors() {
        assert!(matches!(
            load_warehouse(Path::new("/nonexistent/cubedelta")),
            Err(PersistError::Io(_))
        ));
    }

    #[test]
    fn corrupt_manifest_errors() {
        let dir = tempdir("corrupt");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("schema.txt"), "nonsense|line\n").unwrap();
        assert!(matches!(
            load_warehouse(&dir),
            Err(PersistError::Manifest(_))
        ));
        fs::remove_dir_all(&dir).unwrap();
    }
}
